"""E8 (Section V): model stealing on the edge and the cost of the defences.

Expected shape: with unrestricted local queries an attacker clones the model
to high agreement; removing soft outputs (top-1 / poisoning) hurts the clone
more than legitimate accuracy; the static watermark survives pruning and
8-bit quantization; encryption at rest fully blocks direct theft.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import make_mlp
from repro.protection import (
    ExtractionDetector,
    ModelKeyManager,
    ProtectedModel,
    QueryBasedExtractor,
    StaticWatermarker,
    direct_theft,
    evaluate_robustness,
)


@pytest.fixture(scope="module")
def victim(bench_model):
    return bench_model


def _extract(victim_model, poisoning: str, budget: int, reference_x=None, seed: int = 0):
    protected = ProtectedModel(victim_model, poisoning=poisoning)
    extractor = QueryBasedExtractor(
        lambda: make_mlp(16, 5, hidden=(64, 32), seed=33), query_budget=budget, epochs=6, seed=seed
    )
    return protected, extractor


@pytest.mark.parametrize("poisoning", ["none", "top1", "reverse_sigmoid"])
def test_e8_extraction_vs_poisoning(benchmark, victim, bench_task, poisoning):
    _, test = bench_task

    def attack():
        protected, extractor = _extract(victim, poisoning, budget=300)
        result = extractor.run(lambda x: protected.predict_logits(x, "attacker"), (16,), test.x, test.y, reference_x=None)
        return result, protected

    result, protected = benchmark.pedantic(attack, rounds=1, iterations=1)
    legit_acc = protected.accuracy(test.x, test.y)
    benchmark.extra_info.update(
        {
            "poisoning": poisoning,
            "clone_agreement": result.agreement_with_victim,
            "clone_accuracy": result.surrogate_accuracy,
            "legitimate_accuracy": legit_acc,
            "queries": result.n_queries,
        }
    )
    # Defences must not hurt legitimate users.
    assert legit_acc >= victim.evaluate(test.x, test.y)["accuracy"] - 0.02


def test_e8_query_budget_matters(victim, bench_task):
    """More local (free) queries -> better clone: the paper's edge-risk argument."""
    _, test = bench_task
    results = {}
    for budget in (100, 2000):
        protected, extractor = _extract(victim, "none", budget=budget, seed=1)
        res = extractor.run(lambda x: protected.predict_logits(x, "a"), (16,), test.x, test.y, reference_x=None)
        results[budget] = res.agreement_with_victim
    assert results[2000] >= results[100] - 0.02


def test_e8_watermark_robustness(benchmark, victim, bench_task):
    train, test = bench_task
    watermarker = StaticWatermarker(message_bits=48, strength=0.08, seed=2)

    def run():
        marked, key = watermarker.embed(victim, owner="bench")
        return evaluate_robustness(
            watermarker, marked, key, x_finetune=train.x[:300], y_finetune=train.y[:300],
            prune_sparsities=(0.5,), quant_bits=(8,), finetune_epochs=1,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["rows"] = rows
    by_attack = {r["attack"]: r for r in rows}
    assert by_attack["none"]["bit_error_rate"] == 0.0
    assert by_attack["quantize"]["matched"] == 1.0
    assert by_attack["prune"]["matched"] == 1.0
    # Fidelity: the marked model stays accurate.
    assert by_attack["none"]["accuracy_after_attack"] > 0.9


def test_e8_direct_theft_and_detection(benchmark, victim, bench_task, rng=np.random.default_rng(0)):
    train, test = bench_task

    def run():
        keys = ModelKeyManager()
        blob = keys.wrap_model(victim.to_bytes(), "victim", "dev-1")
        blocked = direct_theft(victim, encrypted=True) is None
        detector = ExtractionDetector(train.x, threshold=0.3, seed=0)
        detector.observe("attacker", rng.uniform(-3, 3, size=(128, 16)))
        detector.observe("benign", test.x[:128])
        return blocked, detector.check("attacker"), detector.check("benign"), blob.size_bytes

    blocked, attacker_flagged, benign_flagged, size = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"encryption_blocks_direct_theft": blocked, "attacker_flagged": attacker_flagged, "benign_flagged": benign_flagged, "encrypted_bytes": size}
    )
    assert blocked and attacker_flagged and not benign_flagged
