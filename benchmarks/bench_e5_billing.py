"""E5 (Section III-C): offline pay-per-query metering overhead and tamper detection.

Expected shape: metering adds microsecond-scale overhead per query (tiny
compared to model inference), quotas are enforced while fully offline, and
every tampered ledger (edited, truncated, over-used, rolled back) is rejected
at reconciliation while honest ledgers are accepted and billed exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.billing import BillingBackend, PricingPlan, QuotaExceededError, UsageLedger


@pytest.fixture()
def enrolled():
    backend = BillingBackend()
    backend.register_plan(PricingPlan("vision", price_per_query=0.0015))
    key = backend.enroll_device("dev-1")
    ledger = UsageLedger("dev-1", key)
    # Large prepaid package so benchmark calibration never exhausts the quota.
    ledger.add_grant(backend.sell_package("dev-1", "vision", 50_000_000), backend_key=backend.signing_key())
    return backend, ledger


def test_e5_metering_overhead_per_query(benchmark, enrolled):
    _, ledger = enrolled

    def meter_queries():
        for _ in range(1000):
            ledger.record_query("vision")

    benchmark(meter_queries)
    benchmark.extra_info["queries_per_call"] = 1000


def test_e5_reconciliation_throughput(benchmark, enrolled):
    backend, ledger = enrolled
    for _ in range(5000):
        ledger.record_query("vision")
    export = ledger.export()

    result = benchmark(lambda: backend.reconcile(export))
    assert result.accepted
    benchmark.extra_info.update({"entries": result.n_entries, "billed": result.billed_amount})


def test_e5_offline_quota_enforced_and_tampering_detected(benchmark):
    def scenario():
        backend = BillingBackend()
        backend.register_plan(PricingPlan("vision", price_per_query=0.0015))
        key = backend.enroll_device("dev-1")
        ledger = UsageLedger("dev-1", key)
        ledger.add_grant(backend.sell_package("dev-1", "vision", 500), backend_key=backend.signing_key())
        denied = 0
        for _ in range(600):
            try:
                ledger.record_query("vision")
            except QuotaExceededError:
                denied += 1
        honest = backend.reconcile(ledger.export())
        # Tamper 1: rewrite an entry's model name.
        edited = ledger.export()
        edited["entries"][10]["model_name"] = "free"
        tampered_edit = backend.reconcile(edited)
        # Tamper 2: truncate the ledger after a successful sync (rollback).
        truncated = ledger.export()
        truncated["entries"] = truncated["entries"][:100]
        tampered_rollback = backend.reconcile(truncated)
        return {
            "denied": denied,
            "honest_accepted": honest.accepted,
            "honest_billed": honest.billed_amount,
            "edit_detected": not tampered_edit.accepted,
            "rollback_detected": not tampered_rollback.accepted,
        }

    result = benchmark.pedantic(scenario, rounds=1, iterations=1)
    assert result["denied"] == 100
    assert result["honest_accepted"] and result["honest_billed"] == pytest.approx(0.75)
    assert result["edit_detected"] and result["rollback_detected"]
    benchmark.extra_info.update(result)
