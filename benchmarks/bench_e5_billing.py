"""E5 (Section III-C): offline pay-per-query metering overhead and tamper detection.

Expected shape: metering adds microsecond-scale overhead per query (tiny
compared to model inference), quotas are enforced while fully offline, and
every tampered ledger (edited, truncated, over-used, rolled back) is rejected
at reconciliation while honest ledgers are accepted and billed exactly.
Batched metering (``record_batch``) amortizes the per-query HMAC into one
aggregated chain entry per grant, turning a 10k-query window into O(#grants)
work — the large-batch case measures that speedup.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.billing import BillingBackend, PricingPlan, QuotaExceededError, UsageLedger


@pytest.fixture()
def enrolled():
    backend = BillingBackend()
    backend.register_plan(PricingPlan("vision", price_per_query=0.0015))
    key = backend.enroll_device("dev-1")
    ledger = UsageLedger("dev-1", key)
    # Large prepaid package so benchmark calibration never exhausts the quota.
    ledger.add_grant(backend.sell_package("dev-1", "vision", 50_000_000), backend_key=backend.signing_key())
    return backend, ledger


def test_e5_metering_overhead_per_query(benchmark, enrolled):
    _, ledger = enrolled

    def meter_queries():
        for _ in range(1000):
            ledger.record_query("vision")

    benchmark(meter_queries)
    benchmark.extra_info["queries_per_call"] = 1000


def test_e5_reconciliation_throughput(benchmark, enrolled):
    backend, ledger = enrolled
    for _ in range(5000):
        ledger.record_query("vision")
    export = ledger.export()

    result = benchmark(lambda: backend.reconcile(export))
    assert result.accepted
    benchmark.extra_info.update({"entries": result.n_entries, "billed": result.billed_amount})


def test_e5_batch_metering_speedup(benchmark, smoke_mode):
    """``record_batch`` vs. a ``record_query`` loop on a 10k-query window.

    Both paths must leave identical quota state and bill identically at
    reconciliation; the batched path appends one aggregated entry per grant
    and must be ≥10x faster.
    """
    n_queries = 2_000 if smoke_mode else 10_000

    def fresh_ledger():
        backend = BillingBackend()
        backend.register_plan(PricingPlan("vision", price_per_query=0.0015))
        key = backend.enroll_device("dev-1")
        ledger = UsageLedger("dev-1", key)
        # Several grants so the batch path exercises multi-grant consumption.
        for size in (n_queries // 2, n_queries // 2, n_queries):
            ledger.add_grant(backend.sell_package("dev-1", "vision", size), backend_key=backend.signing_key())
        return backend, ledger

    def scenario():
        backend_b, ledger_b = fresh_ledger()
        backend_l, ledger_l = fresh_ledger()
        t0 = time.perf_counter()
        granted = ledger_b.record_batch("vision", n_queries)
        t_batch = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(n_queries):
            ledger_l.record_query("vision")
        t_loop = time.perf_counter() - t0
        bill_b = backend_b.reconcile(ledger_b.export())
        bill_l = backend_l.reconcile(ledger_l.export())
        return {
            "n_queries": n_queries,
            "granted": granted,
            "batch_s": t_batch,
            "loop_s": t_loop,
            "speedup": t_loop / max(t_batch, 1e-12),
            "batch_entries": len(ledger_b.entries),
            "loop_entries": len(ledger_l.entries),
            "identical_usage": ledger_b.used("vision") == ledger_l.used("vision"),
            "identical_billing": (bill_b.accepted, bill_b.billed_amount) == (bill_l.accepted, bill_l.billed_amount),
        }

    result = benchmark.pedantic(scenario, rounds=1, iterations=1)
    assert result["granted"] == n_queries
    assert result["batch_entries"] == 2 and result["loop_entries"] == n_queries
    assert result["identical_usage"] and result["identical_billing"]
    assert result["speedup"] >= 10.0, f"batched metering only {result['speedup']:.1f}x faster"
    benchmark.extra_info.update(result)


def test_e5_offline_quota_enforced_and_tampering_detected(benchmark):
    def scenario():
        backend = BillingBackend()
        backend.register_plan(PricingPlan("vision", price_per_query=0.0015))
        key = backend.enroll_device("dev-1")
        ledger = UsageLedger("dev-1", key)
        ledger.add_grant(backend.sell_package("dev-1", "vision", 500), backend_key=backend.signing_key())
        denied = 0
        for _ in range(600):
            try:
                ledger.record_query("vision")
            except QuotaExceededError:
                denied += 1
        honest = backend.reconcile(ledger.export())
        # Tamper 1: rewrite an entry's model name.
        edited = ledger.export()
        edited["entries"][10]["model_name"] = "free"
        tampered_edit = backend.reconcile(edited)
        # Tamper 2: truncate the ledger after a successful sync (rollback).
        truncated = ledger.export()
        truncated["entries"] = truncated["entries"][:100]
        tampered_rollback = backend.reconcile(truncated)
        return {
            "denied": denied,
            "honest_accepted": honest.accepted,
            "honest_billed": honest.billed_amount,
            "edit_detected": not tampered_edit.accepted,
            "rollback_detected": not tampered_rollback.accepted,
        }

    result = benchmark.pedantic(scenario, rounds=1, iterations=1)
    assert result["denied"] == 100
    assert result["honest_accepted"] and result["honest_billed"] == pytest.approx(0.75)
    assert result["edit_detected"] and result["rollback_detected"]
    benchmark.extra_info.update(result)
