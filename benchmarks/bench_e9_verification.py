"""E9 (Section VI): cost of verifiable execution and TEE-based execution.

Paper data points: SafetyNets-style proofs add roughly 5% overhead for
MNIST/TIMIT-scale models (on the *verifier* side relative to the prover's
work as batch and model size grow), and MLCapsule-style full-enclave
execution costs about 2x.  Expected shape here: the verification ratio drops
as the batch grows (Freivalds is O(n^2) vs O(n^3)); all-inside enclave
overhead equals the configured slowdown (2x); Slalom-style partitioning is
cheaper than all-inside for conv nets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_synthetic_digits
from repro.nn import make_mlp, make_tiny_cnn
from repro.verification import SimulatedEnclave, TranscriptVerifier, VerifiableExecutor


@pytest.fixture(scope="module")
def mnist_scale_model():
    """An MNIST-scale MLP (784-256-128-10), the size class the paper quotes."""
    rng = np.random.default_rng(0)
    model = make_mlp(784, 10, hidden=(256, 128), seed=0, name="mnist-scale")
    x = rng.normal(size=(512, 784))
    return model, x


def test_e9_prove_and_verify_overhead(benchmark, mnist_scale_model):
    model, x = mnist_scale_model
    executor = VerifiableExecutor(model, seed=0)
    verifier = TranscriptVerifier(model, expected_root=executor.weight_root, n_trials=8, seed=0)

    def prove_and_verify():
        transcript = executor.execute(x)
        return verifier.verify(transcript)

    report = benchmark(prove_and_verify)
    assert report["valid"]
    benchmark.extra_info.update(
        {
            "prove_time_ms": report["prove_time_s"] * 1e3,
            "verify_time_ms": report["verify_time_s"] * 1e3,
            "verify_over_prove_ratio": report["overhead_ratio"],
            "transcript_kb": report["transcript_bytes"] / 1024,
            "soundness_error": report["soundness_error"],
        }
    )


def test_e9_verification_ratio_shrinks_with_batch(mnist_scale_model):
    """Freivalds verification amortizes: ratio at batch 512 < ratio at batch 16."""
    model, x = mnist_scale_model
    ratios = {}
    for batch in (16, 512):
        executor = VerifiableExecutor(model, seed=0)
        verifier = TranscriptVerifier(model, expected_root=executor.weight_root, seed=0)
        reports = [verifier.verify(executor.execute(x[:batch])) for _ in range(3)]
        ratios[batch] = float(np.median([r["overhead_ratio"] for r in reports]))
    assert ratios[512] < ratios[16]


def test_e9_tampering_always_caught(benchmark, mnist_scale_model):
    model, x = mnist_scale_model
    executor = VerifiableExecutor(model, seed=0)
    verifier = TranscriptVerifier(model, expected_root=executor.weight_root, n_trials=12, seed=0)

    def tampered_run():
        transcript = executor.execute(x[:64])
        transcript.layer_outputs[-1][:, 0] += 3.0
        return verifier.verify(transcript)

    report = benchmark.pedantic(tampered_run, rounds=1, iterations=1)
    assert not report["valid"]
    benchmark.extra_info["soundness_error_bound"] = report["soundness_error"]


def test_e9_enclave_overhead_mlcapsule_vs_slalom(benchmark):
    """All-inside TEE ≈ 2x (MLCapsule); Slalom-style split is cheaper for conv nets."""
    ds = make_synthetic_digits(128, image_size=12, seed=0)
    cnn = make_tiny_cnn((12, 12, 1), 10, filters=(8, 16), seed=0)
    enclave = SimulatedEnclave(slowdown=2.0, masking_overhead_per_byte=1e-10)

    def run():
        _, all_inside = enclave.run_all_inside(cnn, ds.x[:64])
        _, slalom = enclave.run_slalom(cnn, ds.x[:64])
        return all_inside, slalom

    all_inside, slalom = benchmark(run)
    benchmark.extra_info.update(
        {
            "all_inside_overhead_x": all_inside.overhead_factor,
            "slalom_overhead_x": slalom.overhead_factor,
            "slalom_masking_kb": slalom.masking_bytes / 1024,
        }
    )
    assert all_inside.overhead_factor == pytest.approx(2.0, rel=0.05)
    assert slalom.overhead_factor < all_inside.overhead_factor
