"""E7 (Section IV): device fragmentation, compatibility-aware lowering, offloading.

Expected shape: a naively exported CNN runs on only part of the device
catalogue; lowering (BN folding, quantization) and falling back to smaller
variants restores coverage; offloading / edge-cloud splitting beats both
all-edge and all-cloud execution whenever the uplink is decent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_synthetic_digits
from repro.devices import NetworkCondition, NetworkType, get_profile, list_profiles
from repro.exchange import CompatibilityChecker, Compiler, from_sequential
from repro.nn import make_mlp, make_tiny_cnn
from repro.runtime import OffloadBid, OffloadMarketplace, find_best_split


@pytest.fixture(scope="module")
def kws_cnn():
    ds = make_synthetic_digits(400, image_size=12, seed=0)
    model = make_tiny_cnn((12, 12, 1), 10, filters=(8, 16), seed=0, name="e7-cnn")
    model.fit(ds.x, ds.y, epochs=1, lr=0.005, seed=0)
    return model


def test_e7_fleet_coverage_naive_vs_lowered(benchmark, kws_cnn):
    profiles = [get_profile(name) for name in list_profiles()]
    graph = from_sequential(kws_cnn)
    checker = CompatibilityChecker()

    def coverage():
        naive = checker.fleet_coverage_fraction(graph, profiles)
        compiler = Compiler()
        artifacts, failures = compiler.compile_for_fleet(graph, profiles)
        # Fallback: profiles that cannot host the CNN get a small MLP variant instead.
        fallback = make_mlp(12 * 12, 10, hidden=(32,), seed=0, name="e7-fallback")
        fallback_graph = from_sequential(fallback)
        recovered = sum(1 for name in failures if checker.check(fallback_graph, get_profile(name)).compatible)
        lowered_coverage = (len(artifacts) + recovered) / len(profiles)
        return naive, lowered_coverage

    naive, lowered = benchmark(coverage)
    benchmark.extra_info.update({"naive_coverage": naive, "lowered_plus_fallback_coverage": lowered})
    assert naive < 1.0  # fragmentation is real: some targets reject the CNN as-is
    assert lowered >= naive
    assert lowered >= 0.8


def test_e7_offload_marketplace_latency(benchmark):
    market = OffloadMarketplace()
    market.register_bid(OffloadBid("edge-server", get_profile("edge-server"), 0.01, NetworkCondition.of(NetworkType.WIFI)))
    market.register_bid(OffloadBid("car-gpu", get_profile("phone-flagship"), 0.002, NetworkCondition.of(NetworkType.WIFI)))
    market.register_bid(OffloadBid("cloud", get_profile("cloud"), 0.001, NetworkCondition.of(NetworkType.CELLULAR)))

    def place_many():
        decisions = [market.place_workload(flops=5e8, payload_bytes=2e5) for _ in range(100)]
        return decisions[-1]

    decision = benchmark(place_many)
    local_compute = 5e8 / get_profile("mcu-m4").peak_flops
    benchmark.extra_info.update({"chosen": decision.device_id, "offload_latency_s": decision.latency_s, "local_mcu_latency_s": local_compute, "payouts": market.payouts()})
    assert decision.latency_s < local_compute  # offloading beats running on the MCU


@pytest.mark.parametrize("network", [NetworkType.WIFI, NetworkType.CELLULAR, NetworkType.LPWAN])
def test_e7_edge_cloud_split(benchmark, kws_cnn, network):
    graph = from_sequential(kws_cnn)
    condition = NetworkCondition.of(network)

    decision = benchmark(lambda: find_best_split(graph, get_profile("mcu-m4"), get_profile("cloud"), condition))
    benchmark.extra_info.update(
        {
            "network": network,
            "split_after": decision.split_after,
            "total_ms": decision.total_latency_s * 1e3,
            "all_edge_ms": decision.all_edge_latency_s * 1e3,
            "all_cloud_ms": decision.all_cloud_latency_s * 1e3,
        }
    )
    assert decision.total_latency_s <= decision.all_edge_latency_s + 1e-12
    assert decision.total_latency_s <= decision.all_cloud_latency_s + 1e-12
    if network == NetworkType.LPWAN:
        assert decision.split_after == len(graph) - 1  # terrible uplink -> stay on the edge
