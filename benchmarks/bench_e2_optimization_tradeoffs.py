"""E2 (Section II / III-A): quantization & pruning accuracy/size/latency trade-offs.

Expected shape (matches the TinyML literature the paper cites): 8-bit is
essentially lossless while shrinking the model 4x; very low bit widths and
very high sparsities degrade accuracy; low precision only speeds devices up
when they have native kernels for it.

Also measures the compiled inference engine: the flat fused-kernel plan
(:class:`repro.exchange.CompiledExecutor`) against the per-node reference
interpreter on a CNN keyword-spotting serving workload (guardrail ≥10x with
allclose-identical logits), and a heterogeneous fleet-variant sweep
(fp32 / int8 / pruned artifacts served by one :class:`FleetExecutor`).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.data import make_keyword_spectrograms
from repro.devices import CostModel, get_profile
from repro.exchange import (
    CompiledExecutor,
    FleetExecutor,
    GraphExecutor,
    PassPipeline,
    annotate_quantization,
    expand_fused_activations,
    from_sequential,
)
from repro.nn import make_tiny_cnn
from repro.optimize import VariantGenerator, magnitude_prune, pareto_front


@pytest.fixture(scope="module")
def variant_table(bench_model, bench_task):
    _, test = bench_task
    profiles = [get_profile("mcu-m4"), get_profile("sensor-dsp"), get_profile("phone-flagship")]
    variants = VariantGenerator().generate(
        bench_model, test.x, test.y, profiles,
        bit_widths=(8, 4, 2, 1), sparsities=(0.5, 0.75, 0.9), lowrank_compressions=(2.0,),
    )
    return variants


def test_e2_variant_sweep(benchmark, bench_model, bench_task):
    """Time the full variant generation + evaluation sweep (the optimization pipeline)."""
    _, test = bench_task
    profiles = [get_profile("mcu-m4"), get_profile("phone-flagship")]

    def run():
        return VariantGenerator().generate(bench_model, test.x, test.y, profiles, bit_widths=(8, 4, 2), sparsities=(0.5, 0.9))

    variants = benchmark(run)
    benchmark.extra_info["rows"] = [v.record() for v in variants]


def test_e2_expected_tradeoff_shape(variant_table, bench_model, bench_task):
    """Check the qualitative trade-off shape the paper's Section II describes."""
    _, test = bench_task
    by_name = {v.name: v for v in variant_table}
    base = by_name["bench-model"]
    int8 = by_name["bench-model-int8"]
    int1 = by_name["bench-model-int1"]
    sp90 = by_name["bench-model-sp90"]
    # 8-bit: near-lossless, 4x smaller.
    assert int8.accuracy >= base.accuracy - 0.02
    assert int8.size_bytes <= base.size_bytes / 3.5
    # 1-bit: far smaller but clearly degraded on this task.
    assert int1.size_bytes < int8.size_bytes
    assert int1.accuracy <= base.accuracy
    # Extreme pruning hurts more than moderate pruning.
    assert sp90.accuracy <= by_name["bench-model-sp50"].accuracy + 0.02
    # Pareto front keeps the baseline or something at least as accurate.
    front = pareto_front(variant_table)
    assert max(v.accuracy for v in front) >= base.accuracy - 1e-9


def test_e2_low_precision_speedup_requires_hw_support(variant_table):
    """4-bit is faster on the DSP (native 4/2/1-bit) but not on mcu-m4 (8-bit only)."""
    cm = CostModel()
    by_name = {v.name: v for v in variant_table}
    int4 = by_name["bench-model-int4"]
    dsp = get_profile("sensor-dsp")
    mcu = get_profile("mcu-m4")
    dsp_fp32 = cm.model_inference_cost(dsp, by_name["bench-model"].model, bits=32).latency_s
    dsp_int4 = cm.model_inference_cost(dsp, int4.model, bits=4).latency_s
    mcu_int8 = cm.model_inference_cost(mcu, by_name["bench-model-int8"].model, bits=8).latency_s
    mcu_int4 = cm.model_inference_cost(mcu, int4.model, bits=4).latency_s
    assert dsp_int4 < dsp_fp32  # native support -> speed-up
    assert mcu_int4 >= mcu_int8  # no native 4-bit kernels -> no speed-up


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _kws_graph(bits: int = 8, seed: int = 0):
    """A keyword-spotting CNN lowered the way the compiler ships it."""
    cnn = make_tiny_cnn((12, 12, 1), 4, filters=(4, 8), dense_width=16, seed=seed, name="kws-cnn")
    lowered = PassPipeline.standard_inference().run(from_sequential(cnn))
    return annotate_quantization(lowered, bits=bits) if bits < 32 else lowered


def test_e2_compiled_executor_speedup(benchmark, smoke_mode):
    """Compiled plan vs reference interpreter on per-query KWS serving (≥10x).

    The serving path receives one query per device per window (the paper's
    metering granularity); the reference interpreter pays its per-node
    attribute/dispatch overhead on every query while the compiled plan
    executes all windows as one stacked, chunk-tiled sweep.  Logits must be
    allclose-identical window by window.
    """
    n_windows = 400 if smoke_mode else 2000
    graph = _kws_graph(bits=8)
    ds = make_keyword_spectrograms(n_samples=n_windows, n_mels=12, n_frames=12, num_keywords=4, seed=0)
    windows = [ds.x[i : i + 1] for i in range(n_windows)]
    reference = GraphExecutor(expand_fused_activations(graph))
    compiled = CompiledExecutor(graph)

    def scenario():
        # Warm both paths at full size (quantized-weight cache, workspace
        # buffers), then take the best of three timed passes each so a
        # transient scheduler hiccup cannot fake a regression.
        ref_outs = [reference.run(w) for w in windows]
        comp_outs = compiled.run_many(windows)
        t_ref = min(_timed(lambda: [reference.run(w) for w in windows]) for _ in range(3))
        t_comp = min(_timed(lambda: compiled.run_many(windows)) for _ in range(3))
        identical = all(
            np.allclose(a, b, atol=1e-8, rtol=1e-8) for a, b in zip(ref_outs, comp_outs)
        )
        return {
            "n_windows": n_windows,
            "reference_s": t_ref,
            "compiled_s": t_comp,
            "speedup": t_ref / max(t_comp, 1e-12),
            "identical_logits": identical,
            "queries_per_s_compiled": n_windows / max(t_comp, 1e-12),
        }

    result = benchmark.pedantic(scenario, rounds=1, iterations=1)
    assert result["identical_logits"], "compiled logits diverged from the reference oracle"
    assert result["speedup"] >= 10.0, f"compiled engine only {result['speedup']:.1f}x faster"
    benchmark.extra_info.update(result)


def test_e2_fleet_variant_sweep_compiled(benchmark, smoke_mode):
    """Heterogeneous variants (fp32 / int8 / pruned) served in one fleet sweep.

    Every device runs the artifact its class would receive; the FleetExecutor
    groups devices by variant and batches each group, and every device's
    output must match its variant's reference execution exactly.
    """
    n_devices = 12 if smoke_mode else 48
    base = make_tiny_cnn((12, 12, 1), 4, filters=(4, 8), dense_width=16, seed=0, name="kws-base")
    lowered = PassPipeline.standard_inference().run(from_sequential(base))
    graphs = {
        "fp32": lowered,
        "int8": annotate_quantization(lowered, bits=8),
        "pruned": PassPipeline.standard_inference().run(from_sequential(magnitude_prune(base, 0.8))),
    }
    fleet = FleetExecutor.from_graphs(graphs)
    variants = list(graphs)
    device_ids = [f"dev-{i}" for i in range(n_devices)]
    assignments = {d: variants[i % len(variants)] for i, d in enumerate(device_ids)}
    ds = make_keyword_spectrograms(n_samples=4 * n_devices, n_mels=12, n_frames=12, num_keywords=4, seed=1)
    rng = np.random.default_rng(2)
    inputs = {d: ds.x[rng.integers(0, len(ds.x), size=1 + i % 4)] for i, d in enumerate(device_ids)}

    def scenario():
        t0 = time.perf_counter()
        outputs = fleet.run_fleet(assignments, inputs)
        t_sweep = time.perf_counter() - t0
        refs = {name: GraphExecutor(expand_fused_activations(g)) for name, g in graphs.items()}
        matches = all(
            np.allclose(outputs[d], refs[assignments[d]].run(inputs[d]), atol=1e-8, rtol=1e-8)
            for d in device_ids
        )
        return {
            "devices": n_devices,
            "variants": len(graphs),
            "queries": int(sum(w.shape[0] for w in inputs.values())),
            "sweep_s": t_sweep,
            "outputs_match_reference": matches,
        }

    result = benchmark.pedantic(scenario, rounds=1, iterations=1)
    assert result["outputs_match_reference"]
    assert set(fleet.run_fleet(assignments, inputs)) == set(device_ids)
    benchmark.extra_info.update(result)
