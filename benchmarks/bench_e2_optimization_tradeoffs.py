"""E2 (Section II / III-A): quantization & pruning accuracy/size/latency trade-offs.

Expected shape (matches the TinyML literature the paper cites): 8-bit is
essentially lossless while shrinking the model 4x; very low bit widths and
very high sparsities degrade accuracy; low precision only speeds devices up
when they have native kernels for it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.devices import CostModel, get_profile
from repro.optimize import VariantGenerator, pareto_front


@pytest.fixture(scope="module")
def variant_table(bench_model, bench_task):
    _, test = bench_task
    profiles = [get_profile("mcu-m4"), get_profile("sensor-dsp"), get_profile("phone-flagship")]
    variants = VariantGenerator().generate(
        bench_model, test.x, test.y, profiles,
        bit_widths=(8, 4, 2, 1), sparsities=(0.5, 0.75, 0.9), lowrank_compressions=(2.0,),
    )
    return variants


def test_e2_variant_sweep(benchmark, bench_model, bench_task):
    """Time the full variant generation + evaluation sweep (the optimization pipeline)."""
    _, test = bench_task
    profiles = [get_profile("mcu-m4"), get_profile("phone-flagship")]

    def run():
        return VariantGenerator().generate(bench_model, test.x, test.y, profiles, bit_widths=(8, 4, 2), sparsities=(0.5, 0.9))

    variants = benchmark(run)
    benchmark.extra_info["rows"] = [v.record() for v in variants]


def test_e2_expected_tradeoff_shape(variant_table, bench_model, bench_task):
    """Check the qualitative trade-off shape the paper's Section II describes."""
    _, test = bench_task
    by_name = {v.name: v for v in variant_table}
    base = by_name["bench-model"]
    int8 = by_name["bench-model-int8"]
    int1 = by_name["bench-model-int1"]
    sp90 = by_name["bench-model-sp90"]
    # 8-bit: near-lossless, 4x smaller.
    assert int8.accuracy >= base.accuracy - 0.02
    assert int8.size_bytes <= base.size_bytes / 3.5
    # 1-bit: far smaller but clearly degraded on this task.
    assert int1.size_bytes < int8.size_bytes
    assert int1.accuracy <= base.accuracy
    # Extreme pruning hurts more than moderate pruning.
    assert sp90.accuracy <= by_name["bench-model-sp50"].accuracy + 0.02
    # Pareto front keeps the baseline or something at least as accurate.
    front = pareto_front(variant_table)
    assert max(v.accuracy for v in front) >= base.accuracy - 1e-9


def test_e2_low_precision_speedup_requires_hw_support(variant_table):
    """4-bit is faster on the DSP (native 4/2/1-bit) but not on mcu-m4 (8-bit only)."""
    cm = CostModel()
    by_name = {v.name: v for v in variant_table}
    int4 = by_name["bench-model-int4"]
    dsp = get_profile("sensor-dsp")
    mcu = get_profile("mcu-m4")
    dsp_fp32 = cm.model_inference_cost(dsp, by_name["bench-model"].model, bits=32).latency_s
    dsp_int4 = cm.model_inference_cost(dsp, int4.model, bits=4).latency_s
    mcu_int8 = cm.model_inference_cost(mcu, by_name["bench-model-int8"].model, bits=8).latency_s
    mcu_int4 = cm.model_inference_cost(mcu, int4.model, bits=4).latency_s
    assert dsp_int4 < dsp_fp32  # native support -> speed-up
    assert mcu_int4 >= mcu_int8  # no native 4-bit kernels -> no speed-up
