"""E4 (Section III-B): on-device drift detection and telemetry overhead.

Expected shape: drift detectors fire within a few windows of a covariate
shift with a low false-positive rate before it, and the telemetry payload a
device uploads is constant-size (sketches), orders of magnitude smaller than
shipping the raw window data to the cloud.

Perf guardrail: ``test_e4_batched_monitoring_speedup`` pits the one-sweep
fleet monitoring plane (vectorized column detectors + FleetMonitor) against
the seed-era per-device / per-column path on a 100-device fleet and must
stay >= 10x with identical drift decisions and byte-equal telemetry.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.data import DriftingStream, DriftSpec, make_gaussian_blobs
from repro.observability import (
    EdgeMonitor,
    FleetMonitor,
    KSDetector,
    MMDDetector,
    PSIDetector,
    TelemetryRecorder,
)


@pytest.fixture(scope="module")
def drift_setup():
    ds = make_gaussian_blobs(4000, 10, 4, seed=0)
    reference = ds.x[:800]
    stream = DriftingStream(ds, batch_size=128, specs=[DriftSpec(start=15, kind="covariate", magnitude=2.0)], seed=1)
    windows = [x for x, _, _ in stream.batches(30)]
    return reference, windows


@pytest.mark.parametrize("detector_cls", [KSDetector, PSIDetector, MMDDetector])
def test_e4_detection_delay_and_fpr(benchmark, drift_setup, detector_cls):
    reference, windows = drift_setup

    def run():
        detector = detector_cls(reference)
        for window in windows:
            detector.check(window)
        return detector

    detector = benchmark(run)
    delay = detector.detection_delay(15)
    fpr = detector.false_positive_rate(15)
    benchmark.extra_info.update({"detector": detector_cls.name, "detection_delay_windows": delay, "false_positive_rate": fpr})
    assert delay is not None and delay <= 5
    assert fpr <= 0.2


def test_e4_telemetry_payload_is_constant_and_small(benchmark):
    """Telemetry sketch payload stays fixed regardless of query volume."""
    def run():
        recorder = TelemetryRecorder("dev-1", model_version="v1", num_classes=10)
        rng = np.random.default_rng(0)
        for _ in range(50):
            n = 200
            recorder.record_batch(rng.uniform(0.001, 0.02, n), rng.uniform(0, 1e-3, n), np.full(n, 2e4), rng.integers(0, 10, n))
        return recorder

    recorder = benchmark(run)
    payload = recorder.estimated_payload_bytes()
    raw_bytes = recorder.n_queries * 10 * 8  # shipping ten float64 features per query instead
    benchmark.extra_info.update({
        "n_queries": recorder.n_queries,
        "payload_bytes": payload,
        "raw_upload_bytes": raw_bytes,
        "reduction_factor": raw_bytes / payload,
    })
    assert recorder.n_queries == 10000
    assert payload < 1024
    assert raw_bytes / payload > 100


def test_e4_edge_monitor_throughput(benchmark, drift_setup):
    """Per-window monitoring cost of the combined EdgeMonitor (drift + telemetry)."""
    reference, windows = drift_setup
    monitor = EdgeMonitor("dev-1", reference, reference_predictions=np.zeros(len(reference), dtype=int), num_classes=4, detectors=("ks",))

    def observe():
        for window in windows[:10]:
            monitor.observe_window(window, predictions=np.zeros(len(window), dtype=int), latencies=np.full(len(window), 0.01))

    benchmark(observe)
    benchmark.extra_info["windows_per_call"] = 10


def _monitor_fleet(reference, ref_preds, n_devices, engine):
    return {
        f"dev-{i}": EdgeMonitor(
            f"dev-{i}",
            reference,
            reference_predictions=ref_preds,
            num_classes=4,
            detectors=("ks", "psi"),
            engine=engine,
        )
        for i in range(n_devices)
    }


def _fleet_traffic(n_devices, n_windows, window, n_features, seed=0):
    """Per-window fleet traffic with a covariate shift on half the devices."""
    rng = np.random.default_rng(seed)
    traffic = []
    for w in range(n_windows):
        windows, preds, lats = {}, {}, {}
        for i in range(n_devices):
            shift = 2.0 if (w >= n_windows // 2 and i % 2 == 0) else 0.0
            windows[f"dev-{i}"] = rng.normal(loc=shift, size=(window, n_features))
            preds[f"dev-{i}"] = rng.integers(0, 4, window)
            lats[f"dev-{i}"] = rng.uniform(0.001, 0.01, window)
        traffic.append((windows, preds, lats))
    return traffic


def test_e4_batched_monitoring_speedup(benchmark, smoke_mode):
    """One-sweep fleet monitoring vs per-device/per-column (>=10x guardrail).

    Two identical 100-device fleets observe the same traffic: one through
    FleetMonitor's stacked vectorized sweep, one through the seed-era loop —
    per device, per window, one scipy ks_2samp + two np.histogram calls per
    feature column.  Drift decisions and statistics must agree (allclose;
    they are bit-identical in practice) and telemetry payloads must be
    byte-equal, while the sweep is at least an order of magnitude faster.
    """
    n_devices = 100
    n_windows = 2 if smoke_mode else 4
    window = 32 if smoke_mode else 64
    n_features = 10
    rng = np.random.default_rng(3)
    reference = rng.normal(size=(256 if smoke_mode else 512, n_features))
    ref_preds = rng.integers(0, 4, len(reference))
    traffic = _fleet_traffic(n_devices, n_windows, window, n_features)

    def scenario():
        # Warm both paths so one-time costs (reference sorting, imports)
        # don't skew the ratio.
        warm_traffic = _fleet_traffic(4, 1, 8, n_features, seed=9)
        for eng in ("batched", "oracle"):
            warm = _monitor_fleet(reference, ref_preds, 4, eng)
            if eng == "batched":
                FleetMonitor(warm).observe_fleet(*warm_traffic[0][:1], predictions=warm_traffic[0][1])
            else:
                for d, x in warm_traffic[0][0].items():
                    warm[d].observe_window(x, predictions=warm_traffic[0][1][d])

        fleet_side = _monitor_fleet(reference, ref_preds, n_devices, engine="batched")
        legacy_side = _monitor_fleet(reference, ref_preds, n_devices, engine="oracle")
        fm = FleetMonitor(fleet_side)
        t0 = time.perf_counter()
        for windows, preds, lats in traffic:
            fm.observe_fleet(windows, predictions=preds, latencies=lats)
        t_batched = time.perf_counter() - t0
        t0 = time.perf_counter()
        for windows, preds, lats in traffic:
            for device_id, x in windows.items():
                legacy_side[device_id].observe_window(
                    x, predictions=preds[device_id], latencies=lats[device_id]
                )
        t_legacy = time.perf_counter() - t0

        identical_decisions = True
        stats_close = True
        telemetry_equal = True
        n_drifted = 0
        for device_id in fleet_side:
            a, b = fleet_side[device_id], legacy_side[device_id]
            identical_decisions &= a.drift_events == b.drift_events
            n_drifted += bool(a.any_drift())
            for name in a.detectors:
                ha = a.detectors[name].history
                hb = b.detectors[name].history
                identical_decisions &= [r.drifted for r in ha] == [r.drifted for r in hb]
                stats_close &= bool(
                    np.allclose([r.statistic for r in ha], [r.statistic for r in hb], atol=1e-12)
                )
            telemetry_equal &= a.build_report().as_dict() == b.build_report().as_dict()
        return {
            "n_devices": n_devices,
            "n_windows": n_windows,
            "window": window,
            "batched_s": t_batched,
            "legacy_s": t_legacy,
            "speedup": t_legacy / max(t_batched, 1e-12),
            "devices_with_drift": n_drifted,
            "identical_decisions": identical_decisions,
            "stats_close": stats_close,
            "telemetry_equal": telemetry_equal,
        }

    result = benchmark.pedantic(scenario, rounds=1, iterations=1)
    benchmark.extra_info.update(result)
    assert result["identical_decisions"], "fleet sweep changed a drift decision"
    assert result["stats_close"], "fleet sweep statistics diverged from the oracle"
    assert result["telemetry_equal"], "fleet sweep telemetry payload differs"
    assert result["devices_with_drift"] >= n_devices // 2  # the injected shift is seen
    assert result["speedup"] >= 10.0, f"fleet sweep only {result['speedup']:.1f}x faster"
