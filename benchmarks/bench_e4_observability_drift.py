"""E4 (Section III-B): on-device drift detection and telemetry overhead.

Expected shape: drift detectors fire within a few windows of a covariate
shift with a low false-positive rate before it, and the telemetry payload a
device uploads is constant-size (sketches), orders of magnitude smaller than
shipping the raw window data to the cloud.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import DriftingStream, DriftSpec, make_gaussian_blobs
from repro.observability import EdgeMonitor, KSDetector, MMDDetector, PSIDetector, TelemetryRecorder


@pytest.fixture(scope="module")
def drift_setup():
    ds = make_gaussian_blobs(4000, 10, 4, seed=0)
    reference = ds.x[:800]
    stream = DriftingStream(ds, batch_size=128, specs=[DriftSpec(start=15, kind="covariate", magnitude=2.0)], seed=1)
    windows = [x for x, _, _ in stream.batches(30)]
    return reference, windows


@pytest.mark.parametrize("detector_cls", [KSDetector, PSIDetector, MMDDetector])
def test_e4_detection_delay_and_fpr(benchmark, drift_setup, detector_cls):
    reference, windows = drift_setup

    def run():
        detector = detector_cls(reference)
        for window in windows:
            detector.check(window)
        return detector

    detector = benchmark(run)
    delay = detector.detection_delay(15)
    fpr = detector.false_positive_rate(15)
    benchmark.extra_info.update({"detector": detector_cls.name, "detection_delay_windows": delay, "false_positive_rate": fpr})
    assert delay is not None and delay <= 5
    assert fpr <= 0.2


def test_e4_telemetry_payload_is_constant_and_small(benchmark):
    """Telemetry sketch payload stays fixed regardless of query volume."""
    def run():
        recorder = TelemetryRecorder("dev-1", model_version="v1", num_classes=10)
        rng = np.random.default_rng(0)
        for _ in range(50):
            n = 200
            recorder.record_batch(rng.uniform(0.001, 0.02, n), rng.uniform(0, 1e-3, n), np.full(n, 2e4), rng.integers(0, 10, n))
        return recorder

    recorder = benchmark(run)
    payload = recorder.estimated_payload_bytes()
    raw_bytes = recorder.n_queries * 10 * 8  # shipping ten float64 features per query instead
    benchmark.extra_info.update({
        "n_queries": recorder.n_queries,
        "payload_bytes": payload,
        "raw_upload_bytes": raw_bytes,
        "reduction_factor": raw_bytes / payload,
    })
    assert recorder.n_queries == 10000
    assert payload < 1024
    assert raw_bytes / payload > 100


def test_e4_edge_monitor_throughput(benchmark, drift_setup):
    """Per-window monitoring cost of the combined EdgeMonitor (drift + telemetry)."""
    reference, windows = drift_setup
    monitor = EdgeMonitor("dev-1", reference, reference_predictions=np.zeros(len(reference), dtype=int), num_classes=4, detectors=("ks",))

    def observe():
        for window in windows[:10]:
            monitor.observe_window(window, predictions=np.zeros(len(window), dtype=int), latencies=np.full(len(window), 0.01))

    benchmark(observe)
    benchmark.extra_info["windows_per_call"] = 10
