"""E1 (Figure 1): full platform cycle — release, deploy, serve, sync, federate.

Reproduces Figure 1 *structurally*: every functionality block of the paper's
TinyMLOps overview is exercised in one end-to-end run on a 40-device fleet,
and the benchmark reports how long a complete platform cycle takes.

Also measures the fleet-scale serving path: the batched
:class:`~repro.core.serving.ServingEngine` against the paper's per-query
loop on a 10k-query window (target ≥10x), and scenario-diverse fleet
traffic (steady / bursty / diurnal / overload).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.billing import BillingBackend, PricingPlan, UsageLedger
from repro.core import PlatformConfig, TinyMLOpsPlatform, make_scenario
from repro.core.serving import ServingEngine
from repro.data import make_gaussian_blobs, partition_dirichlet
from repro.devices import Battery, EdgeDevice, ExecutionCost, Fleet, get_profile
from repro.nn import make_mlp


def _full_cycle(seed: int = 0) -> dict:
    ds = make_gaussian_blobs(1200, 12, 4, seed=seed)
    train, test = ds.split(0.3, seed=seed)
    fleet = Fleet.random(40, seed=seed)
    platform = TinyMLOpsPlatform(fleet, PlatformConfig(bit_widths=(8, 4), sparsities=(0.5,), seed=seed))
    model = make_mlp(12, 4, hidden=(32, 16), seed=seed, name="e1-model")
    model.fit(train.x, train.y, epochs=5, lr=0.01, seed=seed)
    release = platform.release(model, test.x, test.y, watermark_owner="bench")
    deploy = platform.deploy(
        "e1-model",
        reference_x=train.x[:200],
        reference_predictions=model.predict_classes(train.x[:200]),
        num_classes=4,
        prepaid_queries=200,
    )
    rng = np.random.default_rng(seed)
    for device in fleet:
        idx = rng.integers(0, len(test.x), size=20)
        platform.serve(device.device_id, "e1-model", test.x[idx])
    synced = sum(1 for d in fleet if platform.sync_device(d.device_id).get("synced"))
    parts = partition_dirichlet(train, 8, alpha=1.0, seed=seed)
    ids = list(fleet.devices)
    for i, p in enumerate(parts):
        p.client_id = ids[i]
    fed = platform.federated_update("e1-model", parts, rounds=2, eval_data=(test.x, test.y))
    verify = platform.verify_inference("e1-model", test.x[:16])
    return {
        "variants": len(release["variants"]),
        "deployed": deploy["deployed"],
        "deploy_failures": deploy["failed"],
        "synced_devices": synced,
        "federated_final_acc": fed["rounds"][-1]["global_accuracy"] if fed["rounds"] else 0.0,
        "verification_valid": verify["valid"],
        "registry_versions": platform.registry.stats()["n_versions"],
        "billing_revenue": platform.billing.usage_report()["prepaid_revenue"],
    }


def test_e1_full_platform_cycle(benchmark):
    """One full Figure-1 cycle on a 40-device fleet."""
    result = benchmark.pedantic(_full_cycle, rounds=1, iterations=1)
    assert result["deployed"] == 40 and result["deploy_failures"] == 0
    assert result["verification_valid"]
    assert result["registry_versions"] >= 5
    benchmark.extra_info.update(result)


def _serving_setup(n_queries: int, quota: int, seed: int = 0):
    """One mains-powered device with a deployed model, ledger and quota."""
    device = EdgeDevice("dev-0", get_profile("phone-mid"), battery=Battery(plugged_in=True), seed=seed)
    fleet = Fleet([device])
    backend = BillingBackend()
    backend.register_plan(PricingPlan("serve-model", price_per_query=0.0015))
    key = backend.enroll_device("dev-0")
    ledger = UsageLedger("dev-0", key)
    ledger.add_grant(backend.sell_package("dev-0", "serve-model", quota), backend_key=backend.signing_key())
    model = make_mlp(12, 4, hidden=(32, 16), seed=seed, name="serve-model")
    engine = ServingEngine(fleet, models={"serve-model": model}, ledgers={"dev-0": ledger})
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n_queries, 12))
    return engine, ledger, backend, x


def test_e1_batched_serving_speedup(benchmark, smoke_mode):
    """Batched vs. per-query serving on a 10k-query window (≥10x target).

    Two identical single-device worlds serve the same window, one through
    ``ServingEngine.serve_batch`` and one through the legacy per-query loop;
    results, ledger state and billed revenue must agree exactly while the
    batched path is at least an order of magnitude faster.
    """
    n_queries = 2_000 if smoke_mode else 10_000
    quota = int(n_queries * 0.8)  # exercise the quota-denial path too

    def scenario():
        eng_b, led_b, back_b, x = _serving_setup(n_queries, quota)
        eng_l, led_l, back_l, _ = _serving_setup(n_queries, quota)
        t0 = time.perf_counter()
        batched = eng_b.serve_batch("dev-0", "serve-model", x)
        t_batched = time.perf_counter() - t0
        t0 = time.perf_counter()
        legacy = eng_l.serve_batch_legacy("dev-0", "serve-model", x)
        t_legacy = time.perf_counter() - t0
        bill_b = back_b.reconcile(led_b.export())
        bill_l = back_l.reconcile(led_l.export())
        return {
            "n_queries": n_queries,
            "batched_s": t_batched,
            "legacy_s": t_legacy,
            "speedup": t_legacy / max(t_batched, 1e-12),
            "identical_results": batched.as_dict() == legacy.as_dict(),
            "identical_usage": led_b.used("serve-model") == led_l.used("serve-model"),
            "identical_billing": (bill_b.accepted, bill_b.billed_amount) == (bill_l.accepted, bill_l.billed_amount),
            "served": batched.served,
            "denied_quota": batched.denied_quota,
            "queries_per_s_batched": n_queries / max(t_batched, 1e-12),
        }

    result = benchmark.pedantic(scenario, rounds=1, iterations=1)
    assert result["identical_results"] and result["identical_usage"] and result["identical_billing"]
    assert result["served"] == quota and result["denied_quota"] == n_queries - quota
    assert result["speedup"] >= 10.0, f"batched serving only {result['speedup']:.1f}x faster"
    benchmark.extra_info.update(result)


def test_e1_fleet_state_admission_speedup(benchmark, smoke_mode):
    """Columnar fleet-context + admission sweep vs the object loop (≥10x).

    Two identical fleets run one scheduling-plus-admission cycle: federated
    eligibility, the full scheduling context, a battery-admission draw for a
    traffic window and a simulated-time advance.  One fleet goes through the
    :class:`~repro.devices.FleetState` vectorized queries
    (``training_eligible_mask`` / ``context_table`` / ``draw_batch_all`` /
    ``advance_all``), the other through the per-device object API the store
    redesign preserved as the oracle.  Eligibility sets, every context row,
    admitted counts, battery planes and query counters must match exactly
    while the columnar sweep is at least an order of magnitude faster.
    """
    n_devices = 2_000 if smoke_mode else 10_000
    seed = 7

    def scenario():
        fleet_v = Fleet.random(n_devices, seed=seed)
        fleet_o = Fleet.random(n_devices, seed=seed)
        rng = np.random.default_rng(seed)
        energies = rng.uniform(0.01, 0.2, n_devices)
        counts = rng.integers(0, 50, n_devices).astype(np.int64)
        # The object API held device objects permanently; materialize the
        # views up front so the timed loop measures the per-device work, not
        # one-time view construction.
        ids = fleet_o.state.device_ids
        devices = [fleet_o.get(device_id) for device_id in ids]
        costs = [
            ExecutionCost(latency_s=0.01, energy_j=float(e), peak_memory_bytes=0.0, flops=0.0, bytes_moved=0.0)
            for e in energies
        ]
        # Materialized context rows, snapshotted before the draws mutate state.
        contexts_v = fleet_v.state.context_rows()

        t0 = time.perf_counter()
        mask = fleet_v.training_eligible_mask()
        table = fleet_v.context_table()
        served_v = fleet_v.draw_batch_all(energies, counts)
        fleet_v.state.query_count += served_v
        fleet_v.advance_all(60.0)
        t_vec = time.perf_counter() - t0

        t0 = time.perf_counter()
        eligible_o = [d.is_eligible_for_training() for d in devices]
        contexts_o = [d.context() for d in devices]
        served_o = [d.execute_batch(costs[i], int(counts[i]), record=False) for i, d in enumerate(devices)]
        for d in devices:
            d.battery.advance(60.0)
        t_obj = time.perf_counter() - t0

        return {
            "n_devices": n_devices,
            "columnar_s": t_vec,
            "object_loop_s": t_obj,
            "speedup": t_obj / max(t_vec, 1e-12),
            "identical_eligibility": mask.tolist() == eligible_o
            and [i for i, m in enumerate(mask) if m] == [i for i, e in enumerate(eligible_o) if e],
            "identical_contexts": contexts_v == contexts_o
            and all(
                table[key][i] == ctx[key]
                for i, ctx in enumerate(contexts_o)
                for key in ctx
            ),
            "identical_admission": served_v.tolist() == served_o,
            "identical_batteries": fleet_v.state.level_j.tolist() == fleet_o.state.level_j.tolist(),
            "identical_query_counts": fleet_v.state.query_count.tolist() == fleet_o.state.query_count.tolist(),
            "eligible_devices": int(mask.sum()),
            "admitted_queries": int(served_v.sum()),
        }

    result = benchmark.pedantic(scenario, rounds=1, iterations=1)
    assert result["identical_eligibility"], "columnar eligibility diverged from the object loop"
    assert result["identical_contexts"], "columnar context diverged from EdgeDevice.context()"
    assert result["identical_admission"], "columnar admission diverged from execute_batch"
    assert result["identical_batteries"] and result["identical_query_counts"]
    assert result["speedup"] >= 10.0, f"columnar fleet sweep only {result['speedup']:.1f}x faster"
    benchmark.extra_info.update(result)


def test_e1_fleet_scenario_traffic(benchmark, smoke_mode):
    """Scenario-diverse fleet serving: steady, bursty, diurnal, overload."""
    seed = 0
    n_windows = 2 if smoke_mode else 6
    ds = make_gaussian_blobs(600, 12, 4, seed=seed)
    train, test = ds.split(0.3, seed=seed)
    fleet = Fleet.random(20, seed=seed)
    platform = TinyMLOpsPlatform(fleet, PlatformConfig(bit_widths=(8,), sparsities=(0.5,), seed=seed))
    model = make_mlp(12, 4, hidden=(32, 16), seed=seed, name="e1-traffic")
    model.fit(train.x, train.y, epochs=3, lr=0.01, seed=seed)
    platform.release(model, test.x, test.y)
    platform.deploy("e1-traffic", prepaid_queries=5_000)
    device_ids = list(fleet.devices)

    def scenario():
        reports = {}
        for name in ("steady", "bursty", "diurnal", "overload"):
            windows = make_scenario(name, device_ids, n_windows, test.x, seed=seed)
            report = platform.serve_fleet("e1-traffic", windows)
            reports[name] = report.as_dict()
        return reports

    reports = benchmark.pedantic(scenario, rounds=1, iterations=1)
    for name, report in reports.items():
        assert report["requested"] > 0, name
        assert report["served"] + report["denied_quota"] + report["battery_failures"] == report["requested"]
    benchmark.extra_info.update(
        {name: {k: report[k] for k in ("requested", "served", "denied_quota", "battery_failures")} for name, report in reports.items()}
    )


def _sharded_serving_world(n_devices: int, seed: int = 0):
    """A fleet-scale serving world: ledgers everywhere, sparse monitors,
    compiled plan, and one window of queries for every device."""
    from repro.observability import EdgeMonitor

    fleet = Fleet.random(n_devices, seed=seed)
    model = make_mlp(12, 4, hidden=(32, 16), seed=seed, name="e1-sharded")
    backend = BillingBackend()
    backend.register_plan(PricingPlan("e1-sharded", price_per_query=0.0015))
    rng = np.random.default_rng(seed + 1)
    reference = rng.normal(size=(60, 12))
    ledgers, monitors = {}, {}
    for i, device in enumerate(fleet):
        ledger = UsageLedger(device.device_id, backend.enroll_device(device.device_id))
        ledger.add_grant(
            backend.sell_package(device.device_id, "e1-sharded", 16),
            backend_key=backend.signing_key(),
        )
        ledgers[device.device_id] = ledger
        if i % 25 == 0:
            monitors[device.device_id] = EdgeMonitor(device.device_id, reference_inputs=reference)
    engine = ServingEngine(fleet, models={"e1-sharded": model}, ledgers=ledgers, monitors=monitors)
    engine.compile_model("e1-sharded")
    window = {device_id: rng.normal(size=(4, 12)) for device_id in fleet.devices}
    return engine, window


def test_e1_sharded_serving_scaling(benchmark, smoke_mode):
    """Sharded multi-process serving vs the in-process batched sweep.

    The 10k-device window (400 in smoke mode) is served once by the batched
    engine and once by the sharded backend on 4 workers; the merged result
    must be byte-identical (reports, ledger MAC heads, battery/counter
    planes) in every environment.  The near-linear scaling guardrail
    (≥2.5x on 4 workers, linear target 4x) is asserted only on machines
    that actually have ≥4 cores and outside smoke mode — but the measured
    numbers are always exported so CI trends them.
    """
    import os

    from repro.runtime.sharded import ShardedFleetRunner

    n_devices = 400 if smoke_mode else 10_000
    n_workers = 4

    def scenario():
        eng_b, window = _sharded_serving_world(n_devices)
        t0 = time.perf_counter()
        report_b = eng_b.serve_fleet("e1-sharded", window)
        t_batched = time.perf_counter() - t0

        eng_s, window_s = _sharded_serving_world(n_devices)
        eng_s.shard_runner = ShardedFleetRunner(workers=n_workers, backend="pickle")
        t0 = time.perf_counter()
        report_s = eng_s.serve_fleet("e1-sharded", window_s, engine="sharded")
        t_sharded = time.perf_counter() - t0

        macs_b = {d: ledger.head_mac() for d, ledger in eng_b.ledgers.items()}
        macs_s = {d: ledger.head_mac() for d, ledger in eng_s.ledgers.items()}
        return {
            "n_devices": n_devices,
            "workers": n_workers,
            "host_cores": os.cpu_count() or 1,
            "batched_s": t_batched,
            "sharded_s": t_sharded,
            "sharded_speedup_4w": t_batched / max(t_sharded, 1e-12),
            "identical_reports": report_s.as_dict() == report_b.as_dict(),
            "identical_ledger_macs": macs_s == macs_b,
            "identical_planes": (
                eng_s.fleet.state.level_j.tobytes() == eng_b.fleet.state.level_j.tobytes()
                and eng_s.fleet.state.query_count.tobytes() == eng_b.fleet.state.query_count.tobytes()
            ),
            "shard_recoveries": report_s.shard_recoveries,
            "served": report_s.served,
        }

    result = benchmark.pedantic(scenario, rounds=1, iterations=1)
    assert result["identical_reports"], "sharded report diverged from batched"
    assert result["identical_ledger_macs"], "sharded ledger MAC chains diverged"
    assert result["identical_planes"], "sharded battery/counter planes diverged"
    assert result["shard_recoveries"] == 0
    if not smoke_mode and result["host_cores"] >= n_workers:
        assert result["sharded_speedup_4w"] >= 2.5, (
            f"sharded serving only {result['sharded_speedup_4w']:.2f}x on {n_workers} workers"
        )
    benchmark.extra_info.update(result)
