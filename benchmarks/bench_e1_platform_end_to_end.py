"""E1 (Figure 1): full platform cycle — release, deploy, serve, sync, federate.

Reproduces Figure 1 *structurally*: every functionality block of the paper's
TinyMLOps overview is exercised in one end-to-end run on a 40-device fleet,
and the benchmark reports how long a complete platform cycle takes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PlatformConfig, TinyMLOpsPlatform
from repro.data import make_gaussian_blobs, partition_dirichlet
from repro.devices import Fleet
from repro.nn import make_mlp


def _full_cycle(seed: int = 0) -> dict:
    ds = make_gaussian_blobs(1200, 12, 4, seed=seed)
    train, test = ds.split(0.3, seed=seed)
    fleet = Fleet.random(40, seed=seed)
    platform = TinyMLOpsPlatform(fleet, PlatformConfig(bit_widths=(8, 4), sparsities=(0.5,), seed=seed))
    model = make_mlp(12, 4, hidden=(32, 16), seed=seed, name="e1-model")
    model.fit(train.x, train.y, epochs=5, lr=0.01, seed=seed)
    release = platform.release(model, test.x, test.y, watermark_owner="bench")
    deploy = platform.deploy(
        "e1-model",
        reference_x=train.x[:200],
        reference_predictions=model.predict_classes(train.x[:200]),
        num_classes=4,
        prepaid_queries=200,
    )
    rng = np.random.default_rng(seed)
    for device in fleet:
        idx = rng.integers(0, len(test.x), size=20)
        platform.serve(device.device_id, "e1-model", test.x[idx])
    synced = sum(1 for d in fleet if platform.sync_device(d.device_id).get("synced"))
    parts = partition_dirichlet(train, 8, alpha=1.0, seed=seed)
    ids = list(fleet.devices)
    for i, p in enumerate(parts):
        p.client_id = ids[i]
    fed = platform.federated_update("e1-model", parts, rounds=2, eval_data=(test.x, test.y))
    verify = platform.verify_inference("e1-model", test.x[:16])
    return {
        "variants": len(release["variants"]),
        "deployed": deploy["deployed"],
        "deploy_failures": deploy["failed"],
        "synced_devices": synced,
        "federated_final_acc": fed["rounds"][-1]["global_accuracy"] if fed["rounds"] else 0.0,
        "verification_valid": verify["valid"],
        "registry_versions": platform.registry.stats()["n_versions"],
        "billing_revenue": platform.billing.usage_report()["prepaid_revenue"],
    }


def test_e1_full_platform_cycle(benchmark):
    """One full Figure-1 cycle on a 40-device fleet."""
    result = benchmark.pedantic(_full_cycle, rounds=1, iterations=1)
    assert result["deployed"] == 40 and result["deploy_failures"] == 0
    assert result["verification_valid"]
    assert result["registry_versions"] >= 5
    benchmark.extra_info.update(result)
