"""E3 (Section III-A): the model-version explosion and registry scaling.

Expected shape: a centralized deployment manages one model; an edge
deployment managing F fidelity levels x B bit-widths across a fleet multiplies
the artifact count, and retraining the base retriggers every derived variant.
"""

from __future__ import annotations

import pytest

from repro.nn import make_multi_fidelity_family
from repro.registry import ModelRegistry, OptimizationPipeline, TriggerManager


def _populate(n_fidelities: int, bit_widths, sparsities, n_devices: int) -> dict:
    registry = ModelRegistry()
    manager = TriggerManager(registry)
    family = make_multi_fidelity_family(16, 4, widths=((16,), (32, 16), (64, 32), (128, 64))[:n_fidelities], seed=0)
    derived_total = 0
    for name, model in family.items():
        manager.subscribe(name, OptimizationPipeline.standard(bit_widths=bit_widths, sparsities=sparsities))
        base, derived = manager.register_and_trigger(model)
        derived_total += len(derived)
        for d in range(n_devices):
            registry.record_deployment(f"dev-{d:05d}", base.version_id)
    stats = registry.stats()
    stats["derived_total"] = derived_total
    return stats


def test_e3_registry_population_scaling(benchmark):
    """Populate the registry for 4 fidelities x (8,4,2)-bit x 2 sparsities, 200 devices."""
    stats = benchmark.pedantic(
        _populate, kwargs=dict(n_fidelities=4, bit_widths=(8, 4, 2), sparsities=(0.5, 0.9), n_devices=200),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update({k: v for k, v in stats.items() if k != "by_kind"})
    # Cloud deployment would manage 1 artifact; here we manage dozens.
    assert stats["n_versions"] >= 4 * (1 + 5)
    assert stats["n_deployed_devices"] == 200


@pytest.mark.parametrize("n_devices", [10, 100, 1000])
def test_e3_artifact_count_grows_multiplicatively(n_devices):
    stats = _populate(n_fidelities=3, bit_widths=(8, 4), sparsities=(0.5,), n_devices=n_devices)
    assert stats["n_versions"] == 3 * (1 + 3)  # independent of fleet size ...
    assert stats["n_deployed_devices"] == n_devices  # ... but deployments track every device


def test_e3_retraining_retriggers_pipelines(benchmark):
    """Re-registering the base fires the optimization pipeline and clears staleness."""
    registry = ModelRegistry()
    manager = TriggerManager(registry)
    from repro.nn import make_mlp

    model = make_mlp(16, 4, hidden=(32,), seed=0, name="retrain-me")
    manager.subscribe("retrain-me", OptimizationPipeline.standard(bit_widths=(8, 4), sparsities=(0.5,)))
    manager.register_and_trigger(model)

    def retrain_cycle():
        retrained = model.clone(copy_weights=True)
        retrained.layers[0].params["W"] += 0.001
        base = registry.register_model(retrained)
        stale_before = len(registry.stale_variants("retrain-me"))
        derived = manager.on_base_registered(base)
        stale_after = len(registry.stale_variants("retrain-me"))
        return len(derived), stale_before, stale_after

    derived_count, stale_before, stale_after = benchmark(retrain_cycle)
    assert derived_count == 3
    # The new base alone marks the previous base's variants stale; re-running
    # the pipeline from it re-derives matching (kind, recipe) variants and
    # clears every one of them.
    assert stale_before >= 3
    assert stale_after == 0
    benchmark.extra_info.update({"derived_per_retrain": derived_count})


def _lifecycle_world(n_devices: int, seed: int = 21):
    """A released + deployed fleet world for the closed-loop guardrail."""
    from repro.core import PlatformConfig, TinyMLOpsPlatform
    from repro.data import make_gaussian_blobs, partition_dirichlet
    from repro.devices import Fleet
    from repro.nn import make_mlp

    ds = make_gaussian_blobs(900, 12, 4, seed=seed)
    train, test = ds.split(0.3, seed=seed)
    fleet = Fleet.random(n_devices, seed=seed)
    platform = TinyMLOpsPlatform(fleet, PlatformConfig(bit_widths=(8,), sparsities=(0.5,), seed=seed))
    model = make_mlp(12, 4, hidden=(32, 16), seed=0, name="wakeword")
    model.fit(train.x, train.y, epochs=4, lr=0.01, seed=0)
    platform.release(model, test.x, test.y)
    platform.deploy(
        "wakeword",
        reference_x=train.x[:200],
        reference_predictions=model.predict_classes(train.x[:200]),
        num_classes=4,
        prepaid_queries=5000,
    )
    clients = partition_dirichlet(train, 6, alpha=0.7, seed=seed)
    return platform, test, clients


def test_e3_lifecycle_guardrail(benchmark, smoke_mode):
    """Fleet-scale closed loop: deterministic promotion + bad-candidate rollback.

    Two *fresh* worlds run the same seeded drift→retrain→canary→promote cycle
    followed by an injected oversized candidate.  The guardrail: both worlds
    promote the same version id with identical gate metrics, and both reject
    the oversized candidate without touching the incumbent's deployments.
    """
    from repro.lifecycle import LifecycleConfig, oversized_candidate

    n_devices = 16 if smoke_mode else 60

    def closed_loop_pair():
        results = []
        for _ in range(2):
            platform, test, clients = _lifecycle_world(n_devices)
            pipeline = platform.lifecycle(
                "wakeword",
                clients,
                (test.x, test.y),
                config=LifecycleConfig(rounds=1, canary_windows=1, seed=21),
            )
            promoted = pipeline.run_cycle(trigger={"kind": "schedule"})
            rejected = pipeline.run_cycle(
                candidate_model=oversized_candidate(platform.deployed_models["wakeword"], seed=1)
            )
            results.append((promoted, rejected, platform))
        return results

    (d1, bad1, p1), (d2, bad2, p2) = benchmark.pedantic(closed_loop_pair, rounds=1, iterations=1)
    assert d1.promoted and d2.promoted
    assert d1.candidate_version == d2.candidate_version
    assert d1.candidate_metrics == d2.candidate_metrics
    assert d1.canary_devices == d2.canary_devices
    assert not bad1.promoted and not bad2.promoted
    assert bad1.reasons == bad2.reasons
    # The rejected candidate never became a deployment target.
    assert p1.registry.production("wakeword").version_id == d1.candidate_version
    hist = p1.registry.deployment_histogram("wakeword")
    assert set(hist) == {d1.candidate_version}
    benchmark.extra_info.update(
        {
            "n_devices": n_devices,
            "promoted_version": d1.candidate_version,
            "n_canary_devices": len(d1.canary_devices),
            "candidate_accuracy": d1.candidate_metrics["accuracy"],
            "rejected_gate": bad1.reasons[0].split(":")[0],
            "deterministic": True,
        }
    )


def test_e3_lifecycle_canary_engines_agree():
    """The batched and oracle canary engines produce identical gate metrics."""
    from repro.lifecycle import LifecycleConfig, degraded_candidate

    outcomes = []
    for engine in ("batched", "oracle"):
        platform, test, clients = _lifecycle_world(10, seed=9)
        pipeline = platform.lifecycle(
            "wakeword",
            clients,
            (test.x, test.y),
            config=LifecycleConfig(rounds=1, canary_windows=1, seed=9, canary_engine=engine),
        )
        decision = pipeline.run_cycle(
            candidate_model=degraded_candidate(platform.deployed_models["wakeword"], seed=1)
        )
        outcomes.append((decision.promoted, decision.candidate_metrics, decision.incumbent_metrics))
    assert outcomes[0] == outcomes[1]
