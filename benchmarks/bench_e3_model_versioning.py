"""E3 (Section III-A): the model-version explosion and registry scaling.

Expected shape: a centralized deployment manages one model; an edge
deployment managing F fidelity levels x B bit-widths across a fleet multiplies
the artifact count, and retraining the base retriggers every derived variant.
"""

from __future__ import annotations

import pytest

from repro.nn import make_multi_fidelity_family
from repro.registry import ModelRegistry, OptimizationPipeline, TriggerManager


def _populate(n_fidelities: int, bit_widths, sparsities, n_devices: int) -> dict:
    registry = ModelRegistry()
    manager = TriggerManager(registry)
    family = make_multi_fidelity_family(16, 4, widths=((16,), (32, 16), (64, 32), (128, 64))[:n_fidelities], seed=0)
    derived_total = 0
    for name, model in family.items():
        manager.subscribe(name, OptimizationPipeline.standard(bit_widths=bit_widths, sparsities=sparsities))
        base, derived = manager.register_and_trigger(model)
        derived_total += len(derived)
        for d in range(n_devices):
            registry.record_deployment(f"dev-{d:05d}", base.version_id)
    stats = registry.stats()
    stats["derived_total"] = derived_total
    return stats


def test_e3_registry_population_scaling(benchmark):
    """Populate the registry for 4 fidelities x (8,4,2)-bit x 2 sparsities, 200 devices."""
    stats = benchmark.pedantic(
        _populate, kwargs=dict(n_fidelities=4, bit_widths=(8, 4, 2), sparsities=(0.5, 0.9), n_devices=200),
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update({k: v for k, v in stats.items() if k != "by_kind"})
    # Cloud deployment would manage 1 artifact; here we manage dozens.
    assert stats["n_versions"] >= 4 * (1 + 5)
    assert stats["n_deployed_devices"] == 200


@pytest.mark.parametrize("n_devices", [10, 100, 1000])
def test_e3_artifact_count_grows_multiplicatively(n_devices):
    stats = _populate(n_fidelities=3, bit_widths=(8, 4), sparsities=(0.5,), n_devices=n_devices)
    assert stats["n_versions"] == 3 * (1 + 3)  # independent of fleet size ...
    assert stats["n_deployed_devices"] == n_devices  # ... but deployments track every device


def test_e3_retraining_retriggers_pipelines(benchmark):
    """Re-registering the base fires the optimization pipeline and marks stale variants."""
    registry = ModelRegistry()
    manager = TriggerManager(registry)
    from repro.nn import make_mlp

    model = make_mlp(16, 4, hidden=(32,), seed=0, name="retrain-me")
    manager.subscribe("retrain-me", OptimizationPipeline.standard(bit_widths=(8, 4), sparsities=(0.5,)))
    manager.register_and_trigger(model)

    def retrain_cycle():
        retrained = model.clone(copy_weights=True)
        retrained.layers[0].params["W"] += 0.001
        base, derived = manager.register_and_trigger(retrained)
        return len(derived), len(registry.stale_variants("retrain-me"))

    derived_count, stale_count = benchmark(retrain_cycle)
    assert derived_count == 3
    assert stale_count >= 3
    benchmark.extra_info.update({"derived_per_retrain": derived_count})
