"""E6 (Section III-D): federated vs centralized accuracy, compression, personalization.

Expected shape: FedAvg approaches the centralized upper bound (the gap grows
as client data becomes more non-IID / alpha shrinks); update compression cuts
uplink volume by 5-30x at little accuracy cost; local personalization matches
or beats the global model on each client's own distribution.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_gaussian_blobs, partition_dirichlet
from repro.federated import FederatedClient, FederatedServer, TopKSparsifier, centralized_baseline, get_compressor
from repro.nn import make_mlp


@pytest.fixture(scope="module")
def fed_task():
    ds = make_gaussian_blobs(2400, 12, 5, cluster_std=1.3, seed=0)
    return ds.split(0.3, seed=0)


def _make_clients(train, alpha: float, n_clients: int = 10):
    parts = partition_dirichlet(train, n_clients, alpha=alpha, seed=1)
    return [FederatedClient(p, local_epochs=2, lr=0.05, seed=i) for i, p in enumerate(parts)]


@pytest.mark.parametrize("alpha", [0.1, 1.0])
def test_e6_fedavg_vs_centralized(benchmark, fed_task, alpha):
    train, test = fed_task
    clients = _make_clients(train, alpha)

    def run():
        server = FederatedServer(make_mlp(12, 5, hidden=(32, 16), seed=0), clients, eval_data=(test.x, test.y))
        history = server.run(6)
        return history[-1].global_accuracy

    fed_acc = benchmark.pedantic(run, rounds=1, iterations=1)
    central = centralized_baseline(make_mlp(12, 5, hidden=(32, 16), seed=0), clients, (test.x, test.y), epochs=6)
    gap = central["accuracy"] - fed_acc
    benchmark.extra_info.update({"alpha": alpha, "federated_accuracy": fed_acc, "centralized_accuracy": central["accuracy"], "gap": gap})
    assert fed_acc > 0.6
    assert gap < 0.3


@pytest.mark.parametrize("compressor_name", ["none", "topk", "signsgd", "quantized"])
def test_e6_compression_communication_tradeoff(benchmark, fed_task, compressor_name):
    train, test = fed_task
    clients = _make_clients(train, alpha=1.0, n_clients=8)
    kwargs = {"fraction": 0.1} if compressor_name == "topk" else ({"bits": 8} if compressor_name == "quantized" else {})

    def run():
        server = FederatedServer(
            make_mlp(12, 5, hidden=(32, 16), seed=0),
            clients,
            compressor=get_compressor(compressor_name, **kwargs),
            eval_data=(test.x, test.y),
        )
        server.run(4)
        return server

    server = benchmark.pedantic(run, rounds=1, iterations=1)
    comm = server.total_communication()
    acc = server.history[-1].global_accuracy
    benchmark.extra_info.update({"compressor": compressor_name, "uplink_mb": comm["uplink_mb"], "accuracy": acc})
    if compressor_name != "none":
        assert acc > 0.55
    dense_bytes = server.global_model.get_flat_weights().size * 4 * sum(len(r.participants) for r in server.history)
    if compressor_name in ("topk", "signsgd"):
        assert comm["uplink_mb"] * 1e6 < dense_bytes / 4


def test_e6_personalization_gain_on_noniid_clients(benchmark, fed_task):
    train, test = fed_task
    clients = _make_clients(train, alpha=0.1, n_clients=8)

    def run():
        server = FederatedServer(make_mlp(12, 5, hidden=(32, 16), seed=0), clients, eval_data=(test.x, test.y))
        server.run(4)
        results = server.personalize_all(epochs=3)
        gains = [r.get("personal_accuracy", 0.0) - r["global_accuracy"] for r in results.values()]
        return float(np.mean(gains)), float(np.mean([r["global_accuracy"] for r in results.values()]))

    mean_gain, mean_global = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({"mean_personalization_gain": mean_gain, "mean_global_local_accuracy": mean_global})
    assert mean_gain > -0.02
