"""E6 (Section III-D): federated vs centralized accuracy, compression, personalization.

Expected shape: FedAvg approaches the centralized upper bound (the gap grows
as client data becomes more non-IID / alpha shrinks); update compression cuts
uplink volume by 5-30x at little accuracy cost; local personalization matches
or beats the global model on each client's own distribution.

Fleet-scale guardrail: the vectorized :class:`FederatedEngine` round must
stay at least 10x faster than the seed-era per-client loop on a 100-client
fleet while producing an identical (allclose) aggregated delta and byte
accounting — the federated twin of ``bench_e1``'s batched-serving and
``bench_e5``'s batched-metering guardrails.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.data import make_gaussian_blobs, partition_dirichlet, partition_iid
from repro.federated import (
    FederatedClient,
    FederatedEngine,
    FederatedServer,
    RoundScenario,
    TopKSparsifier,
    TrimmedMeanAggregator,
    centralized_baseline,
    get_compressor,
    noniid_severity_sweep,
)
from repro.nn import make_mlp


@pytest.fixture(scope="module")
def fed_task():
    ds = make_gaussian_blobs(2400, 12, 5, cluster_std=1.3, seed=0)
    return ds.split(0.3, seed=0)


def _make_clients(train, alpha: float, n_clients: int = 10):
    parts = partition_dirichlet(train, n_clients, alpha=alpha, seed=1)
    return [FederatedClient(p, local_epochs=2, lr=0.05, seed=i) for i, p in enumerate(parts)]


@pytest.mark.parametrize("alpha", [0.1, 1.0])
def test_e6_fedavg_vs_centralized(benchmark, fed_task, alpha):
    train, test = fed_task
    clients = _make_clients(train, alpha)

    def run():
        server = FederatedServer(make_mlp(12, 5, hidden=(32, 16), seed=0), clients, eval_data=(test.x, test.y))
        history = server.run(6)
        return history[-1].global_accuracy

    fed_acc = benchmark.pedantic(run, rounds=1, iterations=1)
    central = centralized_baseline(make_mlp(12, 5, hidden=(32, 16), seed=0), clients, (test.x, test.y), epochs=6)
    gap = central["accuracy"] - fed_acc
    benchmark.extra_info.update({"alpha": alpha, "federated_accuracy": fed_acc, "centralized_accuracy": central["accuracy"], "gap": gap})
    assert fed_acc > 0.6
    assert gap < 0.3


@pytest.mark.parametrize("compressor_name", ["none", "topk", "signsgd", "quantized"])
def test_e6_compression_communication_tradeoff(benchmark, fed_task, compressor_name):
    train, test = fed_task
    clients = _make_clients(train, alpha=1.0, n_clients=8)
    kwargs = {"fraction": 0.1} if compressor_name == "topk" else ({"bits": 8} if compressor_name == "quantized" else {})

    def run():
        server = FederatedServer(
            make_mlp(12, 5, hidden=(32, 16), seed=0),
            clients,
            compressor=get_compressor(compressor_name, **kwargs),
            eval_data=(test.x, test.y),
        )
        server.run(4)
        return server

    server = benchmark.pedantic(run, rounds=1, iterations=1)
    comm = server.total_communication()
    acc = server.history[-1].global_accuracy
    benchmark.extra_info.update({"compressor": compressor_name, "uplink_mb": comm["uplink_mb"], "accuracy": acc})
    if compressor_name != "none":
        assert acc > 0.55
    dense_bytes = server.global_model.get_flat_weights().size * 4 * sum(len(r.participants) for r in server.history)
    if compressor_name in ("topk", "signsgd"):
        assert comm["uplink_mb"] * 1e6 < dense_bytes / 4


def test_e6_personalization_gain_on_noniid_clients(benchmark, fed_task):
    train, test = fed_task
    clients = _make_clients(train, alpha=0.1, n_clients=8)

    def run():
        server = FederatedServer(make_mlp(12, 5, hidden=(32, 16), seed=0), clients, eval_data=(test.x, test.y))
        server.run(4)
        results = server.personalize_all(epochs=3)
        gains = [r.get("personal_accuracy", 0.0) - r["global_accuracy"] for r in results.values()]
        return float(np.mean(gains)), float(np.mean([r["global_accuracy"] for r in results.values()]))

    mean_gain, mean_global = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({"mean_personalization_gain": mean_gain, "mean_global_local_accuracy": mean_global})
    assert mean_gain > -0.02


# ---------------------------------------------------------------------------
# fleet-scale engine: speedup guardrail + scenario diversity
# ---------------------------------------------------------------------------

def _engine_world(n_clients: int = 100, n_per_client: int = 32):
    """A 100-client fleet with tiny on-device trainers (batch 4, 3 epochs)."""
    ds = make_gaussian_blobs(n_clients * n_per_client, 16, 5, cluster_std=1.2, seed=0)
    train, _ = ds.split(0.2, seed=0)
    parts = partition_iid(train, n_clients, seed=1)
    clients = [FederatedClient(p, local_epochs=3, batch_size=4, lr=0.05, seed=i) for i, p in enumerate(parts)]
    return FederatedEngine(make_mlp(16, 5, hidden=(16,), seed=0), clients)


def test_e6_vectorized_engine_speedup(benchmark, smoke_mode):
    """Vectorized vs per-client rounds on a 100-client fleet (≥10x target).

    Two identical worlds run the same rounds, one through the stacked
    batched trainer and one through the seed-era per-client loop; the
    resulting global weights must agree to float tolerance and the byte
    accounting exactly, while the vectorized path is at least an order of
    magnitude faster.
    """
    n_rounds = 2 if smoke_mode else 3

    def scenario():
        # Warm both paths first so one-time costs don't skew the ratio.
        _engine_world(n_clients=10).run_round(0)
        warm = _engine_world(n_clients=10)
        warm.run_round(0, engine="oracle")
        eng_v, eng_l = _engine_world(), _engine_world()
        t0 = time.perf_counter()
        for r in range(n_rounds):
            eng_v.run_round(r)
        t_vec = time.perf_counter() - t0
        t0 = time.perf_counter()
        for r in range(n_rounds):
            eng_l.run_round(r, engine="oracle")
        t_legacy = time.perf_counter() - t0
        w_vec = eng_v.global_model.get_flat_weights()
        w_legacy = eng_l.global_model.get_flat_weights()
        return {
            "n_clients": 100,
            "n_rounds": n_rounds,
            "vectorized_s": t_vec,
            "legacy_s": t_legacy,
            "speedup": t_legacy / max(t_vec, 1e-12),
            "identical_delta": bool(np.allclose(w_vec, w_legacy, atol=1e-9)),
            "identical_bytes": all(
                (a.uplink_bytes, a.downlink_bytes, a.participants) == (b.uplink_bytes, b.downlink_bytes, b.participants)
                for a, b in zip(eng_v.history, eng_l.history)
            ),
            "identical_losses": bool(
                np.allclose([r.train_loss for r in eng_v.history], [r.train_loss for r in eng_l.history])
            ),
        }

    result = benchmark.pedantic(scenario, rounds=1, iterations=1)
    benchmark.extra_info.update(result)
    assert result["identical_delta"], "vectorized round diverged from the per-client loop"
    assert result["identical_bytes"] and result["identical_losses"]
    assert result["speedup"] >= 10.0, f"vectorized round only {result['speedup']:.1f}x faster"


def _mixed_engine_world(n_clients: int = 100, n_per_client: int = 32):
    """A 100-client Adam+Dropout fleet with heterogeneous batch sizes.

    Half the fleet trains with batch 4, half with batch 8 (different
    learning rates too), every client runs Adam with FedProx regularization
    on a Dropout MLP — the configuration that used to drop to the scalar
    per-client loop wholesale.  ``partition_cohorts`` buckets it into two
    batched cohorts and sweeps each in lock-step.
    """
    ds = make_gaussian_blobs(n_clients * n_per_client, 16, 5, cluster_std=1.2, seed=0)
    train, _ = ds.split(0.2, seed=0)
    parts = partition_iid(train, n_clients, seed=1)
    clients = [
        FederatedClient(
            p,
            local_epochs=3,
            batch_size=4 if i % 2 == 0 else 8,
            lr=0.01 if i % 2 == 0 else 0.02,
            optimizer="adam",
            proximal_mu=0.1,
            seed=i,
        )
        for i, p in enumerate(parts)
    ]
    return FederatedEngine(make_mlp(16, 5, hidden=(16,), dropout=0.15, seed=0), clients)


def test_e6_mixed_config_engine_speedup(benchmark, smoke_mode):
    """Cohort-bucketed Adam+Dropout mixed-batch fleet vs the scalar loop.

    PR 2's guardrail above covers the narrow plain-SGD/uniform-config path;
    this one covers everything PR 5 generalized: stacked Adam moment
    tensors, per-client Dropout mask streams, FedProx, and mixed batch
    sizes bucketed into two vectorized cohorts.  Deltas, per-client losses
    and local accuracies must stay allclose-identical to the per-client
    loop while the cohort sweeps run ≥10x faster (best of 3 repetitions,
    both paths timed in the same repetition to cancel machine noise).
    """
    n_rounds = 2 if smoke_mode else 3

    def scenario():
        from repro.federated import partition_cohorts

        world = _mixed_engine_world(n_clients=10)
        cohorts = partition_cohorts(world.global_model, list(world.clients.values()))
        assert sorted(c.key[:2] for c in cohorts) == [("adam", 4), ("adam", 8)]
        assert all(c.batched for c in cohorts), "mixed fleet must not hit the scalar fallback"
        # Warm both paths so one-time costs don't skew the ratio.
        world.run_round(0)
        warm = _mixed_engine_world(n_clients=10)
        warm.run_round(0, engine="oracle")

        best = {"speedup": 0.0}
        for _rep in range(3):
            eng_v, eng_l = _mixed_engine_world(), _mixed_engine_world()
            t0 = time.perf_counter()
            for r in range(n_rounds):
                eng_v.run_round(r)
            t_vec = time.perf_counter() - t0
            t0 = time.perf_counter()
            for r in range(n_rounds):
                eng_l.run_round(r, engine="oracle")
            t_legacy = time.perf_counter() - t0
            w_vec = eng_v.global_model.get_flat_weights()
            w_legacy = eng_l.global_model.get_flat_weights()
            rep = {
                "n_clients": 100,
                "n_rounds": n_rounds,
                "vectorized_s": t_vec,
                "legacy_s": t_legacy,
                "speedup": t_legacy / max(t_vec, 1e-12),
                "identical_delta": bool(np.allclose(w_vec, w_legacy, atol=1e-9)),
                "identical_bytes": all(
                    (a.uplink_bytes, a.downlink_bytes, a.participants)
                    == (b.uplink_bytes, b.downlink_bytes, b.participants)
                    for a, b in zip(eng_v.history, eng_l.history)
                ),
                "identical_losses": bool(
                    np.allclose(
                        [r.train_loss for r in eng_v.history], [r.train_loss for r in eng_l.history]
                    )
                ),
                "identical_accuracies": bool(
                    np.allclose(
                        [r.mean_local_accuracy for r in eng_v.history],
                        [r.mean_local_accuracy for r in eng_l.history],
                    )
                ),
            }
            # Equivalence must hold on EVERY repetition; keep the best timing.
            assert rep["identical_delta"], "cohort sweep diverged from the per-client loop"
            assert rep["identical_bytes"] and rep["identical_losses"] and rep["identical_accuracies"]
            if rep["speedup"] > best["speedup"]:
                best = rep
        return best

    result = benchmark.pedantic(scenario, rounds=1, iterations=1)
    benchmark.extra_info.update(result)
    assert result["speedup"] >= 10.0, f"cohort-bucketed round only {result['speedup']:.1f}x faster"


def test_e6_scenario_round_diversity(benchmark, fed_task, smoke_mode):
    """Dropouts, straggler timeouts and byzantine clients in one round loop.

    The trimmed-mean aggregator must keep training under byzantine updates,
    and the per-round bookkeeping must account for every selected client.
    """
    train, test = fed_task
    clients = _make_clients(train, alpha=1.0, n_clients=10)
    # One byzantine client: with ~6-8 contributors per round after dropouts
    # and stragglers, trim_fraction=0.25 trims at least one value per side,
    # which is exactly what is needed to vote down a single corrupted delta.
    byzantine = {clients[0].client_id}
    scenario = RoundScenario(
        dropout_rate=0.2,
        straggler_timeout_s=0.5,
        time_per_sample_s=1e-3,
        byzantine_ids=byzantine,
        byzantine_mode="flip",
        byzantine_scale=25.0,
        seed=5,
    )

    def run():
        engine = FederatedEngine(
            make_mlp(12, 5, hidden=(32, 16), seed=0),
            clients,
            aggregator=TrimmedMeanAggregator(trim_fraction=0.25),
            eval_data=(test.x, test.y),
            scenario=scenario,
        )
        engine.run(3 if smoke_mode else 6)
        return engine

    engine = benchmark.pedantic(run, rounds=1, iterations=1)
    totals = {
        "dropouts": sum(r.n_dropouts for r in engine.history),
        "stragglers": sum(r.n_stragglers for r in engine.history),
        "byzantine": sum(r.n_byzantine for r in engine.history),
        "final_accuracy": engine.history[-1].global_accuracy,
    }
    benchmark.extra_info.update(totals)
    for r in engine.history:
        assert len(r.participants) + r.n_dropouts + r.n_stragglers == r.n_selected
    assert totals["byzantine"] > 0
    assert totals["final_accuracy"] > 0.5  # trimmed mean survives flipped 25x deltas


def test_e6_noniid_severity_sweep(benchmark, smoke_mode):
    """Dirichlet severity sweep: label skew shrinks as alpha grows."""
    ds = make_gaussian_blobs(1200 if smoke_mode else 2400, 12, 5, cluster_std=1.3, seed=2)
    train, test = ds.split(0.3, seed=2)
    alphas = [0.05, 0.5, 5.0]

    def run():
        return noniid_severity_sweep(
            train,
            alphas,
            model_fn=lambda: make_mlp(12, 5, hidden=(32, 16), seed=0),
            n_clients=8,
            rounds=2 if smoke_mode else 4,
            eval_data=(test.x, test.y),
            seed=3,
            local_epochs=2,
            lr=0.05,
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update({str(a): sweep[a] for a in alphas})
    skews = [sweep[a]["mean_tv_distance"] for a in alphas]
    assert skews[0] > skews[-1], "smaller alpha must be more non-IID"
    assert all(sweep[a]["final_accuracy"] > 0.4 for a in alphas)


def test_e6_sharded_round_scaling(benchmark, smoke_mode):
    """Sharded multi-process federated round vs the in-process batched sweep.

    A 100-client mixed-config fleet (several batched cohorts: two batch
    sizes x Adam, so cohorts distribute whole to workers) runs one round
    through both engines; the delta stack, global weights and round metrics
    must be byte-identical everywhere.  The near-linear scaling guardrail
    (≥2.5x on 4 workers) is asserted only on machines that actually have
    ≥4 cores and outside smoke mode; the measured numbers are always
    exported so CI trends them.
    """
    import os

    from repro.runtime.sharded import ShardedFleetRunner

    n_clients = 24 if smoke_mode else 100
    n_workers = 4

    def scenario():
        eng_b = _mixed_engine_world(n_clients=n_clients)
        t0 = time.perf_counter()
        result_b = eng_b.run_round(0)
        t_batched = time.perf_counter() - t0

        eng_s = _mixed_engine_world(n_clients=n_clients)
        eng_s.shard_runner = ShardedFleetRunner(workers=n_workers, backend="pickle")
        t0 = time.perf_counter()
        result_s = eng_s.run_round(0, engine="sharded")
        t_sharded = time.perf_counter() - t0

        return {
            "n_clients": n_clients,
            "workers": n_workers,
            "host_cores": os.cpu_count() or 1,
            "batched_s": t_batched,
            "sharded_s": t_sharded,
            "sharded_round_speedup_4w": t_batched / max(t_sharded, 1e-12),
            "identical_weights": (
                eng_s.global_model.get_flat_weights().tobytes()
                == eng_b.global_model.get_flat_weights().tobytes()
            ),
            "identical_round_metrics": result_s.as_dict() == result_b.as_dict(),
            "shard_recoveries": result_s.shard_recoveries,
        }

    result = benchmark.pedantic(scenario, rounds=1, iterations=1)
    assert result["identical_weights"], "sharded round weights diverged from batched"
    assert result["identical_round_metrics"], "sharded round metrics diverged from batched"
    assert result["shard_recoveries"] == 0
    if not smoke_mode and result["host_cores"] >= n_workers:
        assert result["sharded_round_speedup_4w"] >= 2.5, (
            f"sharded round only {result['sharded_round_speedup_4w']:.2f}x on {n_workers} workers"
        )
    benchmark.extra_info.update(result)
