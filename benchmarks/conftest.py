"""Shared fixtures for the experiment benchmarks (E1-E10, see EXPERIMENTS.md).

Setting ``REPRO_BENCH_SMOKE=1`` shrinks the heavyweight cases so the whole
suite finishes in seconds — this is what the CI benchmark-smoke job uses to
produce the ``BENCH_*.json`` artifacts on every push.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data import make_gaussian_blobs
from repro.nn import make_mlp

@pytest.fixture(scope="session")
def smoke_mode() -> bool:
    """Whether REPRO_BENCH_SMOKE is set (CI smoke job: shrunken sizes)."""
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


@pytest.fixture(scope="session")
def bench_task():
    """A medium-size classification task shared by several experiments."""
    ds = make_gaussian_blobs(n_samples=2000, n_features=16, n_classes=5, cluster_std=1.2, seed=0)
    return ds.split(test_fraction=0.3, seed=0)


@pytest.fixture(scope="session")
def bench_model(bench_task):
    """A trained base model shared by several experiments."""
    train, _ = bench_task
    model = make_mlp(16, 5, hidden=(64, 32), seed=0, name="bench-model")
    model.fit(train.x, train.y, epochs=8, lr=0.01, seed=0)
    return model
