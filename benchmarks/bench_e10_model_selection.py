"""E10 (Section III-A): context-aware model selection across device states.

Expected shape: the selected variant changes with context — plugged-in
flagship phones get the biggest/most accurate variant, battery-constrained
MCUs get a quantized one, and devices on slow/metered links get the variant
that is cheapest to download.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ModelSelector, SelectionPolicy
from repro.devices import NetworkCondition, NetworkType, get_profile
from repro.optimize import VariantGenerator


@pytest.fixture(scope="module")
def selection_variants(bench_model, bench_task):
    _, test = bench_task
    profiles = [get_profile(n) for n in ("mcu-m4", "phone-mid", "phone-flagship")]
    return VariantGenerator().generate(bench_model, test.x, test.y, profiles, bit_widths=(8, 4, 2), sparsities=(0.5,))


def test_e10_selection_throughput(benchmark, selection_variants):
    selector = ModelSelector()
    contexts = [
        (get_profile("phone-flagship"), NetworkCondition.of(NetworkType.WIFI), SelectionPolicy.plugged_in()),
        (get_profile("mcu-m4"), NetworkCondition.of(NetworkType.CELLULAR), SelectionPolicy.low_battery()),
        (get_profile("phone-mid"), NetworkCondition.of(NetworkType.LPWAN), SelectionPolicy.slow_network()),
    ]

    def select_all():
        return [selector.select(selection_variants, p, network=n, policy=pol).chosen.name for p, n, pol in contexts]

    chosen = benchmark(select_all)
    benchmark.extra_info["chosen_per_context"] = dict(zip(["flagship+wifi+plugged", "mcu+cellular+low_batt", "mid+lpwan"], chosen))


def test_e10_context_changes_choice(selection_variants):
    selector = ModelSelector()
    flagship_plugged = selector.select(
        selection_variants, get_profile("phone-flagship"), network=NetworkCondition.of(NetworkType.WIFI), policy=SelectionPolicy.plugged_in()
    ).chosen
    mcu_battery = selector.select(
        selection_variants, get_profile("mcu-m4"), network=NetworkCondition.of(NetworkType.CELLULAR), policy=SelectionPolicy.low_battery()
    ).chosen
    slow_net = selector.select(
        selection_variants, get_profile("phone-mid"), network=NetworkCondition.of(NetworkType.LPWAN), policy=SelectionPolicy.slow_network()
    ).chosen
    # Battery/size constrained contexts pick smaller or equal artifacts than the plugged flagship.
    assert mcu_battery.size_bytes <= flagship_plugged.size_bytes
    assert slow_net.size_bytes <= flagship_plugged.size_bytes
    # The flagship keeps top accuracy.
    assert flagship_plugged.accuracy >= max(v.accuracy for v in selection_variants) - 1e-9


def test_e10_latency_budget_constraint(selection_variants):
    selector = ModelSelector()
    tight = SelectionPolicy(max_latency_s=1e-7)
    result = selector.select(selection_variants, get_profile("mcu-m4"), policy=tight)
    relaxed = selector.select(selection_variants, get_profile("mcu-m4"), policy=SelectionPolicy())
    assert relaxed.chosen is not None
    if result.chosen is not None:
        assert result.chosen.latency_s["mcu-m4"] <= 1e-7
