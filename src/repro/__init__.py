"""repro: a TinyMLOps platform for simulated edge fleets.

Reproduction of Leroux et al., *TinyMLOps: Operational Challenges for
Widespread Edge AI Adoption* (2022, arXiv:2203.10923).  The paper is a
position paper; this library implements the platform it calls for, plus all
substrates (NumPy NN engine, device fleet simulator, graph IR/compiler,
portable runtime) needed to study every challenge it enumerates.

Subpackages
-----------
``repro.nn``            NumPy neural-network engine
``repro.data``          synthetic datasets, drift, federated partitioning
``repro.exchange``      graph IR, compiler passes, device compatibility
``repro.devices``       device profiles, cost/battery/network models, fleets
``repro.runtime``       portable modules, pipelines, sandbox, orchestration
``repro.registry``      model store, versioning, lineage, triggers
``repro.optimize``      quantization, pruning, distillation, Pareto search
``repro.observability`` drift detection, telemetry, sketches, privacy
``repro.billing``       pay-per-query metering and reconciliation
``repro.federated``     federated learning with compression and scheduling
``repro.protection``    watermarking, encryption, extraction defences
``repro.verification``  Freivalds proofs, commitments, simulated TEE
``repro.core``          model selection and the TinyMLOpsPlatform facade
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
