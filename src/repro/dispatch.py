"""Engine-dispatch convention shared by every dual-path surface.

The platform keeps two implementations of each hot path: the vectorized
production path and the scalar predecessor, preserved as the differential
oracle (standing invariant in ROADMAP.md).  Historically each surface grew
its own toggle spelling — ``batched=False`` keywords on
:meth:`~repro.core.serving.ServingEngine.serve_fleet` and the drift
detectors, a ``run_round_legacy`` method on
:class:`~repro.federated.engine.FederatedEngine`, a plain
``GraphExecutor`` fallback in :mod:`repro.exchange.executor`.  This module
unifies them: every dual-path entry point accepts

``engine="batched"``
    the vectorized path (default everywhere);
``engine="oracle"``
    the scalar reference path.

The old spellings remain as thin aliases that emit
:class:`DeprecationWarning` and forward to the ``engine`` form, so existing
call sites keep working unchanged.

Fleet-scale surfaces that can distribute work over a
:class:`~repro.runtime.sharded.ShardedFleetRunner` additionally accept

``engine="sharded"``
    the multi-process backend: the fleet is partitioned into per-worker
    shards, each shard runs the *batched* path independently, and the
    results are merged at a barrier so the outcome is byte-identical to
    ``engine="batched"`` (which in turn stays equivalent to the oracle).
    Currently offered by :meth:`~repro.core.serving.ServingEngine.serve_fleet`
    and :meth:`~repro.federated.engine.FederatedEngine.run_round`, both of
    which take a ``workers=`` count and fall back to the single-process
    batched path when a pool is unavailable or the shards would be
    degenerate (one worker, one shard, an unreplayable compiled plan).

``"sharded"`` is *opt-in per surface*: a call site declares support by
passing ``extra=(ENGINE_SHARDED,)`` to :func:`resolve_engine`; surfaces
that have no distributed implementation keep rejecting it.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence

__all__ = ["ENGINE_BATCHED", "ENGINE_ORACLE", "ENGINE_SHARDED", "resolve_engine"]

ENGINE_BATCHED = "batched"
ENGINE_ORACLE = "oracle"
ENGINE_SHARDED = "sharded"
_ENGINES = (ENGINE_BATCHED, ENGINE_ORACLE)


def resolve_engine(
    engine: Optional[str] = None,
    batched: Optional[bool] = None,
    *,
    default: str = ENGINE_BATCHED,
    alias: str = "batched",
    owner: str = "",
    extra: Sequence[str] = (),
) -> str:
    """Resolve the ``engine=`` keyword, honoring a deprecated boolean alias.

    ``engine`` wins when given and must be ``"batched"``, ``"oracle"`` or
    one of the surface-specific ``extra`` engines (e.g. ``"sharded"`` on
    surfaces that pass ``extra=(ENGINE_SHARDED,)``).  A non-``None``
    ``batched`` (the legacy spelling) maps ``True`` to ``"batched"`` and
    ``False`` to ``"oracle"`` with a :class:`DeprecationWarning` naming the
    ``owner`` call site; passing both is an error.  With neither given,
    ``default`` applies.
    """
    if engine is not None and batched is not None:
        raise ValueError(f"{owner or 'call'}: pass engine=..., not both engine= and {alias}=")
    if engine is not None:
        allowed = _ENGINES + tuple(extra)
        if engine not in allowed:
            raise ValueError(f"{owner or 'call'}: unknown engine {engine!r}; expected one of {allowed}")
        return engine
    if batched is not None:
        warnings.warn(
            f"{owner or 'this call'}: the {alias}= keyword is deprecated; "
            f'use engine="batched" / engine="oracle"',
            DeprecationWarning,
            stacklevel=3,
        )
        return ENGINE_BATCHED if batched else ENGINE_ORACLE
    return default
