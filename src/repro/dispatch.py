"""Engine-dispatch convention shared by every dual-path surface.

The platform keeps two implementations of each hot path: the vectorized
production path and the scalar predecessor, preserved as the differential
oracle (standing invariant in ROADMAP.md).  Historically each surface grew
its own toggle spelling — ``batched=False`` keywords on
:meth:`~repro.core.serving.ServingEngine.serve_fleet` and the drift
detectors, a ``run_round_legacy`` method on
:class:`~repro.federated.engine.FederatedEngine`, a plain
``GraphExecutor`` fallback in :mod:`repro.exchange.executor`.  This module
unifies them: every dual-path entry point accepts

``engine="batched"``
    the vectorized path (default everywhere);
``engine="oracle"``
    the scalar reference path.

The old spellings remain as thin aliases that emit
:class:`DeprecationWarning` and forward to the ``engine`` form, so existing
call sites keep working unchanged.
"""

from __future__ import annotations

import warnings
from typing import Optional

__all__ = ["ENGINE_BATCHED", "ENGINE_ORACLE", "resolve_engine"]

ENGINE_BATCHED = "batched"
ENGINE_ORACLE = "oracle"
_ENGINES = (ENGINE_BATCHED, ENGINE_ORACLE)


def resolve_engine(
    engine: Optional[str] = None,
    batched: Optional[bool] = None,
    *,
    default: str = ENGINE_BATCHED,
    alias: str = "batched",
    owner: str = "",
) -> str:
    """Resolve the ``engine=`` keyword, honoring a deprecated boolean alias.

    ``engine`` wins when given and must be ``"batched"`` or ``"oracle"``.
    A non-``None`` ``batched`` (the legacy spelling) maps ``True`` to
    ``"batched"`` and ``False`` to ``"oracle"`` with a
    :class:`DeprecationWarning` naming the ``owner`` call site; passing both
    is an error.  With neither given, ``default`` applies.
    """
    if engine is not None and batched is not None:
        raise ValueError(f"{owner or 'call'}: pass engine=..., not both engine= and {alias}=")
    if engine is not None:
        if engine not in _ENGINES:
            raise ValueError(f"{owner or 'call'}: unknown engine {engine!r}; expected one of {_ENGINES}")
        return engine
    if batched is not None:
        warnings.warn(
            f"{owner or 'this call'}: the {alias}= keyword is deprecated; "
            f'use engine="batched" / engine="oracle"',
            DeprecationWarning,
            stacklevel=3,
        )
        return ENGINE_BATCHED if batched else ENGINE_ORACLE
    return default
