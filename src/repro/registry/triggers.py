"""Optimization-pipeline triggers: re-derive variants when a base model changes.

Paper Section III-A: "If the base model is updated or retrained, we also
have to automatically trigger the execution of the optimization pipeline
that generates different quantized or pruned versions of the base model."

An :class:`OptimizationPipeline` is a named list of variant recipes
(quantize to N bits, prune to S sparsity, compile for target T).  The
:class:`TriggerManager` subscribes pipelines to model names; calling
:meth:`TriggerManager.on_base_registered` after registering a new base
version re-runs every subscribed pipeline and registers the derived
versions with correct lineage edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .versioning import ModelRegistry, ModelVersion

__all__ = ["VariantRecipe", "OptimizationPipeline", "TriggerManager"]


@dataclass(frozen=True)
class VariantRecipe:
    """One derived-variant recipe.

    ``builder`` receives the deserialized base model and returns
    ``(artifact_bytes, tags)`` for the derived artifact.
    """

    name: str
    kind: str
    builder: Callable[[object], Tuple[bytes, Dict[str, object]]]


@dataclass
class OptimizationPipeline:
    """A named sequence of variant recipes applied to a base model."""

    name: str
    recipes: List[VariantRecipe] = field(default_factory=list)

    def add(self, recipe: VariantRecipe) -> "OptimizationPipeline":
        self.recipes.append(recipe)
        return self

    @classmethod
    def standard(cls, bit_widths: Sequence[int] = (8, 4), sparsities: Sequence[float] = (0.5,)) -> "OptimizationPipeline":
        """The default pipeline: a quantized variant per bit width + pruned variants."""
        from repro.optimize.pruning import magnitude_prune
        from repro.optimize.quantization import QuantizationConfig, quantize_model

        pipeline = cls(name="standard")
        for bits in bit_widths:
            def build_q(model, _bits=bits):
                variant = quantize_model(model, QuantizationConfig(bits=_bits))
                return variant.to_bytes(), {"bits": _bits, "optimization": "quantization"}

            pipeline.add(VariantRecipe(name=f"int{bits}", kind="quantized", builder=build_q))
        for sp in sparsities:
            def build_p(model, _sp=sp):
                variant = magnitude_prune(model, _sp)
                return variant.to_bytes(), {"sparsity": _sp, "optimization": "pruning"}

            pipeline.add(VariantRecipe(name=f"sp{int(sp * 100)}", kind="pruned", builder=build_p))
        return pipeline


class TriggerManager:
    """Connects base-model registrations to optimization pipelines."""

    def __init__(self, registry: ModelRegistry) -> None:
        self.registry = registry
        self._subscriptions: Dict[str, List[OptimizationPipeline]] = {}
        self.trigger_log: List[Dict[str, object]] = []

    def subscribe(self, model_name: str, pipeline: OptimizationPipeline) -> None:
        """Run ``pipeline`` whenever a new base version of ``model_name`` lands."""
        self._subscriptions.setdefault(model_name, []).append(pipeline)

    def pipelines_for(self, model_name: str) -> List[OptimizationPipeline]:
        """Pipelines currently subscribed to a model."""
        return list(self._subscriptions.get(model_name, []))

    def on_base_registered(self, base_version: ModelVersion) -> List[ModelVersion]:
        """Execute all subscribed pipelines against a freshly registered base.

        Returns the list of derived versions that were registered.  Each
        derived version records the base as its parent, preserving lineage.
        """
        if not base_version.is_base():
            raise ValueError("on_base_registered expects a base version")
        pipelines = self._subscriptions.get(base_version.model_name, [])
        derived: List[ModelVersion] = []
        if not pipelines:
            # Still log the (base, 0-derived) event: lifecycle audits must
            # see every trigger, including the ones nothing subscribed to.
            self.trigger_log.append(
                {"base": base_version.version_id, "n_derived": 0, "pipelines": []}
            )
            return derived
        base_model = self.registry.load_model(base_version.version_id)
        for pipeline in pipelines:
            for recipe in pipeline.recipes:
                blob, tags = recipe.builder(base_model)
                tags = dict(tags)
                tags["recipe"] = recipe.name
                tags["pipeline"] = pipeline.name
                version = self.registry.register(
                    base_version.model_name,
                    blob,
                    kind=recipe.kind,
                    parents=(base_version.version_id,),
                    tags=tags,
                )
                derived.append(version)
        self.trigger_log.append(
            {
                "base": base_version.version_id,
                "n_derived": len(derived),
                "pipelines": [p.name for p in pipelines],
            }
        )
        return derived

    def register_and_trigger(self, model, tags: Optional[Dict[str, object]] = None) -> Tuple[ModelVersion, List[ModelVersion]]:
        """Convenience: register a base model then fire its pipelines."""
        base = self.registry.register_model(model, kind="base", tags=tags)
        return base, self.on_base_registered(base)
