"""Model registry: content-addressed store, versions, lineage, pipeline triggers."""

from .store import ArtifactStore, StoredArtifact
from .triggers import OptimizationPipeline, TriggerManager, VariantRecipe
from .versioning import ModelRegistry, ModelVersion

__all__ = [
    "ArtifactStore",
    "StoredArtifact",
    "ModelRegistry",
    "ModelVersion",
    "OptimizationPipeline",
    "TriggerManager",
    "VariantRecipe",
]
