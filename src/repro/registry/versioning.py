"""Model registry: versions, lineage and per-device variant tracking.

Paper Section III-A: "Existing solutions for storing models in a centralized
repository will … have to be extended to track the relationship between
different versions of the models, recording what optimizations are applied
to every instance."

The :class:`ModelRegistry` implements exactly that:

* every registered model/graph becomes an immutable :class:`ModelVersion`
  backed by the content-addressed :class:`~repro.registry.store.ArtifactStore`;
* derivation edges ("quantized-8bit of", "pruned-75% of", "watermarked for
  user X of", "federated-round-12 of") form a lineage DAG (networkx);
* deployment records map fleet devices to the exact version they run;
* when a base model is re-registered (retrained), the registry reports which
  derived variants are stale and need their optimization pipelines re-run.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from .store import ArtifactStore, StoredArtifact

__all__ = ["ModelVersion", "ModelRegistry"]


@dataclass
class ModelVersion:
    """One immutable version of a logical model.

    Attributes
    ----------
    version_id:
        Unique id ``<model_name>:<n>``.
    model_name:
        Logical model family name (e.g. ``"wakeword"``).
    digest:
        Content digest of the stored artifact.
    kind:
        ``"base"`` for trained models, or the optimization kind for derived
        versions (``"quantized"``, ``"pruned"``, ``"watermarked"``, ...).
    parents:
        Version ids this version was derived from.
    tags:
        Free-form key/value annotations (bit width, target device, accuracy).
    created_at:
        Logical timestamp (monotonic counter) for ordering.
    """

    version_id: str
    model_name: str
    digest: str
    kind: str = "base"
    parents: Tuple[str, ...] = ()
    tags: Dict[str, object] = field(default_factory=dict)
    created_at: int = 0

    def is_base(self) -> bool:
        return self.kind == "base"


class ModelRegistry:
    """Tracks model versions, their lineage and their deployments."""

    def __init__(self, store: Optional[ArtifactStore] = None) -> None:
        self.store = store or ArtifactStore()
        self.versions: Dict[str, ModelVersion] = {}
        self.lineage = nx.DiGraph()
        self._counters: Dict[str, itertools.count] = {}
        self._clock = itertools.count()
        # deployment map: device_id -> {model_name: version_id}
        self.deployments: Dict[str, Dict[str, str]] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def _next_version_id(self, model_name: str) -> str:
        counter = self._counters.setdefault(model_name, itertools.count(1))
        return f"{model_name}:{next(counter)}"

    def register(
        self,
        model_name: str,
        artifact_bytes: bytes,
        kind: str = "base",
        parents: Sequence[str] = (),
        tags: Optional[Dict[str, object]] = None,
    ) -> ModelVersion:
        """Register a new version of ``model_name`` from serialized bytes."""
        for parent in parents:
            if parent not in self.versions:
                raise KeyError(f"unknown parent version {parent!r}")
        record = self.store.put(artifact_bytes, kind="model", name=model_name, metadata={"kind": kind})
        version = ModelVersion(
            version_id=self._next_version_id(model_name),
            model_name=model_name,
            digest=record.digest,
            kind=kind,
            parents=tuple(parents),
            tags=dict(tags or {}),
            created_at=next(self._clock),
        )
        self.versions[version.version_id] = version
        self.lineage.add_node(version.version_id, kind=kind, model=model_name)
        for parent in parents:
            self.lineage.add_edge(parent, version.version_id, relation=kind)
        return version

    def register_model(self, model, kind: str = "base", parents: Sequence[str] = (), tags: Optional[Dict[str, object]] = None, model_name: Optional[str] = None) -> ModelVersion:
        """Register a :class:`repro.nn.Sequential` (serialized with ``to_bytes``)."""
        return self.register(model_name or model.name, model.to_bytes(), kind=kind, parents=parents, tags=tags)

    def register_graph(self, graph, kind: str = "base", parents: Sequence[str] = (), tags: Optional[Dict[str, object]] = None, model_name: Optional[str] = None) -> ModelVersion:
        """Register a :class:`repro.exchange.GraphIR` artifact."""
        return self.register(model_name or graph.name, graph.to_bytes(), kind=kind, parents=parents, tags=tags)

    # ------------------------------------------------------------------
    # retrieval / queries
    # ------------------------------------------------------------------
    def get(self, version_id: str) -> ModelVersion:
        """Version record by id."""
        if version_id not in self.versions:
            raise KeyError(f"unknown version {version_id!r}")
        return self.versions[version_id]

    def load_bytes(self, version_id: str) -> bytes:
        """Raw artifact bytes for a version."""
        return self.store.get(self.get(version_id).digest)

    def load_model(self, version_id: str):
        """Deserialize a registered Sequential model."""
        from repro.nn.model import Sequential

        return Sequential.from_bytes(self.load_bytes(version_id))

    def load_graph(self, version_id: str):
        """Deserialize a registered GraphIR artifact."""
        from repro.exchange.graph import GraphIR

        return GraphIR.from_bytes(self.load_bytes(version_id))

    def versions_of(self, model_name: str, kind: Optional[str] = None) -> List[ModelVersion]:
        """All versions of a logical model, oldest first."""
        out = [v for v in self.versions.values() if v.model_name == model_name]
        if kind is not None:
            out = [v for v in out if v.kind == kind]
        return sorted(out, key=lambda v: v.created_at)

    def latest(self, model_name: str, kind: Optional[str] = None) -> ModelVersion:
        """Most recent version of a model (optionally of a given kind)."""
        versions = self.versions_of(model_name, kind=kind)
        if not versions:
            raise KeyError(f"no versions registered for {model_name!r}")
        return versions[-1]

    def derived_from(self, version_id: str, recursive: bool = True) -> List[ModelVersion]:
        """Versions derived from ``version_id`` (children or full descendants)."""
        self.get(version_id)
        if recursive:
            ids = nx.descendants(self.lineage, version_id)
        else:
            ids = set(self.lineage.successors(version_id))
        return sorted((self.versions[i] for i in ids), key=lambda v: v.created_at)

    def ancestry(self, version_id: str) -> List[ModelVersion]:
        """All ancestors of a version (the provenance chain)."""
        self.get(version_id)
        ids = nx.ancestors(self.lineage, version_id)
        return sorted((self.versions[i] for i in ids), key=lambda v: v.created_at)

    def find_by_tag(self, **tags: object) -> List[ModelVersion]:
        """Versions whose tags contain all the given key/value pairs."""
        out = []
        for v in self.versions.values():
            if all(v.tags.get(k) == val for k, val in tags.items()):
                out.append(v)
        return sorted(out, key=lambda v: v.created_at)

    # ------------------------------------------------------------------
    # deployments
    # ------------------------------------------------------------------
    def record_deployment(self, device_id: str, version_id: str) -> None:
        """Record that a device now runs ``version_id``."""
        version = self.get(version_id)
        self.deployments.setdefault(device_id, {})[version.model_name] = version_id

    def deployed_version(self, device_id: str, model_name: str) -> Optional[str]:
        """Version a device currently runs for a model (None if not deployed)."""
        return self.deployments.get(device_id, {}).get(model_name)

    def devices_running(self, version_id: str) -> List[str]:
        """Devices currently running a specific version."""
        version = self.get(version_id)
        return sorted(
            dev for dev, models in self.deployments.items() if models.get(version.model_name) == version_id
        )

    def deployment_histogram(self, model_name: str) -> Dict[str, int]:
        """Count of devices per deployed version of a model."""
        hist: Dict[str, int] = {}
        for models in self.deployments.values():
            vid = models.get(model_name)
            if vid:
                hist[vid] = hist.get(vid, 0) + 1
        return hist

    def flip_deployments(self, device_ids: Sequence[str], version_id: str) -> Dict[str, Optional[str]]:
        """Atomically point every device at ``version_id``; returns the previous map.

        The lifecycle promotion/rollback primitive: the returned
        ``{device_id: previous_version_id_or_None}`` mapping is the audit
        trail (and the exact input needed to flip back).
        """
        version = self.get(version_id)
        previous: Dict[str, Optional[str]] = {}
        for device_id in device_ids:
            previous[device_id] = self.deployments.get(device_id, {}).get(version.model_name)
            self.deployments.setdefault(device_id, {})[version.model_name] = version_id
        return previous

    # ------------------------------------------------------------------
    # stages (lifecycle: candidate -> production / rejected)
    # ------------------------------------------------------------------
    def tag_version(self, version_id: str, **tags: object) -> ModelVersion:
        """Merge tags into an existing version (lifecycle gate metrics, stages)."""
        version = self.get(version_id)
        version.tags.update(tags)
        return version

    def set_stage(self, version_id: str, stage: str) -> ModelVersion:
        """Set the lifecycle stage tag (``candidate``/``production``/``rejected``/...)."""
        return self.tag_version(version_id, stage=stage)

    def production(self, model_name: str) -> Optional[ModelVersion]:
        """The newest version of a model staged ``production`` (None if unstaged)."""
        staged = [
            v
            for v in self.versions.values()
            if v.model_name == model_name and v.tags.get("stage") == "production"
        ]
        return max(staged, key=lambda v: v.created_at) if staged else None

    def promote(self, version_id: str) -> ModelVersion:
        """Stage a version ``production``, retiring the previous production one."""
        version = self.get(version_id)
        current = self.production(version.model_name)
        if current is not None and current.version_id != version_id:
            self.set_stage(current.version_id, "retired")
        return self.set_stage(version_id, "production")

    # ------------------------------------------------------------------
    # staleness / retriggering (Section III-A optimization pipeline)
    # ------------------------------------------------------------------
    @staticmethod
    def _variant_key(version: ModelVersion) -> Tuple[str, object, object]:
        """Logical identity of a derived variant across base retrains.

        Pipeline-produced variants carry ``recipe``/``pipeline`` tags
        (:class:`~repro.registry.triggers.TriggerManager` stamps them), so a
        re-derived int8 variant of the new base matches the int8 variant of
        the old base even though their version ids differ.
        """
        return (version.kind, version.tags.get("recipe"), version.tags.get("pipeline"))

    def stale_variants(self, model_name: str) -> List[ModelVersion]:
        """Derived variants whose base is no longer the latest base version.

        When a base model is retrained and re-registered, every variant
        derived from an *older* base is stale and the optimization pipeline
        that produced it must be re-run (paper Section III-A).

        A variant stops being stale once an *equivalent* variant — same
        ``kind`` and same ``recipe``/``pipeline`` tags — has been re-derived
        from the latest base.  Matching by version id here would be a no-op
        (re-derived variants always mint fresh ids), which is exactly the
        bug this filter used to have: re-running a pipeline never cleared
        staleness.
        """
        bases = self.versions_of(model_name, kind="base")
        if len(bases) < 2:
            return []
        latest_base = bases[-1].version_id
        older_bases = {b.version_id for b in bases[:-1]}
        stale: List[ModelVersion] = []
        seen: Set[str] = set()
        for base_id in older_bases:
            for v in self.derived_from(base_id):
                if not v.is_base() and v.version_id not in seen:
                    seen.add(v.version_id)
                    stale.append(v)
        fresh_keys = {
            self._variant_key(v) for v in self.derived_from(latest_base) if not v.is_base()
        }
        return sorted(
            (v for v in stale if self._variant_key(v) not in fresh_keys),
            key=lambda v: v.created_at,
        )

    def stats(self) -> Dict[str, object]:
        """Registry-wide statistics for dashboards and the E3 benchmark."""
        kinds: Dict[str, int] = {}
        for v in self.versions.values():
            kinds[v.kind] = kinds.get(v.kind, 0) + 1
        return {
            "n_versions": len(self.versions),
            "n_models": len({v.model_name for v in self.versions.values()}),
            "n_edges": self.lineage.number_of_edges(),
            "by_kind": kinds,
            "store_bytes": self.store.total_bytes(),
            "n_deployed_devices": len(self.deployments),
        }
