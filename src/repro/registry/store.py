"""Content-addressed artifact store.

The store keeps serialized model artifacts (graph IR blobs, compiled
packages, watermark metadata) keyed by the SHA-256 of their content.  It
backs the :class:`~repro.registry.versioning.ModelRegistry` and gives the
platform immutable, de-duplicated storage — the property that makes lineage
tracking and reproducible deployments possible.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["StoredArtifact", "ArtifactStore"]


@dataclass(frozen=True)
class StoredArtifact:
    """Metadata record of one stored blob.

    ``aliases`` lists every *additional* logical name the same bytes were
    registered under (content-addressing dedupes the blob, but the identity
    collision is surfaced rather than silently collapsed into the first
    name).  Metadata keys re-put with conflicting values accumulate a tuple
    of the distinct values in put order.
    """

    digest: str
    size_bytes: int
    kind: str
    name: str
    metadata: Tuple[Tuple[str, object], ...] = ()
    aliases: Tuple[str, ...] = ()

    def meta(self) -> Dict[str, object]:
        """Metadata as a plain dict."""
        return dict(self.metadata)

    def names(self) -> Tuple[str, ...]:
        """Every logical name this blob is known under (primary first)."""
        return (self.name,) + self.aliases


class ArtifactStore:
    """In-memory (optionally disk-backed) content-addressed store.

    Parameters
    ----------
    root:
        Optional directory; when given, every blob is also persisted as
        ``<root>/<digest[:2]>/<digest>`` so platform state survives process
        restarts.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self._blobs: Dict[str, bytes] = {}
        self._records: Dict[str, StoredArtifact] = {}
        self.root = root
        if root:
            os.makedirs(root, exist_ok=True)

    # -- write -----------------------------------------------------------
    def put(self, blob: bytes, kind: str = "blob", name: str = "", metadata: Optional[Dict[str, object]] = None) -> StoredArtifact:
        """Store a blob; returns its record.

        Re-putting identical content never stores a second copy, but the
        *identity* of the re-put is not discarded: a different ``name``
        lands in the record's ``aliases``, new ``metadata`` keys merge in
        and conflicting metadata values accumulate as a tuple of the
        distinct values.  A conflicting ``kind`` raises — the same bytes
        cannot be both, say, a ``"model"`` and a ``"calibration-batch"``
        without someone being wrong.
        """
        if not isinstance(blob, (bytes, bytearray)):
            raise TypeError("blob must be bytes")
        digest = hashlib.sha256(blob).hexdigest()
        existing = self._records.get(digest)
        if existing is None:
            self._blobs[digest] = bytes(blob)
            self._records[digest] = StoredArtifact(
                digest=digest,
                size_bytes=len(blob),
                kind=kind,
                name=name or digest[:12],
                metadata=tuple(sorted((metadata or {}).items())),
            )
            if self.root:
                path = self._path(digest)
                os.makedirs(os.path.dirname(path), exist_ok=True)
                with open(path, "wb") as fh:
                    fh.write(blob)
            return self._records[digest]
        if kind != existing.kind:
            raise ValueError(
                f"artifact {digest[:12]} is already stored with kind {existing.kind!r}; "
                f"re-putting it as kind {kind!r} conflicts"
            )
        name = name or digest[:12]
        aliases = existing.aliases
        if name != existing.name and name not in aliases:
            aliases = aliases + (name,)
        merged = dict(existing.metadata)
        for key, value in (metadata or {}).items():
            if key not in merged:
                merged[key] = value
            elif merged[key] != value:
                prior = merged[key] if isinstance(merged[key], tuple) else (merged[key],)
                if value not in prior:
                    merged[key] = prior + (value,)
        record = replace(existing, aliases=aliases, metadata=tuple(sorted(merged.items())))
        self._records[digest] = record
        return record

    def put_object(self, obj: object, kind: str = "object", name: str = "", metadata: Optional[Dict[str, object]] = None) -> StoredArtifact:
        """Pickle and store an arbitrary Python object."""
        return self.put(pickle.dumps(obj), kind=kind, name=name, metadata=metadata)

    # -- read ---------------------------------------------------------------
    def get(self, digest: str) -> bytes:
        """Retrieve a blob by digest (memory first, then disk)."""
        if digest in self._blobs:
            return self._blobs[digest]
        if self.root:
            path = self._path(digest)
            if os.path.exists(path):
                with open(path, "rb") as fh:
                    blob = fh.read()
                self._blobs[digest] = blob
                return blob
        raise KeyError(f"no artifact with digest {digest!r}")

    def get_object(self, digest: str) -> object:
        """Unpickle a stored object."""
        return pickle.loads(self.get(digest))

    def record(self, digest: str) -> StoredArtifact:
        """Metadata record for a digest."""
        if digest not in self._records:
            raise KeyError(f"no artifact with digest {digest!r}")
        return self._records[digest]

    def __contains__(self, digest: str) -> bool:
        return digest in self._blobs or (self.root is not None and os.path.exists(self._path(digest)))

    def __len__(self) -> int:
        return len(self._blobs)

    def __iter__(self) -> Iterator[StoredArtifact]:
        return iter(self._records.values())

    def total_bytes(self) -> int:
        """Total stored payload size (deduplicated)."""
        return sum(r.size_bytes for r in self._records.values())

    def verify(self, digest: str) -> bool:
        """Re-hash the stored blob and compare to its digest (integrity check)."""
        try:
            blob = self.get(digest)
        except KeyError:
            return False
        return hashlib.sha256(blob).hexdigest() == digest

    def _path(self, digest: str) -> str:
        assert self.root is not None
        return os.path.join(self.root, digest[:2], digest)
