"""Observability: drift detection, telemetry, sketches, privacy, alerting."""

from .drift import (
    DriftResult,
    JSDetector,
    KSDetector,
    MMDDetector,
    PredictionDistributionMonitor,
    PSIDetector,
    StreamingDriftDetector,
    jensen_shannon_divergence,
    ks_statistic,
    mmd_rbf,
    population_stability_index,
)
from .monitor import Alert, AlertEngine, AlertRule, EdgeMonitor
from .privacy import (
    debias_histogram,
    epsilon_for_flip_probability,
    laplace_mechanism,
    privatize_histogram,
    randomized_response,
)
from .sketches import CountMinSketch, P2Quantile, ReservoirSample, RunningMoments, StreamingHistogram
from .telemetry import QueryRecord, TelemetryAggregator, TelemetryRecorder, TelemetryReport

__all__ = [
    "ks_statistic",
    "population_stability_index",
    "jensen_shannon_divergence",
    "mmd_rbf",
    "DriftResult",
    "StreamingDriftDetector",
    "KSDetector",
    "PSIDetector",
    "JSDetector",
    "MMDDetector",
    "PredictionDistributionMonitor",
    "EdgeMonitor",
    "Alert",
    "AlertRule",
    "AlertEngine",
    "QueryRecord",
    "TelemetryRecorder",
    "TelemetryReport",
    "TelemetryAggregator",
    "RunningMoments",
    "ReservoirSample",
    "CountMinSketch",
    "StreamingHistogram",
    "P2Quantile",
    "randomized_response",
    "privatize_histogram",
    "debias_histogram",
    "laplace_mechanism",
    "epsilon_for_flip_probability",
]
