"""On-device monitor + fleet-level sweep + backend alerting rules.

Ties the observability pieces together: an :class:`EdgeMonitor` wraps a
deployed model executor with drift detectors, prediction-distribution
monitoring and a telemetry recorder; :class:`FleetMonitor` stacks the
windows of every device sharing a deployment into one vectorized drift
sweep (the fleet observability hot path); :class:`AlertRule` /
:class:`AlertEngine` turn fleet-level aggregates into actionable alerts
(the "detect when the model goes wrong" requirement of paper Section III /
III-B).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.dispatch import resolve_engine

from .drift import (
    DriftResult,
    JSDetector,
    KSDetector,
    MMDDetector,
    PredictionDistributionMonitor,
    PSIDetector,
    StreamingDriftDetector,
    jensen_shannon_divergence_columns,
    ks_statistic_columns,
    population_stability_index_columns,
    prediction_js_columns,
)
from .telemetry import QueryRecord, TelemetryRecorder, TelemetryReport

__all__ = ["EdgeMonitor", "FleetMonitor", "Alert", "AlertRule", "AlertEngine"]

_DETECTORS = {
    "ks": KSDetector,
    "psi": PSIDetector,
    "js": JSDetector,
    "mmd": MMDDetector,
}


class EdgeMonitor:
    """Per-device monitor: input drift, output drift and telemetry.

    Parameters
    ----------
    device_id:
        The device this monitor runs on.
    reference_inputs:
        A sample of the model's training/validation inputs (flattened
        internally), shipped with the deployment manifest.
    reference_predictions:
        Predicted classes of the reference inputs (for output-drift checks).
    num_classes:
        Number of classes of the deployed classifier.
    detectors:
        Which input-drift detectors to run (subset of ks/psi/js/mmd).
    engine:
        Detector scoring path (:mod:`repro.dispatch` convention):
        ``"batched"`` (default) is the vectorized all-columns-at-once path,
        ``"oracle"`` the per-column loop the benchmarks use as the
        baseline.  The boolean ``batched=`` keyword is a deprecated alias.
    """

    def __init__(
        self,
        device_id: str,
        reference_inputs: np.ndarray,
        reference_predictions: Optional[np.ndarray] = None,
        num_classes: int = 0,
        detectors: Sequence[str] = ("ks", "psi"),
        model_version: str = "",
        thresholds: Optional[Dict[str, float]] = None,
        engine: Optional[str] = None,
        batched: Optional[bool] = None,
    ) -> None:
        engine = resolve_engine(engine, batched, owner="EdgeMonitor()")
        self.device_id = device_id
        reference_inputs = np.asarray(reference_inputs, dtype=np.float64)
        flat_ref = reference_inputs.reshape(reference_inputs.shape[0], -1)
        self.detectors: Dict[str, StreamingDriftDetector] = {}
        thresholds = thresholds or {}
        for name in detectors:
            if name not in _DETECTORS:
                raise KeyError(f"unknown detector {name!r}; known: {sorted(_DETECTORS)}")
            cls = _DETECTORS[name]
            if name in thresholds:
                self.detectors[name] = cls(flat_ref, threshold=thresholds[name], engine=engine)
            else:
                self.detectors[name] = cls(flat_ref, engine=engine)
        self.prediction_monitor = (
            PredictionDistributionMonitor(reference_predictions, num_classes)
            if reference_predictions is not None and num_classes
            else None
        )
        self.telemetry = TelemetryRecorder(device_id, model_version=model_version, num_classes=num_classes)
        self.drift_events: List[Dict[str, object]] = []
        self._window_index = 0

    # -- per-window processing ------------------------------------------------
    def observe_window(
        self,
        inputs: np.ndarray,
        predictions: Optional[np.ndarray] = None,
        latencies: Optional[np.ndarray] = None,
        energies: Optional[np.ndarray] = None,
        memories: Optional[np.ndarray] = None,
    ) -> Dict[str, DriftResult]:
        """Process one window of on-device traffic; returns per-detector results."""
        inputs = np.asarray(inputs, dtype=np.float64)
        flat = inputs.reshape(inputs.shape[0], -1)
        results: Dict[str, DriftResult] = {}
        for name, detector in self.detectors.items():
            results[name] = detector.check(flat)
        if predictions is not None and self.prediction_monitor is not None:
            results["prediction"] = self.prediction_monitor.check(predictions)
        self._finish_window(results, predictions, latencies, energies, memories)
        return results

    def _finish_window(
        self,
        results: Dict[str, DriftResult],
        predictions: Optional[np.ndarray],
        latencies: Optional[np.ndarray],
        energies: Optional[np.ndarray],
        memories: Optional[np.ndarray],
    ) -> None:
        """Telemetry + drift-event bookkeeping shared with the fleet sweep."""
        if latencies is not None:
            self.telemetry.record_batch(
                latencies,
                energies if energies is not None else np.zeros_like(latencies),
                memories if memories is not None else np.zeros_like(latencies),
                predictions,
            )
        window = self._window_index
        self._window_index += 1
        if any(r.drifted for r in results.values()):
            self.drift_events.append(
                {
                    "window": window,
                    "detectors": [k for k, r in results.items() if r.drifted],
                }
            )

    def any_drift(self) -> bool:
        """Whether any detector has fired so far."""
        return bool(self.drift_events)

    def drift_events_since(self, cursor: int = 0) -> Tuple[List[Dict[str, object]], int]:
        """Drift events appended at or after ``cursor``, plus the new cursor.

        The consumption primitive for closed-loop automation
        (:mod:`repro.lifecycle`): a consumer keeps the returned cursor and
        polls again later, seeing each event exactly once without the
        monitor having to track its consumers.
        """
        cursor = max(0, int(cursor))
        return list(self.drift_events[cursor:]), len(self.drift_events)

    def build_report(self) -> TelemetryReport:
        """Telemetry payload for the next sync opportunity."""
        return self.telemetry.build_report()


class FleetMonitor:
    """One-sweep drift monitoring across devices sharing a deployment.

    Devices deployed from the same manifest carry identical reference
    windows, so their per-window drift checks are the *same* statistic
    evaluated against the same reference — only the live windows differ.
    :meth:`observe_fleet` exploits this: the windows of every compatible
    device are stacked side-by-side into one multi-column matrix and scored
    by the vectorized column detectors in a handful of NumPy calls, then
    each device's :class:`EdgeMonitor` records its own
    :class:`~repro.observability.drift.DriftResult`, telemetry batch and
    drift event exactly as a per-device :meth:`EdgeMonitor.observe_window`
    loop would — histories, statistics and telemetry payloads are
    identical (the differential tests assert it).

    Stacking rules (anything else falls back to the per-device path, so
    correctness never depends on batching):

    * devices batch together only when their monitors share the detector
      configuration, the reference sample (byte-equal), the
      prediction-monitor configuration and the flattened window shape;
    * KS / PSI / JS detectors in batched mode with column-aligned windows
      are swept in one call; MMD, oracle-mode detectors and
      shape-mismatched windows run per-device;
    * empty windows are skipped entirely (the serving engine never monitors
      a window with zero served queries).

    Monitors are treated as **immutable after construction**: compatibility
    signatures (detector set, reference digest) are computed once, so
    mutating a monitor in place afterwards (swapping ``detectors`` entries,
    rewriting ``detector.reference``) desynchronizes the grouping — replace
    the monitor and build a new ``FleetMonitor`` instead
    (:class:`~repro.core.serving.ServingEngine` invalidates its cached
    instance exactly on such replacement).  A detector *added* in place is
    tolerated: it simply scores per-device.
    """

    def __init__(self, monitors: Mapping[str, EdgeMonitor]) -> None:
        self.monitors: Dict[str, EdgeMonitor] = dict(monitors)
        self._signatures: Dict[str, tuple] = {
            device_id: self._monitor_signature(monitor)
            for device_id, monitor in self.monitors.items()
        }

    # ------------------------------------------------------------------
    @staticmethod
    def _digest(array: np.ndarray) -> str:
        return hashlib.blake2b(np.ascontiguousarray(array).tobytes(), digest_size=16).hexdigest()

    def _monitor_signature(self, monitor: EdgeMonitor) -> tuple:
        """Compatibility key: monitors with equal signatures may stack."""
        det_sig = tuple(
            (name, type(det).__name__, det.threshold, getattr(det, "bins", None), det.batched)
            for name, det in monitor.detectors.items()
        )
        ref_sig = None
        if monitor.detectors:
            ref = next(iter(monitor.detectors.values())).reference
            ref_sig = (ref.shape, self._digest(ref))
        pm = monitor.prediction_monitor
        pred_sig = (
            (pm.num_classes, pm.threshold, pm.eps, self._digest(pm.reference_dist))
            if pm is not None
            else None
        )
        return (det_sig, ref_sig, pred_sig)

    @staticmethod
    def _column_scorer(detector: StreamingDriftDetector):
        """Vectorized multi-column scorer for a detector, or None."""
        if type(detector) is KSDetector:
            return ks_statistic_columns
        if type(detector) is PSIDetector:
            return lambda rs, lv: population_stability_index_columns(rs, lv, bins=detector.bins)
        if type(detector) is JSDetector:
            return lambda rs, lv: jensen_shannon_divergence_columns(rs, lv, bins=detector.bins)
        return None

    # ------------------------------------------------------------------
    def observe_fleet(
        self,
        windows: Mapping[str, np.ndarray],
        predictions: Optional[Mapping[str, np.ndarray]] = None,
        latencies: Optional[Mapping[str, np.ndarray]] = None,
        energies: Optional[Mapping[str, np.ndarray]] = None,
        memories: Optional[Mapping[str, np.ndarray]] = None,
    ) -> Dict[str, Dict[str, DriftResult]]:
        """Observe one traffic window for many devices in one sweep.

        All mappings are keyed by device id; every device in ``windows``
        must have a registered monitor.  Returns the same
        ``{device_id: {detector: DriftResult}}`` a per-device
        :meth:`EdgeMonitor.observe_window` loop would.
        """
        predictions = predictions or {}
        latencies = latencies or {}
        energies = energies or {}
        memories = memories or {}
        buckets: Dict[tuple, List[Tuple[str, np.ndarray]]] = {}
        for device_id, inputs in windows.items():
            inputs = np.asarray(inputs, dtype=np.float64)
            if inputs.shape[0] == 0:
                continue
            flat = inputs if inputs.ndim == 2 else inputs.reshape(inputs.shape[0], -1)
            key = (self._signatures[device_id], flat.shape)
            buckets.setdefault(key, []).append((device_id, flat))
        results: Dict[str, Dict[str, DriftResult]] = {}
        for group in buckets.values():
            self._observe_group(group, predictions, latencies, energies, memories, results)
        return results

    def _observe_group(
        self,
        group: List[Tuple[str, np.ndarray]],
        predictions: Mapping[str, np.ndarray],
        latencies: Mapping[str, np.ndarray],
        energies: Mapping[str, np.ndarray],
        memories: Mapping[str, np.ndarray],
        results: Dict[str, Dict[str, DriftResult]],
    ) -> None:
        device_ids = [device_id for device_id, _ in group]
        first = self.monitors[device_ids[0]]
        g = len(group)
        n_cols = group[0][1].shape[1]
        # One vectorized sweep per batchable detector over all g windows.
        stats_per_detector: Dict[str, Optional[np.ndarray]] = {}
        stack: Optional[np.ndarray] = None
        for name, det in first.detectors.items():
            scorer = self._column_scorer(det)
            if (
                scorer is None
                or not det.batched
                or det.reference.ndim != 2
                or det.reference.shape[1] != n_cols
            ):
                stats_per_detector[name] = None
                continue
            if stack is None:
                stack = np.hstack([flat for _, flat in group])
            stats_per_detector[name] = scorer(det.reference_sorted, stack).reshape(g, n_cols).max(axis=1)
        pred_stats = self._prediction_stats(device_ids, predictions, first.prediction_monitor)
        for i, (device_id, flat) in enumerate(group):
            monitor = self.monitors[device_id]
            device_results: Dict[str, DriftResult] = {}
            for name, det in monitor.detectors.items():
                # .get(): a detector added in place after construction is
                # absent from the sweep and scores per-device.
                stats = stats_per_detector.get(name)
                device_results[name] = det.check(flat) if stats is None else det.record(float(stats[i]))
            preds = predictions.get(device_id)
            if preds is not None and monitor.prediction_monitor is not None:
                if pred_stats is not None:
                    device_results["prediction"] = monitor.prediction_monitor.record(float(pred_stats[i]))
                else:
                    device_results["prediction"] = monitor.prediction_monitor.check(preds)
            monitor._finish_window(
                device_results,
                preds,
                latencies.get(device_id),
                energies.get(device_id),
                memories.get(device_id),
            )
            results[device_id] = device_results

    @staticmethod
    def _prediction_stats(
        device_ids: List[str],
        predictions: Mapping[str, np.ndarray],
        prediction_monitor: Optional[PredictionDistributionMonitor],
    ) -> Optional[np.ndarray]:
        """Batched prediction-distribution statistics, or None to go per-device."""
        if prediction_monitor is None:
            return None
        preds = [predictions.get(device_id) for device_id in device_ids]
        if any(p is None for p in preds):
            return None
        arrays = [np.asarray(p, dtype=int).ravel() for p in preds]
        num_classes = prediction_monitor.num_classes
        lens = np.array([a.size for a in arrays])
        if lens.sum() == 0:
            return np.zeros(len(device_ids))
        flat = np.concatenate(arrays)
        if flat.min() < 0 or flat.max() >= num_classes:
            return None  # out-of-range classes: keep the oracle's semantics
        offsets = np.repeat(np.arange(len(device_ids)) * num_classes, lens)
        counts = np.bincount(flat + offsets, minlength=len(device_ids) * num_classes).reshape(
            len(device_ids), num_classes
        )
        return prediction_js_columns(prediction_monitor.reference_dist, counts, prediction_monitor.eps)


@dataclass(frozen=True)
class Alert:
    """An alert raised by the backend alerting engine."""

    rule: str
    severity: str
    message: str
    context: Tuple[Tuple[str, object], ...] = ()


@dataclass
class AlertRule:
    """A named predicate over fleet-level summary metrics."""

    name: str
    predicate: Callable[[Dict[str, float]], bool]
    severity: str = "warning"
    message: str = ""

    def evaluate(self, metrics: Dict[str, float]) -> Optional[Alert]:
        """Return an alert when the predicate fires."""
        if self.predicate(metrics):
            return Alert(
                rule=self.name,
                severity=self.severity,
                message=self.message or f"rule {self.name} fired",
                context=tuple(sorted(metrics.items())),
            )
        return None


class AlertEngine:
    """Evaluates alert rules against metric dictionaries and keeps history."""

    def __init__(self, rules: Optional[Sequence[AlertRule]] = None) -> None:
        self.rules: List[AlertRule] = list(rules or [])
        self.alerts: List[Alert] = []

    def add_rule(self, rule: AlertRule) -> None:
        self.rules.append(rule)

    def evaluate(self, metrics: Dict[str, float]) -> List[Alert]:
        """Run all rules; append and return any alerts raised."""
        raised = []
        for rule in self.rules:
            alert = rule.evaluate(metrics)
            if alert is not None:
                raised.append(alert)
        self.alerts.extend(raised)
        return raised

    def alerts_since(self, cursor: int = 0) -> Tuple[List[Alert], int]:
        """Alerts raised at or after ``cursor``, plus the new cursor.

        Cursor-based consumption (see :meth:`EdgeMonitor.drift_events_since`)
        so lifecycle automation can react to each alert exactly once.
        """
        cursor = max(0, int(cursor))
        return list(self.alerts[cursor:]), len(self.alerts)

    @classmethod
    def default_rules(cls, latency_budget_s: float = 0.1, drift_rate_threshold: float = 0.2) -> "AlertEngine":
        """A sensible default rule set for the examples and benchmarks."""
        return cls(
            [
                AlertRule(
                    name="latency_budget",
                    predicate=lambda m: m.get("latency_mean", 0.0) > latency_budget_s,
                    severity="warning",
                    message="fleet mean latency exceeds budget",
                ),
                AlertRule(
                    name="drift_rate",
                    predicate=lambda m: m.get("drift_fraction", 0.0) > drift_rate_threshold,
                    severity="critical",
                    message="too many devices reporting input drift",
                ),
                AlertRule(
                    name="battery_failures",
                    predicate=lambda m: m.get("failed_inference_fraction", 0.0) > 0.05,
                    severity="warning",
                    message="inference failures due to depleted batteries",
                ),
            ]
        )
