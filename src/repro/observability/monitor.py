"""On-device monitor + backend alerting rules.

Ties the observability pieces together: an :class:`EdgeMonitor` wraps a
deployed model executor with drift detectors, prediction-distribution
monitoring and a telemetry recorder; :class:`AlertRule` / :class:`AlertEngine`
turn fleet-level aggregates into actionable alerts (the "detect when the
model goes wrong" requirement of paper Section III / III-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .drift import (
    DriftResult,
    JSDetector,
    KSDetector,
    MMDDetector,
    PredictionDistributionMonitor,
    PSIDetector,
    StreamingDriftDetector,
)
from .telemetry import QueryRecord, TelemetryRecorder, TelemetryReport

__all__ = ["EdgeMonitor", "Alert", "AlertRule", "AlertEngine"]

_DETECTORS = {
    "ks": KSDetector,
    "psi": PSIDetector,
    "js": JSDetector,
    "mmd": MMDDetector,
}


class EdgeMonitor:
    """Per-device monitor: input drift, output drift and telemetry.

    Parameters
    ----------
    device_id:
        The device this monitor runs on.
    reference_inputs:
        A sample of the model's training/validation inputs (flattened
        internally), shipped with the deployment manifest.
    reference_predictions:
        Predicted classes of the reference inputs (for output-drift checks).
    num_classes:
        Number of classes of the deployed classifier.
    detectors:
        Which input-drift detectors to run (subset of ks/psi/js/mmd).
    """

    def __init__(
        self,
        device_id: str,
        reference_inputs: np.ndarray,
        reference_predictions: Optional[np.ndarray] = None,
        num_classes: int = 0,
        detectors: Sequence[str] = ("ks", "psi"),
        model_version: str = "",
        thresholds: Optional[Dict[str, float]] = None,
    ) -> None:
        self.device_id = device_id
        reference_inputs = np.asarray(reference_inputs, dtype=np.float64)
        flat_ref = reference_inputs.reshape(reference_inputs.shape[0], -1)
        self.detectors: Dict[str, StreamingDriftDetector] = {}
        thresholds = thresholds or {}
        for name in detectors:
            if name not in _DETECTORS:
                raise KeyError(f"unknown detector {name!r}; known: {sorted(_DETECTORS)}")
            cls = _DETECTORS[name]
            if name in thresholds:
                self.detectors[name] = cls(flat_ref, threshold=thresholds[name])
            else:
                self.detectors[name] = cls(flat_ref)
        self.prediction_monitor = (
            PredictionDistributionMonitor(reference_predictions, num_classes)
            if reference_predictions is not None and num_classes
            else None
        )
        self.telemetry = TelemetryRecorder(device_id, model_version=model_version, num_classes=num_classes)
        self.drift_events: List[Dict[str, object]] = []

    # -- per-window processing ------------------------------------------------
    def observe_window(
        self,
        inputs: np.ndarray,
        predictions: Optional[np.ndarray] = None,
        latencies: Optional[np.ndarray] = None,
        energies: Optional[np.ndarray] = None,
        memories: Optional[np.ndarray] = None,
    ) -> Dict[str, DriftResult]:
        """Process one window of on-device traffic; returns per-detector results."""
        inputs = np.asarray(inputs, dtype=np.float64)
        flat = inputs.reshape(inputs.shape[0], -1)
        results: Dict[str, DriftResult] = {}
        for name, detector in self.detectors.items():
            results[name] = detector.check(flat)
        if predictions is not None and self.prediction_monitor is not None:
            results["prediction"] = self.prediction_monitor.check(predictions)
        if latencies is not None:
            self.telemetry.record_batch(
                latencies,
                energies if energies is not None else np.zeros_like(latencies),
                memories if memories is not None else np.zeros_like(latencies),
                predictions,
            )
        if any(r.drifted for r in results.values()):
            self.drift_events.append(
                {
                    "window": len(next(iter(self.detectors.values())).history) - 1 if self.detectors else 0,
                    "detectors": [k for k, r in results.items() if r.drifted],
                }
            )
        return results

    def any_drift(self) -> bool:
        """Whether any detector has fired so far."""
        return bool(self.drift_events)

    def build_report(self) -> TelemetryReport:
        """Telemetry payload for the next sync opportunity."""
        return self.telemetry.build_report()


@dataclass(frozen=True)
class Alert:
    """An alert raised by the backend alerting engine."""

    rule: str
    severity: str
    message: str
    context: Tuple[Tuple[str, object], ...] = ()


@dataclass
class AlertRule:
    """A named predicate over fleet-level summary metrics."""

    name: str
    predicate: Callable[[Dict[str, float]], bool]
    severity: str = "warning"
    message: str = ""

    def evaluate(self, metrics: Dict[str, float]) -> Optional[Alert]:
        """Return an alert when the predicate fires."""
        if self.predicate(metrics):
            return Alert(
                rule=self.name,
                severity=self.severity,
                message=self.message or f"rule {self.name} fired",
                context=tuple(sorted(metrics.items())),
            )
        return None


class AlertEngine:
    """Evaluates alert rules against metric dictionaries and keeps history."""

    def __init__(self, rules: Optional[Sequence[AlertRule]] = None) -> None:
        self.rules: List[AlertRule] = list(rules or [])
        self.alerts: List[Alert] = []

    def add_rule(self, rule: AlertRule) -> None:
        self.rules.append(rule)

    def evaluate(self, metrics: Dict[str, float]) -> List[Alert]:
        """Run all rules; append and return any alerts raised."""
        raised = []
        for rule in self.rules:
            alert = rule.evaluate(metrics)
            if alert is not None:
                raised.append(alert)
        self.alerts.extend(raised)
        return raised

    @classmethod
    def default_rules(cls, latency_budget_s: float = 0.1, drift_rate_threshold: float = 0.2) -> "AlertEngine":
        """A sensible default rule set for the examples and benchmarks."""
        return cls(
            [
                AlertRule(
                    name="latency_budget",
                    predicate=lambda m: m.get("latency_mean", 0.0) > latency_budget_s,
                    severity="warning",
                    message="fleet mean latency exceeds budget",
                ),
                AlertRule(
                    name="drift_rate",
                    predicate=lambda m: m.get("drift_fraction", 0.0) > drift_rate_threshold,
                    severity="critical",
                    message="too many devices reporting input drift",
                ),
                AlertRule(
                    name="battery_failures",
                    predicate=lambda m: m.get("failed_inference_fraction", 0.0) > 0.05,
                    severity="warning",
                    message="inference failures due to depleted batteries",
                ),
            ]
        )
