"""Drift detection: distribution-distance tests between reference and live data.

The core of the observability block of Figure 1: each deployed model ships
with a reference window (statistics of its training/validation inputs); the
on-device monitor compares the live input distribution against it and raises
a drift signal when the distance exceeds a threshold.  Detectors:

* :func:`ks_statistic` / :class:`KSDetector` — Kolmogorov–Smirnov two-sample.
* :func:`population_stability_index` / :class:`PSIDetector` — the PSI score
  common in industry monitoring.  Note: with small on-device windows the
  per-feature maximum PSI is noisy, so the default streaming threshold is
  raised to 1.0 (large-sample monitoring typically uses 0.2).
* :func:`jensen_shannon_divergence` / :class:`JSDetector` — histogram-based.
* :func:`mmd_rbf` / :class:`MMDDetector` — kernel maximum mean discrepancy
  for multivariate features.
* :class:`PredictionDistributionMonitor` — drift in the model's *output*
  distribution (no labels needed).

Two scoring paths produce the same statistics:

* The **per-column oracle** (:meth:`StreamingDriftDetector._per_feature_max`)
  runs one :func:`ks_statistic` / :func:`population_stability_index` /
  :func:`jensen_shannon_divergence` call per feature column — one
  ``scipy.stats.ks_2samp`` and two ``np.histogram`` calls per column.
* The **batched path** (:func:`ks_statistic_columns`,
  :func:`population_stability_index_columns`,
  :func:`jensen_shannon_divergence_columns`) scores *all* columns — across
  features, and across every device of a fleet sharing the reference — in a
  handful of vectorized NumPy calls, with statistics bit-identical to the
  oracle (the differential suite in ``tests/observability`` asserts exact
  equality).  Detectors default to the batched path; construct them with
  ``engine="oracle"`` (the unified toggle of :mod:`repro.dispatch`; the old
  ``batched=False`` keyword is a deprecated alias) to keep the oracle in
  the hot loop (benchmarks use this as the baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.dispatch import ENGINE_BATCHED, resolve_engine

__all__ = [
    "ks_statistic",
    "population_stability_index",
    "jensen_shannon_divergence",
    "mmd_rbf",
    "ks_statistic_columns",
    "fused_histogram_counts",
    "population_stability_index_columns",
    "jensen_shannon_divergence_columns",
    "prediction_js_columns",
    "DriftResult",
    "StreamingDriftDetector",
    "KSDetector",
    "PSIDetector",
    "JSDetector",
    "MMDDetector",
    "PredictionDistributionMonitor",
]


# ---------------------------------------------------------------------------
# distance functions
# ---------------------------------------------------------------------------

def ks_statistic(reference: np.ndarray, live: np.ndarray) -> Tuple[float, float]:
    """Two-sample KS statistic and p-value on 1-D samples."""
    ref = np.asarray(reference, dtype=np.float64).ravel()
    cur = np.asarray(live, dtype=np.float64).ravel()
    if ref.size == 0 or cur.size == 0:
        return 0.0, 1.0
    result = stats.ks_2samp(ref, cur, method="asymp")
    return float(result.statistic), float(result.pvalue)


def _histogram_pair(reference: np.ndarray, live: np.ndarray, bins: int) -> Tuple[np.ndarray, np.ndarray]:
    ref = np.asarray(reference, dtype=np.float64).ravel()
    cur = np.asarray(live, dtype=np.float64).ravel()
    lo = min(ref.min(), cur.min())
    hi = max(ref.max(), cur.max())
    if hi <= lo:
        hi = lo + 1e-9
    edges = np.linspace(lo, hi, bins + 1)
    p, _ = np.histogram(ref, bins=edges)
    q, _ = np.histogram(cur, bins=edges)
    return p.astype(np.float64), q.astype(np.float64)


def population_stability_index(reference: np.ndarray, live: np.ndarray, bins: int = 10, eps: float = 1e-4) -> float:
    """PSI between two 1-D samples. Rule of thumb: >0.2 indicates major shift."""
    p, q = _histogram_pair(reference, live, bins)
    p = np.clip(p / max(p.sum(), 1.0), eps, None)
    q = np.clip(q / max(q.sum(), 1.0), eps, None)
    p /= p.sum()
    q /= q.sum()
    return float(np.sum((q - p) * np.log(q / p)))


def jensen_shannon_divergence(reference: np.ndarray, live: np.ndarray, bins: int = 32, eps: float = 1e-12) -> float:
    """Jensen–Shannon divergence (base 2, in [0, 1]) between histogram densities."""
    p, q = _histogram_pair(reference, live, bins)
    p = p / max(p.sum(), 1.0) + eps
    q = q / max(q.sum(), 1.0) + eps
    p /= p.sum()
    q /= q.sum()
    m = 0.5 * (p + q)
    kl_pm = np.sum(p * np.log2(p / m))
    kl_qm = np.sum(q * np.log2(q / m))
    return float(0.5 * kl_pm + 0.5 * kl_qm)


def mmd_rbf(reference: np.ndarray, live: np.ndarray, gamma: Optional[float] = None, max_samples: int = 512, seed: int = 0) -> float:
    """Unbiased-ish squared MMD with an RBF kernel on multivariate samples.

    Subsamples both sets to ``max_samples`` to bound the quadratic cost on
    device-sized windows; ``gamma`` defaults to the median heuristic.
    """
    rng = np.random.default_rng(seed)
    x = np.asarray(reference, dtype=np.float64)
    y = np.asarray(live, dtype=np.float64)
    x = x.reshape(x.shape[0], -1)
    y = y.reshape(y.shape[0], -1)
    if x.shape[0] > max_samples:
        x = x[rng.choice(x.shape[0], max_samples, replace=False)]
    if y.shape[0] > max_samples:
        y = y[rng.choice(y.shape[0], max_samples, replace=False)]
    if x.shape[0] < 2 or y.shape[0] < 2:
        return 0.0

    def sq_dists(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        aa = np.sum(a * a, axis=1)[:, None]
        bb = np.sum(b * b, axis=1)[None, :]
        return np.maximum(aa + bb - 2.0 * a @ b.T, 0.0)

    dxy = sq_dists(x, y)
    if gamma is None:
        med = float(np.median(dxy))
        gamma = 1.0 / max(med, 1e-12)
    kxx = np.exp(-gamma * sq_dists(x, x))
    kyy = np.exp(-gamma * sq_dists(y, y))
    kxy = np.exp(-gamma * dxy)
    n, m = x.shape[0], y.shape[0]
    term_x = (kxx.sum() - np.trace(kxx)) / (n * (n - 1))
    term_y = (kyy.sum() - np.trace(kyy)) / (m * (m - 1))
    return float(term_x + term_y - 2.0 * kxy.mean())


# ---------------------------------------------------------------------------
# vectorized multi-column scoring (the fleet observability hot path)
# ---------------------------------------------------------------------------

def ks_statistic_columns(reference_sorted: np.ndarray, live: np.ndarray) -> np.ndarray:
    """Two-sample KS statistics for every column in one vectorized pass.

    ``reference_sorted`` is the column-sorted reference ``(n_ref, d)``;
    ``live`` is ``(n_live, C)`` where ``C`` is a multiple of ``d`` — column
    ``c`` of ``live`` is scored against reference column ``c % d``, so a
    fleet of ``g`` devices sharing one reference stacks its windows
    side-by-side into ``C = g * d`` columns and pays the reference-lookup
    cost once per *feature*, not once per (device, feature).

    Bit-identical to ``scipy.stats.ks_2samp(ref, live).statistic`` per
    column: both evaluate ``|ECDF_ref - ECDF_live|`` at every sample with
    the same integer rank counts and the same float divisions.  Instead of
    sorting the merged sample per column (what scipy does), the live window
    is sorted once for all columns and the reference ranks come from two
    ``searchsorted`` lookups per feature against the *pre-sorted* reference.
    The max gap over the merged sample is recovered from the live points
    alone: between consecutive live values the live ECDF is constant, so the
    gap is extremal either **at** a live point (right-continuous ranks) or
    **just below** one (left ranks) — and the gap at the global maximum is
    always exactly 0, which the ``maximum(..., 0)`` / ``minimum(..., 0)``
    terms account for.
    """
    ref = np.asarray(reference_sorted, dtype=np.float64)
    liv = np.asarray(live, dtype=np.float64)
    n1, d = ref.shape
    m, C = liv.shape
    if C % d != 0:
        raise ValueError(f"live columns ({C}) must be a multiple of reference columns ({d})")
    if m == 0:
        return np.zeros(C)
    g = C // d
    L = np.sort(liv, axis=0)
    # Tie-aware ranks of each sorted live value within its own column:
    # rank_left = # live < x (tie-group start), rank_right = # live <= x.
    idx = np.arange(m)[:, None]
    new_grp = np.empty((m, C), dtype=bool)
    new_grp[0] = True
    end_grp = np.empty((m, C), dtype=bool)
    end_grp[-1] = True
    if m > 1:
        np.not_equal(L[1:], L[:-1], out=new_grp[1:])
        end_grp[:-1] = new_grp[1:]
    rank_left = np.where(new_grp, idx, 0)
    np.maximum.accumulate(rank_left, axis=0, out=rank_left)
    rank_right = np.where(end_grp, idx + 1, m)
    rank_right = np.flip(np.minimum.accumulate(np.flip(rank_right, axis=0), axis=0), axis=0)
    # Reference ranks of every live value: two searchsorted calls per
    # feature column, shared across all devices stacked on that feature.
    cnt_left = np.empty((m, C), dtype=np.int64)
    cnt_right = np.empty((m, C), dtype=np.int64)
    for c in range(d):
        cols = slice(c, C, d)
        q = L[:, cols].ravel()
        cnt_left[:, cols] = np.searchsorted(ref[:, c], q, side="left").reshape(m, g)
        cnt_right[:, cols] = np.searchsorted(ref[:, c], q, side="right").reshape(m, g)
    at = cnt_right / n1 - rank_right / m  # ECDF gap at each live point
    sup = cnt_left / n1 - rank_left / m  # ECDF gap just below each live point
    max_s = np.maximum(np.maximum(at.max(axis=0), sup.max(axis=0)), 0.0)
    min_c = np.minimum(np.minimum(at.min(axis=0), sup.min(axis=0)), 0.0)
    min_s = np.clip(-min_c, 0.0, 1.0)
    return np.maximum(min_s, max_s)


def fused_histogram_counts(
    reference_sorted: np.ndarray, live: np.ndarray, bins: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-column :func:`_histogram_pair` counts for all columns in one pass.

    Returns ``(p, q)`` of shape ``(C, bins)`` with the reference and live
    histogram counts over each column's shared-range bins, bit-identical to
    calling ``np.histogram`` twice per column.  As in
    :func:`ks_statistic_columns`, live column ``c`` histograms against
    reference column ``c % d``.

    The live side bins every value with one broadcast comparison against
    the bin edges plus a single offset ``bincount`` over all columns; the
    reference side reuses the pre-sorted reference through two
    ``searchsorted`` calls per feature (exactly the formula ``np.histogram``
    applies internally).  Columns whose bin width underflows to zero (a
    constant column at huge magnitude) fall back to the per-column oracle
    to preserve ``np.linspace``'s degenerate-edge behavior.
    """
    ref = np.asarray(reference_sorted, dtype=np.float64)
    liv = np.asarray(live, dtype=np.float64)
    n1, d = ref.shape
    m, C = liv.shape
    if C % d != 0:
        raise ValueError(f"live columns ({C}) must be a multiple of reference columns ({d})")
    if m == 0:
        raise ValueError("live window must be non-empty")
    g = C // d
    ref_lo = np.tile(ref[0], g)
    ref_hi = np.tile(ref[-1], g)
    lo = np.minimum(ref_lo, liv.min(axis=0))
    hi = np.maximum(ref_hi, liv.max(axis=0))
    hi = np.where(hi <= lo, lo + 1e-9, hi)
    step = (hi - lo) / bins
    good = (step > 0) & np.isfinite(step)
    # Edges exactly as np.linspace(lo, hi, bins + 1) builds them.  NaN/inf
    # ranges (degenerate columns, replaced by the per-column fallback below)
    # may produce invalid-value warnings here — silence them; `good` already
    # excludes those columns.
    with np.errstate(invalid="ignore"):
        edges = np.arange(bins + 1, dtype=np.float64)[:, None] * step[None, :]
        edges += lo
    edges[-1] = hi
    # Live counts: bin index = (# edges <= x) - 1, last bin right-inclusive.
    q_counts = np.empty((C, bins), dtype=np.int64)
    # Block the (rows, bins + 1, cols) broadcast to bound peak memory.
    block = max(1, int(2 ** 22 // max(m * (bins + 1), 1)))
    for start in range(0, C, block):
        stop = min(start + block, C)
        idxs = (liv[:, None, start:stop] >= edges[None, :, start:stop]).sum(axis=1, dtype=np.int64) - 1
        np.minimum(idxs, bins - 1, out=idxs)
        # NaN live values compare False against every edge (idx -1): clamp
        # into the column's own range so a degenerate column cannot corrupt
        # its neighbours' counts — its own counts are replaced by the
        # per-column fallback below (NaN/inf ranges fail the `good` check).
        np.maximum(idxs, 0, out=idxs)
        idxs += np.arange(stop - start) * bins
        q_counts[start:stop] = np.bincount(
            idxs.ravel(), minlength=(stop - start) * bins
        ).reshape(-1, bins)
    # Reference counts: np.histogram's own searchsorted formula, against the
    # pre-sorted reference — one (left, right) lookup pair per feature.
    p_counts = np.empty((C, bins), dtype=np.int64)
    for c in range(d):
        cols = np.arange(c, C, d)
        e = edges[:, cols]
        cum = np.searchsorted(ref[:, c], e.T.ravel(), side="left").reshape(len(cols), bins + 1)
        cum[:, -1] = np.searchsorted(ref[:, c], e[-1, :], side="right")
        p_counts[cols] = np.diff(cum, axis=1)
    with np.errstate(invalid="ignore"):
        for col in np.nonzero(~good)[0]:
            p, q = _histogram_pair(ref[:, col % d], liv[:, col], bins)
            p_counts[col] = p
            q_counts[col] = q
    return p_counts.astype(np.float64), q_counts.astype(np.float64)


def population_stability_index_columns(
    reference_sorted: np.ndarray, live: np.ndarray, bins: int = 10, eps: float = 1e-4
) -> np.ndarray:
    """Per-column PSI for all columns at once (see :func:`fused_histogram_counts`)."""
    p, q = fused_histogram_counts(reference_sorted, live, bins)
    # Degenerate columns carry the oracle's NaN counts through to a NaN
    # statistic; good columns are clipped to eps > 0, so "invalid" can only
    # arise from those NaN columns — suppress the noise.
    with np.errstate(invalid="ignore"):
        p = np.clip(p / np.maximum(p.sum(axis=1), 1.0)[:, None], eps, None)
        q = np.clip(q / np.maximum(q.sum(axis=1), 1.0)[:, None], eps, None)
        p /= p.sum(axis=1, keepdims=True)
        q /= q.sum(axis=1, keepdims=True)
        return np.sum((q - p) * np.log(q / p), axis=1)


def jensen_shannon_divergence_columns(
    reference_sorted: np.ndarray, live: np.ndarray, bins: int = 32, eps: float = 1e-12
) -> np.ndarray:
    """Per-column JS divergence for all columns at once."""
    p, q = fused_histogram_counts(reference_sorted, live, bins)
    # See population_stability_index_columns: NaN only flows from columns
    # the oracle itself scores as NaN.
    with np.errstate(invalid="ignore"):
        p = p / np.maximum(p.sum(axis=1), 1.0)[:, None] + eps
        q = q / np.maximum(q.sum(axis=1), 1.0)[:, None] + eps
        p /= p.sum(axis=1, keepdims=True)
        q /= q.sum(axis=1, keepdims=True)
        m = 0.5 * (p + q)
        return 0.5 * np.sum(p * np.log2(p / m), axis=1) + 0.5 * np.sum(q * np.log2(q / m), axis=1)


# ---------------------------------------------------------------------------
# streaming detectors
# ---------------------------------------------------------------------------

@dataclass
class DriftResult:
    """Outcome of checking one live window against the reference."""

    statistic: float
    threshold: float
    drifted: bool
    detector: str
    detail: Dict[str, float] = field(default_factory=dict)


def _record_result(history: List[DriftResult], statistic: float, threshold: float, detector: str) -> DriftResult:
    """Build, append and return a threshold-compared :class:`DriftResult`."""
    statistic = float(statistic)
    result = DriftResult(
        statistic=statistic,
        threshold=threshold,
        drifted=bool(statistic > threshold),
        detector=detector,
    )
    history.append(result)
    return result


class StreamingDriftDetector:
    """Base class: holds a reference sample, scores live windows.

    For the univariate detectors (KS, PSI, JS) the reference may be a 2-D
    ``(n, d)`` feature matrix; the statistic is then computed per feature and
    the maximum over features is reported, so a shift concentrated in a single
    feature is not diluted by the others.

    ``engine`` selects the scoring path (:mod:`repro.dispatch` convention):
    ``"batched"`` (default) is the vectorized all-columns-at-once
    implementation, ``"oracle"`` the per-column loop it is bit-identical
    to.  The boolean ``batched=`` keyword is a deprecated alias.
    """

    name = "base"

    def __init__(
        self,
        reference: np.ndarray,
        threshold: float,
        engine: Optional[str] = None,
        batched: Optional[bool] = None,
    ) -> None:
        self.reference = np.asarray(reference, dtype=np.float64)
        if self.reference.size == 0:
            raise ValueError("reference sample must be non-empty")
        self.threshold = float(threshold)
        self.engine = resolve_engine(engine, batched, owner=f"{type(self).__name__}()")
        self.batched = self.engine == ENGINE_BATCHED
        self.history: List[DriftResult] = []
        self._ref_sorted: Optional[np.ndarray] = None
        self._ref_ravel_sorted: Optional[np.ndarray] = None

    # -- batched-path reference caches ----------------------------------
    @property
    def reference_sorted(self) -> np.ndarray:
        """Column-sorted 2-D view of the reference, built once and cached."""
        if self._ref_sorted is None:
            ref = self.reference
            cols = ref if ref.ndim == 2 else ref.reshape(-1, 1)
            self._ref_sorted = np.sort(cols, axis=0)
        return self._ref_sorted

    @property
    def _reference_ravel_sorted(self) -> np.ndarray:
        """Sorted raveled reference for shape-mismatched live windows."""
        if self._ref_ravel_sorted is None:
            self._ref_ravel_sorted = np.sort(self.reference.ravel()).reshape(-1, 1)
        return self._ref_ravel_sorted

    def _live_columns(self, live: np.ndarray) -> Optional[np.ndarray]:
        """The live window as columns matching the reference, or None.

        Mirrors :meth:`_per_feature_max`'s shape rules: ``None`` means the
        shapes don't line up column-wise and both sides ravel into a single
        column instead.
        """
        ref = self.reference
        if ref.ndim == 1 or live.ndim == 1:
            return None
        live2 = live if live.ndim == 2 else live.reshape(live.shape[0], -1)
        if ref.shape[1] != live2.shape[1]:
            return None
        return live2

    def score(self, live: np.ndarray) -> float:
        """Distribution-distance statistic for a live window."""
        raise NotImplementedError

    def _per_feature_max(self, live: np.ndarray, fn) -> float:
        """Max of ``fn(ref_col, live_col)`` over feature columns (the oracle)."""
        ref = self.reference
        live = np.asarray(live, dtype=np.float64)
        if ref.ndim == 1 or live.ndim == 1 or ref.shape[1] != live.reshape(live.shape[0], -1).shape[1]:
            return float(fn(ref.ravel(), live.ravel()))
        live2 = live.reshape(live.shape[0], -1)
        return float(max(fn(ref[:, j], live2[:, j]) for j in range(ref.shape[1])))

    def _columns_max(self, live: np.ndarray, columns_fn) -> float:
        """Max of the vectorized per-column statistics for a live window."""
        live = np.asarray(live, dtype=np.float64)
        live2 = self._live_columns(live)
        if live2 is None:
            stats_ = columns_fn(self._reference_ravel_sorted, live.reshape(-1, 1))
        else:
            stats_ = columns_fn(self.reference_sorted, live2)
        return float(stats_.max())

    def record(self, statistic: float) -> DriftResult:
        """Append and return the result of an externally computed statistic.

        Used by the fleet monitor, which scores many devices' windows in one
        sweep and then records each device's statistic on its own detector.
        """
        return _record_result(self.history, statistic, self.threshold, self.name)

    def check(self, live: np.ndarray) -> DriftResult:
        """Score a window, record and return the result."""
        return self.record(self.score(np.asarray(live, dtype=np.float64)))

    def detection_delay(self, drift_start_index: int) -> Optional[int]:
        """Windows between true drift onset and first detection (None = missed)."""
        for i, result in enumerate(self.history[drift_start_index:]):
            if result.drifted:
                return i
        return None

    def false_positive_rate(self, drift_start_index: Optional[int] = None) -> float:
        """Fraction of pre-drift (or all) windows flagged as drifted."""
        window = self.history if drift_start_index is None else self.history[:drift_start_index]
        if not window:
            return 0.0
        return sum(1 for r in window if r.drifted) / len(window)


class KSDetector(StreamingDriftDetector):
    """KS-statistic detector (max over feature columns for 2-D references)."""

    name = "ks"

    def __init__(
        self,
        reference: np.ndarray,
        threshold: float = 0.25,
        engine: Optional[str] = None,
        batched: Optional[bool] = None,
    ) -> None:
        ref = np.asarray(reference, dtype=np.float64)
        super().__init__(ref if ref.ndim == 2 else ref.ravel(), threshold, engine=engine, batched=batched)
        if self.batched:
            _ = self.reference_sorted  # sort the reference once, at construction

    def score(self, live: np.ndarray) -> float:
        if self.batched:
            return self._columns_max(live, ks_statistic_columns)
        return self._per_feature_max(live, lambda r, l: ks_statistic(r, l)[0])


class PSIDetector(StreamingDriftDetector):
    """Population-stability-index detector (industry default threshold 0.2)."""

    name = "psi"

    def __init__(
        self,
        reference: np.ndarray,
        threshold: float = 1.0,
        bins: int = 10,
        engine: Optional[str] = None,
        batched: Optional[bool] = None,
    ) -> None:
        ref = np.asarray(reference, dtype=np.float64)
        super().__init__(ref if ref.ndim == 2 else ref.ravel(), threshold, engine=engine, batched=batched)
        self.bins = int(bins)
        if self.batched:
            _ = self.reference_sorted

    def score(self, live: np.ndarray) -> float:
        if self.batched:
            return self._columns_max(
                live, lambda r, l: population_stability_index_columns(r, l, bins=self.bins)
            )
        return self._per_feature_max(
            live, lambda r, l: population_stability_index(r, l, bins=self.bins)
        )


class JSDetector(StreamingDriftDetector):
    """Jensen–Shannon-divergence detector (max over feature columns)."""

    name = "js"

    def __init__(
        self,
        reference: np.ndarray,
        threshold: float = 0.25,
        bins: int = 32,
        engine: Optional[str] = None,
        batched: Optional[bool] = None,
    ) -> None:
        ref = np.asarray(reference, dtype=np.float64)
        super().__init__(ref if ref.ndim == 2 else ref.ravel(), threshold, engine=engine, batched=batched)
        self.bins = int(bins)
        if self.batched:
            _ = self.reference_sorted

    def score(self, live: np.ndarray) -> float:
        if self.batched:
            return self._columns_max(
                live, lambda r, l: jensen_shannon_divergence_columns(r, l, bins=self.bins)
            )
        return self._per_feature_max(
            live, lambda r, l: jensen_shannon_divergence(r, l, bins=self.bins)
        )


class MMDDetector(StreamingDriftDetector):
    """Kernel-MMD detector on multivariate feature windows.

    The kernel statistic has no column decomposition, so the ``engine``
    keyword is accepted for interface uniformity but scoring is always the
    direct multivariate computation; the fleet monitor runs MMD detectors
    per-device.
    """

    name = "mmd"

    def __init__(
        self,
        reference: np.ndarray,
        threshold: float = 0.015,
        max_samples: int = 256,
        seed: int = 0,
        engine: Optional[str] = None,
        batched: Optional[bool] = None,
    ) -> None:
        super().__init__(np.asarray(reference), threshold, engine=engine, batched=batched)
        self.max_samples = int(max_samples)
        self.seed = int(seed)

    def score(self, live: np.ndarray) -> float:
        return mmd_rbf(self.reference, live, max_samples=self.max_samples, seed=self.seed)


class PredictionDistributionMonitor:
    """Drift detection on the model's predicted-class distribution.

    Needs no labels and no raw inputs — only the histogram of argmax
    predictions — so it is the cheapest possible on-device signal.
    """

    def __init__(self, reference_predictions: np.ndarray, num_classes: int, threshold: float = 0.15, eps: float = 1e-9) -> None:
        ref = np.bincount(np.asarray(reference_predictions, dtype=int), minlength=num_classes).astype(np.float64)
        total = ref.sum()
        if total == 0:
            raise ValueError("reference predictions must be non-empty")
        self.reference_dist = ref / total
        self.num_classes = int(num_classes)
        self.threshold = float(threshold)
        self.eps = float(eps)
        self.history: List[DriftResult] = []

    def record(self, statistic: float) -> DriftResult:
        """Append and return the result of an externally computed statistic."""
        return _record_result(self.history, statistic, self.threshold, "prediction_js")

    def check(self, live_predictions: np.ndarray) -> DriftResult:
        """Jensen–Shannon distance between reference and live class histograms.

        An empty window carries no distributional evidence — comparing the
        all-zeros histogram against the reference would spuriously flag
        drift, so empty windows record a zero, non-drifted statistic.
        """
        preds = np.asarray(live_predictions, dtype=int)
        if preds.size == 0:
            return self.record(0.0)
        live = np.bincount(preds, minlength=self.num_classes).astype(np.float64)
        live_dist = live / max(live.sum(), 1.0)
        p = self.reference_dist + self.eps
        q = live_dist + self.eps
        p /= p.sum()
        q /= q.sum()
        m = 0.5 * (p + q)
        js = 0.5 * np.sum(p * np.log2(p / m)) + 0.5 * np.sum(q * np.log2(q / m))
        return self.record(js)


def prediction_js_columns(reference_dist: np.ndarray, counts: np.ndarray, eps: float) -> np.ndarray:
    """Vectorized :meth:`PredictionDistributionMonitor.check` statistics.

    ``counts`` is the ``(g, num_classes)`` stack of live class histograms of
    ``g`` devices sharing ``reference_dist``; rows with zero total (empty
    windows) score 0.0, matching the empty-window guard in :meth:`check`.
    """
    counts = np.asarray(counts, dtype=np.float64)
    totals = counts.sum(axis=1)
    live_dist = counts / np.maximum(totals, 1.0)[:, None]
    p = reference_dist + eps
    p = p / p.sum()
    q = live_dist + eps
    q /= q.sum(axis=1, keepdims=True)
    m = 0.5 * (p[None, :] + q)
    js = 0.5 * np.sum(p[None, :] * np.log2(p[None, :] / m), axis=1) + 0.5 * np.sum(
        q * np.log2(q / m), axis=1
    )
    return np.where(totals > 0, js, 0.0)
