"""Drift detection: distribution-distance tests between reference and live data.

The core of the observability block of Figure 1: each deployed model ships
with a reference window (statistics of its training/validation inputs); the
on-device monitor compares the live input distribution against it and raises
a drift signal when the distance exceeds a threshold.  Detectors:

* :func:`ks_statistic` / :class:`KSDetector` — Kolmogorov–Smirnov two-sample.
* :func:`population_stability_index` / :class:`PSIDetector` — the PSI score
  common in industry monitoring.  Note: with small on-device windows the
  per-feature maximum PSI is noisy, so the default streaming threshold is
  raised to 1.0 (large-sample monitoring typically uses 0.2).
* :func:`jensen_shannon_divergence` / :class:`JSDetector` — histogram-based.
* :func:`mmd_rbf` / :class:`MMDDetector` — kernel maximum mean discrepancy
  for multivariate features.
* :class:`PredictionDistributionMonitor` — drift in the model's *output*
  distribution (no labels needed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

__all__ = [
    "ks_statistic",
    "population_stability_index",
    "jensen_shannon_divergence",
    "mmd_rbf",
    "DriftResult",
    "StreamingDriftDetector",
    "KSDetector",
    "PSIDetector",
    "JSDetector",
    "MMDDetector",
    "PredictionDistributionMonitor",
]


# ---------------------------------------------------------------------------
# distance functions
# ---------------------------------------------------------------------------

def ks_statistic(reference: np.ndarray, live: np.ndarray) -> Tuple[float, float]:
    """Two-sample KS statistic and p-value on 1-D samples."""
    ref = np.asarray(reference, dtype=np.float64).ravel()
    cur = np.asarray(live, dtype=np.float64).ravel()
    if ref.size == 0 or cur.size == 0:
        return 0.0, 1.0
    result = stats.ks_2samp(ref, cur, method="asymp")
    return float(result.statistic), float(result.pvalue)


def _histogram_pair(reference: np.ndarray, live: np.ndarray, bins: int) -> Tuple[np.ndarray, np.ndarray]:
    ref = np.asarray(reference, dtype=np.float64).ravel()
    cur = np.asarray(live, dtype=np.float64).ravel()
    lo = min(ref.min(), cur.min())
    hi = max(ref.max(), cur.max())
    if hi <= lo:
        hi = lo + 1e-9
    edges = np.linspace(lo, hi, bins + 1)
    p, _ = np.histogram(ref, bins=edges)
    q, _ = np.histogram(cur, bins=edges)
    return p.astype(np.float64), q.astype(np.float64)


def population_stability_index(reference: np.ndarray, live: np.ndarray, bins: int = 10, eps: float = 1e-4) -> float:
    """PSI between two 1-D samples. Rule of thumb: >0.2 indicates major shift."""
    p, q = _histogram_pair(reference, live, bins)
    p = np.clip(p / max(p.sum(), 1.0), eps, None)
    q = np.clip(q / max(q.sum(), 1.0), eps, None)
    p /= p.sum()
    q /= q.sum()
    return float(np.sum((q - p) * np.log(q / p)))


def jensen_shannon_divergence(reference: np.ndarray, live: np.ndarray, bins: int = 32, eps: float = 1e-12) -> float:
    """Jensen–Shannon divergence (base 2, in [0, 1]) between histogram densities."""
    p, q = _histogram_pair(reference, live, bins)
    p = p / max(p.sum(), 1.0) + eps
    q = q / max(q.sum(), 1.0) + eps
    p /= p.sum()
    q /= q.sum()
    m = 0.5 * (p + q)
    kl_pm = np.sum(p * np.log2(p / m))
    kl_qm = np.sum(q * np.log2(q / m))
    return float(0.5 * kl_pm + 0.5 * kl_qm)


def mmd_rbf(reference: np.ndarray, live: np.ndarray, gamma: Optional[float] = None, max_samples: int = 512, seed: int = 0) -> float:
    """Unbiased-ish squared MMD with an RBF kernel on multivariate samples.

    Subsamples both sets to ``max_samples`` to bound the quadratic cost on
    device-sized windows; ``gamma`` defaults to the median heuristic.
    """
    rng = np.random.default_rng(seed)
    x = np.asarray(reference, dtype=np.float64)
    y = np.asarray(live, dtype=np.float64)
    x = x.reshape(x.shape[0], -1)
    y = y.reshape(y.shape[0], -1)
    if x.shape[0] > max_samples:
        x = x[rng.choice(x.shape[0], max_samples, replace=False)]
    if y.shape[0] > max_samples:
        y = y[rng.choice(y.shape[0], max_samples, replace=False)]
    if x.shape[0] < 2 or y.shape[0] < 2:
        return 0.0

    def sq_dists(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        aa = np.sum(a * a, axis=1)[:, None]
        bb = np.sum(b * b, axis=1)[None, :]
        return np.maximum(aa + bb - 2.0 * a @ b.T, 0.0)

    dxy = sq_dists(x, y)
    if gamma is None:
        med = float(np.median(dxy))
        gamma = 1.0 / max(med, 1e-12)
    kxx = np.exp(-gamma * sq_dists(x, x))
    kyy = np.exp(-gamma * sq_dists(y, y))
    kxy = np.exp(-gamma * dxy)
    n, m = x.shape[0], y.shape[0]
    term_x = (kxx.sum() - np.trace(kxx)) / (n * (n - 1))
    term_y = (kyy.sum() - np.trace(kyy)) / (m * (m - 1))
    return float(term_x + term_y - 2.0 * kxy.mean())


# ---------------------------------------------------------------------------
# streaming detectors
# ---------------------------------------------------------------------------

@dataclass
class DriftResult:
    """Outcome of checking one live window against the reference."""

    statistic: float
    threshold: float
    drifted: bool
    detector: str
    detail: Dict[str, float] = field(default_factory=dict)


class StreamingDriftDetector:
    """Base class: holds a reference sample, scores live windows.

    For the univariate detectors (KS, PSI, JS) the reference may be a 2-D
    ``(n, d)`` feature matrix; the statistic is then computed per feature and
    the maximum over features is reported, so a shift concentrated in a single
    feature is not diluted by the others.
    """

    name = "base"

    def __init__(self, reference: np.ndarray, threshold: float) -> None:
        self.reference = np.asarray(reference, dtype=np.float64)
        if self.reference.size == 0:
            raise ValueError("reference sample must be non-empty")
        self.threshold = float(threshold)
        self.history: List[DriftResult] = []

    def score(self, live: np.ndarray) -> float:
        """Distribution-distance statistic for a live window."""
        raise NotImplementedError

    def _per_feature_max(self, live: np.ndarray, fn) -> float:
        """Max of ``fn(ref_col, live_col)`` over feature columns."""
        ref = self.reference
        live = np.asarray(live, dtype=np.float64)
        if ref.ndim == 1 or live.ndim == 1 or ref.shape[1] != live.reshape(live.shape[0], -1).shape[1]:
            return float(fn(ref.ravel(), live.ravel()))
        live2 = live.reshape(live.shape[0], -1)
        return float(max(fn(ref[:, j], live2[:, j]) for j in range(ref.shape[1])))

    def check(self, live: np.ndarray) -> DriftResult:
        """Score a window, record and return the result."""
        statistic = self.score(np.asarray(live, dtype=np.float64))
        result = DriftResult(
            statistic=statistic,
            threshold=self.threshold,
            drifted=statistic > self.threshold,
            detector=self.name,
        )
        self.history.append(result)
        return result

    def detection_delay(self, drift_start_index: int) -> Optional[int]:
        """Windows between true drift onset and first detection (None = missed)."""
        for i, result in enumerate(self.history[drift_start_index:]):
            if result.drifted:
                return i
        return None

    def false_positive_rate(self, drift_start_index: Optional[int] = None) -> float:
        """Fraction of pre-drift (or all) windows flagged as drifted."""
        window = self.history if drift_start_index is None else self.history[:drift_start_index]
        if not window:
            return 0.0
        return sum(1 for r in window if r.drifted) / len(window)


class KSDetector(StreamingDriftDetector):
    """KS-statistic detector (max over feature columns for 2-D references)."""

    name = "ks"

    def __init__(self, reference: np.ndarray, threshold: float = 0.25) -> None:
        ref = np.asarray(reference, dtype=np.float64)
        super().__init__(ref if ref.ndim == 2 else ref.ravel(), threshold)

    def score(self, live: np.ndarray) -> float:
        return self._per_feature_max(live, lambda r, l: ks_statistic(r, l)[0])


class PSIDetector(StreamingDriftDetector):
    """Population-stability-index detector (industry default threshold 0.2)."""

    name = "psi"

    def __init__(self, reference: np.ndarray, threshold: float = 1.0, bins: int = 10) -> None:
        ref = np.asarray(reference, dtype=np.float64)
        super().__init__(ref if ref.ndim == 2 else ref.ravel(), threshold)
        self.bins = int(bins)

    def score(self, live: np.ndarray) -> float:
        return self._per_feature_max(
            live, lambda r, l: population_stability_index(r, l, bins=self.bins)
        )


class JSDetector(StreamingDriftDetector):
    """Jensen–Shannon-divergence detector (max over feature columns)."""

    name = "js"

    def __init__(self, reference: np.ndarray, threshold: float = 0.25, bins: int = 32) -> None:
        ref = np.asarray(reference, dtype=np.float64)
        super().__init__(ref if ref.ndim == 2 else ref.ravel(), threshold)
        self.bins = int(bins)

    def score(self, live: np.ndarray) -> float:
        return self._per_feature_max(
            live, lambda r, l: jensen_shannon_divergence(r, l, bins=self.bins)
        )


class MMDDetector(StreamingDriftDetector):
    """Kernel-MMD detector on multivariate feature windows."""

    name = "mmd"

    def __init__(self, reference: np.ndarray, threshold: float = 0.015, max_samples: int = 256, seed: int = 0) -> None:
        super().__init__(np.asarray(reference), threshold)
        self.max_samples = int(max_samples)
        self.seed = int(seed)

    def score(self, live: np.ndarray) -> float:
        return mmd_rbf(self.reference, live, max_samples=self.max_samples, seed=self.seed)


class PredictionDistributionMonitor:
    """Drift detection on the model's predicted-class distribution.

    Needs no labels and no raw inputs — only the histogram of argmax
    predictions — so it is the cheapest possible on-device signal.
    """

    def __init__(self, reference_predictions: np.ndarray, num_classes: int, threshold: float = 0.15, eps: float = 1e-9) -> None:
        ref = np.bincount(np.asarray(reference_predictions, dtype=int), minlength=num_classes).astype(np.float64)
        total = ref.sum()
        if total == 0:
            raise ValueError("reference predictions must be non-empty")
        self.reference_dist = ref / total
        self.num_classes = int(num_classes)
        self.threshold = float(threshold)
        self.eps = float(eps)
        self.history: List[DriftResult] = []

    def check(self, live_predictions: np.ndarray) -> DriftResult:
        """Jensen–Shannon distance between reference and live class histograms."""
        live = np.bincount(np.asarray(live_predictions, dtype=int), minlength=self.num_classes).astype(np.float64)
        live_dist = live / max(live.sum(), 1.0)
        p = self.reference_dist + self.eps
        q = live_dist + self.eps
        p /= p.sum()
        q /= q.sum()
        m = 0.5 * (p + q)
        js = 0.5 * np.sum(p * np.log2(p / m)) + 0.5 * np.sum(q * np.log2(q / m))
        result = DriftResult(
            statistic=float(js),
            threshold=self.threshold,
            drifted=bool(js > self.threshold),
            detector="prediction_js",
        )
        self.history.append(result)
        return result
