"""Telemetry recording, aggregation and store-and-forward syncing.

Paper Section III-B: "we are also interested in monitoring the number of
requests a user has made and the execution time of the model … record the
actual execution time, memory and energy consumption on the end-user's
device … store these statistics locally and transmit them to the cloud when
the device is connected to WiFi."

The :class:`TelemetryRecorder` runs on a (simulated) device with constant
memory (sketches, not raw logs); :class:`TelemetryAggregator` merges reports
from many devices on the backend.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .sketches import CountMinSketch, P2Quantile, ReservoirSample, RunningMoments, StreamingHistogram


def _device_seed(device_id: str) -> int:
    """Deterministic per-device RNG seed (stable across processes)."""
    return int.from_bytes(hashlib.blake2b(device_id.encode(), digest_size=4).digest(), "little")

__all__ = ["QueryRecord", "TelemetryRecorder", "TelemetryReport", "TelemetryAggregator"]


@dataclass(frozen=True)
class QueryRecord:
    """Raw measurements of one model execution."""

    latency_s: float
    energy_j: float
    memory_bytes: float
    predicted_class: Optional[int] = None
    model_version: str = ""


@dataclass
class TelemetryReport:
    """A compact, privacy-preserving telemetry payload sent to the backend."""

    device_id: str
    model_version: str
    n_queries: int
    latency: Dict[str, float]
    energy: Dict[str, float]
    memory: Dict[str, float]
    prediction_histogram: Dict[int, int]
    payload_bytes: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "device_id": self.device_id,
            "model_version": self.model_version,
            "n_queries": self.n_queries,
            "latency": self.latency,
            "energy": self.energy,
            "memory": self.memory,
            "prediction_histogram": self.prediction_histogram,
        }


class TelemetryRecorder:
    """On-device telemetry agent with constant memory footprint.

    Besides the moment/quantile summaries, the recorder keeps two mergeable
    sketches fed by the bulk serving path:

    * a :class:`~repro.observability.sketches.ReservoirSample` of raw
      latencies (``offer_batch`` geometric skips, so fleet-scale windows
      cost O(capacity·log) RNG draws) for backend percentile estimation
      beyond the single P² quantile;
    * when ``num_classes`` is unknown (0), predicted classes land in a
      :class:`~repro.observability.sketches.CountMinSketch` via the
      vectorized ``add_batch`` — previously such predictions were dropped —
      with the distinct observed ids tracked up to a constant cap so
      :meth:`build_report` can still emit an (upper-biased) histogram.
    """

    LATENCY_SAMPLE_CAPACITY = 64
    _SKETCH_WIDTH, _SKETCH_DEPTH = 32, 2
    _MAX_OBSERVED_CLASSES = 256

    def __init__(
        self,
        device_id: str,
        model_version: str = "",
        num_classes: int = 0,
        latency_p: float = 0.95,
    ) -> None:
        self.device_id = device_id
        self.model_version = model_version
        self.num_classes = int(num_classes)
        self._latency = RunningMoments()
        self._latency_p = P2Quantile(latency_p)
        self._energy = RunningMoments()
        self._memory = RunningMoments()
        self._pred_counts = np.zeros(max(self.num_classes, 1), dtype=np.int64)
        self._latency_sample = ReservoirSample(
            capacity=self.LATENCY_SAMPLE_CAPACITY, seed=_device_seed(device_id)
        )
        self._pred_sketch = (
            CountMinSketch(width=self._SKETCH_WIDTH, depth=self._SKETCH_DEPTH, seed=_device_seed(device_id))
            if self.num_classes == 0
            else None
        )
        self._observed_classes: set = set()
        self.n_queries = 0

    def _sketch_predictions(self, predictions: np.ndarray) -> None:
        classes = np.asarray(predictions).astype(np.int64).ravel()
        if classes.size == 0:
            return
        self._pred_sketch.add_batch(classes)
        room = self._MAX_OBSERVED_CLASSES - len(self._observed_classes)
        if room > 0:
            fresh = [int(c) for c in np.unique(classes) if int(c) not in self._observed_classes]
            self._observed_classes.update(fresh[:room])

    def record(self, record: QueryRecord) -> None:
        """Record one model execution."""
        self.n_queries += 1
        self._latency.update([record.latency_s])
        self._latency_p.update([record.latency_s])
        self._latency_sample.update([record.latency_s])
        self._energy.update([record.energy_j])
        self._memory.update([record.memory_bytes])
        if record.predicted_class is not None:
            cls = int(record.predicted_class)
            if self.num_classes:
                if 0 <= cls < self.num_classes:
                    self._pred_counts[cls] += 1
            else:
                self._sketch_predictions(np.asarray([cls]))

    def record_batch(self, latencies: np.ndarray, energies: np.ndarray, memories: np.ndarray, predictions: Optional[np.ndarray] = None) -> None:
        """Vectorized bulk recording (used by the fleet serving sweep)."""
        latencies = np.asarray(latencies, dtype=np.float64).ravel()
        self.n_queries += latencies.size
        self._latency.update_batch(latencies)
        self._latency_p.update(latencies)
        self._latency_sample.offer_batch(latencies)
        self._energy.update_batch(np.asarray(energies, dtype=np.float64).ravel())
        self._memory.update_batch(np.asarray(memories, dtype=np.float64).ravel())
        if predictions is not None:
            if self.num_classes:
                counts = np.bincount(np.asarray(predictions, dtype=int), minlength=self.num_classes)
                self._pred_counts += counts[: self.num_classes]
            else:
                self._sketch_predictions(predictions)

    def latency_sample(self) -> np.ndarray:
        """Bounded uniform sample of raw latencies seen so far."""
        return self._latency_sample.values()

    # -- reporting ---------------------------------------------------------
    def estimated_payload_bytes(self) -> int:
        """Approximate size of the sync payload (fixed, independent of #queries)."""
        # 3 moment triplets + quantile + histogram of num_classes int32
        # + the latency reservoir (+ the class sketch when classes are unknown).
        base = 3 * 3 * 8 + 8 + max(self.num_classes, 1) * 4 + 64
        base += self._latency_sample.capacity * 8
        if self._pred_sketch is not None:
            base += self._SKETCH_WIDTH * self._SKETCH_DEPTH * 8
        return base

    def _prediction_histogram(self) -> Dict[int, int]:
        if self._pred_sketch is not None:
            # Upper-biased count-min estimates over the observed class ids.
            return {cls: self._pred_sketch.estimate(cls) for cls in sorted(self._observed_classes)}
        return {i: int(c) for i, c in enumerate(self._pred_counts) if c > 0}

    def build_report(self) -> TelemetryReport:
        """Snapshot the current statistics into a syncable report."""
        return TelemetryReport(
            device_id=self.device_id,
            model_version=self.model_version,
            n_queries=self.n_queries,
            latency={
                "mean": self._latency.mean,
                "std": self._latency.std,
                f"p{int(self._latency_p.q * 100)}": self._latency_p.value,
            },
            energy={"mean": self._energy.mean, "total": self._energy.mean * self.n_queries},
            memory={"mean": self._memory.mean},
            prediction_histogram=self._prediction_histogram(),
            payload_bytes=self.estimated_payload_bytes(),
        )

    def reset(self) -> None:
        """Clear statistics after a successful sync."""
        self.__init__(self.device_id, self.model_version, self.num_classes, self._latency_p.q)


class TelemetryAggregator:
    """Backend-side aggregation of telemetry reports across the fleet."""

    def __init__(self) -> None:
        self.reports: List[TelemetryReport] = []

    def ingest(self, report: TelemetryReport) -> None:
        """Accept a report uploaded by a device."""
        self.reports.append(report)

    def fleet_summary(self, model_version: Optional[str] = None) -> Dict[str, float]:
        """Query-weighted latency/energy statistics across devices."""
        reports = [r for r in self.reports if model_version is None or r.model_version == model_version]
        if not reports:
            return {"n_devices": 0.0, "n_queries": 0.0}
        weights = np.array([max(r.n_queries, 1) for r in reports], dtype=np.float64)
        lat_mean = np.array([r.latency.get("mean", 0.0) for r in reports])
        energy_mean = np.array([r.energy.get("mean", 0.0) for r in reports])
        total_w = weights.sum()
        return {
            "n_devices": float(len({r.device_id for r in reports})),
            "n_queries": float(weights.sum()),
            "latency_mean": float(np.average(lat_mean, weights=weights)),
            "latency_worst_device": float(lat_mean.max()),
            "energy_mean": float(np.average(energy_mean, weights=weights)),
            "total_payload_bytes": float(sum(r.payload_bytes for r in reports)),
        }

    def slow_devices(self, latency_threshold_s: float) -> List[str]:
        """Devices whose mean latency exceeds a threshold (performance issues)."""
        worst: Dict[str, float] = {}
        for r in self.reports:
            worst[r.device_id] = max(worst.get(r.device_id, 0.0), r.latency.get("mean", 0.0))
        return sorted(d for d, v in worst.items() if v > latency_threshold_s)

    def prediction_distribution(self, model_version: Optional[str] = None) -> Dict[int, int]:
        """Fleet-wide predicted-class histogram (merged from device reports)."""
        merged: Dict[int, int] = {}
        for r in self.reports:
            if model_version is not None and r.model_version != model_version:
                continue
            for cls, count in r.prediction_histogram.items():
                merged[cls] = merged.get(cls, 0) + count
        return merged
