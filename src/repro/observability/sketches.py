"""Mergeable streaming sketches for on-device statistics.

Paper Section III-B: "We could record some basic statistics on the data
locally and share these with the cloud in an anonymized way."  Devices have
kilobytes of RAM, so raw data cannot be buffered; instead each device keeps
small mergeable summaries that the backend can combine across the fleet:

* :class:`RunningMoments`  — count/mean/variance via Welford, mergeable.
* :class:`ReservoirSample` — fixed-size uniform sample of a stream.
* :class:`CountMinSketch`  — approximate frequency counts.
* :class:`StreamingHistogram` — fixed-bin histogram over a known range.
* :class:`P2Quantile`      — the P² single-pass quantile estimator.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "RunningMoments",
    "ReservoirSample",
    "CountMinSketch",
    "StreamingHistogram",
    "P2Quantile",
]


class RunningMoments:
    """Streaming count / mean / variance (Welford), mergeable across devices."""

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def update(self, values: Iterable[float] | np.ndarray) -> None:
        """Add one value or an array of values."""
        arr = np.atleast_1d(np.asarray(values, dtype=np.float64)).ravel()
        for x in arr:  # scalar loop is fine: batches are merged below in bulk
            self.count += 1
            delta = x - self.mean
            self.mean += delta / self.count
            self._m2 += delta * (x - self.mean)

    def update_batch(self, values: np.ndarray) -> None:
        """Vectorized bulk update (merges the batch's moments in O(1))."""
        arr = np.asarray(values, dtype=np.float64).ravel()
        if arr.size == 0:
            return
        other = RunningMoments()
        other.count = int(arr.size)
        other.mean = float(arr.mean())
        other._m2 = float(((arr - other.mean) ** 2).sum())
        self.merge(other)

    @property
    def variance(self) -> float:
        """Population variance of everything seen so far."""
        return self._m2 / self.count if self.count > 0 else 0.0

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))

    def merge(self, other: "RunningMoments") -> "RunningMoments":
        """In-place merge of another device's moments (parallel Welford)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count, self.mean, self._m2 = other.count, other.mean, other._m2
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / total
        self.mean = (self.mean * self.count + other.mean * other.count) / total
        self.count = total
        return self

    def as_dict(self) -> Dict[str, float]:
        return {"count": float(self.count), "mean": self.mean, "variance": self.variance}


class ReservoirSample:
    """Uniform random sample of a stream with bounded memory (Algorithm R)."""

    def __init__(self, capacity: int = 256, seed: int = 0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.seen = 0
        self._rng = np.random.default_rng(seed)
        self._buffer: List[float] = []

    def update(self, values: Iterable[float] | np.ndarray) -> None:
        """Offer values to the reservoir."""
        for x in np.atleast_1d(np.asarray(values, dtype=np.float64)).ravel():
            self.seen += 1
            if len(self._buffer) < self.capacity:
                self._buffer.append(float(x))
            else:
                j = int(self._rng.integers(0, self.seen))
                if j < self.capacity:
                    self._buffer[j] = float(x)

    def values(self) -> np.ndarray:
        """Current sample as an array."""
        return np.array(self._buffer, dtype=np.float64)

    def __len__(self) -> int:
        return len(self._buffer)


class CountMinSketch:
    """Approximate frequency counting with sub-linear memory.

    Used to track categorical statistics (predicted class counts, error
    codes) on-device; sketches from many devices merge by element-wise
    addition as long as they share ``(width, depth, seed)``.
    """

    def __init__(self, width: int = 64, depth: int = 4, seed: int = 0) -> None:
        if width <= 0 or depth <= 0:
            raise ValueError("width and depth must be positive")
        self.width = int(width)
        self.depth = int(depth)
        self.seed = int(seed)
        self.table = np.zeros((depth, width), dtype=np.int64)
        self.total = 0

    def _indices(self, item: object) -> np.ndarray:
        key = repr(item).encode()
        idx = np.empty(self.depth, dtype=np.int64)
        for d in range(self.depth):
            h = hashlib.blake2b(key, digest_size=8, salt=str(self.seed + d).encode()[:16]).digest()
            idx[d] = int.from_bytes(h, "little") % self.width
        return idx

    def add(self, item: object, count: int = 1) -> None:
        """Increment the count of ``item``."""
        idx = self._indices(item)
        self.table[np.arange(self.depth), idx] += count
        self.total += count

    def estimate(self, item: object) -> int:
        """Point estimate (upper-biased) of an item's count."""
        idx = self._indices(item)
        return int(self.table[np.arange(self.depth), idx].min())

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """Element-wise merge; sketches must share dimensions and seed."""
        if (self.width, self.depth, self.seed) != (other.width, other.depth, other.seed):
            raise ValueError("cannot merge sketches with different parameters")
        self.table += other.table
        self.total += other.total
        return self


class StreamingHistogram:
    """Fixed-bin histogram over a known value range; mergeable by addition."""

    def __init__(self, lo: float, hi: float, bins: int = 32) -> None:
        if hi <= lo:
            raise ValueError("hi must exceed lo")
        if bins <= 0:
            raise ValueError("bins must be positive")
        self.lo = float(lo)
        self.hi = float(hi)
        self.bins = int(bins)
        self.counts = np.zeros(bins, dtype=np.int64)
        self.underflow = 0
        self.overflow = 0

    def update(self, values: Iterable[float] | np.ndarray) -> None:
        """Add values (vectorized binning)."""
        arr = np.atleast_1d(np.asarray(values, dtype=np.float64)).ravel()
        if arr.size == 0:
            return
        self.underflow += int(np.count_nonzero(arr < self.lo))
        self.overflow += int(np.count_nonzero(arr >= self.hi))
        inside = arr[(arr >= self.lo) & (arr < self.hi)]
        if inside.size:
            idx = ((inside - self.lo) / (self.hi - self.lo) * self.bins).astype(int)
            np.add.at(self.counts, np.clip(idx, 0, self.bins - 1), 1)

    def density(self) -> np.ndarray:
        """Normalized bin probabilities (including clipped tails in the edge bins)."""
        counts = self.counts.astype(np.float64).copy()
        counts[0] += self.underflow
        counts[-1] += self.overflow
        total = counts.sum()
        return counts / total if total > 0 else counts

    def merge(self, other: "StreamingHistogram") -> "StreamingHistogram":
        """Merge histograms with identical binning."""
        if (self.lo, self.hi, self.bins) != (other.lo, other.hi, other.bins):
            raise ValueError("cannot merge histograms with different binning")
        self.counts += other.counts
        self.underflow += other.underflow
        self.overflow += other.overflow
        return self

    @property
    def total(self) -> int:
        return int(self.counts.sum()) + self.underflow + self.overflow


class P2Quantile:
    """P² single-pass quantile estimator (Jain & Chlamtac, 1985).

    Tracks one quantile (e.g. the p95 latency) using five markers — constant
    memory, no buffering, exactly what an MCU telemetry agent needs.
    """

    def __init__(self, quantile: float = 0.95) -> None:
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.q = float(quantile)
        self._initial: List[float] = []
        self._n: Optional[np.ndarray] = None
        self._ns: Optional[np.ndarray] = None
        self._heights: Optional[np.ndarray] = None

    def update(self, values: Iterable[float] | np.ndarray) -> None:
        """Feed one or more observations."""
        for x in np.atleast_1d(np.asarray(values, dtype=np.float64)).ravel():
            self._update_one(float(x))

    def _update_one(self, x: float) -> None:
        if self._heights is None:
            self._initial.append(x)
            if len(self._initial) == 5:
                self._heights = np.array(sorted(self._initial))
                self._n = np.arange(1.0, 6.0)
                self._ns = np.array([1.0, 1 + 2 * self.q, 1 + 4 * self.q, 3 + 2 * self.q, 5.0])
            return
        h, n, ns = self._heights, self._n, self._ns
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = int(np.searchsorted(h, x, side="right")) - 1
            k = min(max(k, 0), 3)
        n[k + 1 :] += 1.0
        ns += np.array([0.0, self.q / 2, self.q, (1 + self.q) / 2, 1.0])
        for i in (1, 2, 3):
            d = ns[i] - n[i]
            if (d >= 1 and n[i + 1] - n[i] > 1) or (d <= -1 and n[i - 1] - n[i] < -1):
                sign = 1.0 if d >= 1 else -1.0
                # Parabolic prediction, falling back to linear when non-monotone.
                hp = h[i] + sign / (n[i + 1] - n[i - 1]) * (
                    (n[i] - n[i - 1] + sign) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
                    + (n[i + 1] - n[i] - sign) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
                )
                if h[i - 1] < hp < h[i + 1]:
                    h[i] = hp
                else:
                    j = i + int(sign)
                    h[i] = h[i] + sign * (h[j] - h[i]) / (n[j] - n[i])
                n[i] += sign

    @property
    def value(self) -> float:
        """Current quantile estimate."""
        if self._heights is not None:
            return float(self._heights[2])
        if not self._initial:
            return float("nan")
        return float(np.quantile(np.array(self._initial), self.q))

    @property
    def count(self) -> int:
        if self._n is None:
            return len(self._initial)
        return int(self._n[4])
