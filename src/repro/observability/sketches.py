"""Mergeable streaming sketches for on-device statistics.

Paper Section III-B: "We could record some basic statistics on the data
locally and share these with the cloud in an anonymized way."  Devices have
kilobytes of RAM, so raw data cannot be buffered; instead each device keeps
small mergeable summaries that the backend can combine across the fleet:

* :class:`RunningMoments`  — count/mean/variance via Welford, mergeable.
* :class:`ReservoirSample` — fixed-size uniform sample of a stream.
* :class:`CountMinSketch`  — approximate frequency counts.
* :class:`StreamingHistogram` — fixed-bin histogram over a known range.
* :class:`P2Quantile`      — the P² single-pass quantile estimator.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "RunningMoments",
    "ReservoirSample",
    "CountMinSketch",
    "StreamingHistogram",
    "P2Quantile",
]


class RunningMoments:
    """Streaming count / mean / variance (Welford), mergeable across devices."""

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def update(self, values: Iterable[float] | np.ndarray) -> None:
        """Add one value or an array of values.

        Multi-value inputs delegate to the O(1) batch merge instead of the
        scalar Welford recurrence; single values keep the scalar update (the
        two agree to float tolerance, and the batch path is what every bulk
        caller hits).
        """
        arr = np.atleast_1d(np.asarray(values, dtype=np.float64)).ravel()
        if arr.size > 1:
            self.update_batch(arr)
            return
        for x in arr:
            self.count += 1
            delta = x - self.mean
            self.mean += delta / self.count
            self._m2 += delta * (x - self.mean)

    def update_batch(self, values: np.ndarray) -> None:
        """Vectorized bulk update (merges the batch's moments in O(1))."""
        arr = np.asarray(values, dtype=np.float64).ravel()
        if arr.size == 0:
            return
        other = RunningMoments()
        other.count = int(arr.size)
        other.mean = float(arr.mean())
        other._m2 = float(((arr - other.mean) ** 2).sum())
        self.merge(other)

    @property
    def variance(self) -> float:
        """Population variance of everything seen so far."""
        return self._m2 / self.count if self.count > 0 else 0.0

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))

    def merge(self, other: "RunningMoments") -> "RunningMoments":
        """In-place merge of another device's moments (parallel Welford)."""
        if other.count == 0:
            return self
        if self.count == 0:
            self.count, self.mean, self._m2 = other.count, other.mean, other._m2
            return self
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / total
        self.mean = (self.mean * self.count + other.mean * other.count) / total
        self.count = total
        return self

    def as_dict(self) -> Dict[str, float]:
        return {"count": float(self.count), "mean": self.mean, "variance": self.variance}


class ReservoirSample:
    """Uniform random sample of a stream with bounded memory.

    :meth:`update` is the classic per-item Algorithm R; :meth:`offer_batch`
    is the bulk path: Li's geometric-skip Algorithm L jumps straight to the
    next accepted stream position, so a batch of ``n`` values costs
    ``O(capacity * log(n / capacity))`` RNG draws instead of ``n`` — the
    per-item loop disappears from fleet-scale telemetry sweeps.
    """

    def __init__(self, capacity: int = 256, seed: int = 0) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.seen = 0
        self._rng = np.random.default_rng(seed)
        self._buffer: List[float] = []
        # Algorithm L skip state: _w is Li's running W, _next the global
        # 0-based stream index of the next accepted item.  Reset to None by
        # scalar updates (the two algorithms keep separate acceptance state).
        self._w: Optional[float] = None
        self._next: Optional[int] = None

    def update(self, values: Iterable[float] | np.ndarray) -> None:
        """Offer values to the reservoir one at a time (Algorithm R)."""
        self._w = self._next = None
        for x in np.atleast_1d(np.asarray(values, dtype=np.float64)).ravel():
            self.seen += 1
            if len(self._buffer) < self.capacity:
                self._buffer.append(float(x))
            else:
                j = int(self._rng.integers(0, self.seen))
                if j < self.capacity:
                    self._buffer[j] = float(x)

    def _advance_skip(self) -> None:
        """Draw the gap to the next accepted stream index from current W.

        ``log(U)`` for uniform ``U`` is drawn as ``-Exponential(1)``, which
        cannot produce ``log(0)``.
        """
        self._next += int(-self._rng.exponential() // np.log1p(-self._w)) + 1

    def offer_batch(self, values: Iterable[float] | np.ndarray) -> None:
        """Offer a whole array via geometric skips (Algorithm L)."""
        arr = np.atleast_1d(np.asarray(values, dtype=np.float64)).ravel()
        pos = 0
        if len(self._buffer) < self.capacity:
            take = min(self.capacity - len(self._buffer), arr.size)
            self._buffer.extend(float(x) for x in arr[:take])
            self.seen += take
            pos = take
            if pos >= arr.size:
                return
        if self._w is None:
            # (Re)initialize W for a stream that is already `seen` items in:
            # W — the current acceptance probability, i.e. the k-th smallest
            # priority among everything seen — is the k-th order statistic
            # of `seen` uniforms, Beta(k, seen - k + 1).  At seen == k this
            # is Beta(k, 1) = U^(1/k), Algorithm L's fill-time init, and for
            # larger `seen` (scalar updates ran in between) it keeps the
            # sample uniform instead of letting the next batch evict the
            # entire earlier stream.
            w = float(self._rng.beta(self.capacity, self.seen - self.capacity + 1))
            self._w = min(max(w, 5e-324), 1.0 - 1e-16)
            self._next = self.seen - 1
            self._advance_skip()
        n_rest = arr.size - pos
        while self._next < self.seen + n_rest:
            self._buffer[int(self._rng.integers(0, self.capacity))] = float(
                arr[pos + (self._next - self.seen)]
            )
            self._w = max(self._w * float(np.exp(-self._rng.exponential() / self.capacity)), 5e-324)
            self._advance_skip()
        self.seen += n_rest

    def values(self) -> np.ndarray:
        """Current sample as an array."""
        return np.array(self._buffer, dtype=np.float64)

    def __len__(self) -> int:
        return len(self._buffer)


class CountMinSketch:
    """Approximate frequency counting with sub-linear memory.

    Used to track categorical statistics (predicted class counts, error
    codes) on-device; sketches from many devices merge by element-wise
    addition as long as they share ``(width, depth, seed)``.

    Integer items (the common case: predicted-class ids) hash through a
    vectorized splitmix64 mix so :meth:`add_batch` ingests whole prediction
    arrays with a handful of NumPy calls; arbitrary objects keep the
    blake2b path.  Both :meth:`add` and :meth:`estimate` use the same
    per-type hash, so scalar and batch ingestion agree exactly.
    """

    def __init__(self, width: int = 64, depth: int = 4, seed: int = 0) -> None:
        if width <= 0 or depth <= 0:
            raise ValueError("width and depth must be positive")
        self.width = int(width)
        self.depth = int(depth)
        self.seed = int(seed)
        self.table = np.zeros((depth, width), dtype=np.int64)
        self.total = 0

    def _int_indices(self, items: np.ndarray) -> np.ndarray:
        """splitmix64-mixed table columns for integer items, shape (depth, n)."""
        x = items.astype(np.uint64)
        idx = np.empty((self.depth, x.size), dtype=np.int64)
        for d in range(self.depth):
            z = x + np.uint64(((self.seed + d + 1) * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF)
            z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
            z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
            z ^= z >> np.uint64(31)
            idx[d] = (z % np.uint64(self.width)).astype(np.int64)
        return idx

    def _indices(self, item: object) -> np.ndarray:
        # Integers take the vectorized hash so scalar add()/estimate() agree
        # with add_batch(); bools (a subclass of int, hashed distinctly from
        # 0/1 before this fast path existed) and ints outside the uint64
        # wrap range keep the arbitrary-object blake2b path.
        if isinstance(item, (int, np.integer)) and not isinstance(item, (bool, np.bool_)):
            value = int(item)
            if -(2 ** 63) <= value < 2 ** 64:
                return self._int_indices(np.asarray([value])).ravel()
        key = repr(item).encode()
        idx = np.empty(self.depth, dtype=np.int64)
        for d in range(self.depth):
            h = hashlib.blake2b(key, digest_size=8, salt=str(self.seed + d).encode()[:16]).digest()
            idx[d] = int.from_bytes(h, "little") % self.width
        return idx

    def add(self, item: object, count: int = 1) -> None:
        """Increment the count of ``item``."""
        idx = self._indices(item)
        self.table[np.arange(self.depth), idx] += count
        self.total += count

    def add_batch(self, items: np.ndarray, counts: Optional[np.ndarray] = None) -> None:
        """Ingest an integer array (e.g. a window of predicted classes).

        Equivalent to ``add(item, count)`` per element — same hash indices,
        same table — but the whole batch lands in one fused ``bincount``
        per sketch instead of a Python loop.
        """
        arr = np.atleast_1d(np.asarray(items)).ravel()
        if arr.size == 0:
            return
        if not np.issubdtype(arr.dtype, np.integer):
            raise TypeError("add_batch vectorizes integer items; use add() for arbitrary objects")
        if counts is None:
            counts = np.ones(arr.size, dtype=np.int64)
        else:
            counts = np.atleast_1d(np.asarray(counts, dtype=np.int64)).ravel()
            if counts.shape != arr.shape:
                raise ValueError("counts must match items in shape")
        idx = self._int_indices(arr)
        flat = idx + (np.arange(self.depth, dtype=np.int64) * self.width)[:, None]
        delta = np.bincount(
            flat.ravel(),
            weights=np.broadcast_to(counts, (self.depth, arr.size)).ravel(),
            minlength=self.depth * self.width,
        )
        self.table += delta.astype(np.int64).reshape(self.depth, self.width)
        self.total += int(counts.sum())

    def estimate(self, item: object) -> int:
        """Point estimate (upper-biased) of an item's count."""
        idx = self._indices(item)
        return int(self.table[np.arange(self.depth), idx].min())

    def merge(self, other: "CountMinSketch") -> "CountMinSketch":
        """Element-wise merge; sketches must share dimensions and seed."""
        if (self.width, self.depth, self.seed) != (other.width, other.depth, other.seed):
            raise ValueError("cannot merge sketches with different parameters")
        self.table += other.table
        self.total += other.total
        return self


class StreamingHistogram:
    """Fixed-bin histogram over a known value range; mergeable by addition."""

    def __init__(self, lo: float, hi: float, bins: int = 32) -> None:
        if hi <= lo:
            raise ValueError("hi must exceed lo")
        if bins <= 0:
            raise ValueError("bins must be positive")
        self.lo = float(lo)
        self.hi = float(hi)
        self.bins = int(bins)
        self.counts = np.zeros(bins, dtype=np.int64)
        self.underflow = 0
        self.overflow = 0

    def update(self, values: Iterable[float] | np.ndarray) -> None:
        """Add values (vectorized binning)."""
        arr = np.atleast_1d(np.asarray(values, dtype=np.float64)).ravel()
        if arr.size == 0:
            return
        self.underflow += int(np.count_nonzero(arr < self.lo))
        self.overflow += int(np.count_nonzero(arr >= self.hi))
        inside = arr[(arr >= self.lo) & (arr < self.hi)]
        if inside.size:
            idx = ((inside - self.lo) / (self.hi - self.lo) * self.bins).astype(int)
            np.add.at(self.counts, np.clip(idx, 0, self.bins - 1), 1)

    def density(self) -> np.ndarray:
        """Normalized bin probabilities (including clipped tails in the edge bins)."""
        counts = self.counts.astype(np.float64).copy()
        counts[0] += self.underflow
        counts[-1] += self.overflow
        total = counts.sum()
        return counts / total if total > 0 else counts

    def merge(self, other: "StreamingHistogram") -> "StreamingHistogram":
        """Merge histograms with identical binning."""
        if (self.lo, self.hi, self.bins) != (other.lo, other.hi, other.bins):
            raise ValueError("cannot merge histograms with different binning")
        self.counts += other.counts
        self.underflow += other.underflow
        self.overflow += other.overflow
        return self

    @property
    def total(self) -> int:
        return int(self.counts.sum()) + self.underflow + self.overflow


class P2Quantile:
    """P² single-pass quantile estimator (Jain & Chlamtac, 1985).

    Tracks one quantile (e.g. the p95 latency) using five markers — constant
    memory, no buffering, exactly what an MCU telemetry agent needs.
    """

    def __init__(self, quantile: float = 0.95) -> None:
        if not 0.0 < quantile < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.q = float(quantile)
        self._initial: List[float] = []
        self._n: Optional[np.ndarray] = None
        self._ns: Optional[np.ndarray] = None
        self._heights: Optional[np.ndarray] = None

    def update(self, values: Iterable[float] | np.ndarray) -> None:
        """Feed one or more observations."""
        for x in np.atleast_1d(np.asarray(values, dtype=np.float64)).ravel():
            self._update_one(float(x))

    def _update_one(self, x: float) -> None:
        if self._heights is None:
            self._initial.append(x)
            if len(self._initial) == 5:
                self._heights = np.array(sorted(self._initial))
                self._n = np.arange(1.0, 6.0)
                self._ns = np.array([1.0, 1 + 2 * self.q, 1 + 4 * self.q, 3 + 2 * self.q, 5.0])
            return
        h, n, ns = self._heights, self._n, self._ns
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = int(np.searchsorted(h, x, side="right")) - 1
            k = min(max(k, 0), 3)
        n[k + 1 :] += 1.0
        ns += np.array([0.0, self.q / 2, self.q, (1 + self.q) / 2, 1.0])
        for i in (1, 2, 3):
            d = ns[i] - n[i]
            if (d >= 1 and n[i + 1] - n[i] > 1) or (d <= -1 and n[i - 1] - n[i] < -1):
                sign = 1.0 if d >= 1 else -1.0
                # Parabolic prediction, falling back to linear when non-monotone.
                hp = h[i] + sign / (n[i + 1] - n[i - 1]) * (
                    (n[i] - n[i - 1] + sign) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
                    + (n[i + 1] - n[i] - sign) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
                )
                if h[i - 1] < hp < h[i + 1]:
                    h[i] = hp
                else:
                    j = i + int(sign)
                    h[i] = h[i] + sign * (h[j] - h[i]) / (n[j] - n[i])
                n[i] += sign

    @property
    def value(self) -> float:
        """Current quantile estimate."""
        if self._heights is not None:
            return float(self._heights[2])
        if not self._initial:
            return float("nan")
        return float(np.quantile(np.array(self._initial), self.q))

    @property
    def count(self) -> int:
        if self._n is None:
            return len(self._initial)
        return int(self._n[4])
