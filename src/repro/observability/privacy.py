"""Privacy-preserving aggregation of on-device statistics.

Paper Section III-B: sharing raw data with the cloud "would render the
privacy argument invalid"; devices should only share anonymized statistics.
This module provides local differential privacy primitives so a device can
report histograms and counts with plausible deniability:

* :func:`randomized_response` — classic binary randomized response.
* :func:`privatize_histogram` — per-sample k-ary randomized response
  (generalized RR) over categorical values, plus the matching unbiased
  frequency estimator :func:`debias_histogram`.
* :func:`laplace_mechanism` — Laplace noise for bounded numeric statistics.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "randomized_response",
    "privatize_histogram",
    "debias_histogram",
    "laplace_mechanism",
    "epsilon_for_flip_probability",
]


def randomized_response(values: np.ndarray, epsilon: float, seed: int = 0) -> np.ndarray:
    """Binary randomized response with privacy parameter ``epsilon``.

    Each true bit is reported truthfully with probability
    ``e^eps / (e^eps + 1)`` and flipped otherwise.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    rng = np.random.default_rng(seed)
    values = np.asarray(values).astype(bool)
    p_truth = np.exp(epsilon) / (np.exp(epsilon) + 1.0)
    flip = rng.random(values.shape) >= p_truth
    return np.where(flip, ~values, values)


def epsilon_for_flip_probability(flip_prob: float) -> float:
    """Epsilon of binary randomized response with the given flip probability."""
    if not 0.0 < flip_prob < 0.5:
        raise ValueError("flip probability must be in (0, 0.5)")
    return float(np.log((1.0 - flip_prob) / flip_prob))


def privatize_histogram(labels: np.ndarray, num_classes: int, epsilon: float, seed: int = 0) -> np.ndarray:
    """k-ary randomized response: each label is reported truthfully w.p.
    ``e^eps / (e^eps + k - 1)``, otherwise replaced by a uniform other label.

    Returns the *noisy* histogram (counts per class) a device would upload.
    """
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if num_classes < 2:
        raise ValueError("num_classes must be at least 2")
    rng = np.random.default_rng(seed)
    labels = np.asarray(labels, dtype=int)
    k = num_classes
    p_truth = np.exp(epsilon) / (np.exp(epsilon) + k - 1.0)
    keep = rng.random(labels.shape) < p_truth
    noise = rng.integers(0, k - 1, size=labels.shape)
    # Map noise to "any class except the true one".
    randomized = np.where(noise >= labels, noise + 1, noise)
    reported = np.where(keep, labels, randomized)
    return np.bincount(reported, minlength=k).astype(np.float64)


def debias_histogram(noisy_counts: np.ndarray, epsilon: float, n_reports: Optional[int] = None) -> np.ndarray:
    """Unbiased estimate of the true histogram from k-RR noisy counts.

    Inverts the randomized-response channel:
    ``E[noisy_c] = n*q + true_c*(p - q)`` with ``p = e^eps/(e^eps+k-1)`` and
    ``q = 1/(e^eps+k-1)``.
    """
    noisy = np.asarray(noisy_counts, dtype=np.float64)
    k = noisy.shape[0]
    n = float(n_reports if n_reports is not None else noisy.sum())
    p = np.exp(epsilon) / (np.exp(epsilon) + k - 1.0)
    q = 1.0 / (np.exp(epsilon) + k - 1.0)
    est = (noisy - n * q) / (p - q)
    return np.clip(est, 0.0, None)


def laplace_mechanism(value: float | np.ndarray, sensitivity: float, epsilon: float, seed: int = 0) -> np.ndarray:
    """Add Laplace(sensitivity/epsilon) noise to a bounded statistic."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    if sensitivity < 0:
        raise ValueError("sensitivity must be non-negative")
    rng = np.random.default_rng(seed)
    value = np.asarray(value, dtype=np.float64)
    return value + rng.laplace(0.0, sensitivity / epsilon, size=value.shape)
