"""Verifiable execution: Freivalds checks, Merkle commitments, transcripts, simulated TEE."""

from .commitments import MerkleTree, commit_model_weights, verify_weight_chunk
from .enclave import EnclaveReport, SimulatedEnclave, slalom_partition
from .freivalds import FreivaldsVerifier, freivalds_check, verify_compiled_run
from .protocol import ExecutionTranscript, TranscriptVerifier, VerifiableExecutor

__all__ = [
    "freivalds_check",
    "verify_compiled_run",
    "FreivaldsVerifier",
    "MerkleTree",
    "commit_model_weights",
    "verify_weight_chunk",
    "ExecutionTranscript",
    "VerifiableExecutor",
    "TranscriptVerifier",
    "SimulatedEnclave",
    "EnclaveReport",
    "slalom_partition",
]
