"""Merkle-tree commitments over model weights.

Before deployment the platform commits to the exact weights it shipped; the
device (or an auditor) can later prove that the weights it used are the
committed ones by revealing only a logarithmic number of hashes.  Combined
with the execution transcript of :mod:`repro.verification.protocol`, this
pins a prediction to a specific registered model version (paper Section VI:
the proof "merely guarantees that the prediction was indeed the result of
the unmodified model").
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["MerkleTree", "commit_model_weights", "verify_weight_chunk"]


def _hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _hash_pair(left: str, right: str) -> str:
    return _hash((left + right).encode())


class MerkleTree:
    """A binary Merkle tree over a list of byte leaves."""

    def __init__(self, leaves: Sequence[bytes]) -> None:
        if not leaves:
            raise ValueError("MerkleTree requires at least one leaf")
        self.leaf_hashes: List[str] = [_hash(leaf) for leaf in leaves]
        self.levels: List[List[str]] = [list(self.leaf_hashes)]
        current = self.leaf_hashes
        while len(current) > 1:
            nxt: List[str] = []
            for i in range(0, len(current), 2):
                left = current[i]
                right = current[i + 1] if i + 1 < len(current) else current[i]
                nxt.append(_hash_pair(left, right))
            self.levels.append(nxt)
            current = nxt

    @property
    def root(self) -> str:
        """Root commitment."""
        return self.levels[-1][0]

    def proof(self, index: int) -> List[Tuple[str, str]]:
        """Inclusion proof for leaf ``index`` as a list of (side, hash) pairs."""
        if not 0 <= index < len(self.leaf_hashes):
            raise IndexError("leaf index out of range")
        path: List[Tuple[str, str]] = []
        idx = index
        for level in self.levels[:-1]:
            sibling = idx ^ 1
            if sibling >= len(level):
                sibling = idx
            side = "right" if sibling > idx else "left"
            path.append((side, level[sibling]))
            idx //= 2
        return path

    @staticmethod
    def verify_proof(leaf: bytes, index: int, proof: Sequence[Tuple[str, str]], root: str) -> bool:
        """Check an inclusion proof against a root commitment."""
        current = _hash(leaf)
        for side, sibling in proof:
            if side == "right":
                current = _hash_pair(current, sibling)
            else:
                current = _hash_pair(sibling, current)
        return current == root


def commit_model_weights(model, chunk_size: int = 4096) -> Tuple[str, MerkleTree, List[bytes]]:
    """Commit to a model's flattened weights in fixed-size chunks.

    Returns ``(root, tree, chunks)``; the chunks are kept by the prover so it
    can answer audit challenges with inclusion proofs.
    """
    flat = model.get_flat_weights().astype(np.float64)
    raw = flat.tobytes()
    if not raw:
        raw = b"\x00"
    chunks = [raw[i : i + chunk_size] for i in range(0, len(raw), chunk_size)]
    tree = MerkleTree(chunks)
    return tree.root, tree, chunks


def verify_weight_chunk(chunk: bytes, index: int, proof: Sequence[Tuple[str, str]], root: str) -> bool:
    """Convenience alias for :meth:`MerkleTree.verify_proof` on weight chunks."""
    return MerkleTree.verify_proof(chunk, index, proof, root)
