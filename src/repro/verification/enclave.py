"""Simulated Secure Processing Environment (TEE) execution.

Paper Section VI: verifiable execution can alternatively rely on hardware
Secure Processing Environments (Intel SGX, ARM TrustZone); MLCapsule reports
roughly 2x overhead for MobileNet-class models, and Slalom lowers the cost
by outsourcing the linear layers to the untrusted (fast) environment with
masking while keeping non-linearities inside the enclave.

Real TEEs are unavailable in this reproduction, so the
:class:`SimulatedEnclave` models the *cost structure*: code executed
"inside" pays a configurable slowdown factor, code outside runs at native
speed, and the Slalom-style partition additionally pays a masking/unmasking
cost proportional to the activations crossing the boundary.  Functional
behaviour (the numbers computed) is identical, which is what the rest of
the platform needs; DESIGN.md records this substitution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.layers import Activation, BatchNorm, Conv2D, Dense, DepthwiseConv2D

__all__ = ["EnclaveReport", "SimulatedEnclave", "slalom_partition"]


@dataclass
class EnclaveReport:
    """Cost accounting of one enclave-assisted inference."""

    plain_latency_s: float
    enclave_latency_s: float
    inside_fraction: float
    masking_bytes: int
    strategy: str

    @property
    def overhead_factor(self) -> float:
        """Enclave latency relative to plain execution."""
        return self.enclave_latency_s / max(self.plain_latency_s, 1e-12)


def slalom_partition(model) -> Tuple[List[int], List[int]]:
    """Split layer indices into (outside, inside) following Slalom's rule.

    Linear layers (Dense / Conv) run outside the enclave on the fast
    processor; everything stateful or non-linear stays inside.
    """
    outside: List[int] = []
    inside: List[int] = []
    for i, layer in enumerate(model.layers):
        if isinstance(layer, (Dense, Conv2D, DepthwiseConv2D)) and not layer.activation_name:
            outside.append(i)
        else:
            inside.append(i)
    return outside, inside


class SimulatedEnclave:
    """Executes a model with configurable enclave placement and cost model."""

    def __init__(self, slowdown: float = 2.0, masking_overhead_per_byte: float = 2e-9) -> None:
        if slowdown < 1.0:
            raise ValueError("enclave slowdown must be >= 1.0")
        self.slowdown = float(slowdown)
        self.masking_overhead_per_byte = float(masking_overhead_per_byte)

    # -- execution strategies ------------------------------------------------
    def run_all_inside(self, model, x: np.ndarray) -> Tuple[np.ndarray, EnclaveReport]:
        """MLCapsule-style: the whole model runs inside the enclave."""
        out, plain = self._timed_forward(model, x)
        report = EnclaveReport(
            plain_latency_s=plain,
            enclave_latency_s=plain * self.slowdown,
            inside_fraction=1.0,
            masking_bytes=0,
            strategy="all_inside",
        )
        return out, report

    def run_slalom(self, model, x: np.ndarray) -> Tuple[np.ndarray, EnclaveReport]:
        """Slalom-style: linear layers outside (masked), the rest inside."""
        outside, inside = slalom_partition(model)
        out = np.asarray(x, dtype=np.float64)
        plain_total = 0.0
        enclave_total = 0.0
        masking_bytes = 0
        for i, layer in enumerate(model.layers):
            start = time.perf_counter()
            out = layer.forward(out, training=False)
            elapsed = time.perf_counter() - start
            plain_total += elapsed
            if i in inside:
                enclave_total += elapsed * self.slowdown
            else:
                # Outside execution is native speed, but the activations must be
                # masked before leaving the enclave and unmasked afterwards.
                crossing = out.nbytes * 2
                masking_bytes += crossing
                enclave_total += elapsed + crossing * self.masking_overhead_per_byte
        inside_cost = sum(1 for i in inside) / max(len(model.layers), 1)
        report = EnclaveReport(
            plain_latency_s=plain_total,
            enclave_latency_s=enclave_total,
            inside_fraction=inside_cost,
            masking_bytes=masking_bytes,
            strategy="slalom",
        )
        return out, report

    def run_partial(self, model, x: np.ndarray, protected_layers: List[int]) -> Tuple[np.ndarray, EnclaveReport]:
        """Run only the listed layer indices inside the enclave.

        Models the pragmatic "evaluate only a part of the model on the
        trusted environment" option the paper mentions (ref [73]).
        """
        out = np.asarray(x, dtype=np.float64)
        plain_total = 0.0
        enclave_total = 0.0
        protected = set(protected_layers)
        for i, layer in enumerate(model.layers):
            start = time.perf_counter()
            out = layer.forward(out, training=False)
            elapsed = time.perf_counter() - start
            plain_total += elapsed
            enclave_total += elapsed * (self.slowdown if i in protected else 1.0)
        report = EnclaveReport(
            plain_latency_s=plain_total,
            enclave_latency_s=enclave_total,
            inside_fraction=len(protected) / max(len(model.layers), 1),
            masking_bytes=0,
            strategy="partial",
        )
        return out, report

    @staticmethod
    def _timed_forward(model, x: np.ndarray) -> Tuple[np.ndarray, float]:
        start = time.perf_counter()
        out = model.forward(np.asarray(x, dtype=np.float64), training=False)
        return out, time.perf_counter() - start
