"""Freivalds' algorithm: cheap randomized verification of matrix products.

Paper Section VI describes verifiable computation: "the most interesting
approaches evaluate the model and provide a small mathematical proof of the
correctness of the result", with an overhead that recent systems push down
to a few percent of inference time (SafetyNets).  The workhorse primitive is
verifying a claimed product ``C = A @ B`` without recomputing it: pick a
random vector ``r`` and check ``A @ (B @ r) == C @ r``, which costs O(n²)
instead of O(n³) and catches any incorrect ``C`` with probability ≥ 1/2 per
trial (so ≥ 1 - 2^-k for k trials).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["freivalds_check", "FreivaldsVerifier", "verify_compiled_run"]


def freivalds_check(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    n_trials: int = 8,
    rng: Optional[np.random.Generator] = None,
    tolerance: float = 1e-6,
) -> bool:
    """True iff ``c`` passes ``n_trials`` random projections of ``a @ b == c``.

    ``tolerance`` is relative to the magnitude of the projected values, so the
    check is robust to accumulated floating-point error on legitimate results
    while still rejecting adversarial modifications.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    if a.shape[1] != b.shape[0] or c.shape != (a.shape[0], b.shape[1]):
        raise ValueError("incompatible shapes for Freivalds check")
    rng = rng or np.random.default_rng()
    for _ in range(n_trials):
        r = rng.integers(0, 2, size=(b.shape[1],)).astype(np.float64)
        left = a @ (b @ r)
        right = c @ r
        scale = np.maximum(np.abs(left), np.abs(right)).max() if left.size else 0.0
        if not np.allclose(left, right, atol=max(tolerance, tolerance * scale), rtol=tolerance):
            return False
    return True


@dataclass
class FreivaldsVerifier:
    """Stateful wrapper with a seeded generator and soundness accounting."""

    n_trials: int = 8
    seed: int = 0
    tolerance: float = 1e-6

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self.checks_performed = 0
        self.failures = 0

    def verify(self, a: np.ndarray, b: np.ndarray, c: np.ndarray) -> bool:
        """Run the check and record the outcome."""
        ok = freivalds_check(a, b, c, n_trials=self.n_trials, rng=self._rng, tolerance=self.tolerance)
        self.checks_performed += 1
        if not ok:
            self.failures += 1
        return ok

    @property
    def soundness_error(self) -> float:
        """Upper bound on the probability an incorrect product is accepted."""
        return 0.5**self.n_trials


def verify_compiled_run(
    plan,
    x: np.ndarray,
    n_trials: int = 8,
    seed: int = 0,
    tolerance: float = 1e-6,
) -> Dict[str, object]:
    """Execute a compiled plan and Freivalds-verify every GEMM it performed.

    ``plan`` is a :class:`repro.exchange.CompiledExecutor`.  Running it with
    GEMM recording yields the ``(A, B, C)`` triple of every dense *and*
    conv-as-im2col matrix product — extending the randomized check to
    convolutions, which the layer-wise transcript protocol
    (:mod:`repro.verification.protocol`) still re-executes directly.  Each
    triple is checked in O(rows·cols) instead of recomputed in O(n³).

    Returns the plan output together with the verification verdict; the
    overall soundness error is union-bounded over the checked GEMMs.
    """
    output, gemms = plan.run(x, record_gemms=True)
    verifier = FreivaldsVerifier(n_trials=n_trials, seed=seed, tolerance=tolerance)
    failed: List[int] = [i for i, (a, b, c) in enumerate(gemms) if not verifier.verify(a, b, c)]
    return {
        "output": output,
        "valid": not failed,
        "checked_gemms": len(gemms),
        "failed_gemms": failed,
        "soundness_error": min(1.0, len(gemms) * verifier.soundness_error),
    }
