"""Layer-wise verifiable execution protocol (SafetyNets-flavoured).

The untrusted device (prover) evaluates the model and produces an
:class:`ExecutionTranscript`: the input, every layer's output, and the
claimed prediction, bound to a Merkle commitment of the weights.  A cheap
verifier then checks the transcript without redoing the full computation:

* dense layers (the dominant cost) are verified with Freivalds' randomized
  matrix-product check — O(n²) instead of O(n³);
* convolution layers are lowered to the same ``(A, B, C)`` GEMM triples the
  compiled plan records for :func:`repro.verification.verify_compiled_run`
  (``A`` = im2col column matrix of the claimed layer input, ``B`` = the
  kernel in GEMM form, ``C`` = the claimed pre-bias output) and
  Freivalds-checked too — no direct convolution recompute remains;
* element-wise activations and other cheap ops are recomputed directly
  (their cost is negligible);
* the weights used are checked against the registered Merkle root via spot
  audits of random chunks.

The verifier's cost relative to plain inference is reported so experiment E9
can compare against the paper's "~5 % overhead for MNIST-scale models" data
point for SafetyNets.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn import activations as A
from repro.nn.layers import Activation, BatchNorm, Conv2D, Dense, Dropout, Flatten, im2col

from .commitments import MerkleTree, commit_model_weights
from .freivalds import FreivaldsVerifier

__all__ = ["ExecutionTranscript", "VerifiableExecutor", "TranscriptVerifier"]


@dataclass
class ExecutionTranscript:
    """Everything the prover hands to the verifier for one batch."""

    model_name: str
    weight_root: str
    x: np.ndarray
    layer_outputs: List[np.ndarray]
    prediction: np.ndarray
    prove_time_s: float = 0.0
    audited_chunks: Dict[int, Tuple[bytes, List[Tuple[str, str]]]] = field(default_factory=dict)

    def transcript_bytes(self) -> int:
        """Size of the transcript payload (the 'proof' the device must ship)."""
        total = self.x.nbytes + self.prediction.nbytes
        total += sum(out.nbytes for out in self.layer_outputs)
        total += sum(len(chunk) + 64 * len(proof) for chunk, proof in self.audited_chunks.values())
        return int(total)


class VerifiableExecutor:
    """Prover side: run a Dense-stack model and emit a transcript."""

    def __init__(self, model, chunk_size: int = 4096, n_audit_chunks: int = 2, seed: int = 0) -> None:
        self.model = model
        self.weight_root, self._tree, self._chunks = commit_model_weights(model, chunk_size=chunk_size)
        self.n_audit_chunks = int(n_audit_chunks)
        self._rng = np.random.default_rng(seed)

    def execute(self, x: np.ndarray) -> ExecutionTranscript:
        """Run inference, recording every layer output."""
        start = time.perf_counter()
        out = np.asarray(x, dtype=np.float64)
        layer_outputs: List[np.ndarray] = []
        for layer in self.model.layers:
            out = layer.forward(out, training=False)
            layer_outputs.append(out.copy())
        elapsed = time.perf_counter() - start
        audited: Dict[int, Tuple[bytes, List[Tuple[str, str]]]] = {}
        if self._chunks:
            picks = self._rng.choice(len(self._chunks), size=min(self.n_audit_chunks, len(self._chunks)), replace=False)
            for idx in picks:
                audited[int(idx)] = (self._chunks[int(idx)], self._tree.proof(int(idx)))
        return ExecutionTranscript(
            model_name=self.model.name,
            weight_root=self.weight_root,
            x=np.asarray(x, dtype=np.float64),
            layer_outputs=layer_outputs,
            prediction=layer_outputs[-1] if layer_outputs else np.asarray(x),
            prove_time_s=elapsed,
            audited_chunks=audited,
        )


def _matches(expected: np.ndarray, claimed: np.ndarray, atol: float = 1e-5) -> bool:
    """allclose with a shape guard (malformed transcripts must be flagged,
    not crash the verifier with a broadcast error)."""
    expected = np.asarray(expected)
    claimed = np.asarray(claimed)
    return expected.shape == claimed.shape and bool(np.allclose(expected, claimed, atol=atol))


class TranscriptVerifier:
    """Verifier side: check a transcript against the registered model."""

    def __init__(self, model, expected_root: Optional[str] = None, n_trials: int = 8, seed: int = 0) -> None:
        self.model = model
        self.expected_root = expected_root
        self.freivalds = FreivaldsVerifier(n_trials=n_trials, seed=seed)

    def _verify_conv(self, i: int, layer: Conv2D, current: np.ndarray, claimed: np.ndarray) -> List[str]:
        """Freivalds-check a Conv2D layer via its im2col GEMM triple.

        Builds exactly the record the compiled plan hands to
        :func:`repro.verification.verify_compiled_run`: ``A`` = the im2col
        column matrix of the claimed layer input, ``B`` = the kernel in GEMM
        form ``(k*k*c_in, filters)``, ``C`` = the claimed pre-bias product —
        checked in O(rows·cols) projections instead of recomputed in
        O(rows·cols·filters).  Convs with a fused activation cannot expose
        their pre-activation product in the transcript, so (exactly like the
        fused-Dense contract above) the activation output is recomputed from
        the implied pre-activation instead.
        """
        k, stride, pad = layer.kernel_size, layer.stride, layer._pad_amount()
        x = np.asarray(current, dtype=np.float64)
        if x.ndim != 4:
            return [f"layer {i} ({layer.name}): conv input rank {x.ndim} is not NHWC"]
        cols, out_h, out_w = im2col(x, k, k, stride, pad)
        expected_shape = (x.shape[0], out_h, out_w, layer.filters)
        claimed = np.asarray(claimed, dtype=np.float64)
        if claimed.shape != expected_shape:
            return [f"layer {i} ({layer.name}): claimed shape {claimed.shape} != {expected_shape}"]
        wmat = layer.params["W"].reshape(-1, layer.filters)
        if layer.activation_name:
            z = cols @ wmat
            if layer.use_bias:
                z = z + layer.params["b"]
            fn, _ = A.get_activation(layer.activation_name)
            if not _matches(fn(z.reshape(expected_shape)), claimed):
                return [f"layer {i} ({layer.name}): activation output mismatch"]
            return []
        target = claimed.reshape(-1, layer.filters)
        if layer.use_bias:
            target = target - layer.params["b"]
        if not self.freivalds.verify(cols, wmat, target):
            return [f"layer {i} ({layer.name}): Freivalds check failed"]
        return []

    def verify(self, transcript: ExecutionTranscript) -> Dict[str, object]:
        """Verify a transcript; returns a report with validity and timing."""
        start = time.perf_counter()
        checks_before = self.freivalds.checks_performed
        issues: List[str] = []
        if self.expected_root is not None and transcript.weight_root != self.expected_root:
            issues.append("weight commitment does not match the registered model")
        for idx, (chunk, proof) in transcript.audited_chunks.items():
            if not MerkleTree.verify_proof(chunk, idx, proof, transcript.weight_root):
                issues.append(f"weight chunk {idx} fails its inclusion proof")

        current = transcript.x
        if len(transcript.layer_outputs) != len(self.model.layers):
            issues.append("transcript length does not match the model architecture")
        else:
            for i, (layer, claimed) in enumerate(zip(self.model.layers, transcript.layer_outputs)):
                if isinstance(layer, Dense):
                    pre = claimed
                    if layer.activation_name:
                        # Invert the (monotone) fused activation is not possible in
                        # general; instead recompute activation from the claimed
                        # pre-activation implied by Freivalds on the linear part.
                        z = current @ layer.params["W"]
                        if layer.use_bias:
                            z = z + layer.params["b"]
                        fn, _ = A.get_activation(layer.activation_name)
                        expected = fn(z)
                        if not _matches(expected, claimed):
                            issues.append(f"layer {i} ({layer.name}): activation output mismatch")
                    else:
                        target = claimed - layer.params["b"] if layer.use_bias else claimed
                        if not self.freivalds.verify(current, layer.params["W"], target):
                            issues.append(f"layer {i} ({layer.name}): Freivalds check failed")
                elif isinstance(layer, Conv2D):
                    issues.extend(self._verify_conv(i, layer, current, claimed))
                elif isinstance(layer, (Activation, BatchNorm, Flatten, Dropout)):
                    expected = layer.forward(current, training=False)
                    if not _matches(expected, claimed):
                        issues.append(f"layer {i} ({layer.name}): recomputation mismatch")
                else:
                    # Depthwise convolutions (k*k tap accumulation, no single
                    # GEMM form) and pooling layers: recompute directly —
                    # their cost is a small fraction of the standard convs
                    # now covered by the Freivalds GEMM check.
                    expected = layer.forward(current, training=False)
                    if not _matches(expected, claimed):
                        issues.append(f"layer {i} ({layer.name}): recomputation mismatch")
                current = claimed
        verify_time = time.perf_counter() - start
        return {
            "valid": not issues,
            "issues": issues,
            "verify_time_s": verify_time,
            "prove_time_s": transcript.prove_time_s,
            "overhead_ratio": verify_time / max(transcript.prove_time_s, 1e-12),
            "transcript_bytes": transcript.transcript_bytes(),
            "soundness_error": self.freivalds.soundness_error,
            "freivalds_checked_gemms": self.freivalds.checks_performed - checks_before,
        }
