"""Layer-wise verifiable execution protocol (SafetyNets-flavoured).

The untrusted device (prover) evaluates the model and produces an
:class:`ExecutionTranscript`: the input, every layer's output, and the
claimed prediction, bound to a Merkle commitment of the weights.  A cheap
verifier then checks the transcript without redoing the full computation:

* dense layers (the dominant cost) are verified with Freivalds' randomized
  matrix-product check — O(n²) instead of O(n³);
* element-wise activations and other cheap ops are recomputed directly
  (their cost is negligible);
* the weights used are checked against the registered Merkle root via spot
  audits of random chunks.

The verifier's cost relative to plain inference is reported so experiment E9
can compare against the paper's "~5 % overhead for MNIST-scale models" data
point for SafetyNets.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn import activations as A
from repro.nn.layers import Activation, BatchNorm, Dense, Dropout, Flatten

from .commitments import MerkleTree, commit_model_weights
from .freivalds import FreivaldsVerifier

__all__ = ["ExecutionTranscript", "VerifiableExecutor", "TranscriptVerifier"]


@dataclass
class ExecutionTranscript:
    """Everything the prover hands to the verifier for one batch."""

    model_name: str
    weight_root: str
    x: np.ndarray
    layer_outputs: List[np.ndarray]
    prediction: np.ndarray
    prove_time_s: float = 0.0
    audited_chunks: Dict[int, Tuple[bytes, List[Tuple[str, str]]]] = field(default_factory=dict)

    def transcript_bytes(self) -> int:
        """Size of the transcript payload (the 'proof' the device must ship)."""
        total = self.x.nbytes + self.prediction.nbytes
        total += sum(out.nbytes for out in self.layer_outputs)
        total += sum(len(chunk) + 64 * len(proof) for chunk, proof in self.audited_chunks.values())
        return int(total)


class VerifiableExecutor:
    """Prover side: run a Dense-stack model and emit a transcript."""

    def __init__(self, model, chunk_size: int = 4096, n_audit_chunks: int = 2, seed: int = 0) -> None:
        self.model = model
        self.weight_root, self._tree, self._chunks = commit_model_weights(model, chunk_size=chunk_size)
        self.n_audit_chunks = int(n_audit_chunks)
        self._rng = np.random.default_rng(seed)

    def execute(self, x: np.ndarray) -> ExecutionTranscript:
        """Run inference, recording every layer output."""
        start = time.perf_counter()
        out = np.asarray(x, dtype=np.float64)
        layer_outputs: List[np.ndarray] = []
        for layer in self.model.layers:
            out = layer.forward(out, training=False)
            layer_outputs.append(out.copy())
        elapsed = time.perf_counter() - start
        audited: Dict[int, Tuple[bytes, List[Tuple[str, str]]]] = {}
        if self._chunks:
            picks = self._rng.choice(len(self._chunks), size=min(self.n_audit_chunks, len(self._chunks)), replace=False)
            for idx in picks:
                audited[int(idx)] = (self._chunks[int(idx)], self._tree.proof(int(idx)))
        return ExecutionTranscript(
            model_name=self.model.name,
            weight_root=self.weight_root,
            x=np.asarray(x, dtype=np.float64),
            layer_outputs=layer_outputs,
            prediction=layer_outputs[-1] if layer_outputs else np.asarray(x),
            prove_time_s=elapsed,
            audited_chunks=audited,
        )


class TranscriptVerifier:
    """Verifier side: check a transcript against the registered model."""

    def __init__(self, model, expected_root: Optional[str] = None, n_trials: int = 8, seed: int = 0) -> None:
        self.model = model
        self.expected_root = expected_root
        self.freivalds = FreivaldsVerifier(n_trials=n_trials, seed=seed)

    def verify(self, transcript: ExecutionTranscript) -> Dict[str, object]:
        """Verify a transcript; returns a report with validity and timing."""
        start = time.perf_counter()
        issues: List[str] = []
        if self.expected_root is not None and transcript.weight_root != self.expected_root:
            issues.append("weight commitment does not match the registered model")
        for idx, (chunk, proof) in transcript.audited_chunks.items():
            if not MerkleTree.verify_proof(chunk, idx, proof, transcript.weight_root):
                issues.append(f"weight chunk {idx} fails its inclusion proof")

        current = transcript.x
        if len(transcript.layer_outputs) != len(self.model.layers):
            issues.append("transcript length does not match the model architecture")
        else:
            for i, (layer, claimed) in enumerate(zip(self.model.layers, transcript.layer_outputs)):
                if isinstance(layer, Dense):
                    pre = claimed
                    if layer.activation_name:
                        # Invert the (monotone) fused activation is not possible in
                        # general; instead recompute activation from the claimed
                        # pre-activation implied by Freivalds on the linear part.
                        z = current @ layer.params["W"]
                        if layer.use_bias:
                            z = z + layer.params["b"]
                        fn, _ = A.get_activation(layer.activation_name)
                        expected = fn(z)
                        if not np.allclose(expected, claimed, atol=1e-5):
                            issues.append(f"layer {i} ({layer.name}): activation output mismatch")
                    else:
                        target = claimed - layer.params["b"] if layer.use_bias else claimed
                        if not self.freivalds.verify(current, layer.params["W"], target):
                            issues.append(f"layer {i} ({layer.name}): Freivalds check failed")
                elif isinstance(layer, (Activation, BatchNorm, Flatten, Dropout)):
                    expected = layer.forward(current, training=False)
                    if not np.allclose(expected, claimed, atol=1e-5):
                        issues.append(f"layer {i} ({layer.name}): recomputation mismatch")
                else:
                    # Convolutional and pooling layers: recompute directly (still
                    # cheaper than the prover when batch sizes are large, and
                    # exact); a production system would extend Freivalds to the
                    # im2col matrices instead.
                    expected = layer.forward(current, training=False)
                    if not np.allclose(expected, claimed, atol=1e-5):
                        issues.append(f"layer {i} ({layer.name}): recomputation mismatch")
                current = claimed
        verify_time = time.perf_counter() - start
        return {
            "valid": not issues,
            "issues": issues,
            "verify_time_s": verify_time,
            "prove_time_s": transcript.prove_time_s,
            "overhead_ratio": verify_time / max(transcript.prove_time_s, 1e-12),
            "transcript_bytes": transcript.transcript_bytes(),
            "soundness_error": self.freivalds.soundness_error,
        }
