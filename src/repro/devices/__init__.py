"""Simulated edge-device substrate: profiles, cost models, fleets, DES kernel."""

from .battery import Battery, PowerState
from .cost import CostModel, ExecutionCost, model_flops_and_bytes
from .events import Event, EventQueue
from .fleet import EdgeDevice, Fleet, InstalledArtifact
from .network import ConnectivityTrace, NetworkCondition, NetworkType, transfer_time_s
from .profiles import (
    STANDARD_PROFILES,
    DeviceClass,
    DeviceProfile,
    get_profile,
    list_profiles,
    random_fleet_profiles,
)
from .state import BatteryView, FleetState

__all__ = [
    "Battery",
    "PowerState",
    "CostModel",
    "ExecutionCost",
    "model_flops_and_bytes",
    "Event",
    "EventQueue",
    "EdgeDevice",
    "Fleet",
    "InstalledArtifact",
    "ConnectivityTrace",
    "NetworkCondition",
    "NetworkType",
    "transfer_time_s",
    "DeviceClass",
    "DeviceProfile",
    "STANDARD_PROFILES",
    "get_profile",
    "list_profiles",
    "random_fleet_profiles",
    "BatteryView",
    "FleetState",
]
