"""Columnar fleet state: structure-of-arrays device state behind the fleet API.

Paper Section III drives model selection, serving admission and
federated-client eligibility from per-device context — battery level, power
state, connectivity, idleness.  After the serving, federated and
observability hot paths were vectorized (PRs 1-5), that context was the last
per-object surface: ``serve_fleet``, ``FederatedEngine.fleet_context()`` and
``Fleet.summary()`` still walked N Python objects per sweep.  This module
closes ROADMAP item 1: the whole fleet's dynamic state lives in fleet-wide
NumPy planes and admission, battery draw, scheduling context and telemetry
become pure array ops end-to-end — a 1M-device diurnal-traffic scenario fits
in-process because a fleet is ~15 arrays, not 10^6 objects.

Architecture note — plane layout
--------------------------------
:class:`FleetState` owns one 1-D array ("plane") per dynamic attribute, all
indexed by device row:

==========================  =========  ==========================================
plane                       dtype      semantics
==========================  =========  ==========================================
``level_j``                 float64    battery charge (``inf`` for mains power)
``capacity_j``              float64    battery capacity (``inf`` for mains power)
``plugged_in``              bool       external power connected
``low_power_threshold``     float64    SoC fraction below which LOW_POWER reports
``charge_rate_w``           float64    charging power while plugged in
``idle_draw_w``             float64    baseline draw applied by ``advance``
``net_kind``                int16      code into ``net_kinds`` (link-type table)
``net_bandwidth_bps``       float64    current link bandwidth
``net_latency_s``           float64    current link latency
``net_cost_per_mb``         float64    current link transfer cost
``net_metered``             bool       link is metered
``idle``                    bool       device is idle (eligibility signal)
``query_count``             int64      served-query counter
``used_flash``              int64      bytes consumed by installed artifacts
``profile_idx``             int32      code into ``profile_table``
``seeds``                   int64      per-device RNG seed
``rng_streams``             object     per-device ``np.random.Generator`` (lazy)
==========================  =========  ==========================================

Static identity lives next to the planes: ``device_ids`` (row order),
``profile_table`` (interned :class:`~repro.devices.profiles.DeviceProfile`
objects) and ``net_kinds`` (interned link-type strings, extended on demand so
custom :class:`~repro.devices.network.NetworkCondition` kinds round-trip).

View invariants
---------------
* Every :class:`~repro.devices.fleet.EdgeDevice` is a *row view*: its
  ``battery`` is a :class:`BatteryView` and its ``network`` / ``idle`` /
  ``query_count`` accessors read and write the planes directly, so scalar
  object mutations and vectorized plane ops observe the same world.
* A device views exactly **one** store.  Building a
  :class:`~repro.devices.fleet.Fleet` from existing devices *adopts* them:
  their rows are copied into the fleet's consolidated store and the views are
  re-bound, so ``fleet.get(id) is device`` stays true.  A device previously
  shared with another fleet stops tracking that fleet's store.
* The scalar object API is the differential oracle: every vectorized op on
  this store (:meth:`FleetState.draw_batch_rows`,
  :meth:`FleetState.advance_all`, :meth:`FleetState.training_eligible_mask`,
  :meth:`FleetState.context_table`) is bit-identical to the equivalent loop
  over the object views — asserted by ``tests/devices/test_fleet_state.py``
  and enforced at benchmark time by the ``bench_e1`` fleet-state guardrail.

Adding a new state column
-------------------------
1. Allocate the plane in :meth:`FleetState.__init__` with an explicit dtype
   and a per-row default, and list it in ``_COPY_PLANES`` so
   :meth:`from_devices` consolidation and row copies carry it.
2. Expose a property pair on the owning view (:class:`BatteryView` for power
   attributes, :class:`~repro.devices.fleet.EdgeDevice` otherwise) so the
   scalar oracle reads/writes the same plane.
3. Extend the vectorized queries that should see it (and
   :meth:`context_table` if it is a scheduling signal), then add a
   plane-vs-object equivalence case to ``tests/devices/test_fleet_state.py``.

Sharding a new plane
--------------------
The sharded multi-process backend (:mod:`repro.runtime.sharded`, ROADMAP
item 2) splits a store into per-worker sub-stores with
:meth:`FleetState.extract_rows` and re-absorbs worker results with
:meth:`FleetState.merge_rows`.  When you add a plane, decide which of three
categories it falls in — the split/merge machinery handles each uniformly:

1. *Plain numeric/bool planes* (the common case): listing the plane in
   ``_COPY_PLANES`` is enough — ``extract_rows`` fancy-indexes it into the
   shard and ``merge_rows`` fancy-assigns it back.  Per-device *counters*
   belong here: ``query_count`` and ``used_flash`` (the per-device quota
   counters) have been planes since the columnar redesign, which is exactly
   what lets a shard carry its admission state home without object-graph
   surgery.  (Per-*grant* quota counters live in each device's MAC-chained
   :class:`~repro.billing.UsageLedger` and travel as re-chained ledger
   segments instead — see
   :meth:`~repro.billing.UsageLedger.append_segment`.)
2. *Interned-code planes* (``net_kind``, ``profile_idx``): the codes are
   store-local, so ``extract_rows`` / ``merge_rows`` must translate them
   through the destination store's interning table exactly like
   :meth:`from_devices` does.  Follow the ``net_kind`` look-up-table pattern
   in both methods.
3. *Object planes* (``rng_streams``): ``extract_rows`` must **deep-copy**
   the objects so worker-side mutation never aliases the parent store (the
   in-process "inline" backend must behave byte-identically to a forked
   worker, which gets a pickled copy anyway), and ``merge_rows`` adopts the
   shard's objects by reference — the stream state comes home with the
   shard.  ``from_devices`` adoption, by contrast, copies the *reference*:
   a device keeps its exact stream when it moves between fleets.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Sequence

import numpy as np

from .battery import Battery, PowerState
from .network import NetworkCondition, NetworkType
from .profiles import DeviceProfile

__all__ = ["FleetState", "BatteryView"]


# Planes copied verbatim when consolidating stores / copying rows.
_COPY_PLANES = (
    "level_j",
    "capacity_j",
    "plugged_in",
    "low_power_threshold",
    "charge_rate_w",
    "idle_draw_w",
    "net_kind",
    "net_bandwidth_bps",
    "net_latency_s",
    "net_cost_per_mb",
    "net_metered",
    "idle",
    "query_count",
    "used_flash",
    "seeds",
    "rng_streams",
)

# Planes that need special handling when rows move between stores:
# interned codes are store-local, generators must not alias across shards.
_INTERNED_PLANES = ("net_kind",)
_OBJECT_PLANES = ("rng_streams",)


class FleetState:
    """Structure-of-arrays store for the dynamic state of a whole fleet."""

    def __init__(
        self,
        device_ids: Sequence[str],
        profiles: Sequence[DeviceProfile],
        seeds: Optional[Sequence[int]] = None,
    ) -> None:
        n = len(device_ids)
        if len(profiles) != n:
            raise ValueError("device_ids and profiles must have equal length")
        self.device_ids: List[str] = [str(d) for d in device_ids]
        self.n_devices = n

        # -- static identity tables -------------------------------------
        self.profile_table: List[DeviceProfile] = []
        self._profile_codes: Dict[DeviceProfile, int] = {}
        self.profile_idx = np.empty(n, dtype=np.int32)
        for i, profile in enumerate(profiles):
            self.profile_idx[i] = self._intern_profile(profile)
        self.net_kinds: List[str] = list(NetworkType.ALL)
        self._net_kind_codes: Dict[str, int] = {k: i for i, k in enumerate(self.net_kinds)}
        self._derived_cache: Dict[str, tuple] = {}

        # -- battery planes (defaults: full charge, Battery() attributes) --
        caps = np.array([p.battery_capacity_j for p in profiles], dtype=np.float64)
        self.capacity_j = caps
        self.level_j = caps.copy()
        self.plugged_in = np.zeros(n, dtype=bool)
        self.low_power_threshold = np.full(n, 0.2, dtype=np.float64)
        self.charge_rate_w = np.full(n, 5.0, dtype=np.float64)
        self.idle_draw_w = np.full(n, 0.01, dtype=np.float64)

        # -- network planes (default: WiFi) ------------------------------
        wifi = NetworkCondition.of(NetworkType.WIFI)
        self.net_kind = np.full(n, self._net_kind_codes[NetworkType.WIFI], dtype=np.int16)
        self.net_bandwidth_bps = np.full(n, wifi.bandwidth_bps, dtype=np.float64)
        self.net_latency_s = np.full(n, wifi.latency_s, dtype=np.float64)
        self.net_cost_per_mb = np.full(n, wifi.cost_per_mb, dtype=np.float64)
        self.net_metered = np.zeros(n, dtype=bool)

        # -- device planes ----------------------------------------------
        self.idle = np.ones(n, dtype=bool)
        self.query_count = np.zeros(n, dtype=np.int64)
        self.used_flash = np.zeros(n, dtype=np.int64)
        self.seeds = (
            np.asarray(seeds, dtype=np.int64).copy()
            if seeds is not None
            else np.zeros(n, dtype=np.int64)
        )
        if self.seeds.shape != (n,):
            raise ValueError("seeds must have one entry per device")
        # Per-device RNG *streams* (not just seeds): materialized lazily by
        # rng_at so an untouched fleet stays ~15 numeric planes, but once a
        # device has drawn, its generator state lives here — which is what
        # lets extract_rows/merge_rows ship live streams to a worker shard
        # and bring the advanced state home without object-graph surgery.
        self.rng_streams = np.full(n, None, dtype=object)

    # ------------------------------------------------------------------
    # interning
    # ------------------------------------------------------------------
    def _intern_profile(self, profile: DeviceProfile) -> int:
        code = self._profile_codes.get(profile)
        if code is None:
            code = len(self.profile_table)
            self.profile_table.append(profile)
            self._profile_codes[profile] = code
        return code

    def _intern_kind(self, kind: str) -> int:
        code = self._net_kind_codes.get(kind)
        if code is None:
            code = len(self.net_kinds)
            self.net_kinds.append(kind)
            self._net_kind_codes[kind] = code
        return code

    def _derived(self, name: str, build) -> np.ndarray:
        """Per-profile/per-kind lookup array, rebuilt when the table grows."""
        cached = self._derived_cache.get(name)
        key = (len(self.profile_table), len(self.net_kinds))
        if cached is None or cached[0] != key:
            cached = (key, build())
            self._derived_cache[name] = cached
        return cached[1]

    @property
    def _profile_flash(self) -> np.ndarray:
        return self._derived(
            "flash", lambda: np.array([p.flash_bytes for p in self.profile_table], dtype=np.int64)
        )

    @property
    def _profile_class(self) -> np.ndarray:
        return self._derived(
            "class", lambda: np.array([p.device_class for p in self.profile_table], dtype=object)
        )

    @property
    def _kind_names(self) -> np.ndarray:
        return self._derived("kinds", lambda: np.array(self.net_kinds, dtype=object))

    @property
    def _kind_is_offline(self) -> np.ndarray:
        return self._derived(
            "offline", lambda: np.array([k == NetworkType.OFFLINE for k in self.net_kinds], dtype=bool)
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_devices(cls, devices: Sequence) -> "FleetState":
        """Consolidate the rows of existing device views into one store.

        The devices keep their identity; callers (``Fleet.__init__``) re-bind
        each view to its new row afterwards.
        """
        state = cls(
            [d.device_id for d in devices],
            [d.profile for d in devices],
            seeds=[getattr(d, "_seed", 0) for d in devices],
        )
        for i, device in enumerate(devices):
            src, j = device._state, device._idx
            for plane in _COPY_PLANES:
                if plane in _INTERNED_PLANES:
                    continue  # codes are store-local; re-interned below
                getattr(state, plane)[i] = getattr(src, plane)[j]
            state.net_kind[i] = state._intern_kind(src.net_kinds[int(src.net_kind[j])])
            state.profile_idx[i] = state._intern_profile(src.profile_table[int(src.profile_idx[j])])
        return state

    # ------------------------------------------------------------------
    # shard split / merge (repro.runtime.sharded)
    # ------------------------------------------------------------------
    def extract_rows(self, rows: Sequence[int]) -> "FleetState":
        """A standalone sub-store holding copies of the selected rows.

        The sharded backend's split primitive: every plane is copied (the
        parent keeps its values), interned codes are re-interned into the
        sub-store's own tables, and materialized RNG streams are
        **deep-copied** so shard-side draws never advance the parent's
        generators — an in-process shard must behave exactly like a forked
        worker, which receives a pickled copy.  Row order in the sub-store
        follows ``rows``.
        """
        rows = np.asarray(rows, dtype=np.intp)
        sub = FleetState(
            [self.device_ids[int(i)] for i in rows],
            [self.profile_at(int(i)) for i in rows],
        )
        for plane in _COPY_PLANES:
            if plane in _INTERNED_PLANES or plane in _OBJECT_PLANES:
                continue
            getattr(sub, plane)[:] = getattr(self, plane)[rows]
        kind_lut = np.array([sub._intern_kind(k) for k in self.net_kinds], dtype=np.int16)
        sub.net_kind[:] = kind_lut[self.net_kind[rows]]
        sub.rng_streams[:] = [
            None if gen is None else copy.deepcopy(gen) for gen in self.rng_streams[rows]
        ]
        return sub

    def merge_rows(self, sub: "FleetState", rows: Sequence[int]) -> None:
        """Absorb a sub-store produced by :meth:`extract_rows` back into ``rows``.

        The sharded backend's merge primitive: plane values are fancy-assigned
        back, interned codes translate through *this* store's tables (a shard
        may have interned kinds/profiles this store has not seen yet), and the
        shard's RNG streams are adopted by reference — the advanced generator
        state comes home with the shard.
        """
        rows = np.asarray(rows, dtype=np.intp)
        if len(rows) != sub.n_devices:
            raise ValueError("rows and sub-store size mismatch")
        for plane in _COPY_PLANES:
            if plane in _INTERNED_PLANES or plane in _OBJECT_PLANES:
                continue
            getattr(self, plane)[rows] = getattr(sub, plane)
        kind_lut = np.array([self._intern_kind(k) for k in sub.net_kinds], dtype=np.int16)
        self.net_kind[rows] = kind_lut[sub.net_kind]
        profile_lut = np.array([self._intern_profile(p) for p in sub.profile_table], dtype=np.int32)
        self.profile_idx[rows] = profile_lut[sub.profile_idx]
        self.rng_streams[rows] = sub.rng_streams

    # ------------------------------------------------------------------
    # per-row RNG streams
    # ------------------------------------------------------------------
    def rng_at(self, i: int) -> np.random.Generator:
        """Row ``i``'s RNG stream, materialized from its seed on first use."""
        gen = self.rng_streams[i]
        if gen is None:
            gen = np.random.default_rng(int(self.seeds[i]))
            self.rng_streams[i] = gen
        return gen

    def set_rng(self, i: int, generator: np.random.Generator) -> None:
        """Replace row ``i``'s RNG stream."""
        self.rng_streams[i] = generator

    # ------------------------------------------------------------------
    # per-row scalar accessors (used by the object views)
    # ------------------------------------------------------------------
    def set_battery(self, i: int, battery: Battery) -> None:
        """Copy a standalone :class:`Battery`'s fields into row ``i``."""
        self.capacity_j[i] = battery.capacity_j
        self.level_j[i] = battery.level_j
        self.plugged_in[i] = battery.plugged_in
        self.low_power_threshold[i] = battery.low_power_threshold
        self.charge_rate_w[i] = battery.charge_rate_w
        self.idle_draw_w[i] = battery.idle_draw_w

    def set_network(self, i: int, condition: NetworkCondition) -> None:
        """Decompose a :class:`NetworkCondition` snapshot into row ``i``."""
        self.net_kind[i] = self._intern_kind(condition.kind)
        self.net_bandwidth_bps[i] = condition.bandwidth_bps
        self.net_latency_s[i] = condition.latency_s
        self.net_cost_per_mb[i] = condition.cost_per_mb
        self.net_metered[i] = condition.metered

    def set_network_rows(self, mask: np.ndarray, condition: NetworkCondition) -> None:
        """Assign one link snapshot to every row selected by ``mask``."""
        self.net_kind[mask] = self._intern_kind(condition.kind)
        self.net_bandwidth_bps[mask] = condition.bandwidth_bps
        self.net_latency_s[mask] = condition.latency_s
        self.net_cost_per_mb[mask] = condition.cost_per_mb
        self.net_metered[mask] = condition.metered

    def network_at(self, i: int) -> NetworkCondition:
        """Reconstruct row ``i``'s :class:`NetworkCondition` snapshot."""
        return NetworkCondition(
            kind=self.net_kinds[int(self.net_kind[i])],
            bandwidth_bps=float(self.net_bandwidth_bps[i]),
            latency_s=float(self.net_latency_s[i]),
            cost_per_mb=float(self.net_cost_per_mb[i]),
            metered=bool(self.net_metered[i]),
        )

    def profile_at(self, i: int) -> DeviceProfile:
        """Row ``i``'s interned :class:`DeviceProfile`."""
        return self.profile_table[int(self.profile_idx[i])]

    # ------------------------------------------------------------------
    # vectorized queries (loop-equivalent to the object views)
    # ------------------------------------------------------------------
    def state_of_charge(self) -> np.ndarray:
        """Per-device SoC fraction, matching :attr:`Battery.state_of_charge`."""
        mains = np.isinf(self.capacity_j)
        dead = ~mains & (self.capacity_j <= 0)
        with np.errstate(invalid="ignore"):
            soc = np.clip(self.level_j / np.where(self.capacity_j > 0, self.capacity_j, 1.0), 0.0, 1.0)
        soc[dead] = 0.0
        soc[mains] = 1.0
        return soc

    def power_state(self) -> np.ndarray:
        """Per-device :class:`~repro.devices.battery.PowerState` strings."""
        soc = self.state_of_charge()
        return np.select(
            [self.plugged_in, soc <= 0.0, soc < self.low_power_threshold],
            [PowerState.PLUGGED_IN, PowerState.DEPLETED, PowerState.LOW_POWER],
            default=PowerState.ON_BATTERY,
        ).astype(object)

    def online_mask(self) -> np.ndarray:
        """Per-device connectivity, matching :attr:`NetworkCondition.online`."""
        return ~self._kind_is_offline[self.net_kind] & (self.net_bandwidth_bps > 0)

    def training_eligible_mask(self) -> np.ndarray:
        """FedAvg eligibility, matching :meth:`EdgeDevice.is_eligible_for_training`."""
        charged = self.plugged_in | (self.state_of_charge() > 0.6)
        return self.idle & self.online_mask() & ~self.net_metered & charged

    def free_flash(self) -> np.ndarray:
        """Per-device flash bytes still available for new artifacts."""
        return self._profile_flash[self.profile_idx] - self.used_flash

    def context_table(self) -> Dict[str, np.ndarray]:
        """The whole fleet's scheduling context as one columnar table.

        Columns mirror the keys of :meth:`EdgeDevice.context`; each value is
        a length-``n_devices`` array in row order.
        """
        return {
            "device_id": np.array(self.device_ids, dtype=object),
            "device_class": self._profile_class[self.profile_idx],
            "power_state": self.power_state(),
            "state_of_charge": self.state_of_charge(),
            "network": self._kind_names[self.net_kind],
            "network_online": self.online_mask(),
            "metered": self.net_metered.copy(),
            "idle": self.idle.copy(),
            "free_flash": self.free_flash(),
        }

    def context_rows(self, rows: Optional[Sequence[int]] = None) -> List[Dict[str, object]]:
        """Materialized per-device context dicts (``EdgeDevice.context`` rows).

        One vectorized pass computes every column, then only the requested
        ``rows`` (default: all) are boxed into dicts — the dict-building is
        the only O(#rows) Python left in a context sweep.
        """
        idx = np.arange(self.n_devices) if rows is None else np.asarray(rows, dtype=np.intp)
        classes = self._profile_class[self.profile_idx[idx]]
        power = self.power_state()[idx]
        soc = self.state_of_charge()[idx]
        kinds = self._kind_names[self.net_kind[idx]]
        online = self.online_mask()[idx]
        metered = self.net_metered[idx]
        idle = self.idle[idx]
        flash = self.free_flash()[idx]
        ids = self.device_ids
        return [
            {
                "device_id": ids[i],
                "device_class": classes[k],
                "power_state": power[k],
                "state_of_charge": float(soc[k]),
                "network": kinds[k],
                "network_online": bool(online[k]),
                "metered": bool(metered[k]),
                "idle": bool(idle[k]),
                "free_flash": int(flash[k]),
            }
            for k, i in enumerate(idx)
        ]

    # ------------------------------------------------------------------
    # vectorized mutations
    # ------------------------------------------------------------------
    def draw_batch_rows(
        self, rows: np.ndarray, energies: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        """Closed-form battery draw for many devices in one sweep.

        Per-row semantics are exactly :meth:`Battery.draw_batch` (the
        canonical serving-admission arithmetic): returns how many of
        ``counts[k]`` executions at ``energies[k]`` joules fit on device
        ``rows[k]``, draining partially-covered batteries to zero.  ``rows``
        must not contain duplicates (each row's draw is a single closed-form
        update).
        """
        rows = np.asarray(rows, dtype=np.intp)
        e = np.broadcast_to(np.asarray(energies, dtype=np.float64), rows.shape)
        n = np.broadcast_to(np.asarray(counts, dtype=np.int64), rows.shape)
        if np.any(e < 0):
            raise ValueError("energy draw must be non-negative")
        if np.any(n < 0):
            raise ValueError("batch size must be non-negative")
        level = self.level_j[rows]
        free = self.plugged_in[rows] | np.isinf(self.capacity_j[rows]) | (e == 0.0)
        safe_e = np.where(e > 0, e, 1.0)
        safe_level = np.where(np.isfinite(level), level, 0.0)
        fits = np.where(
            ~free & (level >= e), np.floor_divide(safe_level, safe_e), 0.0
        ).astype(np.int64)
        full = fits >= n
        served = np.where(free | full, n, fits)
        drained = np.where(full, np.maximum(0.0, level - n * e), 0.0)
        self.level_j[rows] = np.where(free, level, drained)
        return served

    def draw_batch_all(self, energies, counts) -> np.ndarray:
        """:meth:`draw_batch_rows` over the whole fleet in row order."""
        return self.draw_batch_rows(np.arange(self.n_devices), energies, counts)

    def advance_all(self, seconds: float, rows: Optional[np.ndarray] = None) -> None:
        """Advance simulated time for the fleet (``Battery.advance`` per row)."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        idx = np.arange(self.n_devices) if rows is None else np.asarray(rows, dtype=np.intp)
        finite = ~np.isinf(self.capacity_j[idx])
        charging = idx[finite & self.plugged_in[idx]]
        draining = idx[finite & ~self.plugged_in[idx]]
        self.level_j[charging] = np.minimum(
            self.capacity_j[charging], self.level_j[charging] + self.charge_rate_w[charging] * seconds
        )
        self.level_j[draining] = np.maximum(
            0.0, self.level_j[draining] - self.idle_draw_w[draining] * seconds
        )

    # ------------------------------------------------------------------
    def class_histogram(self) -> Dict[str, int]:
        """Device count per device class (one ``bincount`` over profile codes)."""
        counts = np.bincount(self.profile_idx, minlength=len(self.profile_table))
        classes: Dict[str, int] = {}
        for profile, count in zip(self.profile_table, counts):
            if count:
                classes[profile.device_class] = classes.get(profile.device_class, 0) + int(count)
        return classes

    def summary(self) -> Dict[str, object]:
        """Fleet-level aggregates from the planes (``Fleet.summary`` backend)."""
        n = self.n_devices
        classes = self.class_histogram()
        soc = self.state_of_charge()
        return {
            "n_devices": n,
            "classes": classes,
            "online_fraction": int(self.online_mask().sum()) / max(n, 1),
            "training_eligible": int(self.training_eligible_mask().sum()),
            "mean_soc": float(soc.mean()) if n else 0.0,
            "total_queries": int(self.query_count.sum()),
        }


class BatteryView(Battery):
    """A :class:`Battery` whose fields live in a :class:`FleetState` row.

    Same public methods, same semantics: every query and mutation of
    :class:`Battery` operates through the field properties below, so the
    shared method bodies are the single source of battery arithmetic for both
    standalone objects and store-backed rows (the equivalence suite asserts
    the round-trip through the planes is bit-exact).
    """

    def __init__(self, state: FleetState, index: int) -> None:
        self._s = state
        self._i = int(index)

    # Field properties shadow the dataclass attributes of Battery.
    @property
    def capacity_j(self) -> float:  # type: ignore[override]
        return float(self._s.capacity_j[self._i])

    @capacity_j.setter
    def capacity_j(self, value: float) -> None:
        self._s.capacity_j[self._i] = value

    @property
    def level_j(self) -> float:  # type: ignore[override]
        return float(self._s.level_j[self._i])

    @level_j.setter
    def level_j(self, value: float) -> None:
        self._s.level_j[self._i] = value

    @property
    def plugged_in(self) -> bool:  # type: ignore[override]
        return bool(self._s.plugged_in[self._i])

    @plugged_in.setter
    def plugged_in(self, value: bool) -> None:
        self._s.plugged_in[self._i] = bool(value)

    @property
    def low_power_threshold(self) -> float:  # type: ignore[override]
        return float(self._s.low_power_threshold[self._i])

    @low_power_threshold.setter
    def low_power_threshold(self, value: float) -> None:
        self._s.low_power_threshold[self._i] = value

    @property
    def charge_rate_w(self) -> float:  # type: ignore[override]
        return float(self._s.charge_rate_w[self._i])

    @charge_rate_w.setter
    def charge_rate_w(self, value: float) -> None:
        self._s.charge_rate_w[self._i] = value

    @property
    def idle_draw_w(self) -> float:  # type: ignore[override]
        return float(self._s.idle_draw_w[self._i])

    @idle_draw_w.setter
    def idle_draw_w(self, value: float) -> None:
        self._s.idle_draw_w[self._i] = value
