"""Device profiles: the fragmented edge hardware landscape in data form.

Paper Section IV describes the edge landscape as "much more fragmented
[than the cloud] with a wide range of different devices from different
vendors, each with different software support and hardware capabilities".
A :class:`DeviceProfile` captures exactly the attributes that matter for a
TinyMLOps platform:

* compute / memory / storage envelope,
* which graph operators the runtime on that device supports,
* which numeric bit-widths execute natively (and hence get a speed-up),
* power-related attributes used by the battery and scheduling models.

A catalogue of representative profiles (Cortex-M-class MCU, DSP-equipped
sensor node, mid-range phone, flagship phone with NPU, edge server with GPU)
is provided along with a generator for randomized fleets.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "DeviceClass",
    "DeviceProfile",
    "STANDARD_PROFILES",
    "get_profile",
    "list_profiles",
    "random_fleet_profiles",
]


# Graph operators understood by the exchange IR (see repro.exchange.ops).
_BASE_OPS = frozenset(
    {
        "dense",
        "conv2d",
        "relu",
        "relu6",
        "sigmoid",
        "tanh",
        "softmax",
        "maxpool2d",
        "avgpool2d",
        "global_avgpool2d",
        "flatten",
        "batchnorm",
        "add",
        "mul",
        "quantize",
        "dequantize",
        "normalize",
        "argmax",
        "threshold",
    }
)

_ADVANCED_OPS = frozenset({"depthwise_conv2d", "dropout", "concat", "reshape", "lstm", "attention"})


class DeviceClass:
    """Symbolic device tiers used throughout the platform."""

    MCU = "mcu"
    SENSOR_DSP = "sensor_dsp"
    PHONE_MID = "phone_mid"
    PHONE_FLAGSHIP = "phone_flagship"
    EDGE_SERVER = "edge_server"
    CLOUD = "cloud"

    ALL = (MCU, SENSOR_DSP, PHONE_MID, PHONE_FLAGSHIP, EDGE_SERVER, CLOUD)


@dataclass(frozen=True)
class DeviceProfile:
    """Static hardware/software description of one device type.

    Attributes
    ----------
    name:
        Profile identifier, e.g. ``"mcu-m4"``.
    device_class:
        One of :class:`DeviceClass`.
    peak_flops:
        Peak sustained multiply-accumulate throughput in FLOP/s.
    memory_bandwidth:
        Sustained memory bandwidth in bytes/s (roofline's second ceiling).
    ram_bytes:
        Available RAM for activations and runtime state.
    flash_bytes:
        Available storage for model weights and the portable modules.
    supported_ops:
        Operators the on-device runtime can execute.
    supported_bitwidths:
        Numeric bit-widths with native kernels.  Executing a model quantized
        to an unsupported width forces emulation (no speed-up, possible
        overhead) — the paper's "low precision … do not necessarily
        guarantee faster models on all hardware" point.
    energy_per_flop:
        Joules consumed per FLOP of compute.
    energy_per_byte:
        Joules consumed per byte moved over the memory bus.
    radio_energy_per_byte:
        Joules per byte transmitted over the network interface.
    has_secure_enclave:
        Whether a Secure Processing Environment (TEE) is present (Sec. VI).
    enclave_slowdown:
        Multiplicative latency factor for code run inside the enclave.
    accelerator:
        Optional accelerator tag (``"npu"``, ``"gpu"``, ``"dsp"``) used by
        vendor-specific lowering passes.
    """

    name: str
    device_class: str
    peak_flops: float
    memory_bandwidth: float
    ram_bytes: int
    flash_bytes: int
    supported_ops: FrozenSet[str] = _BASE_OPS
    supported_bitwidths: FrozenSet[int] = frozenset({32, 8})
    energy_per_flop: float = 1e-9
    energy_per_byte: float = 5e-9
    radio_energy_per_byte: float = 1e-7
    has_secure_enclave: bool = False
    enclave_slowdown: float = 2.0
    accelerator: Optional[str] = None
    battery_capacity_j: float = 5000.0

    def supports_op(self, op_type: str) -> bool:
        """True when the on-device runtime has a kernel for ``op_type``."""
        return op_type in self.supported_ops

    def supports_bitwidth(self, bits: int) -> bool:
        """True when ``bits``-wide arithmetic executes natively."""
        return int(bits) in self.supported_bitwidths

    def with_overrides(self, **kwargs) -> "DeviceProfile":
        """Return a copy with some attributes replaced."""
        return replace(self, **kwargs)

    def describe(self) -> Dict[str, object]:
        """Plain-dict summary used in manifests and reports."""
        return {
            "name": self.name,
            "class": self.device_class,
            "peak_gflops": self.peak_flops / 1e9,
            "ram_kb": self.ram_bytes / 1024,
            "flash_kb": self.flash_bytes / 1024,
            "bitwidths": sorted(self.supported_bitwidths),
            "accelerator": self.accelerator,
            "secure_enclave": self.has_secure_enclave,
        }


STANDARD_PROFILES: Dict[str, DeviceProfile] = {
    "mcu-m0": DeviceProfile(
        name="mcu-m0",
        device_class=DeviceClass.MCU,
        peak_flops=5e6,
        memory_bandwidth=2e7,
        ram_bytes=32 * 1024,
        flash_bytes=256 * 1024,
        supported_ops=frozenset(_BASE_OPS - {"conv2d", "batchnorm", "softmax"}),
        supported_bitwidths=frozenset({8}),
        energy_per_flop=2e-10,
        energy_per_byte=1e-9,
        radio_energy_per_byte=2e-7,
        battery_capacity_j=1500.0,
    ),
    "mcu-m4": DeviceProfile(
        name="mcu-m4",
        device_class=DeviceClass.MCU,
        peak_flops=8e7,
        memory_bandwidth=1e8,
        ram_bytes=256 * 1024,
        flash_bytes=1024 * 1024,
        supported_ops=frozenset(_BASE_OPS | {"depthwise_conv2d"}),
        supported_bitwidths=frozenset({32, 8}),
        energy_per_flop=1.5e-10,
        energy_per_byte=8e-10,
        radio_energy_per_byte=1.5e-7,
        battery_capacity_j=2500.0,
    ),
    "sensor-dsp": DeviceProfile(
        name="sensor-dsp",
        device_class=DeviceClass.SENSOR_DSP,
        peak_flops=4e8,
        memory_bandwidth=4e8,
        ram_bytes=2 * 1024 * 1024,
        flash_bytes=8 * 1024 * 1024,
        supported_ops=frozenset(_BASE_OPS | {"depthwise_conv2d", "reshape"}),
        supported_bitwidths=frozenset({8, 4, 2, 1}),
        energy_per_flop=8e-11,
        energy_per_byte=5e-10,
        radio_energy_per_byte=1e-7,
        accelerator="dsp",
        battery_capacity_j=4000.0,
    ),
    "phone-mid": DeviceProfile(
        name="phone-mid",
        device_class=DeviceClass.PHONE_MID,
        peak_flops=2e10,
        memory_bandwidth=8e9,
        ram_bytes=512 * 1024 * 1024,
        flash_bytes=4 * 1024 * 1024 * 1024,
        supported_ops=frozenset(_BASE_OPS | _ADVANCED_OPS - {"attention", "lstm"}),
        supported_bitwidths=frozenset({32, 16, 8}),
        energy_per_flop=5e-11,
        energy_per_byte=3e-10,
        radio_energy_per_byte=6e-8,
        battery_capacity_j=40000.0,
    ),
    "phone-flagship": DeviceProfile(
        name="phone-flagship",
        device_class=DeviceClass.PHONE_FLAGSHIP,
        peak_flops=2e11,
        memory_bandwidth=3e10,
        ram_bytes=2 * 1024 * 1024 * 1024,
        flash_bytes=16 * 1024 * 1024 * 1024,
        supported_ops=frozenset(_BASE_OPS | _ADVANCED_OPS),
        supported_bitwidths=frozenset({32, 16, 8, 4}),
        energy_per_flop=2e-11,
        energy_per_byte=2e-10,
        radio_energy_per_byte=5e-8,
        has_secure_enclave=True,
        enclave_slowdown=2.0,
        accelerator="npu",
        battery_capacity_j=60000.0,
    ),
    "edge-server": DeviceProfile(
        name="edge-server",
        device_class=DeviceClass.EDGE_SERVER,
        peak_flops=5e12,
        memory_bandwidth=3e11,
        ram_bytes=32 * 1024 * 1024 * 1024,
        flash_bytes=512 * 1024 * 1024 * 1024,
        supported_ops=frozenset(_BASE_OPS | _ADVANCED_OPS),
        supported_bitwidths=frozenset({32, 16, 8, 4, 2, 1}),
        energy_per_flop=1e-11,
        energy_per_byte=1e-10,
        radio_energy_per_byte=1e-8,
        has_secure_enclave=True,
        enclave_slowdown=1.5,
        accelerator="gpu",
        battery_capacity_j=float("inf"),
    ),
    "cloud": DeviceProfile(
        name="cloud",
        device_class=DeviceClass.CLOUD,
        peak_flops=5e13,
        memory_bandwidth=2e12,
        ram_bytes=256 * 1024 * 1024 * 1024,
        flash_bytes=10 * 1024 * 1024 * 1024 * 1024,
        supported_ops=frozenset(_BASE_OPS | _ADVANCED_OPS),
        supported_bitwidths=frozenset({32, 16, 8, 4, 2, 1}),
        energy_per_flop=5e-12,
        energy_per_byte=5e-11,
        radio_energy_per_byte=5e-9,
        has_secure_enclave=True,
        enclave_slowdown=1.2,
        accelerator="gpu",
        battery_capacity_j=float("inf"),
    ),
}


def get_profile(name: str) -> DeviceProfile:
    """Look up a standard profile by name."""
    if name not in STANDARD_PROFILES:
        raise KeyError(f"unknown device profile {name!r}; known: {sorted(STANDARD_PROFILES)}")
    return STANDARD_PROFILES[name]


def list_profiles() -> List[str]:
    """Names of all standard profiles, smallest to largest."""
    return list(STANDARD_PROFILES)


def random_fleet_profiles(
    n_devices: int,
    mix: Optional[Dict[str, float]] = None,
    seed: int = 0,
) -> List[DeviceProfile]:
    """Sample a heterogeneous fleet of device profiles.

    ``mix`` maps profile names to sampling weights; the default mix is
    dominated by MCUs and mid-range phones, matching the long tail of real
    IoT deployments.
    """
    if n_devices <= 0:
        raise ValueError("n_devices must be positive")
    if mix is None:
        mix = {
            "mcu-m0": 0.2,
            "mcu-m4": 0.25,
            "sensor-dsp": 0.15,
            "phone-mid": 0.2,
            "phone-flagship": 0.15,
            "edge-server": 0.05,
        }
    names = list(mix)
    weights = np.array([mix[n] for n in names], dtype=np.float64)
    weights /= weights.sum()
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(names), size=n_devices, p=weights)
    return [STANDARD_PROFILES[names[i]] for i in picks]
