"""Roofline-style cost models: latency, energy and memory of model execution.

The cost model is what lets the platform reason about deployment without
real hardware.  It estimates, for a model (expressed as FLOPs and bytes
moved) on a given :class:`~repro.devices.profiles.DeviceProfile`:

* latency = max(compute time, memory-bound time) x bit-width factor,
* energy  = compute energy + data-movement energy,
* peak memory from the activation schedule.

Low-precision execution only accelerates inference when the device has
native kernels for that bit-width (paper Section III-A); otherwise a small
emulation penalty is applied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .profiles import DeviceProfile

__all__ = ["ExecutionCost", "CostModel", "model_flops_and_bytes"]


@dataclass(frozen=True)
class ExecutionCost:
    """Estimated cost of one inference (or one training step) on a device."""

    latency_s: float
    energy_j: float
    peak_memory_bytes: float
    flops: float
    bytes_moved: float

    def scaled(self, factor: float) -> "ExecutionCost":
        """Cost multiplied by ``factor`` (e.g. number of queries)."""
        return ExecutionCost(
            latency_s=self.latency_s * factor,
            energy_j=self.energy_j * factor,
            peak_memory_bytes=self.peak_memory_bytes,
            flops=self.flops * factor,
            bytes_moved=self.bytes_moved * factor,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "latency_ms": self.latency_s * 1e3,
            "energy_mj": self.energy_j * 1e3,
            "peak_memory_kb": self.peak_memory_bytes / 1024,
            "mflops": self.flops / 1e6,
        }


def model_flops_and_bytes(model, bits: int = 32) -> Tuple[float, float, float]:
    """Estimate FLOPs, bytes moved and peak activation memory for a Sequential.

    Works directly on :class:`repro.nn.Sequential` layers using their configs
    and parameter counts; the exchange IR has its own, more precise
    estimator (:func:`repro.exchange.analysis.graph_cost`).
    Returns ``(flops, bytes_moved, peak_activation_bytes)`` per example.
    """
    from repro.nn.layers import (
        AvgPool2D,
        BatchNorm,
        Conv2D,
        Dense,
        DepthwiseConv2D,
        GlobalAvgPool2D,
        MaxPool2D,
    )

    bytes_per_el = max(bits, 8) / 8.0
    flops = 0.0
    bytes_moved = 0.0
    peak_act = float(np.prod(model.input_shape)) * bytes_per_el
    shape = model.input_shape
    for layer in model.layers:
        out_shape = layer.output_shape(shape)
        in_elems = float(np.prod(shape))
        out_elems = float(np.prod(out_shape))
        params = float(layer.num_params())
        if isinstance(layer, Dense):
            flops += 2.0 * shape[0] * layer.units
        elif isinstance(layer, Conv2D):
            k = layer.kernel_size
            flops += 2.0 * out_elems * k * k * shape[-1]
        elif isinstance(layer, DepthwiseConv2D):
            k = layer.kernel_size
            flops += 2.0 * out_elems * k * k
        elif isinstance(layer, (MaxPool2D, AvgPool2D)):
            flops += in_elems
        elif isinstance(layer, (BatchNorm, GlobalAvgPool2D)):
            flops += 2.0 * in_elems
        else:
            flops += in_elems  # activations and element-wise ops
        bytes_moved += (in_elems + out_elems + params) * bytes_per_el
        peak_act = max(peak_act, (in_elems + out_elems) * bytes_per_el)
        shape = out_shape
    return flops, bytes_moved, peak_act


class CostModel:
    """Maps (model characteristics, device profile) to an execution cost."""

    def __init__(self, emulation_penalty: float = 1.25, training_factor: float = 3.0) -> None:
        self.emulation_penalty = float(emulation_penalty)
        self.training_factor = float(training_factor)

    # -- core estimators -------------------------------------------------
    def inference_cost(
        self,
        profile: DeviceProfile,
        flops: float,
        bytes_moved: float,
        peak_memory: float,
        bits: int = 32,
    ) -> ExecutionCost:
        """Latency/energy of one forward pass."""
        native = profile.supports_bitwidth(bits)
        # Native low-precision kernels speed up compute roughly linearly in
        # the width reduction (paper Sec. III-A / refs [18]-[22]); emulated
        # low precision gets no speed-up and pays a small penalty.
        if native:
            speedup = 32.0 / max(bits, 1) if bits < 32 else 1.0
            penalty = 1.0
        else:
            speedup = 1.0
            penalty = self.emulation_penalty
        compute_time = flops / (profile.peak_flops * speedup)
        memory_time = bytes_moved / profile.memory_bandwidth
        latency = max(compute_time, memory_time) * penalty
        energy = flops * profile.energy_per_flop / speedup + bytes_moved * profile.energy_per_byte
        return ExecutionCost(
            latency_s=latency,
            energy_j=energy,
            peak_memory_bytes=peak_memory,
            flops=flops,
            bytes_moved=bytes_moved,
        )

    def model_inference_cost(self, profile: DeviceProfile, model, bits: int = 32) -> ExecutionCost:
        """Convenience wrapper running the FLOP estimator on a Sequential."""
        flops, bytes_moved, peak = model_flops_and_bytes(model, bits=bits)
        return self.inference_cost(profile, flops, bytes_moved, peak, bits=bits)

    def training_step_cost(
        self,
        profile: DeviceProfile,
        flops: float,
        bytes_moved: float,
        peak_memory: float,
        bits: int = 32,
    ) -> ExecutionCost:
        """Cost of one forward+backward+update step (≈3x forward, Sec. III-D)."""
        fwd = self.inference_cost(profile, flops, bytes_moved, peak_memory, bits)
        return ExecutionCost(
            latency_s=fwd.latency_s * self.training_factor,
            energy_j=fwd.energy_j * self.training_factor,
            peak_memory_bytes=fwd.peak_memory_bytes * 2.0,
            flops=fwd.flops * self.training_factor,
            bytes_moved=fwd.bytes_moved * self.training_factor,
        )

    def transmission_cost(self, profile: DeviceProfile, payload_bytes: float, bandwidth_bps: float) -> ExecutionCost:
        """Latency/energy of sending ``payload_bytes`` over the current link."""
        if bandwidth_bps <= 0:
            return ExecutionCost(float("inf"), float("inf"), 0.0, 0.0, payload_bytes)
        latency = payload_bytes * 8.0 / bandwidth_bps
        energy = payload_bytes * profile.radio_energy_per_byte
        return ExecutionCost(latency, energy, 0.0, 0.0, payload_bytes)

    # -- feasibility -----------------------------------------------------
    def fits_device(self, profile: DeviceProfile, model_bytes: float, peak_memory: float) -> bool:
        """Does the model fit in flash and its activations in RAM?"""
        return model_bytes <= profile.flash_bytes and peak_memory <= profile.ram_bytes

    def enclave_cost(self, profile: DeviceProfile, base: ExecutionCost, fraction_in_enclave: float = 1.0) -> ExecutionCost:
        """Cost when ``fraction_in_enclave`` of the compute runs in the SPE.

        Models the Slalom/MLCapsule observation (paper Sec. VI) that running
        everything inside a TEE costs roughly ``enclave_slowdown``x, while
        hybrid schemes only pay it on the protected fraction.
        """
        if not profile.has_secure_enclave:
            raise ValueError(f"device {profile.name} has no secure enclave")
        frac = float(np.clip(fraction_in_enclave, 0.0, 1.0))
        factor = (1.0 - frac) + frac * profile.enclave_slowdown
        return ExecutionCost(
            latency_s=base.latency_s * factor,
            energy_j=base.energy_j * factor,
            peak_memory_bytes=base.peak_memory_bytes,
            flops=base.flops,
            bytes_moved=base.bytes_moved,
        )
