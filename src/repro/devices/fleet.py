"""Edge device runtime state and fleet construction.

An :class:`EdgeDevice` combines a static :class:`DeviceProfile` with dynamic
state: battery level, current network condition, installed model artifacts,
local query counters and telemetry hooks.  A :class:`Fleet` is a collection
of devices with helpers for sampling heterogeneous populations and for
querying devices matching a predicate (e.g. "currently on WiFi and charging"
— the federated-client eligibility rule from Section III-D).

Since the columnar fleet-state redesign (ROADMAP item 1), the dynamic state
lives in a :class:`~repro.devices.state.FleetState` structure-of-arrays
store and every :class:`EdgeDevice` is a thin row view into it: the object
API keeps its exact historical semantics (it is the differential oracle for
the vectorized paths), while :class:`Fleet` exposes the fleet-wide queries —
:meth:`Fleet.training_eligible_mask`, :meth:`Fleet.context_table`,
:meth:`Fleet.advance_all`, :meth:`Fleet.draw_batch_all` — as pure array ops.
Device views are materialized lazily, so a million-device fleet is ~15 NumPy
planes plus only the view objects actually touched.
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .battery import Battery, PowerState
from .cost import CostModel, ExecutionCost
from .network import ConnectivityTrace, NetworkCondition, NetworkType
from .profiles import DeviceProfile, random_fleet_profiles
from .state import BatteryView, FleetState

__all__ = ["EdgeDevice", "Fleet", "InstalledArtifact"]


@dataclass
class InstalledArtifact:
    """A model (or pipeline) artifact currently installed on a device."""

    artifact_id: str
    version: str
    size_bytes: int
    bits: int = 32
    metadata: Dict[str, object] = field(default_factory=dict)


class EdgeDevice:
    """Dynamic state of a single simulated edge device.

    A row view into a :class:`~repro.devices.state.FleetState`: a standalone
    device owns a one-row store; a device obtained from a :class:`Fleet`
    shares the fleet's consolidated store.  Either way, every accessor below
    reads and writes the store planes, so scalar mutations and the fleet's
    vectorized queries observe the same state.
    """

    def __init__(
        self,
        device_id: str,
        profile: DeviceProfile,
        network: Optional[NetworkCondition] = None,
        battery: Optional[Battery] = None,
        seed: int = 0,
        user_id: Optional[str] = None,
    ) -> None:
        self.device_id = device_id
        self.profile = profile
        self.user_id = user_id or f"user-{device_id}"
        self._seed = int(seed)
        self.installed: Dict[str, InstalledArtifact] = {}
        self.telemetry_log: List[Dict[str, float]] = []
        self._cost_model_obj: Optional[CostModel] = None
        state = FleetState([device_id], [profile], seeds=[self._seed])
        if battery is not None:
            state.set_battery(0, battery)
        if network is not None:
            state.set_network(0, network)
        self._bind(state, 0)

    @classmethod
    def _from_state(cls, state: FleetState, idx: int) -> "EdgeDevice":
        """Materialize the view for one existing store row (no new store)."""
        device = object.__new__(cls)
        device.device_id = state.device_ids[idx]
        device.profile = state.profile_at(idx)
        device.user_id = f"user-{device.device_id}"
        device._seed = int(state.seeds[idx])
        device.installed = {}
        device.telemetry_log = []
        device._cost_model_obj = None
        device._bind(state, idx)
        return device

    def _bind(self, state: FleetState, idx: int) -> None:
        """(Re)attach this view to a store row; Fleet adoption uses this."""
        self._state = state
        self._idx = int(idx)
        self._battery = BatteryView(state, idx)

    # -- store-backed attributes -----------------------------------------
    @property
    def battery(self) -> Battery:
        """The device's battery (a row view; assignment copies fields in)."""
        return self._battery

    @battery.setter
    def battery(self, battery: Battery) -> None:
        self._state.set_battery(self._idx, battery)

    @property
    def network(self) -> NetworkCondition:
        """Current link snapshot (reconstructed from the network planes)."""
        return self._state.network_at(self._idx)

    @network.setter
    def network(self, condition: NetworkCondition) -> None:
        self._state.set_network(self._idx, condition)

    @property
    def idle(self) -> bool:
        return bool(self._state.idle[self._idx])

    @idle.setter
    def idle(self, value: bool) -> None:
        self._state.idle[self._idx] = bool(value)

    @property
    def query_count(self) -> int:
        return int(self._state.query_count[self._idx])

    @query_count.setter
    def query_count(self, value: int) -> None:
        self._state.query_count[self._idx] = int(value)

    @property
    def rng(self) -> np.random.Generator:
        """Per-device RNG stream, stored in the fleet's ``rng_streams`` plane.

        Materialized lazily from the seed plane on first use.  Because the
        *stream* (not just the seed) lives in the store, a sharded worker's
        sub-store carries the live generator state out and back — the view
        keeps its exact historical semantics while the plane makes the state
        splittable/mergeable (:meth:`~repro.devices.state.FleetState.extract_rows`).
        """
        return self._state.rng_at(self._idx)

    @rng.setter
    def rng(self, generator: np.random.Generator) -> None:
        self._state.set_rng(self._idx, generator)

    @property
    def _cost_model(self) -> CostModel:
        if self._cost_model_obj is None:
            self._cost_model_obj = CostModel()
        return self._cost_model_obj

    # -- capabilities ----------------------------------------------------
    def free_flash(self) -> int:
        """Flash bytes still available for new artifacts."""
        return int(self.profile.flash_bytes - self._state.used_flash[self._idx])

    def can_install(self, size_bytes: int) -> bool:
        """Whether an artifact of the given size fits in free storage."""
        return size_bytes <= self.free_flash()

    def install(self, artifact: InstalledArtifact) -> None:
        """Install (or replace) an artifact; raises if it does not fit."""
        existing = self.installed.get(artifact.artifact_id)
        freed = existing.size_bytes if existing else 0
        if artifact.size_bytes > self.free_flash() + freed:
            raise MemoryError(
                f"artifact {artifact.artifact_id} ({artifact.size_bytes} B) does not fit "
                f"on {self.device_id} (free {self.free_flash() + freed} B)"
            )
        self.installed[artifact.artifact_id] = artifact
        self._state.used_flash[self._idx] += artifact.size_bytes - freed

    def uninstall(self, artifact_id: str) -> None:
        """Remove an artifact if present."""
        existing = self.installed.pop(artifact_id, None)
        if existing is not None:
            self._state.used_flash[self._idx] -= existing.size_bytes

    # -- execution -------------------------------------------------------
    def execute(self, cost: ExecutionCost, record: bool = True) -> bool:
        """Account for one model execution: drain battery, log telemetry.

        Returns False when the battery cannot supply the required energy
        (the inference is considered failed / skipped).
        """
        ok = self.battery.draw(cost.energy_j)
        if ok:
            self.query_count += 1
            if record:
                self.telemetry_log.append(
                    {
                        "latency_s": cost.latency_s,
                        "energy_j": cost.energy_j,
                        "memory_bytes": cost.peak_memory_bytes,
                        "soc": self.battery.state_of_charge,
                    }
                )
        return ok

    def execute_batch(
        self, cost: ExecutionCost, n: int, record: bool = True, exact: bool = False
    ) -> int:
        """Account for up to ``n`` executions of the same cost in one step.

        Uses :meth:`Battery.draw_batch` so battery accounting for a whole
        traffic window is one arithmetic operation instead of a Python loop
        (``exact=True`` selects the iterated-subtraction oracle semantics —
        see :meth:`Battery.draw_batch`).  Returns the number of executions
        that actually ran (the rest failed on a depleted battery).  When
        ``record`` is set, one aggregated telemetry sample carrying a
        ``count`` field is appended instead of ``n`` identical rows.
        """
        ran = self.battery.draw_batch(cost.energy_j, n, exact=exact)
        if ran:
            self.query_count += ran
            if record:
                self.telemetry_log.append(
                    {
                        "latency_s": cost.latency_s,
                        "energy_j": cost.energy_j,
                        "memory_bytes": cost.peak_memory_bytes,
                        "soc": self.battery.state_of_charge,
                        "count": float(ran),
                    }
                )
        return ran

    def run_model(self, model, bits: int = 32) -> Tuple[bool, ExecutionCost]:
        """Estimate and account the cost of one inference of ``model``."""
        cost = self._cost_model.model_inference_cost(self.profile, model, bits=bits)
        return self.execute(cost), cost

    # -- context signals -------------------------------------------------
    def context(self) -> Dict[str, object]:
        """Context snapshot used by model selection and client scheduling."""
        return {
            "device_id": self.device_id,
            "device_class": self.profile.device_class,
            "power_state": self.battery.state,
            "state_of_charge": self.battery.state_of_charge,
            "network": self.network.kind,
            "network_online": self.network.online,
            "metered": self.network.metered,
            "idle": self.idle,
            "free_flash": self.free_flash(),
        }

    def is_eligible_for_training(self) -> bool:
        """FedAvg-style eligibility: idle, on unmetered network, charging or well charged."""
        charged = self.battery.state == PowerState.PLUGGED_IN or self.battery.state_of_charge > 0.6
        return self.idle and self.network.online and not self.network.metered and charged

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EdgeDevice({self.device_id}, {self.profile.name}, soc={self.battery.state_of_charge:.2f})"


class _DeviceMap(MappingABC):
    """Lazy ``device_id -> EdgeDevice`` mapping over a fleet's store."""

    def __init__(self, fleet: "Fleet") -> None:
        self._fleet = fleet

    def __getitem__(self, device_id: str) -> EdgeDevice:
        return self._fleet._device(device_id)

    def __iter__(self) -> Iterator[str]:
        return iter(self._fleet._rows)

    def __len__(self) -> int:
        return len(self._fleet._rows)

    def __contains__(self, device_id: object) -> bool:
        return device_id in self._fleet._rows


class Fleet:
    """A collection of edge devices under management by the platform.

    Backed by one consolidated :class:`~repro.devices.state.FleetState`
    (``fleet.state``); device views are created on demand, so fleet-wide
    queries never materialize objects.
    """

    def __init__(self, devices: Sequence[EdgeDevice]) -> None:
        ids = [d.device_id for d in devices]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate device ids in fleet")
        self.state = FleetState.from_devices(devices)
        self._rows: Dict[str, int] = {device_id: i for i, device_id in enumerate(ids)}
        self._cache: Dict[str, EdgeDevice] = {}
        for i, device in enumerate(devices):
            device._bind(self.state, i)
            self._cache[device.device_id] = device
        self._device_map = _DeviceMap(self)

    # -- construction ------------------------------------------------------
    @classmethod
    def from_state(cls, state: FleetState) -> "Fleet":
        """Wrap an existing columnar store without materializing devices."""
        if len(set(state.device_ids)) != len(state.device_ids):
            raise ValueError("duplicate device ids in fleet")
        fleet = object.__new__(cls)
        fleet.state = state
        fleet._rows = {device_id: i for i, device_id in enumerate(state.device_ids)}
        fleet._cache = {}
        fleet._device_map = _DeviceMap(fleet)
        return fleet

    @classmethod
    def random(
        cls,
        n_devices: int,
        mix: Optional[Dict[str, float]] = None,
        seed: int = 0,
        connectivity_states: Sequence[str] = (NetworkType.OFFLINE, NetworkType.CELLULAR, NetworkType.WIFI),
    ) -> "Fleet":
        """Sample a heterogeneous fleet with randomized battery and network state.

        The columnar store is built directly — battery and network planes are
        sampled as whole arrays — so a million-device fleet costs a handful
        of vectorized draws instead of N object constructions.
        """
        rng = np.random.default_rng(seed)
        profiles = random_fleet_profiles(n_devices, mix=mix, seed=seed)
        state = FleetState(
            [f"dev-{i:04d}" for i in range(n_devices)],
            profiles,
            seeds=seed + np.arange(n_devices),
        )
        finite = ~np.isinf(state.capacity_j)
        levels = state.capacity_j * rng.uniform(0.2, 1.0, n_devices)
        state.level_j[finite] = levels[finite]
        state.plugged_in[finite] = rng.random(n_devices)[finite] < 0.3
        kind_codes = rng.integers(0, len(connectivity_states), n_devices)
        for j, kind in enumerate(connectivity_states):
            mask = kind_codes == j
            if mask.any():
                state.set_network_rows(mask, NetworkCondition.of(kind))
        state.idle[:] = rng.random(n_devices) < 0.7
        return cls.from_state(state)

    # -- access --------------------------------------------------------------
    @property
    def devices(self) -> MappingABC:
        """Mapping of ``device_id`` to (lazily materialized) device views."""
        return self._device_map

    def _device(self, device_id: str) -> EdgeDevice:
        device = self._cache.get(device_id)
        if device is None:
            device = EdgeDevice._from_state(self.state, self._rows[device_id])
            self._cache[device_id] = device
        return device

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[EdgeDevice]:
        return (self._device(device_id) for device_id in self._rows)

    def get(self, device_id: str) -> EdgeDevice:
        """Device by id, raising ``KeyError`` if unknown."""
        return self._device(device_id)

    def row_of(self, device_id: str) -> int:
        """Store row index for a device id (``KeyError`` if unknown)."""
        return self._rows[device_id]

    def rows_for(self, device_ids: Sequence[str]) -> np.ndarray:
        """Store row indices for many device ids, in the given order."""
        return np.fromiter(
            (self._rows[device_id] for device_id in device_ids),
            dtype=np.intp,
            count=len(device_ids),
        )

    def select(self, predicate: Callable[[EdgeDevice], bool]) -> List[EdgeDevice]:
        """Devices matching a predicate."""
        return [d for d in self if predicate(d)]

    def by_class(self, device_class: str) -> List[EdgeDevice]:
        """Devices whose profile belongs to the given class."""
        return self.select(lambda d: d.profile.device_class == device_class)

    def _devices_at(self, mask: np.ndarray) -> List[EdgeDevice]:
        ids = self.state.device_ids
        return [self._device(ids[i]) for i in np.flatnonzero(mask)]

    def online(self) -> List[EdgeDevice]:
        """Devices that currently have connectivity."""
        return self._devices_at(self.state.online_mask())

    def training_eligible(self) -> List[EdgeDevice]:
        """Devices eligible to participate in a federated round right now."""
        return self._devices_at(self.state.training_eligible_mask())

    # -- vectorized fleet queries ---------------------------------------------
    def training_eligible_mask(self) -> np.ndarray:
        """Per-device federated eligibility as one boolean plane."""
        return self.state.training_eligible_mask()

    def context_table(self) -> Dict[str, np.ndarray]:
        """The whole fleet's scheduling context as one columnar table."""
        return self.state.context_table()

    def context_rows(self, device_ids: Optional[Sequence[str]] = None) -> Dict[str, Dict[str, object]]:
        """Materialized :meth:`EdgeDevice.context` dicts keyed by device id."""
        rows = None if device_ids is None else self.rows_for(device_ids)
        return {ctx["device_id"]: ctx for ctx in self.state.context_rows(rows)}

    def advance_all(self, seconds: float) -> None:
        """Advance simulated time for every device in one sweep."""
        self.state.advance_all(seconds)

    def draw_batch_all(self, energies, counts) -> np.ndarray:
        """Fleet-wide :meth:`Battery.draw_batch` (row order); returns served counts."""
        return self.state.draw_batch_all(energies, counts)

    # -- aggregate statistics -------------------------------------------------
    def class_histogram(self) -> Dict[str, int]:
        """Count of devices per device class."""
        return self.state.class_histogram()

    def summary(self) -> Dict[str, object]:
        """Fleet-level summary used by reports and the platform dashboard."""
        return self.state.summary()
