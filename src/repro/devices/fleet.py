"""Edge device runtime state and fleet construction.

A :class:`EdgeDevice` combines a static :class:`DeviceProfile` with dynamic
state: battery level, current network condition, installed model artifacts,
local query counters and telemetry hooks.  A :class:`Fleet` is simply a
collection of devices with helpers for sampling heterogeneous populations
and iterating over devices matching a predicate (e.g. "currently on WiFi
and charging" — the federated-client eligibility rule from Section III-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .battery import Battery, PowerState
from .cost import CostModel, ExecutionCost
from .network import ConnectivityTrace, NetworkCondition, NetworkType
from .profiles import DeviceProfile, random_fleet_profiles

__all__ = ["EdgeDevice", "Fleet"]


@dataclass
class InstalledArtifact:
    """A model (or pipeline) artifact currently installed on a device."""

    artifact_id: str
    version: str
    size_bytes: int
    bits: int = 32
    metadata: Dict[str, object] = field(default_factory=dict)


class EdgeDevice:
    """Dynamic state of a single simulated edge device."""

    def __init__(
        self,
        device_id: str,
        profile: DeviceProfile,
        network: Optional[NetworkCondition] = None,
        battery: Optional[Battery] = None,
        seed: int = 0,
        user_id: Optional[str] = None,
    ) -> None:
        self.device_id = device_id
        self.profile = profile
        self.user_id = user_id or f"user-{device_id}"
        self.battery = battery or Battery(capacity_j=profile.battery_capacity_j)
        self.network = network or NetworkCondition.of(NetworkType.WIFI)
        self.installed: Dict[str, InstalledArtifact] = {}
        self.query_count = 0
        self.idle = True
        self.rng = np.random.default_rng(seed)
        self._cost_model = CostModel()
        self.telemetry_log: List[Dict[str, float]] = []

    # -- capabilities ----------------------------------------------------
    def free_flash(self) -> int:
        """Flash bytes still available for new artifacts."""
        used = sum(a.size_bytes for a in self.installed.values())
        return int(self.profile.flash_bytes - used)

    def can_install(self, size_bytes: int) -> bool:
        """Whether an artifact of the given size fits in free storage."""
        return size_bytes <= self.free_flash()

    def install(self, artifact: InstalledArtifact) -> None:
        """Install (or replace) an artifact; raises if it does not fit."""
        existing = self.installed.get(artifact.artifact_id)
        freed = existing.size_bytes if existing else 0
        if artifact.size_bytes > self.free_flash() + freed:
            raise MemoryError(
                f"artifact {artifact.artifact_id} ({artifact.size_bytes} B) does not fit "
                f"on {self.device_id} (free {self.free_flash() + freed} B)"
            )
        self.installed[artifact.artifact_id] = artifact

    def uninstall(self, artifact_id: str) -> None:
        """Remove an artifact if present."""
        self.installed.pop(artifact_id, None)

    # -- execution -------------------------------------------------------
    def execute(self, cost: ExecutionCost, record: bool = True) -> bool:
        """Account for one model execution: drain battery, log telemetry.

        Returns False when the battery cannot supply the required energy
        (the inference is considered failed / skipped).
        """
        ok = self.battery.draw(cost.energy_j)
        if ok:
            self.query_count += 1
            if record:
                self.telemetry_log.append(
                    {
                        "latency_s": cost.latency_s,
                        "energy_j": cost.energy_j,
                        "memory_bytes": cost.peak_memory_bytes,
                        "soc": self.battery.state_of_charge,
                    }
                )
        return ok

    def execute_batch(self, cost: ExecutionCost, n: int, record: bool = True) -> int:
        """Account for up to ``n`` executions of the same cost in one step.

        Uses :meth:`Battery.draw_batch` so battery accounting for a whole
        traffic window is one arithmetic operation instead of a Python loop.
        Returns the number of executions that actually ran (the rest failed
        on a depleted battery).  When ``record`` is set, one aggregated
        telemetry sample carrying a ``count`` field is appended instead of
        ``n`` identical rows.
        """
        ran = self.battery.draw_batch(cost.energy_j, n)
        if ran:
            self.query_count += ran
            if record:
                self.telemetry_log.append(
                    {
                        "latency_s": cost.latency_s,
                        "energy_j": cost.energy_j,
                        "memory_bytes": cost.peak_memory_bytes,
                        "soc": self.battery.state_of_charge,
                        "count": float(ran),
                    }
                )
        return ran

    def run_model(self, model, bits: int = 32) -> Tuple[bool, ExecutionCost]:
        """Estimate and account the cost of one inference of ``model``."""
        cost = self._cost_model.model_inference_cost(self.profile, model, bits=bits)
        return self.execute(cost), cost

    # -- context signals -------------------------------------------------
    def context(self) -> Dict[str, object]:
        """Context snapshot used by model selection and client scheduling."""
        return {
            "device_id": self.device_id,
            "device_class": self.profile.device_class,
            "power_state": self.battery.state,
            "state_of_charge": self.battery.state_of_charge,
            "network": self.network.kind,
            "network_online": self.network.online,
            "metered": self.network.metered,
            "idle": self.idle,
            "free_flash": self.free_flash(),
        }

    def is_eligible_for_training(self) -> bool:
        """FedAvg-style eligibility: idle, on unmetered network, charging or well charged."""
        charged = self.battery.state == PowerState.PLUGGED_IN or self.battery.state_of_charge > 0.6
        return self.idle and self.network.online and not self.network.metered and charged

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EdgeDevice({self.device_id}, {self.profile.name}, soc={self.battery.state_of_charge:.2f})"


class Fleet:
    """A collection of edge devices under management by the platform."""

    def __init__(self, devices: Sequence[EdgeDevice]) -> None:
        self.devices: Dict[str, EdgeDevice] = {d.device_id: d for d in devices}
        if len(self.devices) != len(devices):
            raise ValueError("duplicate device ids in fleet")

    # -- construction ------------------------------------------------------
    @classmethod
    def random(
        cls,
        n_devices: int,
        mix: Optional[Dict[str, float]] = None,
        seed: int = 0,
        connectivity_states: Sequence[str] = (NetworkType.OFFLINE, NetworkType.CELLULAR, NetworkType.WIFI),
    ) -> "Fleet":
        """Sample a heterogeneous fleet with randomized battery and network state."""
        rng = np.random.default_rng(seed)
        profiles = random_fleet_profiles(n_devices, mix=mix, seed=seed)
        devices = []
        for i, profile in enumerate(profiles):
            battery = Battery(capacity_j=profile.battery_capacity_j)
            if battery.capacity_j != float("inf"):
                battery.level_j = battery.capacity_j * rng.uniform(0.2, 1.0)
                battery.plugged_in = bool(rng.random() < 0.3)
            net_kind = connectivity_states[int(rng.integers(0, len(connectivity_states)))]
            device = EdgeDevice(
                device_id=f"dev-{i:04d}",
                profile=profile,
                network=NetworkCondition.of(net_kind),
                battery=battery,
                seed=seed + i,
            )
            device.idle = bool(rng.random() < 0.7)
            devices.append(device)
        return cls(devices)

    # -- access --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.devices)

    def __iter__(self) -> Iterator[EdgeDevice]:
        return iter(self.devices.values())

    def get(self, device_id: str) -> EdgeDevice:
        """Device by id, raising ``KeyError`` if unknown."""
        return self.devices[device_id]

    def select(self, predicate: Callable[[EdgeDevice], bool]) -> List[EdgeDevice]:
        """Devices matching a predicate."""
        return [d for d in self if predicate(d)]

    def by_class(self, device_class: str) -> List[EdgeDevice]:
        """Devices whose profile belongs to the given class."""
        return self.select(lambda d: d.profile.device_class == device_class)

    def online(self) -> List[EdgeDevice]:
        """Devices that currently have connectivity."""
        return self.select(lambda d: d.network.online)

    def training_eligible(self) -> List[EdgeDevice]:
        """Devices eligible to participate in a federated round right now."""
        return self.select(lambda d: d.is_eligible_for_training())

    # -- aggregate statistics -------------------------------------------------
    def class_histogram(self) -> Dict[str, int]:
        """Count of devices per device class."""
        hist: Dict[str, int] = {}
        for d in self:
            hist[d.profile.device_class] = hist.get(d.profile.device_class, 0) + 1
        return hist

    def summary(self) -> Dict[str, object]:
        """Fleet-level summary used by reports and the platform dashboard."""
        socs = np.array([d.battery.state_of_charge for d in self], dtype=np.float64)
        return {
            "n_devices": len(self),
            "classes": self.class_histogram(),
            "online_fraction": len(self.online()) / max(len(self), 1),
            "training_eligible": len(self.training_eligible()),
            "mean_soc": float(socs.mean()) if socs.size else 0.0,
            "total_queries": int(sum(d.query_count for d in self)),
        }
