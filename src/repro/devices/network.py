"""Network connectivity model for edge devices.

Connectivity drives several TinyMLOps decisions highlighted in the paper:
which model variant to download (Sec. III-A: "a model that is fast to
download on a slow network connection"), when to upload telemetry
(Sec. III-B: "transmit them to the cloud when the device is connected to
WiFi"), when federated updates can be shared (Sec. III-D) and whether
offloading to an edge server is worthwhile (Sec. IV).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

__all__ = ["NetworkType", "NetworkCondition", "ConnectivityTrace", "transfer_time_s"]


class NetworkType:
    """Symbolic link types with typical characteristics."""

    OFFLINE = "offline"
    LPWAN = "lpwan"
    CELLULAR = "cellular"
    WIFI = "wifi"
    ETHERNET = "ethernet"

    ALL = (OFFLINE, LPWAN, CELLULAR, WIFI, ETHERNET)


_DEFAULTS: Dict[str, Dict[str, float]] = {
    NetworkType.OFFLINE: {"bandwidth_bps": 0.0, "latency_s": float("inf"), "cost_per_mb": 0.0},
    NetworkType.LPWAN: {"bandwidth_bps": 5e3, "latency_s": 1.5, "cost_per_mb": 0.5},
    NetworkType.CELLULAR: {"bandwidth_bps": 5e6, "latency_s": 0.08, "cost_per_mb": 0.01},
    NetworkType.WIFI: {"bandwidth_bps": 5e7, "latency_s": 0.01, "cost_per_mb": 0.0},
    NetworkType.ETHERNET: {"bandwidth_bps": 1e9, "latency_s": 0.001, "cost_per_mb": 0.0},
}


@dataclass(frozen=True)
class NetworkCondition:
    """A snapshot of the link a device currently has to the backend."""

    kind: str = NetworkType.WIFI
    bandwidth_bps: float = 5e7
    latency_s: float = 0.01
    cost_per_mb: float = 0.0
    metered: bool = False

    @classmethod
    def of(cls, kind: str, **overrides: float) -> "NetworkCondition":
        """Build a condition from a symbolic :class:`NetworkType`."""
        if kind not in _DEFAULTS:
            raise KeyError(f"unknown network type {kind!r}")
        params = dict(_DEFAULTS[kind])
        params.update(overrides)
        return cls(kind=kind, metered=kind in (NetworkType.CELLULAR, NetworkType.LPWAN), **params)

    @property
    def online(self) -> bool:
        """Whether any connectivity exists."""
        return self.kind != NetworkType.OFFLINE and self.bandwidth_bps > 0

    def transfer_time(self, payload_bytes: float) -> float:
        """Seconds to transfer a payload (inf when not :attr:`online`)."""
        return transfer_time_s(payload_bytes, self)

    def transfer_cost(self, payload_bytes: float) -> float:
        """Monetary cost (in the fleet's currency) of a transfer.

        A link that cannot transfer charges nothing: offline and
        zero/negative-bandwidth conditions (``online`` is False, the
        transfer time is inf) return 0.0 — the payload never crosses the
        link, so no metered bytes accrue.  Negative payload sizes are a
        caller bug and raise.
        """
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be >= 0")
        if not self.online:
            return 0.0
        return (payload_bytes / 1e6) * self.cost_per_mb


def transfer_time_s(payload_bytes: float, condition: NetworkCondition) -> float:
    """Round-trip-free transfer time estimate for a payload on a link.

    Offline and zero/negative-bandwidth conditions return inf (the
    transfer never completes); negative payload sizes raise.
    """
    if payload_bytes < 0:
        raise ValueError("payload_bytes must be >= 0")
    if not condition.online:
        return float("inf")
    return condition.latency_s + payload_bytes * 8.0 / condition.bandwidth_bps


@dataclass
class ConnectivityTrace:
    """Markov-chain connectivity trace generator.

    Produces a sequence of :class:`NetworkCondition` values so the fleet
    simulator can model devices that flip between WiFi, cellular and
    offline.  The transition matrix rows follow the order of ``states``.
    """

    states: Sequence[str] = (NetworkType.OFFLINE, NetworkType.CELLULAR, NetworkType.WIFI)
    transition: Optional[np.ndarray] = None
    initial: Optional[str] = None
    seed: int = 0

    def __post_init__(self) -> None:
        n = len(self.states)
        if n == 0:
            raise ValueError("ConnectivityTrace needs at least one state")
        for state in self.states:
            if state not in _DEFAULTS:
                raise KeyError(f"unknown network type {state!r}")
        if self.initial is not None and self.initial not in self.states:
            raise ValueError(f"initial state {self.initial!r} is not one of {tuple(self.states)}")
        if self.transition is None:
            # Sticky chain: mostly stay in the current state.
            self.transition = np.full((n, n), 0.1 / max(n - 1, 1))
            np.fill_diagonal(self.transition, 0.9)
        self.transition = np.asarray(self.transition, dtype=np.float64)
        if self.transition.shape != (n, n):
            raise ValueError("transition matrix shape must match number of states")
        rows = self.transition.sum(axis=1, keepdims=True)
        if np.any(rows <= 0):
            raise ValueError("transition matrix rows must have positive sums")
        self.transition = self.transition / rows
        self._rng = np.random.default_rng(self.seed)
        self._state_idx = (
            list(self.states).index(self.initial) if self.initial in self.states else 0
        )

    @property
    def current(self) -> NetworkCondition:
        """Condition for the current state."""
        return NetworkCondition.of(self.states[self._state_idx])

    def step(self) -> NetworkCondition:
        """Advance the chain one step and return the new condition."""
        probs = self.transition[self._state_idx]
        self._state_idx = int(self._rng.choice(len(self.states), p=probs))
        return self.current

    def sample(self, n_steps: int) -> List[NetworkCondition]:
        """Generate ``n_steps`` successive conditions."""
        return [self.step() for _ in range(n_steps)]

    def state_dict(self) -> Dict[str, object]:
        """Snapshot of the chain position + RNG stream (JSON-safe).

        ``FaultInjector.reset()`` restores this so trace-driven serving
        partitions replay identically across differential runs."""
        return {
            "state_idx": int(self._state_idx),
            "rng_state": copy.deepcopy(self._rng.bit_generator.state),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self._state_idx = int(state["state_idx"])  # type: ignore[arg-type]
        self._rng.bit_generator.state = copy.deepcopy(state["rng_state"])
