"""A small discrete-event simulation kernel for fleet-level experiments.

Fleet experiments (deployment roll-outs, federated rounds, telemetry sync)
need a notion of simulated time without real sleeping.  The
:class:`EventQueue` is a classic priority-queue DES kernel: events carry a
timestamp and a callback, callbacks may schedule further events, and the
simulation runs until the queue drains or a time horizon is reached.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A scheduled event.  Ordering is by time, then insertion order."""

    time: float
    order: int
    name: str = field(compare=False)
    callback: Callable[["EventQueue"], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventQueue:
    """Priority-queue based discrete-event simulator.

    Example
    -------
    >>> sim = EventQueue()
    >>> fired = []
    >>> sim.schedule(2.0, "b", lambda s: fired.append("b"))
    >>> sim.schedule(1.0, "a", lambda s: fired.append("a"))
    >>> sim.run()
    >>> fired
    ['a', 'b']
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = float(start_time)
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self.processed = 0

    # -- scheduling -------------------------------------------------------
    def schedule(self, time: float, name: str, callback: Callable[["EventQueue"], None]) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule event at {time} before current time {self.now}")
        event = Event(time=float(time), order=next(self._counter), name=name, callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(self, delay: float, name: str, callback: Callable[["EventQueue"], None]) -> Event:
        """Schedule ``callback`` after a relative ``delay``."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        return self.schedule(self.now + delay, name, callback)

    def cancel(self, event: Event) -> None:
        """Mark an event as cancelled; it will be skipped when popped."""
        event.cancelled = True

    # -- execution ----------------------------------------------------------
    def step(self) -> Optional[Event]:
        """Process the next pending event; return it (or None if empty)."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback(self)
            self.processed += 1
            return event
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` is reached, or event budget spent.

        Returns the number of events processed by this call.
        """
        processed = 0
        while self._heap:
            if max_events is not None and processed >= max_events:
                break
            nxt = self._heap[0]
            if until is not None and nxt.time > until:
                self.now = until
                break
            if self.step() is not None:
                processed += 1
        if until is not None and not self._heap and self.now < until:
            self.now = until
        return processed

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, if any."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)
