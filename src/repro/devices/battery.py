"""Battery and power-state model for edge devices.

Paper Section III-A: "If the device is connected to an external power
supply, energy consumption might be less of an issue compared to when it is
unplugged and has to rely on battery power.  This might mean that a
different model could be preferred, depending on the battery level."

The :class:`Battery` tracks energy in joules and exposes the state-of-charge
signals that model selection (:mod:`repro.core.selection`) and federated
client scheduling (:mod:`repro.federated.scheduling`) consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Battery", "PowerState"]


class PowerState:
    """Discrete power states a device can report."""

    ON_BATTERY = "on_battery"
    PLUGGED_IN = "plugged_in"
    LOW_POWER = "low_power"
    DEPLETED = "depleted"


@dataclass
class Battery:
    """Simple energy-bucket battery model.

    Parameters
    ----------
    capacity_j:
        Full capacity in joules.  ``float('inf')`` models mains-powered
        devices (edge servers, cloud).
    level_j:
        Current charge; defaults to full.
    plugged_in:
        Whether the device is currently connected to external power.
    low_power_threshold:
        State-of-charge fraction below which the device reports
        :data:`PowerState.LOW_POWER`.
    charge_rate_w:
        Charging power applied while plugged in (joules per simulated second).
    idle_draw_w:
        Baseline power draw, applied by :meth:`advance`.
    """

    capacity_j: float = 5000.0
    level_j: Optional[float] = None
    plugged_in: bool = False
    low_power_threshold: float = 0.2
    charge_rate_w: float = 5.0
    idle_draw_w: float = 0.01

    def __post_init__(self) -> None:
        if self.level_j is None:
            self.level_j = self.capacity_j
        self.level_j = min(self.level_j, self.capacity_j)

    # -- queries ---------------------------------------------------------
    @property
    def state_of_charge(self) -> float:
        """Fraction of capacity remaining in [0, 1] (1.0 for mains power)."""
        if self.capacity_j == float("inf"):
            return 1.0
        if self.capacity_j <= 0:
            return 0.0
        return max(0.0, min(1.0, self.level_j / self.capacity_j))

    @property
    def state(self) -> str:
        """Current :class:`PowerState`."""
        if self.plugged_in:
            return PowerState.PLUGGED_IN
        if self.state_of_charge <= 0.0:
            return PowerState.DEPLETED
        if self.state_of_charge < self.low_power_threshold:
            return PowerState.LOW_POWER
        return PowerState.ON_BATTERY

    def can_supply(self, energy_j: float) -> bool:
        """Whether the requested energy can be drawn without depleting."""
        if self.plugged_in or self.capacity_j == float("inf"):
            return True
        return self.level_j >= energy_j

    # -- mutations ---------------------------------------------------------
    def draw(self, energy_j: float) -> bool:
        """Consume ``energy_j``; returns False (and drains to 0) if depleted."""
        if energy_j < 0:
            raise ValueError("energy draw must be non-negative")
        if self.plugged_in or self.capacity_j == float("inf"):
            return True
        if self.level_j >= energy_j:
            self.level_j -= energy_j
            return True
        self.level_j = 0.0
        return False

    def draw_batch(self, energy_j: float, n: int, exact: bool = False) -> int:
        """Consume energy for up to ``n`` executions at once; returns how many fit.

        Closed-form equivalent of ``n`` successive :meth:`draw` calls: the
        number of executions the remaining charge covers is computed with one
        division instead of a Python loop, which is what lets the serving
        engine account a 10k-query window in O(1).  Matches the per-call
        semantics: when the batch does not fully fit, the battery is drained
        to zero (the failing draw depletes it), otherwise the consumed energy
        is subtracted.

        Floating-point caveat: with energies exactly representable in binary
        (powers of two and their sums) both the admitted count and the
        resulting level are bit-identical to the loop.  For arbitrary
        energies the loop's iterated subtraction and this division round
        differently, so at an exact-capacity boundary the admitted count can
        differ by one (e.g. ``level=1.0, energy=0.1``: the loop admits 10,
        ``1.0 // 0.1`` is 9).  The batched path is canonical — the platform
        serves exclusively through it, so admission is self-consistent.

        ``exact=True`` selects the iterated-subtraction semantics instead:
        the result (count and level) is bit-identical to ``n`` successive
        :meth:`draw` calls for *any* energy, at O(served) cost.  Oracle paths
        (``engine="oracle"``) use this so equivalence suites compare against
        the loop semantics without special-casing the boundary.
        """
        if energy_j < 0:
            raise ValueError("energy draw must be non-negative")
        if n < 0:
            raise ValueError("batch size must be non-negative")
        if n == 0:
            return 0
        if self.plugged_in or self.capacity_j == float("inf") or energy_j == 0.0:
            return n
        if exact:
            level = self.level_j
            served = 0
            while served < n and level >= energy_j:
                level -= energy_j
                served += 1
            self.level_j = level if served == n else 0.0
            return served
        fits = int(self.level_j // energy_j) if self.level_j >= energy_j else 0
        if fits >= n:
            self.level_j = max(0.0, self.level_j - n * energy_j)
            return n
        self.level_j = 0.0
        return fits

    def advance(self, seconds: float) -> None:
        """Advance simulated time: apply idle draw or charging."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        if self.capacity_j == float("inf"):
            return
        if self.plugged_in:
            self.level_j = min(self.capacity_j, self.level_j + self.charge_rate_w * seconds)
        else:
            self.level_j = max(0.0, self.level_j - self.idle_draw_w * seconds)

    def plug(self) -> None:
        """Connect to external power."""
        self.plugged_in = True

    def unplug(self) -> None:
        """Disconnect from external power."""
        self.plugged_in = False
