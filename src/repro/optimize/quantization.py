"""Post-training quantization utilities.

Implements the classic TinyML optimization the paper discusses in
Sections II / III-A: reduced-precision weights (8/4/2/1 bit), symmetric or
affine, per-tensor or per-channel.  Quantization is *simulated* (fake
quantization: quantize then dequantize back to float) because the NumPy
engine has no integer kernels — the accuracy impact is faithful, while the
latency impact is modelled by the device cost model, which only credits a
speed-up when the target natively supports the chosen bit width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "QuantizationConfig",
    "quantize_array",
    "dequantize_array",
    "fake_quantize",
    "static_fake_quantize",
    "quantize_model",
    "quantization_error",
    "calibrate_activation_ranges",
]


@dataclass(frozen=True)
class QuantizationConfig:
    """Configuration of a post-training quantization run.

    Attributes
    ----------
    bits:
        Target weight bit width (1, 2, 4, 8 or 16).
    symmetric:
        Symmetric (zero-point 0) vs affine quantization.
    per_channel:
        Quantize each output channel with its own scale.
    quantize_bias:
        Whether bias vectors are quantized too (normally kept in float).
    activation_bits:
        Optional activation bit width recorded for the executor/cost model.
    """

    bits: int = 8
    symmetric: bool = True
    per_channel: bool = False
    quantize_bias: bool = False
    activation_bits: Optional[int] = None

    def __post_init__(self) -> None:
        if self.bits not in (1, 2, 4, 8, 16):
            raise ValueError(f"unsupported bit width {self.bits}")


def quantize_array(
    x: np.ndarray, bits: int, symmetric: bool = True
) -> Tuple[np.ndarray, float, float]:
    """Quantize an array; returns ``(q, scale, zero_point)``.

    ``q`` holds integer code values stored in float64 (NumPy has no packed
    sub-byte integers); ``dequantize_array`` restores approximate floats.
    """
    x = np.asarray(x, dtype=np.float64)
    if bits >= 32:
        return x.copy(), 1.0, 0.0
    if symmetric:
        qmax = float(2 ** (bits - 1) - 1) if bits > 1 else 1.0
        qmin = -qmax - (1.0 if bits > 1 else 0.0)
        max_abs = float(np.max(np.abs(x))) if x.size else 0.0
        # Clamp to the smallest normal float: with subnormal inputs the
        # division can underflow to 0.0, which would turn x / scale into
        # inf/NaN.
        scale = max(max_abs / qmax, np.finfo(np.float64).tiny) if max_abs > 0 else 1.0
        q = np.clip(np.round(x / scale), qmin, qmax)
        return q, scale, 0.0
    lo = float(x.min()) if x.size else 0.0
    hi = float(x.max()) if x.size else 0.0
    qmax = float(2**bits - 1)
    scale = max((hi - lo) / qmax, np.finfo(np.float64).tiny) if hi > lo else 1.0
    zero = -lo / scale
    q = np.clip(np.round(x / scale + zero), 0.0, qmax)
    return q, scale, zero


def dequantize_array(q: np.ndarray, scale: float, zero_point: float = 0.0) -> np.ndarray:
    """Inverse of :func:`quantize_array`."""
    return (np.asarray(q, dtype=np.float64) - zero_point) * scale


def fake_quantize(x: np.ndarray, bits: int, symmetric: bool = True, per_channel: bool = False) -> np.ndarray:
    """Quantize-dequantize an array, optionally per output channel (last axis)."""
    if bits >= 32:
        return np.asarray(x, dtype=np.float64).copy()
    x = np.asarray(x, dtype=np.float64)
    if per_channel and x.ndim >= 2:
        flat = x.reshape(-1, x.shape[-1])
        out = np.empty_like(flat)
        for c in range(flat.shape[1]):
            q, scale, zero = quantize_array(flat[:, c], bits, symmetric)
            out[:, c] = dequantize_array(q, scale, zero)
        return out.reshape(x.shape)
    q, scale, zero = quantize_array(x, bits, symmetric)
    return dequantize_array(q, scale, zero)


def static_fake_quantize(x: np.ndarray, bits: int, max_abs: float) -> np.ndarray:
    """Symmetric fake quantization over a *frozen* (calibrated) range.

    Uses exactly the grid of the dynamic-range activation quantizer
    (:func:`repro.exchange.executor._fake_quantize`, symmetric scheme) but
    with ``max_abs`` recorded on a calibration batch instead of derived from
    the data being quantized.  That makes the op per-sample independent, so
    a compiled plan can stack windows from many devices into one sweep
    (:meth:`repro.exchange.CompiledExecutor.run_many`) without leaking
    quantization statistics across windows.

    Error contract versus the dynamic-range oracle: with ``scale =
    max(max_abs / qmax, tiny)``, values with ``|x| <= max_abs`` round with
    error at most ``scale / 2``; values outside the calibrated range clip to
    ``+-qmax * scale``.  When ``max_abs`` equals the batch's own max the
    result is bit-identical to the dynamic quantizer.
    """
    if bits >= 32:
        return np.asarray(x, dtype=np.float64)
    if bits <= 0:
        raise ValueError("bits must be positive")
    x = np.asarray(x, dtype=np.float64)
    tiny = np.finfo(np.float64).tiny
    qmax = 2 ** (bits - 1) - 1 if bits > 1 else 1
    max_abs = float(max_abs)
    scale = max(max_abs / qmax, tiny) if max_abs > 0 else 1.0
    q = np.clip(np.round(x / scale), -qmax - (0 if bits == 1 else 1), qmax)
    return q * scale


def quantize_model(model, config: QuantizationConfig, name_suffix: Optional[str] = None):
    """Return a copy of a :class:`repro.nn.Sequential` with quantized weights.

    Only weight matrices/kernels (parameter key ``"W"``) are quantized;
    biases and BatchNorm statistics stay in float unless
    ``config.quantize_bias`` is set.
    """
    suffix = name_suffix if name_suffix is not None else f"-int{config.bits}"
    clone = model.clone(copy_weights=True, name=f"{model.name}{suffix}")
    for layer in clone.layers:
        for key, value in layer.params.items():
            if key == "W" or (config.quantize_bias and key == "b"):
                layer.params[key] = fake_quantize(
                    value, config.bits, symmetric=config.symmetric, per_channel=config.per_channel
                )
    return clone


def quantization_error(model, quantized) -> Dict[str, float]:
    """Weight-space error statistics between a model and its quantized copy."""
    w_ref = model.get_flat_weights()
    w_q = quantized.get_flat_weights()
    if w_ref.shape != w_q.shape:
        raise ValueError("models have different parameter counts")
    diff = w_ref - w_q
    denom = float(np.linalg.norm(w_ref)) or 1.0
    return {
        "mse": float(np.mean(diff**2)),
        "max_abs": float(np.max(np.abs(diff))) if diff.size else 0.0,
        "relative_l2": float(np.linalg.norm(diff)) / denom,
    }


def calibrate_activation_ranges(model, calibration_x: np.ndarray, percentile: float = 99.9) -> Dict[str, Tuple[float, float]]:
    """Record per-layer activation ranges on calibration data.

    Mirrors the calibration step of integer deployment toolchains: the
    recorded ranges are attached to deployment manifests so the on-device
    runtime can configure its (simulated) activation quantizers.
    """
    ranges: Dict[str, Tuple[float, float]] = {}
    out = calibration_x
    for layer in model.layers:
        out = layer.forward(out, training=False)
        lo = float(np.percentile(out, 100.0 - percentile))
        hi = float(np.percentile(out, percentile))
        ranges[layer.name] = (lo, hi)
    return ranges
