"""Knowledge distillation: train a small student from a large teacher.

Distillation (paper Section II, ref [5]) is both an optimization technique —
producing compact edge models — and, from the adversary's point of view, the
mechanism behind indirect model stealing (Section V).  The same routine is
therefore reused by :mod:`repro.protection.extraction` with the teacher
treated as a black box.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn.losses import distillation_loss
from repro.nn.model import Sequential, batch_iterator
from repro.nn.optimizers import get_optimizer

__all__ = ["distill", "soft_label_dataset"]


def soft_label_dataset(teacher: Sequential, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
    """Teacher logits for every sample (the "labels" an attacker would record)."""
    outputs: List[np.ndarray] = []
    for xb, _ in batch_iterator(x, None, batch_size):
        outputs.append(teacher.forward(xb, training=False))
    return np.concatenate(outputs, axis=0) if outputs else np.empty((0,))


def distill(
    teacher: Sequential,
    student: Sequential,
    x: np.ndarray,
    y: Optional[np.ndarray] = None,
    epochs: int = 5,
    batch_size: int = 32,
    lr: float = 0.005,
    temperature: float = 2.0,
    alpha: float = 0.7,
    seed: int = 0,
    teacher_logits: Optional[np.ndarray] = None,
) -> Dict[str, List[float]]:
    """Train ``student`` to mimic ``teacher`` on inputs ``x``.

    Parameters
    ----------
    y:
        Optional hard labels.  When absent (the unlabeled / attacker
        scenario) the teacher's argmax is used as the hard label.
    teacher_logits:
        Pre-computed teacher outputs; useful when the teacher applies
        prediction poisoning and the caller wants to control exactly what
        the student sees.
    alpha:
        Weight of the soft (teacher) loss term versus the hard-label term.

    Returns a history dict with per-epoch ``loss`` and ``agreement`` (the
    fraction of samples where student and teacher agree).
    """
    if teacher_logits is None:
        teacher_logits = soft_label_dataset(teacher, x)
    if teacher_logits.shape[0] != x.shape[0]:
        raise ValueError("teacher_logits must align with x")
    hard = y if y is not None else teacher_logits.argmax(axis=-1)
    rng = np.random.default_rng(seed)
    opt = get_optimizer("adam", lr=lr)
    history: Dict[str, List[float]] = {"loss": [], "agreement": []}
    n = x.shape[0]
    for _epoch in range(epochs):
        idx = rng.permutation(n)
        losses = []
        for start in range(0, n, batch_size):
            sel = idx[start : start + batch_size]
            xb, tb, hb = x[sel], teacher_logits[sel], hard[sel]
            out = student.forward(xb, training=True)
            loss, grad = distillation_loss(out, tb, hb, temperature=temperature, alpha=alpha)
            student.backward(grad)
            opt.step(student._param_groups())
            losses.append(loss)
        history["loss"].append(float(np.mean(losses)) if losses else 0.0)
        student_pred = student.predict_classes(x)
        history["agreement"].append(float(np.mean(student_pred == teacher_logits.argmax(axis=-1))))
    return history
