"""Variant generation and accuracy/size/latency Pareto analysis.

Paper Section III-A: "Instead of training a single model, we might need to
support multiple models, each with their own computational cost and accuracy
trade off."  The :class:`VariantGenerator` stamps out quantized / pruned /
factorized variants of a base model, evaluates each one, and
:func:`pareto_front` identifies the non-dominated set that the model
registry should retain and the model-selection policy chooses from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.devices.cost import CostModel
from repro.devices.profiles import DeviceProfile

from .lowrank import factorize_dense_model
from .pruning import magnitude_prune, sparse_size_bytes
from .quantization import QuantizationConfig, quantize_model

__all__ = ["ModelVariant", "VariantGenerator", "pareto_front"]


@dataclass
class ModelVariant:
    """One optimized variant of a base model, with measured trade-offs."""

    name: str
    model: object
    optimization: str
    bits: int = 32
    sparsity: float = 0.0
    accuracy: float = 0.0
    size_bytes: int = 0
    latency_s: Dict[str, float] = field(default_factory=dict)

    def record(self) -> Dict[str, object]:
        """Flat record used in reports and benchmark tables."""
        return {
            "name": self.name,
            "optimization": self.optimization,
            "bits": self.bits,
            "sparsity": round(self.sparsity, 3),
            "accuracy": round(self.accuracy, 4),
            "size_kb": round(self.size_bytes / 1024, 2),
            **{f"latency_ms[{k}]": round(v * 1e3, 4) for k, v in self.latency_s.items()},
        }


class VariantGenerator:
    """Generate and evaluate optimized variants of a trained model."""

    def __init__(self, cost_model: Optional[CostModel] = None) -> None:
        self.cost_model = cost_model or CostModel()

    def _evaluate(
        self,
        variant: ModelVariant,
        x_eval: np.ndarray,
        y_eval: np.ndarray,
        profiles: Sequence[DeviceProfile],
    ) -> ModelVariant:
        variant.accuracy = variant.model.evaluate(x_eval, y_eval)["accuracy"]
        for profile in profiles:
            cost = self.cost_model.model_inference_cost(profile, variant.model, bits=variant.bits)
            variant.latency_s[profile.name] = cost.latency_s
        return variant

    def generate(
        self,
        base_model,
        x_eval: np.ndarray,
        y_eval: np.ndarray,
        profiles: Sequence[DeviceProfile],
        bit_widths: Sequence[int] = (8, 4, 2),
        sparsities: Sequence[float] = (0.5, 0.75, 0.9),
        lowrank_compressions: Sequence[float] = (),
    ) -> List[ModelVariant]:
        """Produce the baseline + quantized + pruned (+ low-rank) variant set."""
        variants: List[ModelVariant] = []
        base = ModelVariant(
            name=base_model.name,
            model=base_model,
            optimization="none",
            bits=32,
            size_bytes=base_model.num_params() * 4,
        )
        variants.append(self._evaluate(base, x_eval, y_eval, profiles))

        for bits in bit_widths:
            q = quantize_model(base_model, QuantizationConfig(bits=bits))
            variant = ModelVariant(
                name=q.name,
                model=q,
                optimization="quantization",
                bits=bits,
                size_bytes=int(np.ceil(base_model.num_params() * bits / 8)),
            )
            variants.append(self._evaluate(variant, x_eval, y_eval, profiles))

        for sp in sparsities:
            p = magnitude_prune(base_model, sp)
            variant = ModelVariant(
                name=p.name,
                model=p,
                optimization="pruning",
                bits=32,
                sparsity=sp,
                size_bytes=sparse_size_bytes(p, bits=32),
            )
            variants.append(self._evaluate(variant, x_eval, y_eval, profiles))

        for comp in lowrank_compressions:
            try:
                lr_model = factorize_dense_model(base_model, compression=comp)
            except TypeError:
                continue  # non-MLP models cannot be factorized
            variant = ModelVariant(
                name=lr_model.name,
                model=lr_model,
                optimization="lowrank",
                bits=32,
                size_bytes=lr_model.num_params() * 4,
            )
            variants.append(self._evaluate(variant, x_eval, y_eval, profiles))
        return variants


def pareto_front(
    variants: Sequence[ModelVariant],
    objectives: Tuple[str, str] = ("size_bytes", "accuracy"),
) -> List[ModelVariant]:
    """Non-dominated variants, minimizing the first objective and maximizing the second.

    The default objectives are (size ↓, accuracy ↑); callers can substitute a
    per-device latency key by passing ``("latency:<device>", "accuracy")``.
    """
    def value(v: ModelVariant, key: str) -> float:
        if key.startswith("latency:"):
            return v.latency_s[key.split(":", 1)[1]]
        return float(getattr(v, key))

    minimize, maximize = objectives
    front: List[ModelVariant] = []
    for cand in variants:
        dominated = False
        for other in variants:
            if other is cand:
                continue
            if (
                value(other, minimize) <= value(cand, minimize)
                and value(other, maximize) >= value(cand, maximize)
                and (
                    value(other, minimize) < value(cand, minimize)
                    or value(other, maximize) > value(cand, maximize)
                )
            ):
                dominated = True
                break
        if not dominated:
            front.append(cand)
    return sorted(front, key=lambda v: value(v, minimize))
