"""Low-rank factorization of Dense layers.

Factorizing a dense weight matrix ``W (m x n)`` into ``U (m x r) @ V (r x n)``
reduces both parameter count and FLOPs whenever ``r < m*n / (m + n)``.
This is one of the classical compression levers surveyed in the paper's
Section II, and provides an additional point on the accuracy/size Pareto
front explored by :mod:`repro.optimize.pareto`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["factorize_dense_model", "dense_rank_for_compression"]


def dense_rank_for_compression(in_dim: int, out_dim: int, compression: float) -> int:
    """Rank achieving roughly ``compression``x fewer parameters for a dense layer."""
    if compression <= 1.0:
        return min(in_dim, out_dim)
    full = in_dim * out_dim
    target = full / compression
    rank = int(np.floor(target / (in_dim + out_dim)))
    return max(1, min(rank, min(in_dim, out_dim)))


def factorize_dense_model(model, rank: Optional[int] = None, compression: Optional[float] = None, seed: int = 0):
    """Replace every hidden Dense layer by a truncated-SVD pair of Dense layers.

    Exactly one of ``rank`` / ``compression`` must be given.  The output
    layer is left untouched to preserve the logit dimensionality.  Returns a
    new :class:`repro.nn.Sequential`; only Dense/Dropout models are supported.
    """
    from repro.nn.layers import Dense, Dropout
    from repro.nn.model import Sequential

    if (rank is None) == (compression is None):
        raise ValueError("specify exactly one of rank / compression")
    if not all(isinstance(l, (Dense, Dropout)) for l in model.layers):
        raise TypeError("factorize_dense_model only supports Dense/Dropout models")
    dense_layers = [l for l in model.layers if isinstance(l, Dense)]
    n_dense = len(dense_layers)
    new_layers: List = []
    rng = np.random.default_rng(seed)
    dense_seen = 0
    for layer in model.layers:
        if isinstance(layer, Dropout):
            new_layers.append(Dropout(layer.rate, seed=seed, name=layer.name))
            continue
        assert isinstance(layer, Dense)
        dense_seen += 1
        w = layer.params["W"]
        is_output = dense_seen == n_dense
        in_dim, out_dim = w.shape
        r = rank if rank is not None else dense_rank_for_compression(in_dim, out_dim, compression or 1.0)
        r = max(1, min(r, min(in_dim, out_dim)))
        # Factorizing is only worthwhile if it actually reduces parameters.
        if is_output or r * (in_dim + out_dim) >= in_dim * out_dim:
            clone = Dense(layer.units, activation=layer.activation_name, use_bias=layer.use_bias, name=layer.name)
            clone.build((in_dim,), rng)
            clone.params["W"] = w.copy()
            if layer.use_bias:
                clone.params["b"] = layer.params["b"].copy()
            new_layers.append(clone)
            continue
        u, s, vt = np.linalg.svd(w, full_matrices=False)
        u_r = u[:, :r] * np.sqrt(s[:r])
        v_r = (vt[:r, :].T * np.sqrt(s[:r])).T
        first = Dense(r, activation=None, use_bias=False, name=f"{layer.name}_u")
        first.build((in_dim,), rng)
        first.params["W"] = u_r
        second = Dense(out_dim, activation=layer.activation_name, use_bias=layer.use_bias, name=f"{layer.name}_v")
        second.build((r,), rng)
        second.params["W"] = v_r
        if layer.use_bias:
            second.params["b"] = layer.params["b"].copy()
        new_layers.append(first)
        new_layers.append(second)
    suffix = f"-svd{rank}" if rank is not None else f"-svdc{compression:g}"
    return Sequential(new_layers, input_shape=model.input_shape, seed=seed, name=f"{model.name}{suffix}")
