"""Weight pruning: unstructured magnitude pruning and structured neuron pruning.

Pruning is one of the standard TinyML efficiency levers (paper Section II).
Unstructured pruning zeroes individual weights (reducing the *stored* size
once sparse encoding is applied) while structured pruning removes whole
units, producing a genuinely smaller architecture.  Both are implemented on
:class:`repro.nn.Sequential` models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "magnitude_prune",
    "global_magnitude_prune",
    "structured_prune_dense",
    "sparsity",
    "sparse_size_bytes",
    "iterative_prune_finetune",
]


def sparsity(model) -> float:
    """Fraction of zero-valued weights across all ``W`` parameters."""
    total = 0
    zeros = 0
    for layer in model.layers:
        w = layer.params.get("W")
        if w is None:
            continue
        total += w.size
        zeros += int(np.count_nonzero(w == 0.0))
    return zeros / total if total else 0.0


def sparse_size_bytes(model, bits: int = 32, index_bits: int = 16) -> int:
    """Size of the model if nonzero weights were stored in COO-like form.

    Each nonzero costs ``bits`` for the value plus ``index_bits`` for its
    position; dense parameters (biases, BN) are stored densely.
    """
    total_bits = 0
    for layer in model.layers:
        for key, value in layer.params.items():
            if key == "W":
                nnz = int(np.count_nonzero(value))
                total_bits += nnz * (bits + index_bits)
            else:
                total_bits += value.size * bits
    return int(np.ceil(total_bits / 8))


def magnitude_prune(model, target_sparsity: float, name_suffix: Optional[str] = None):
    """Per-layer magnitude pruning to ``target_sparsity`` on each weight tensor."""
    if not 0.0 <= target_sparsity < 1.0:
        raise ValueError("target_sparsity must be in [0, 1)")
    suffix = name_suffix if name_suffix is not None else f"-sp{int(target_sparsity * 100)}"
    clone = model.clone(copy_weights=True, name=f"{model.name}{suffix}")
    for layer in clone.layers:
        w = layer.params.get("W")
        if w is None or w.size == 0:
            continue
        k = int(np.floor(target_sparsity * w.size))
        if k <= 0:
            continue
        threshold = np.partition(np.abs(w).ravel(), k - 1)[k - 1]
        mask = np.abs(w) > threshold
        layer.params["W"] = w * mask
    return clone


def global_magnitude_prune(model, target_sparsity: float, name_suffix: Optional[str] = None):
    """Global magnitude pruning: a single threshold across all weight tensors."""
    if not 0.0 <= target_sparsity < 1.0:
        raise ValueError("target_sparsity must be in [0, 1)")
    suffix = name_suffix if name_suffix is not None else f"-gsp{int(target_sparsity * 100)}"
    clone = model.clone(copy_weights=True, name=f"{model.name}{suffix}")
    all_w = [layer.params["W"].ravel() for layer in clone.layers if "W" in layer.params]
    if not all_w:
        return clone
    flat = np.abs(np.concatenate(all_w))
    k = int(np.floor(target_sparsity * flat.size))
    if k <= 0:
        return clone
    threshold = np.partition(flat, k - 1)[k - 1]
    for layer in clone.layers:
        w = layer.params.get("W")
        if w is None:
            continue
        layer.params["W"] = w * (np.abs(w) > threshold)
    return clone


def structured_prune_dense(model, keep_fraction: float, seed: int = 0):
    """Structured pruning of Dense hidden layers by neuron importance.

    Rebuilds the model with the lowest-L2-norm neurons removed from every
    hidden Dense layer (the output layer is untouched), propagating the
    reduced width to the next layer's input rows.  Returns a genuinely
    smaller :class:`repro.nn.Sequential`.
    Only applies to pure-MLP models (Dense/Dropout stacks).
    """
    from repro.nn.layers import Dense, Dropout
    from repro.nn.model import Sequential

    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in (0, 1]")
    dense_layers = [l for l in model.layers if isinstance(l, Dense)]
    if not dense_layers or not all(isinstance(l, (Dense, Dropout)) for l in model.layers):
        raise TypeError("structured_prune_dense only supports Dense/Dropout models")

    new_layers: List = []
    keep_idx: Optional[np.ndarray] = None  # indices kept from the previous layer's outputs
    n_dense = len(dense_layers)
    dense_seen = 0
    for layer in model.layers:
        if isinstance(layer, Dropout):
            new_layers.append(Dropout(layer.rate, seed=seed, name=layer.name))
            continue
        assert isinstance(layer, Dense)
        dense_seen += 1
        w = layer.params["W"]
        b = layer.params.get("b")
        if keep_idx is not None:
            w = w[keep_idx, :]
        is_output = dense_seen == n_dense
        if is_output:
            keep_cols = np.arange(w.shape[1])
        else:
            n_keep = max(1, int(round(keep_fraction * w.shape[1])))
            importance = np.linalg.norm(w, axis=0)
            keep_cols = np.sort(np.argsort(-importance)[:n_keep])
        w_new = w[:, keep_cols]
        new_dense = Dense(
            units=w_new.shape[1],
            activation=layer.activation_name,
            use_bias=layer.use_bias,
            name=layer.name,
        )
        new_dense.build((w_new.shape[0],), np.random.default_rng(seed))
        new_dense.params["W"] = w_new.copy()
        if layer.use_bias and b is not None:
            new_dense.params["b"] = b[keep_cols].copy()
        new_layers.append(new_dense)
        keep_idx = keep_cols
    pruned = Sequential(
        new_layers,
        input_shape=model.input_shape,
        seed=seed,
        name=f"{model.name}-struct{int(keep_fraction * 100)}",
    )
    return pruned


def iterative_prune_finetune(
    model,
    x: np.ndarray,
    y: np.ndarray,
    final_sparsity: float = 0.8,
    steps: int = 4,
    finetune_epochs: int = 1,
    lr: float = 0.005,
    seed: int = 0,
) -> Tuple[object, List[Dict[str, float]]]:
    """Iterative magnitude pruning with fine-tuning between steps.

    Returns the pruned model and a log of ``{sparsity, accuracy}`` after
    every prune/fine-tune cycle.  This is the standard "prune gradually"
    recipe from Han et al. referenced by the paper.
    """
    if steps <= 0:
        raise ValueError("steps must be positive")
    current = model.clone(copy_weights=True, name=f"{model.name}-imp")
    log: List[Dict[str, float]] = []
    for step in range(1, steps + 1):
        target = final_sparsity * step / steps
        current = global_magnitude_prune(current, target, name_suffix="")
        current.name = f"{model.name}-imp"
        if finetune_epochs > 0:
            current.fit(x, y, epochs=finetune_epochs, batch_size=32, lr=lr, seed=seed + step)
            # Re-apply the mask: fine-tuning regrows pruned weights otherwise.
            current = global_magnitude_prune(current, target, name_suffix="")
            current.name = f"{model.name}-imp"
        acc = current.evaluate(x, y)["accuracy"]
        log.append({"step": float(step), "sparsity": sparsity(current), "accuracy": acc})
    return current, log
