"""Model optimization: quantization, pruning, distillation, low-rank, Pareto search."""

from .distillation import distill, soft_label_dataset
from .lowrank import dense_rank_for_compression, factorize_dense_model
from .pareto import ModelVariant, VariantGenerator, pareto_front
from .pruning import (
    global_magnitude_prune,
    iterative_prune_finetune,
    magnitude_prune,
    sparse_size_bytes,
    sparsity,
    structured_prune_dense,
)
from .quantization import (
    QuantizationConfig,
    calibrate_activation_ranges,
    dequantize_array,
    fake_quantize,
    quantization_error,
    quantize_array,
    quantize_model,
    static_fake_quantize,
)

__all__ = [
    "QuantizationConfig",
    "quantize_array",
    "dequantize_array",
    "fake_quantize",
    "static_fake_quantize",
    "quantize_model",
    "quantization_error",
    "calibrate_activation_ranges",
    "magnitude_prune",
    "global_magnitude_prune",
    "structured_prune_dense",
    "sparsity",
    "sparse_size_bytes",
    "iterative_prune_finetune",
    "distill",
    "soft_label_dataset",
    "factorize_dense_model",
    "dense_rank_for_compression",
    "ModelVariant",
    "VariantGenerator",
    "pareto_front",
]
