"""Static analysis of graph IR artifacts: FLOPs, bytes, memory plan.

These estimates feed the device cost model (latency/energy prediction), the
compatibility checker (flash/RAM limits) and the edge-cloud split-point
search (cumulative cost per prefix of the graph).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .graph import GraphIR
from .ops import infer_shape, op_flops

__all__ = ["graph_cost", "per_node_cost", "memory_plan", "split_point_costs"]


def per_node_cost(graph: GraphIR, default_bits: int = 32) -> List[Dict[str, float]]:
    """Per-node FLOPs, parameter bytes and activation sizes (per example)."""
    rows: List[Dict[str, float]] = []
    shape = graph.input_shape
    for node in graph.nodes:
        out_shape = infer_shape(node.op_type, shape, node.attrs)
        bits = int(node.attrs.get("bits", default_bits))
        act_bytes_per_el = max(int(node.attrs.get("activation_bits", 32)), 8) / 8.0
        flops = op_flops(node.op_type, shape, out_shape, node.attrs, node.param_count())
        if "fused_activation" in node.attrs:
            flops += float(np.prod(out_shape))
        rows.append(
            {
                "name": node.name,
                "op_type": node.op_type,
                "flops": flops,
                "param_bytes": float(node.param_bytes(bits)),
                "input_bytes": float(np.prod(shape)) * act_bytes_per_el,
                "output_bytes": float(np.prod(out_shape)) * act_bytes_per_el,
            }
        )
        shape = out_shape
    return rows


def graph_cost(graph: GraphIR, default_bits: int = 32) -> Dict[str, float]:
    """Aggregate cost of the whole graph (per example).

    Returns flops, bytes_moved (activations in/out plus weights read),
    size_bytes (weights at their annotated precision) and the peak
    activation working set.
    """
    rows = per_node_cost(graph, default_bits=default_bits)
    flops = sum(r["flops"] for r in rows)
    bytes_moved = sum(r["input_bytes"] + r["output_bytes"] + r["param_bytes"] for r in rows)
    peak_act = max((r["input_bytes"] + r["output_bytes"] for r in rows), default=0.0)
    return {
        "flops": float(flops),
        "bytes_moved": float(bytes_moved),
        "size_bytes": float(graph.size_bytes(default_bits)),
        "peak_activation_bytes": float(peak_act),
        "n_nodes": float(len(graph)),
        "params": float(graph.param_count()),
    }


def memory_plan(graph: GraphIR, default_bits: int = 32) -> Dict[str, object]:
    """A simple two-buffer ping-pong activation memory plan.

    Chain graphs only ever need the current input and output activation
    alive simultaneously, so the planner reports the two largest adjacent
    activation sizes and the resulting arena size — the number a TFLite-Micro
    style interpreter would allocate statically.
    """
    rows = per_node_cost(graph, default_bits=default_bits)
    arena = 0.0
    schedule = []
    for r in rows:
        need = r["input_bytes"] + r["output_bytes"]
        arena = max(arena, need)
        schedule.append({"node": r["name"], "working_set_bytes": need})
    return {
        "arena_bytes": float(arena),
        "weight_bytes": float(graph.size_bytes(default_bits)),
        "total_static_bytes": float(arena + graph.size_bytes(default_bits)),
        "schedule": schedule,
    }


def split_point_costs(graph: GraphIR, default_bits: int = 32) -> List[Dict[str, float]]:
    """Costs of splitting execution after each node (edge-cloud splitting).

    For every possible split index ``i`` (execute nodes ``[0, i]`` on the
    edge, the rest in the cloud), report the edge FLOPs, cloud FLOPs and the
    number of bytes that must cross the network (the activation produced at
    the split).  Used by :func:`repro.runtime.offload.find_best_split`.
    """
    rows = per_node_cost(graph, default_bits=default_bits)
    total_flops = sum(r["flops"] for r in rows)
    out: List[Dict[str, float]] = []
    cumulative = 0.0
    # Split index -1 = run everything in the cloud (transfer the raw input).
    input_bytes = rows[0]["input_bytes"] if rows else 0.0
    out.append(
        {
            "split_after": -1.0,
            "edge_flops": 0.0,
            "cloud_flops": total_flops,
            "transfer_bytes": input_bytes,
        }
    )
    for i, r in enumerate(rows):
        cumulative += r["flops"]
        out.append(
            {
                "split_after": float(i),
                "edge_flops": cumulative,
                "cloud_flops": total_flops - cumulative,
                "transfer_bytes": r["output_bytes"],
            }
        )
    return out
