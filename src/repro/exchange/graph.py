"""Graph IR: the ONNX-like interchange representation used by the platform.

A :class:`GraphIR` is a linear chain (single-input, single-output DAG) of
:class:`GraphNode` objects.  Models built with :mod:`repro.nn` are exported
to the IR, transformed by compiler passes (:mod:`repro.exchange.passes`),
checked against device capabilities (:mod:`repro.exchange.compat`) and
finally packaged for deployment (:mod:`repro.exchange.compiler`).

The IR is deliberately simple — a chain with per-node attribute dicts and
parameter tensors — but it is sufficient to express every architecture the
NN engine can build, and it keeps pass implementations easy to verify
(property tests check that passes preserve the graph's numeric semantics).
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .ops import get_op_spec, infer_shape

__all__ = ["GraphNode", "GraphIR", "from_sequential"]


@dataclass
class GraphNode:
    """One operator instance in the IR.

    Attributes
    ----------
    name:
        Unique node name within the graph.
    op_type:
        Operator type; must exist in :data:`repro.exchange.ops.OP_REGISTRY`.
    attrs:
        Static attributes (kernel size, units, activation, bits, ...).
    params:
        Named weight tensors (e.g. ``{"W": ..., "b": ...}``).
    """

    name: str
    op_type: str
    attrs: Dict[str, object] = field(default_factory=dict)
    params: Dict[str, np.ndarray] = field(default_factory=dict)

    def param_count(self) -> int:
        """Number of scalar parameters stored on this node."""
        return int(sum(p.size for p in self.params.values()))

    def param_bytes(self, bits: Optional[int] = None) -> int:
        """Size of this node's parameters at the given bit width."""
        if bits is None:
            bits = int(self.attrs.get("bits", 32))
        return int(np.ceil(self.param_count() * bits / 8))

    def clone(self) -> "GraphNode":
        """Deep copy of the node."""
        return GraphNode(
            name=self.name,
            op_type=self.op_type,
            attrs=dict(self.attrs),
            params={k: v.copy() for k, v in self.params.items()},
        )


class GraphIR:
    """A single-chain computation graph with metadata."""

    def __init__(
        self,
        nodes: Sequence[GraphNode],
        input_shape: Tuple[int, ...],
        name: str = "graph",
        metadata: Optional[Dict[str, object]] = None,
    ) -> None:
        self.nodes: List[GraphNode] = list(nodes)
        self.input_shape = tuple(int(s) for s in input_shape)
        self.name = name
        self.metadata: Dict[str, object] = dict(metadata or {})
        self.validate()

    # -- structural helpers ------------------------------------------------
    def validate(self) -> None:
        """Check node-name uniqueness, known ops and shape consistency."""
        seen = set()
        for node in self.nodes:
            if node.name in seen:
                raise ValueError(f"duplicate node name {node.name!r}")
            seen.add(node.name)
            get_op_spec(node.op_type)  # raises on unknown op
        # Shape inference doubles as a consistency check.
        self.output_shape()

    def output_shape(self) -> Tuple[int, ...]:
        """Per-example output shape after the final node."""
        shape = self.input_shape
        for node in self.nodes:
            shape = infer_shape(node.op_type, shape, node.attrs)
        return shape

    def shapes(self) -> List[Tuple[int, ...]]:
        """Per-example output shape after every node (same order as nodes)."""
        out = []
        shape = self.input_shape
        for node in self.nodes:
            shape = infer_shape(node.op_type, shape, node.attrs)
            out.append(shape)
        return out

    def op_types(self) -> List[str]:
        """Operator types in execution order."""
        return [n.op_type for n in self.nodes]

    def find(self, name: str) -> GraphNode:
        """Node by name."""
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no node named {name!r}")

    def __iter__(self) -> Iterator[GraphNode]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)

    # -- size / identity -----------------------------------------------------
    def param_count(self) -> int:
        """Total parameter count over all nodes."""
        return int(sum(n.param_count() for n in self.nodes))

    def size_bytes(self, default_bits: int = 32) -> int:
        """Serialized weight size honouring per-node ``bits`` annotations."""
        total = 0
        for node in self.nodes:
            bits = int(node.attrs.get("bits", default_bits))
            total += node.param_bytes(bits)
        return total

    def fingerprint(self) -> str:
        """Content hash over structure and weights (used by the registry)."""
        h = hashlib.sha256()
        h.update(json.dumps(
            {
                "name": self.name,
                "input_shape": self.input_shape,
                "nodes": [
                    {"name": n.name, "op": n.op_type, "attrs": {k: repr(v) for k, v in sorted(n.attrs.items())}}
                    for n in self.nodes
                ],
            },
            sort_keys=True,
        ).encode())
        for node in self.nodes:
            for key in sorted(node.params):
                h.update(key.encode())
                h.update(np.ascontiguousarray(node.params[key]).tobytes())
        return h.hexdigest()

    # -- copies / serialization ------------------------------------------------
    def clone(self, name: Optional[str] = None) -> "GraphIR":
        """Deep copy of the whole graph."""
        return GraphIR(
            [n.clone() for n in self.nodes],
            self.input_shape,
            name=name or self.name,
            metadata=dict(self.metadata),
        )

    def to_bytes(self) -> bytes:
        """Serialize the graph (pickle of plain dicts and arrays)."""
        payload = {
            "name": self.name,
            "input_shape": self.input_shape,
            "metadata": self.metadata,
            "nodes": [
                {"name": n.name, "op_type": n.op_type, "attrs": n.attrs, "params": n.params}
                for n in self.nodes
            ],
        }
        return pickle.dumps(payload)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "GraphIR":
        """Inverse of :meth:`to_bytes`."""
        payload = pickle.loads(blob)
        nodes = [
            GraphNode(d["name"], d["op_type"], dict(d["attrs"]), dict(d["params"]))
            for d in payload["nodes"]
        ]
        return cls(nodes, payload["input_shape"], name=payload["name"], metadata=payload.get("metadata", {}))

    def summary(self) -> str:
        """Readable per-node summary."""
        lines = [f"GraphIR {self.name!r} input={self.input_shape}"]
        shape = self.input_shape
        for node in self.nodes:
            shape = infer_shape(node.op_type, shape, node.attrs)
            bits = node.attrs.get("bits", 32)
            lines.append(f"  {node.name:<24} {node.op_type:<18} out={shape!s:<16} params={node.param_count():<8} bits={bits}")
        lines.append(f"  total params: {self.param_count()}  size: {self.size_bytes()} B")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Export from the NN engine
# ---------------------------------------------------------------------------

def from_sequential(model, name: Optional[str] = None) -> GraphIR:
    """Export a :class:`repro.nn.Sequential` model to the graph IR.

    Layers with fused activations are split into a compute node followed by
    an activation node so that device compatibility can be evaluated per
    primitive operator (mirroring how ONNX represents such models).
    """
    from repro.nn.layers import (
        Activation,
        AvgPool2D,
        BatchNorm,
        Conv2D,
        Dense,
        DepthwiseConv2D,
        Dropout,
        Flatten,
        GlobalAvgPool2D,
        MaxPool2D,
    )

    nodes: List[GraphNode] = []

    def add(name_: str, op: str, attrs: Dict[str, object] | None = None, params: Dict[str, np.ndarray] | None = None) -> None:
        nodes.append(GraphNode(name_, op, dict(attrs or {}), {k: v.copy() for k, v in (params or {}).items()}))

    for i, layer in enumerate(model.layers):
        lname = f"{layer.name}_{i}"
        if isinstance(layer, Dense):
            add(lname, "dense", {"units": layer.units, "use_bias": layer.use_bias}, layer.params)
            if layer.activation_name:
                add(f"{lname}_act", layer.activation_name)
        elif isinstance(layer, Conv2D):
            add(
                lname,
                "conv2d",
                {
                    "filters": layer.filters,
                    "kernel_size": layer.kernel_size,
                    "stride": layer.stride,
                    "padding": layer.padding,
                    "use_bias": layer.use_bias,
                },
                layer.params,
            )
            if layer.activation_name:
                add(f"{lname}_act", layer.activation_name)
        elif isinstance(layer, DepthwiseConv2D):
            add(
                lname,
                "depthwise_conv2d",
                {
                    "kernel_size": layer.kernel_size,
                    "stride": layer.stride,
                    "padding": layer.padding,
                    "use_bias": layer.use_bias,
                },
                layer.params,
            )
            if layer.activation_name:
                add(f"{lname}_act", layer.activation_name)
        elif isinstance(layer, BatchNorm):
            add(lname, "batchnorm", {"eps": layer.eps}, layer.params)
        elif isinstance(layer, Activation):
            add(lname, layer.activation_name)
        elif isinstance(layer, MaxPool2D):
            add(lname, "maxpool2d", {"pool_size": layer.pool_size})
        elif isinstance(layer, AvgPool2D):
            add(lname, "avgpool2d", {"pool_size": layer.pool_size})
        elif isinstance(layer, GlobalAvgPool2D):
            add(lname, "global_avgpool2d")
        elif isinstance(layer, Flatten):
            add(lname, "flatten")
        elif isinstance(layer, Dropout):
            add(lname, "dropout", {"rate": layer.rate})
        else:
            raise TypeError(f"cannot export layer of type {type(layer).__name__}")
    graph = GraphIR(nodes, model.input_shape, name=name or model.name, metadata={"source": "repro.nn", "seed": model.seed})
    return graph
