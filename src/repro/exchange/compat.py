"""Device compatibility checking for graph IR artifacts.

Paper Section IV: "To deploy the application on a new device, we will first
need to check that all required operations are supported by the underlying
platform."  The :class:`CompatibilityChecker` evaluates a graph against a
:class:`~repro.devices.profiles.DeviceProfile` and reports which operators,
bit widths and resource limits are violated, together with remediation
hints that the compiler can act on (quantize further, fold BatchNorm, pick
a smaller variant, offload).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.devices.profiles import DeviceProfile

from .analysis import graph_cost
from .graph import GraphIR

__all__ = ["CompatibilityIssue", "CompatibilityReport", "CompatibilityChecker"]


@dataclass(frozen=True)
class CompatibilityIssue:
    """A single reason why a graph cannot run on a device as-is."""

    kind: str  # "unsupported_op" | "unsupported_bitwidth" | "flash" | "ram"
    node: Optional[str]
    detail: str
    remediation: str = ""


@dataclass
class CompatibilityReport:
    """Outcome of checking one graph against one device profile."""

    graph_name: str
    device_name: str
    compatible: bool
    issues: List[CompatibilityIssue] = field(default_factory=list)
    required_flash_bytes: int = 0
    required_ram_bytes: int = 0

    def issue_kinds(self) -> List[str]:
        """Distinct issue categories present in this report."""
        return sorted({i.kind for i in self.issues})

    def summary(self) -> str:
        status = "COMPATIBLE" if self.compatible else "INCOMPATIBLE"
        lines = [f"{self.graph_name} on {self.device_name}: {status}"]
        for issue in self.issues:
            lines.append(f"  [{issue.kind}] {issue.detail} -> {issue.remediation}")
        return "\n".join(lines)


class CompatibilityChecker:
    """Checks graphs against device profiles and suggests remediations."""

    def __init__(self, ram_safety_factor: float = 1.1) -> None:
        # Activations plus runtime bookkeeping must fit in RAM with headroom.
        self.ram_safety_factor = float(ram_safety_factor)

    def check(self, graph: GraphIR, profile: DeviceProfile, bits: Optional[int] = None) -> CompatibilityReport:
        """Full compatibility report for ``graph`` on ``profile``.

        ``bits`` overrides the graph's annotated default bit width when
        probing hypothetical quantization levels.
        """
        issues: List[CompatibilityIssue] = []
        default_bits = bits if bits is not None else int(graph.metadata.get("bits", 32))

        # 1. Operator support.
        for node in graph.nodes:
            if not profile.supports_op(node.op_type):
                issues.append(
                    CompatibilityIssue(
                        kind="unsupported_op",
                        node=node.name,
                        detail=f"op {node.op_type!r} not supported by {profile.name}",
                        remediation="rewrite/lower the op, fold it away, or choose another variant",
                    )
                )
            fused = node.attrs.get("fused_activation")
            if fused and not profile.supports_op(str(fused)):
                issues.append(
                    CompatibilityIssue(
                        kind="unsupported_op",
                        node=node.name,
                        detail=f"fused activation {fused!r} not supported by {profile.name}",
                        remediation="unfuse and lower the activation",
                    )
                )

        # 2. Bit-width support (only parameterized nodes matter).
        node_bits = sorted(
            {int(n.attrs.get("bits", default_bits)) for n in graph.nodes if n.params}
        )
        for b in node_bits:
            if not profile.supports_bitwidth(b):
                issues.append(
                    CompatibilityIssue(
                        kind="unsupported_bitwidth",
                        node=None,
                        detail=f"{b}-bit kernels unavailable on {profile.name} (native: {sorted(profile.supported_bitwidths)})",
                        remediation="requantize to a supported width or accept emulation overhead",
                    )
                )

        # 3. Storage and memory.
        cost = graph_cost(graph, default_bits=default_bits)
        flash_needed = int(cost["size_bytes"])
        ram_needed = int(cost["peak_activation_bytes"] * self.ram_safety_factor)
        if flash_needed > profile.flash_bytes:
            issues.append(
                CompatibilityIssue(
                    kind="flash",
                    node=None,
                    detail=f"model needs {flash_needed} B flash, device has {profile.flash_bytes} B",
                    remediation="quantize/prune the model or select a smaller variant",
                )
            )
        if ram_needed > profile.ram_bytes:
            issues.append(
                CompatibilityIssue(
                    kind="ram",
                    node=None,
                    detail=f"peak activations need {ram_needed} B RAM, device has {profile.ram_bytes} B",
                    remediation="reduce input resolution or split execution with the cloud",
                )
            )

        # An unsupported bit width alone does not make deployment impossible
        # (emulation is allowed); unsupported ops or resource overruns do.
        blocking = [i for i in issues if i.kind in ("unsupported_op", "flash", "ram")]
        return CompatibilityReport(
            graph_name=graph.name,
            device_name=profile.name,
            compatible=not blocking,
            issues=issues,
            required_flash_bytes=flash_needed,
            required_ram_bytes=ram_needed,
        )

    def coverage(self, graph: GraphIR, profiles: Sequence[DeviceProfile], bits: Optional[int] = None) -> Dict[str, CompatibilityReport]:
        """Check one graph against many device profiles."""
        return {p.name: self.check(graph, p, bits=bits) for p in profiles}

    def fleet_coverage_fraction(self, graph: GraphIR, profiles: Sequence[DeviceProfile], bits: Optional[int] = None) -> float:
        """Fraction of profiles on which the graph can run as-is."""
        if not profiles:
            return 0.0
        reports = self.coverage(graph, profiles, bits=bits)
        return sum(1 for r in reports.values() if r.compatible) / len(profiles)
