"""Target-aware compiler: lower a graph for a specific device profile.

This plays the role TVM / OpenVINO / TFLite converters play in the paper's
Section IV: given a trained model (as graph IR) and a target device profile,
run the lowering passes, choose a bit width the target supports, verify
compatibility and emit a :class:`CompiledArtifact` ready for the runtime to
package and the registry to store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.devices.cost import CostModel, ExecutionCost
from repro.devices.profiles import DeviceProfile

from .analysis import graph_cost, memory_plan
from .compat import CompatibilityChecker, CompatibilityReport
from .graph import GraphIR
from .passes import PassPipeline, annotate_quantization, insert_postprocessing, insert_preprocessing

__all__ = ["CompiledArtifact", "CompilationError", "Compiler"]


class CompilationError(RuntimeError):
    """Raised when a graph cannot be lowered for the requested target."""

    def __init__(self, message: str, report: Optional[CompatibilityReport] = None) -> None:
        super().__init__(message)
        self.report = report


@dataclass
class CompiledArtifact:
    """The deployable result of compiling a graph for one device profile.

    Attributes
    ----------
    graph:
        The lowered graph (passes applied, quantization annotated).
    target:
        Device profile name this artifact was compiled for.
    bits:
        Weight bit width selected for the target.
    size_bytes:
        Serialized weight size at the chosen precision.
    estimated_cost:
        Predicted single-inference cost on the target.
    report:
        The compatibility report that cleared this artifact.
    """

    graph: GraphIR
    target: str
    bits: int
    size_bytes: int
    estimated_cost: ExecutionCost
    report: CompatibilityReport
    memory_plan: Dict[str, object] = field(default_factory=dict)

    @property
    def artifact_id(self) -> str:
        """Content-derived identifier (graph fingerprint + target)."""
        return f"{self.graph.fingerprint()[:16]}-{self.target}-{self.bits}b"

    def describe(self) -> Dict[str, object]:
        return {
            "artifact_id": self.artifact_id,
            "graph": self.graph.name,
            "target": self.target,
            "bits": self.bits,
            "size_kb": self.size_bytes / 1024,
            "latency_ms": self.estimated_cost.latency_s * 1e3,
            "energy_mj": self.estimated_cost.energy_j * 1e3,
        }


class Compiler:
    """Lower graphs for device targets, selecting precision automatically."""

    def __init__(
        self,
        cost_model: Optional[CostModel] = None,
        checker: Optional[CompatibilityChecker] = None,
        pipeline: Optional[PassPipeline] = None,
    ) -> None:
        self.cost_model = cost_model or CostModel()
        self.checker = checker or CompatibilityChecker()
        self.pipeline = pipeline or PassPipeline.standard_inference()

    # -- precision selection ---------------------------------------------
    def select_bits(self, profile: DeviceProfile, requested_bits: Optional[int] = None) -> int:
        """Pick the widest requested/native precision the device supports.

        If the caller requests a specific width that the device supports it is
        used unchanged; otherwise we fall back to the widest natively
        supported width <= 32, preferring 8-bit for MCU-class devices.
        """
        if requested_bits is not None and profile.supports_bitwidth(requested_bits):
            return int(requested_bits)
        supported = sorted(b for b in profile.supported_bitwidths if b <= 32)
        if not supported:
            return 32
        if requested_bits is not None:
            # Choose the closest supported width not exceeding the request,
            # else the smallest supported width.
            not_larger = [b for b in supported if b <= requested_bits]
            return int(max(not_larger) if not_larger else min(supported))
        return int(max(supported))

    # -- main entry point ----------------------------------------------------
    def compile(
        self,
        graph: GraphIR,
        profile: DeviceProfile,
        bits: Optional[int] = None,
        add_preprocessing: Optional[Dict[str, object]] = None,
        add_postprocessing: Optional[str] = None,
        strict: bool = True,
    ) -> CompiledArtifact:
        """Lower ``graph`` for ``profile`` and return a compiled artifact.

        Raises
        ------
        CompilationError
            When ``strict`` and the lowered graph is still incompatible with
            the target (unsupported ops or resource overruns).
        """
        lowered = self.pipeline.run(graph)
        chosen_bits = self.select_bits(profile, bits)
        if chosen_bits < 32:
            lowered = annotate_quantization(lowered, bits=chosen_bits)
        if add_preprocessing:
            lowered = insert_preprocessing(
                lowered,
                mean=add_preprocessing.get("mean", 0.0),
                std=add_preprocessing.get("std", 1.0),
            )
        if add_postprocessing:
            lowered = insert_postprocessing(lowered, kind=add_postprocessing)
        report = self.checker.check(lowered, profile, bits=chosen_bits)
        if strict and not report.compatible:
            raise CompilationError(
                f"cannot compile {graph.name!r} for {profile.name!r}: {report.issue_kinds()}",
                report=report,
            )
        cost = graph_cost(lowered, default_bits=chosen_bits)
        exec_cost = self.cost_model.inference_cost(
            profile,
            flops=cost["flops"],
            bytes_moved=cost["bytes_moved"],
            peak_memory=cost["peak_activation_bytes"],
            bits=chosen_bits,
        )
        plan = memory_plan(lowered, default_bits=chosen_bits)
        lowered.metadata["target"] = profile.name
        lowered.metadata["bits"] = chosen_bits
        return CompiledArtifact(
            graph=lowered,
            target=profile.name,
            bits=chosen_bits,
            size_bytes=int(cost["size_bytes"]),
            estimated_cost=exec_cost,
            report=report,
            memory_plan=plan,
        )

    def compile_for_fleet(
        self,
        graph: GraphIR,
        profiles: Sequence[DeviceProfile],
        bits: Optional[int] = None,
    ) -> Tuple[Dict[str, CompiledArtifact], Dict[str, CompatibilityReport]]:
        """Compile a graph for every distinct profile in a fleet.

        Returns ``(artifacts, failures)`` keyed by profile name.
        """
        artifacts: Dict[str, CompiledArtifact] = {}
        failures: Dict[str, CompatibilityReport] = {}
        seen = set()
        for profile in profiles:
            if profile.name in seen:
                continue
            seen.add(profile.name)
            try:
                artifacts[profile.name] = self.compile(graph, profile, bits=bits)
            except CompilationError as exc:
                if exc.report is not None:
                    failures[profile.name] = exc.report
        return artifacts, failures
