"""Reference executor for the graph IR.

The executor evaluates a :class:`~repro.exchange.graph.GraphIR` on NumPy
inputs.  It is used (a) as the on-device inference engine inside the
portable-module runtime, (b) to verify that compiler passes preserve model
semantics, and (c) to execute quantized graphs, applying fake-quantization
to weights and activations according to per-node ``bits`` annotations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.nn import activations as A
from repro.nn.layers import col2im, im2col

from .graph import GraphIR, GraphNode

__all__ = ["GraphExecutor", "execute_graph", "quantize_node_params"]


def _fake_quantize(x: np.ndarray, bits: int, symmetric: bool = True) -> np.ndarray:
    """Quantize-dequantize a tensor to the given bit width (per-tensor).

    The symmetric scheme clamps the scale to the smallest normal float so
    subnormal inputs cannot underflow it to zero (which would turn
    ``x / scale`` into inf/NaN).  The asymmetric scheme uses an *integer*
    zero-point over a range nudged to include 0.0 — the standard affine
    quantizer contract: real zero is always exactly representable, and
    constant tensors survive the round trip.
    """
    if bits >= 32:
        return x
    if bits <= 0:
        raise ValueError("bits must be positive")
    x = np.asarray(x)
    if x.size == 0:
        return np.asarray(x, dtype=np.float64)
    tiny = np.finfo(np.float64).tiny
    if symmetric:
        qmax = 2 ** (bits - 1) - 1 if bits > 1 else 1
        max_abs = float(np.max(np.abs(x)))
        scale = max(max_abs / qmax, tiny) if max_abs > 0 else 1.0
        q = np.clip(np.round(x / scale), -qmax - (0 if bits == 1 else 1), qmax)
        return q * scale
    qmax = 2**bits - 1
    lo = min(float(x.min()), 0.0)
    hi = max(float(x.max()), 0.0)
    if hi > lo:
        scale = max((hi - lo) / qmax, tiny)
        zero = float(np.round(np.clip(-lo / scale, 0.0, qmax)))
    else:
        scale, zero = 1.0, 0.0
    q = np.clip(np.round(x / scale + zero), 0.0, qmax)
    return (q - zero) * scale


def quantize_node_params(node: GraphNode, apply_quantization: bool = True) -> Dict[str, np.ndarray]:
    """Fake-quantize a node's weights according to its ``bits`` annotations.

    Shared by the reference :class:`GraphExecutor` (which caches the result
    per node) and the compiled engine in :mod:`repro.exchange.compiled`
    (which folds it once at compile time), so both executors are guaranteed
    to run bit-identical weights.
    """
    bits = int(node.attrs.get("bits", 32))
    if not apply_quantization or bits >= 32 or not node.params:
        return node.params
    scheme = str(node.attrs.get("quant_scheme", "symmetric"))
    per_channel = bool(node.attrs.get("per_channel", False))
    quantized: Dict[str, np.ndarray] = {}
    for key, value in node.params.items():
        if key == "W" and per_channel and value.ndim >= 2:
            # Quantize each output channel (last axis) independently.
            flat = value.reshape(-1, value.shape[-1])
            out = np.empty_like(flat)
            for c in range(flat.shape[1]):
                out[:, c] = _fake_quantize(flat[:, c], bits, scheme == "symmetric")
            quantized[key] = out.reshape(value.shape)
        elif key in ("W",):
            quantized[key] = _fake_quantize(value, bits, scheme == "symmetric")
        else:
            quantized[key] = value  # biases / BN stats stay high precision
    return quantized


class GraphExecutor:
    """Evaluates a GraphIR on batched NumPy inputs.

    Parameters
    ----------
    graph:
        The IR to execute.
    apply_quantization:
        When True, per-node ``bits`` attributes < 32 trigger fake quantization
        of the node's weights (once, cached) and of its output activations —
        modelling integer edge inference without an integer kernel library.
    """

    def __init__(self, graph: GraphIR, apply_quantization: bool = True) -> None:
        self.graph = graph
        self.apply_quantization = apply_quantization
        self._quantized_params: Dict[str, Dict[str, np.ndarray]] = {}

    # -- weights ----------------------------------------------------------
    def _node_params(self, node: GraphNode) -> Dict[str, np.ndarray]:
        bits = int(node.attrs.get("bits", 32))
        if not self.apply_quantization or bits >= 32:
            return node.params
        cached = self._quantized_params.get(node.name)
        if cached is not None:
            return cached
        quantized = quantize_node_params(node, apply_quantization=True)
        self._quantized_params[node.name] = quantized
        return quantized

    def invalidate_cache(self) -> None:
        """Drop cached quantized weights (call after editing node params)."""
        self._quantized_params.clear()

    # -- execution ----------------------------------------------------------
    def run(self, x: np.ndarray, collect_activations: bool = False) -> np.ndarray | Tuple[np.ndarray, List[np.ndarray]]:
        """Run the graph on a batch; optionally return every intermediate."""
        out = np.asarray(x, dtype=np.float64)
        activations: List[np.ndarray] = []
        for node in self.graph.nodes:
            out = self._run_node(node, out)
            if self.apply_quantization:
                act_bits = int(node.attrs.get("activation_bits", 32))
                if act_bits < 32:
                    out = _fake_quantize(out, act_bits)
            if collect_activations:
                activations.append(out)
        if collect_activations:
            return out, activations
        return out

    __call__ = run

    # -- per-op kernels ----------------------------------------------------
    def _run_node(self, node: GraphNode, x: np.ndarray) -> np.ndarray:
        op = node.op_type
        params = self._node_params(node)
        attrs = node.attrs
        if op == "input":
            return x
        if op == "dense":
            z = x @ params["W"]
            if attrs.get("use_bias", True) and "b" in params:
                z = z + params["b"]
            return z
        if op == "conv2d":
            return self._conv2d(x, params, attrs)
        if op == "depthwise_conv2d":
            return self._depthwise(x, params, attrs)
        if op == "batchnorm":
            eps = float(attrs.get("eps", 1e-5))
            mean = params["running_mean"]
            var = params["running_var"]
            inv_std = 1.0 / np.sqrt(var + eps)
            return params["gamma"] * (x - mean) * inv_std + params["beta"]
        if op in ("relu", "relu6", "leaky_relu", "sigmoid", "tanh", "hard_sigmoid", "linear"):
            return A.get_activation(op)[0](x)
        if op == "softmax":
            return A.softmax(x, axis=-1)
        if op == "dropout":
            return x  # inference: identity
        if op == "maxpool2d":
            return self._pool(x, int(attrs.get("pool_size", 2)), "max")
        if op == "avgpool2d":
            return self._pool(x, int(attrs.get("pool_size", 2)), "avg")
        if op == "global_avgpool2d":
            return x.mean(axis=(1, 2))
        if op == "flatten":
            return x.reshape(x.shape[0], -1)
        if op == "quantize":
            return _fake_quantize(x, int(attrs.get("bits", 8)))
        if op == "dequantize":
            return x
        if op == "normalize":
            mean = np.asarray(attrs.get("mean", 0.0))
            std = np.asarray(attrs.get("std", 1.0))
            return (x - mean) / std
        if op == "threshold":
            return (x >= float(attrs.get("value", 0.5))).astype(np.float64)
        if op == "argmax":
            return x.argmax(axis=-1, keepdims=True).astype(np.float64)
        if op == "add":
            return x + np.asarray(attrs.get("constant", 0.0))
        if op == "mul":
            return x * np.asarray(attrs.get("constant", 1.0))
        if op == "reshape":
            return x.reshape((x.shape[0],) + tuple(int(v) for v in attrs["shape"]))
        raise NotImplementedError(f"executor has no kernel for op {op!r}")

    @staticmethod
    def _conv2d(x: np.ndarray, params: Dict[str, np.ndarray], attrs: Dict) -> np.ndarray:
        k = int(attrs.get("kernel_size", 3))
        stride = int(attrs.get("stride", 1))
        pad = (k - 1) // 2 if attrs.get("padding", "same") == "same" else 0
        w = params["W"]
        filters = w.shape[-1]
        n = x.shape[0]
        cols, out_h, out_w = im2col(x, k, k, stride, pad)
        z = cols @ w.reshape(-1, filters)
        if attrs.get("use_bias", True) and "b" in params:
            z = z + params["b"]
        return z.reshape(n, out_h, out_w, filters)

    @staticmethod
    def _depthwise(x: np.ndarray, params: Dict[str, np.ndarray], attrs: Dict) -> np.ndarray:
        k = int(attrs.get("kernel_size", 3))
        stride = int(attrs.get("stride", 1))
        pad = (k - 1) // 2 if attrs.get("padding", "same") == "same" else 0
        w = params["W"]
        n, _, _, c = x.shape
        cols, out_h, out_w = im2col(x, k, k, stride, pad)
        cols3 = cols.reshape(-1, k * k, c)
        z = np.einsum("pkc,kc->pc", cols3, w.reshape(k * k, c), optimize=True)
        if attrs.get("use_bias", True) and "b" in params:
            z = z + params["b"]
        return z.reshape(n, out_h, out_w, c)

    @staticmethod
    def _pool(x: np.ndarray, p: int, kind: str) -> np.ndarray:
        n, h, w, c = x.shape
        oh, ow = h // p, w // p
        x = x[:, : oh * p, : ow * p, :]
        windows = x.reshape(n, oh, p, ow, p, c)
        if kind == "max":
            return windows.max(axis=(2, 4))
        return windows.mean(axis=(2, 4))


def execute_graph(
    graph: GraphIR,
    x: np.ndarray,
    apply_quantization: bool = True,
    engine: Optional[str] = None,
) -> np.ndarray:
    """One-shot convenience wrapper around the graph executors.

    ``engine`` follows the :mod:`repro.dispatch` convention:
    ``"oracle"`` (the default here — a one-shot call has no plan to amortize)
    runs the reference :class:`GraphExecutor` interpreter;
    ``"batched"`` compiles the graph into a
    :class:`~repro.exchange.compiled.CompiledExecutor` plan first.
    """
    from repro.dispatch import ENGINE_BATCHED, ENGINE_ORACLE, resolve_engine

    if resolve_engine(engine, None, default=ENGINE_ORACLE, owner="execute_graph") == ENGINE_BATCHED:
        from .compiled import CompiledExecutor

        return CompiledExecutor(graph, apply_quantization=apply_quantization).run(x)
    return GraphExecutor(graph, apply_quantization=apply_quantization).run(x)
