"""Compiled batched inference engine over the graph IR.

:class:`~repro.exchange.executor.GraphExecutor` is the *reference
interpreter*: it re-reads every node's attribute dict on every call,
re-applies weight quantization through a per-node cache, allocates fresh
intermediates for every op and knows nothing about fused activations.
That is the right shape for a semantic oracle and the wrong shape for the
serving hot path.

:class:`CompiledExecutor` lowers a :class:`~repro.exchange.graph.GraphIR`
once, at construction time, into a flat plan of NumPy kernel closures:

* **Folded weights** — per-node ``bits`` / ``quant_scheme`` / ``per_channel``
  annotations are applied exactly once at compile time via
  :func:`~repro.exchange.executor.quantize_node_params` (shared with the
  reference executor, so both run bit-identical weights), and conv kernels
  are pre-reshaped into their GEMM form.
* **Fused kernels** — matmul + bias + ``fused_activation`` execute as one
  closure writing into a preallocated output buffer (``np.dot(..., out=)``
  plus in-place activation), so a ``fuse_activations``-lowered graph runs
  directly instead of being re-expanded first.
* **Cached workspaces** — im2col column matrices, padded inputs and GEMM
  outputs are owned by the plan and reused across batches of the same size;
  steady-state serving does no large allocations.
* **Batched execution** — :meth:`run_many` executes one graph over a list
  of stacked per-device windows in a single sweep, and
  :class:`FleetExecutor` runs *heterogeneous* model variants (fp32 /
  quantized / pruned) across a whole fleet, grouping devices by variant.

Semantics: for every graph the reference oracle accepts, the plan's output
is allclose-identical to ``GraphExecutor(expand_fused_activations(graph))``
(bit-identical for the GEMM-dominated paths).  Data-dependent quantization
(``activation_bits`` or explicit ``quantize`` nodes) computes its range
over whatever batch the executor is handed, so :meth:`run_many` falls back
to per-window execution for such graphs to preserve exact per-window
statistics — *unless* the plan is calibrated: passing ``calibration_data``
(or calling :meth:`CompiledExecutor.calibrate_activations`) records each
quantization site's activation range once, after which the plan quantizes
against those **static** ranges
(:func:`repro.optimize.quantization.static_fake_quantize`), every kernel is
per-sample independent again, and ``run_many`` stacks quantized graphs
exactly like fp32 ones.  On the calibration batch itself the static path is
bit-identical to the dynamic oracle; elsewhere it differs by at most half a
quantization step per site (plus clipping outside the calibrated range) —
the standard static-range deployment contract.

**Adding a fused kernel**: add a ``_compile_<op>`` branch in
:meth:`CompiledExecutor._compile_node` that captures everything derivable
from ``node.attrs`` / folded params in closure locals, writes into buffers
obtained from :meth:`CompiledExecutor._buf` keyed by ``(node_index, role)``,
applies activation quantization *before* the fused activation (matching the
expanded reference order compute → quantize → activation), and appends any
``(A, B, C)`` GEMM triple to the ``gemms`` list when it is not ``None`` so
Freivalds verification (:func:`repro.verification.verify_compiled_run`)
covers the new kernel.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.nn import activations as A
from repro.optimize.quantization import static_fake_quantize

from .executor import _fake_quantize, quantize_node_params
from .graph import GraphIR, GraphNode

__all__ = ["CompiledExecutor", "FleetExecutor", "split_stacked"]


def split_stacked(stacked: np.ndarray, sizes: Sequence[int]) -> List[np.ndarray]:
    """Split a stacked result tensor back into per-window views.

    ``sizes`` may contain zeros (windows that contributed no rows); shared
    by :meth:`CompiledExecutor.run_many` and
    :meth:`repro.runtime.Pipeline.run_many`.
    """
    outs: List[np.ndarray] = []
    offset = 0
    for n in sizes:
        outs.append(stacked[offset : offset + n])
        offset += n
    return outs

# A GEMM triple (A, B, C) claimed to satisfy A @ B == C, recorded for
# randomized verification.  C is the raw product, before bias/activation.
GemmRecord = Tuple[np.ndarray, np.ndarray, np.ndarray]
_Step = Callable[[np.ndarray, Optional[List[GemmRecord]]], np.ndarray]


def _apply_activation(name: str, z: np.ndarray) -> np.ndarray:
    """Apply an activation, in place when NumPy offers an ``out=`` kernel."""
    if name == "linear":
        return z
    if name == "relu":
        return np.maximum(z, 0.0, out=z)
    if name == "relu6":
        return np.clip(z, 0.0, 6.0, out=z)
    if name == "tanh":
        return np.tanh(z, out=z)
    return A.get_activation(name)[0](z)


class CompiledExecutor:
    """A GraphIR lowered to a flat plan of fused, preallocated NumPy kernels.

    Parameters
    ----------
    graph:
        The lowered IR to compile.  Graphs carrying ``fused_activation``
        attributes (from :func:`~repro.exchange.passes.fuse_activations`)
        execute natively — no re-expansion.
    apply_quantization:
        Honour per-node ``bits`` / ``activation_bits`` annotations exactly
        like the reference executor.  Weight quantization is folded once at
        compile time.
    calibration_data:
        Optional calibration batch.  When given (and the plan has activation
        quantization sites), :meth:`calibrate_activations` runs on it at
        construction time so the plan quantizes against static recorded
        ranges and stays stackable in :meth:`run_many`.
    """

    def __init__(
        self,
        graph: GraphIR,
        apply_quantization: bool = True,
        chunk_size: int = 256,
        calibration_data: Optional[np.ndarray] = None,
    ) -> None:
        self.graph = graph
        self.apply_quantization = apply_quantization
        self.chunk_size = int(chunk_size)
        self.output_shape: Tuple[int, ...] = tuple(graph.output_shape())
        # True when per-sample outputs are independent of batch composition,
        # i.e. the graph has no data-dependent (activation) quantization and
        # run_many may execute one stacked GEMM sweep over all windows.
        self.stacking_exact = True
        # Activation-quantization sites (site name -> calibrated max-abs
        # range).  Empty until calibrate_activations records the ranges;
        # uncalibrated sites quantize dynamically per batch.
        self.quant_sites: List[str] = []
        self.activation_ranges: Dict[str, float] = {}
        self._calibrating = False
        # Workspace buffers keyed by (node_index, role, shape).  Keying by
        # shape lets the main chunk size and a remainder chunk coexist
        # instead of thrashing one slot; a small LRU bounds the memory when
        # a workload cycles through many batch sizes.
        self._buffers: "OrderedDict[Tuple[int, str, Tuple[int, ...]], np.ndarray]" = OrderedDict()
        # Capacity scales with plan depth (up to ~4 roles per node, times a
        # main and a remainder chunk shape) so deep graphs never evict their
        # own working set mid-run.
        self._max_buffers = max(96, 8 * len(graph.nodes))
        self._steps: List[_Step] = []
        self.n_gemm_steps = 0
        in_shapes = [graph.input_shape] + graph.shapes()[:-1]
        for idx, node in enumerate(graph.nodes):
            self._steps.extend(self._compile_node(idx, node, in_shapes[idx]))
        if calibration_data is not None:
            self.calibrate_activations(calibration_data)

    # -- workspace ---------------------------------------------------------
    def _buf(self, key: Tuple[int, str], shape: Tuple[int, ...], zero: bool = False) -> np.ndarray:
        """Plan-owned float64 scratch buffer, allocated once per shape.

        ``zero`` buffers start zero-filled on allocation (reused ones keep
        whatever the caller left in them — pad buffers rely on this to zero
        their border exactly once).
        """
        full_key = key + (shape,)
        buf = self._buffers.get(full_key)
        if buf is None:
            buf = np.zeros(shape, dtype=np.float64) if zero else np.empty(shape, dtype=np.float64)
            self._buffers[full_key] = buf
            while len(self._buffers) > self._max_buffers:
                self._buffers.popitem(last=False)
        else:
            self._buffers.move_to_end(full_key)
        return buf

    def workspace_bytes(self) -> int:
        """Bytes currently held in cached workspaces (observability)."""
        return int(sum(b.nbytes for b in self._buffers.values()))

    # -- activation quantization sites -------------------------------------
    def _new_quant_site(self, name: str) -> str:
        site = name if name not in self.quant_sites else f"{name}#{len(self.quant_sites)}"
        self.quant_sites.append(site)
        return site

    def _quantize_site(self, site: str, x: np.ndarray, bits: int) -> np.ndarray:
        """Quantize one site's activations: static range once calibrated,
        dynamic (per-batch) range otherwise; calibration runs record the
        observed range while still applying the dynamic quantizer, so
        downstream sites calibrate on exactly the tensors they will see."""
        if self._calibrating:
            observed = float(np.max(np.abs(x))) if x.size else 0.0
            prev = self.activation_ranges.get(site)
            self.activation_ranges[site] = observed if prev is None else max(prev, observed)
            return _fake_quantize(x, bits)
        calibrated = self.activation_ranges.get(site)
        if calibrated is None:
            return _fake_quantize(x, bits)
        return static_fake_quantize(x, bits, calibrated)

    def calibrate_activations(self, calibration_x: np.ndarray) -> Dict[str, float]:
        """Record static activation ranges on a calibration batch.

        After calibration every quantization site uses its recorded max-abs
        range (:func:`~repro.optimize.quantization.static_fake_quantize`), so
        per-sample outputs no longer depend on batch composition and
        :meth:`run_many` stacks quantized graphs in one sweep
        (``stacking_exact`` flips to True).  Returns the recorded ranges
        (``site name -> max_abs``).  On the calibration batch itself the
        static path reproduces the dynamic-range oracle bit for bit; on
        other data each site differs by at most half a quantization step,
        plus clipping for values outside the calibrated range.
        """
        if not self.quant_sites:
            return {}
        calibration_x = np.asarray(calibration_x, dtype=np.float64)
        if calibration_x.shape[0] == 0:
            raise ValueError("calibration batch must contain at least one sample")
        self.activation_ranges.clear()
        self._calibrating = True
        try:
            self._run_steps(calibration_x, None)
        finally:
            self._calibrating = False
        self.stacking_exact = True
        return dict(self.activation_ranges)

    def _padded(self, idx: int, x: np.ndarray, pad: int) -> np.ndarray:
        """Zero-pad H/W into a plan-owned buffer (identity when pad == 0).

        The border is zeroed only when the buffer is (re)allocated: the
        interior is overwritten on every call and the border never is.
        """
        if not pad:
            return x
        n, h, w, c = x.shape
        padded = self._buf((idx, "pad"), (n, h + 2 * pad, w + 2 * pad, c), zero=True)
        padded[:, pad : pad + h, pad : pad + w, :] = x
        return padded

    def _im2col(self, idx: int, x: np.ndarray, k: int, stride: int, pad: int) -> Tuple[np.ndarray, int, int]:
        """im2col into a plan-owned column buffer (no per-call allocation)."""
        x = self._padded(idx, x, pad)
        n, hp, wp, c = x.shape
        out_h = (hp - k) // stride + 1
        out_w = (wp - k) // stride + 1
        windows = np.lib.stride_tricks.sliding_window_view(x, (k, k), axis=(1, 2))
        windows = windows[:, ::stride, ::stride, :, :, :].transpose(0, 1, 2, 4, 5, 3)
        cols = self._buf((idx, "cols"), (n * out_h * out_w, k * k * c))
        np.copyto(cols.reshape(n, out_h, out_w, k, k, c), windows)
        return cols, out_h, out_w

    # -- compilation -------------------------------------------------------
    def _compile_node(self, idx: int, node: GraphNode, in_shape: Tuple[int, ...]) -> List[_Step]:
        op = node.op_type
        attrs = node.attrs
        params = quantize_node_params(node, self.apply_quantization)
        act_bits = int(attrs.get("activation_bits", 32)) if self.apply_quantization else 32
        fused = str(attrs["fused_activation"]) if attrs.get("fused_activation") else None
        if act_bits < 32 or op == "quantize":
            self.stacking_exact = False

        if op == "dense":
            if len(in_shape) != 1:
                # The IR's own shape inference declares (units,) regardless
                # of input rank, so such graphs are already inconsistent;
                # refuse at compile time instead of mis-executing.
                raise NotImplementedError(
                    f"dense node {node.name!r} on rank-{len(in_shape)} per-example input; insert a flatten first"
                )
            return [self._compile_dense(idx, node, params, act_bits, fused)]
        if op in ("conv2d", "depthwise_conv2d"):
            return [self._compile_conv(idx, node, params, act_bits, fused, depthwise=op == "depthwise_conv2d")]

        kernel = self._compile_simple(idx, node, params)
        steps: List[_Step] = [kernel] if kernel is not None else []
        if act_bits < 32:
            site = self._new_quant_site(f"{node.name}/act")
            steps.append(lambda x, gemms: self._quantize_site(site, x, act_bits))
        if fused is not None:
            # Non-compute node carrying a fused activation (not produced by
            # the standard passes, but legal in the IR).
            steps.append(lambda x, gemms: _apply_activation(fused, np.array(x)))
        return steps

    def _compile_dense(
        self,
        idx: int,
        node: GraphNode,
        params: Dict[str, np.ndarray],
        act_bits: int,
        fused: Optional[str],
    ) -> _Step:
        w = np.ascontiguousarray(np.asarray(params["W"], dtype=np.float64))
        b = None
        if node.attrs.get("use_bias", True) and "b" in params:
            b = np.asarray(params["b"], dtype=np.float64)
        self.n_gemm_steps += 1
        site = self._new_quant_site(f"{node.name}/act") if act_bits < 32 else None

        def step(x: np.ndarray, gemms: Optional[List[GemmRecord]]) -> np.ndarray:
            z = self._buf((idx, "out"), (x.shape[0], w.shape[1]))
            np.dot(x, w, out=z)
            if gemms is not None:
                gemms.append((x.copy(), w, z.copy()))
            if b is not None:
                z += b
            if site is not None:
                z = self._quantize_site(site, z, act_bits)
            if fused is not None:
                z = _apply_activation(fused, z)
            return z

        return step

    def _compile_conv(
        self,
        idx: int,
        node: GraphNode,
        params: Dict[str, np.ndarray],
        act_bits: int,
        fused: Optional[str],
        depthwise: bool,
    ) -> _Step:
        attrs = node.attrs
        k = int(attrs.get("kernel_size", 3))
        stride = int(attrs.get("stride", 1))
        pad = (k - 1) // 2 if attrs.get("padding", "same") == "same" else 0
        w = np.asarray(params["W"], dtype=np.float64)
        b = None
        if attrs.get("use_bias", True) and "b" in params:
            b = np.asarray(params["b"], dtype=np.float64)
        if depthwise:
            wk = np.ascontiguousarray(w.reshape(k * k, -1))
        else:
            wmat = np.ascontiguousarray(w.reshape(-1, w.shape[-1]))
            self.n_gemm_steps += 1
        site = self._new_quant_site(f"{node.name}/act") if act_bits < 32 else None

        def step(x: np.ndarray, gemms: Optional[List[GemmRecord]]) -> np.ndarray:
            n = x.shape[0]
            if depthwise:
                # Direct accumulation over the k*k kernel taps: one fused
                # multiply-add per tap on strided views, no column matrix.
                xp = self._padded(idx, x, pad)
                c = x.shape[3]
                out_h = (xp.shape[1] - k) // stride + 1
                out_w = (xp.shape[2] - k) // stride + 1
                z = self._buf((idx, "z"), (n, out_h, out_w, c))
                tmp = self._buf((idx, "tmp"), z.shape)
                z.fill(0.0)
                for ki in range(k):
                    for kj in range(k):
                        tap = xp[:, ki : ki + out_h * stride : stride, kj : kj + out_w * stride : stride, :]
                        np.multiply(tap, wk[ki * k + kj], out=tmp)
                        z += tmp
                out_c = c
            elif k == 1:
                # Pointwise conv is a plain GEMM on the channel axis.
                xs = x if stride == 1 else np.ascontiguousarray(x[:, ::stride, ::stride, :])
                out_h, out_w = xs.shape[1], xs.shape[2]
                cols = xs.reshape(-1, xs.shape[3])
                z = self._buf((idx, "z"), (cols.shape[0], wmat.shape[1]))
                np.dot(cols, wmat, out=z)
                if gemms is not None:
                    gemms.append((cols.copy(), wmat, z.copy()))
                out_c = wmat.shape[1]
            else:
                cols, out_h, out_w = self._im2col(idx, x, k, stride, pad)
                z = self._buf((idx, "z"), (cols.shape[0], wmat.shape[1]))
                np.dot(cols, wmat, out=z)
                if gemms is not None:
                    gemms.append((cols.copy(), wmat, z.copy()))
                out_c = wmat.shape[1]
            if b is not None:
                z += b
            # Per-tensor quantization and element-wise activations are
            # shape-independent, so both run on the GEMM/tap output directly.
            if site is not None:
                z = self._quantize_site(site, z, act_bits)
            if fused is not None:
                z = _apply_activation(fused, z)
            return z.reshape(n, out_h, out_w, out_c)

        return step

    def _compile_simple(self, idx: int, node: GraphNode, params: Dict[str, np.ndarray]) -> Optional[_Step]:
        """Kernels with no GEMM; returns None for identity ops."""
        op = node.op_type
        attrs = node.attrs
        if op in ("input", "dropout", "dequantize"):
            return None
        if op == "batchnorm":
            eps = float(attrs.get("eps", 1e-5))
            inv_std = 1.0 / np.sqrt(params["running_var"] + eps)
            scale = params["gamma"] * inv_std
            shift = params["beta"] - params["running_mean"] * scale

            def bn(x: np.ndarray, gemms: Optional[List[GemmRecord]]) -> np.ndarray:
                out = self._buf((idx, "out"), x.shape)
                np.multiply(x, scale, out=out)
                out += shift
                return out

            return bn
        if op in ("relu", "relu6", "leaky_relu", "sigmoid", "tanh", "hard_sigmoid", "linear"):

            def act(x: np.ndarray, gemms: Optional[List[GemmRecord]], _op: str = op) -> np.ndarray:
                if _op == "relu":
                    return np.maximum(x, 0.0, out=self._buf((idx, "out"), x.shape))
                if _op == "relu6":
                    return np.clip(x, 0.0, 6.0, out=self._buf((idx, "out"), x.shape))
                return A.get_activation(_op)[0](x)

            return act
        if op == "softmax":
            return lambda x, gemms: A.softmax(x, axis=-1)
        if op == "maxpool2d" or op == "avgpool2d":
            p = int(attrs.get("pool_size", 2))
            reduce_max = op == "maxpool2d"

            def pool(x: np.ndarray, gemms: Optional[List[GemmRecord]]) -> np.ndarray:
                # p*p strided-view reductions into a reused buffer instead of
                # one big axis-pair reduction (much friendlier access pattern).
                n, h, w, c = x.shape
                oh, ow = h // p, w // p
                out = self._buf((idx, "out"), (n, oh, ow, c))
                np.copyto(out, x[:, 0 : oh * p : p, 0 : ow * p : p, :])
                for di in range(p):
                    for dj in range(p):
                        if di or dj:
                            window = x[:, di : oh * p : p, dj : ow * p : p, :]
                            if reduce_max:
                                np.maximum(out, window, out=out)
                            else:
                                out += window
                if not reduce_max:
                    out *= 1.0 / (p * p)
                return out

            return pool
        if op == "global_avgpool2d":
            return lambda x, gemms: x.mean(axis=(1, 2))
        if op == "flatten":
            return lambda x, gemms: x.reshape(x.shape[0], -1)
        if op == "quantize":
            q_bits = int(attrs.get("bits", 8))
            q_site = self._new_quant_site(node.name)
            return lambda x, gemms: self._quantize_site(q_site, x, q_bits)
        if op == "normalize":
            mean = np.asarray(attrs.get("mean", 0.0))
            std = np.asarray(attrs.get("std", 1.0))
            return lambda x, gemms: (x - mean) / std
        if op == "threshold":
            value = float(attrs.get("value", 0.5))
            return lambda x, gemms: (x >= value).astype(np.float64)
        if op == "argmax":
            return lambda x, gemms: x.argmax(axis=-1, keepdims=True).astype(np.float64)
        if op == "add":
            const = np.asarray(attrs.get("constant", 0.0))
            return lambda x, gemms: x + const
        if op == "mul":
            const = np.asarray(attrs.get("constant", 1.0))
            return lambda x, gemms: x * const
        if op == "reshape":
            shape = tuple(int(v) for v in attrs["shape"])
            return lambda x, gemms: x.reshape((x.shape[0],) + shape)
        raise NotImplementedError(f"compiled executor has no kernel for op {op!r}")

    # -- execution ---------------------------------------------------------
    def _run_steps(self, x: np.ndarray, gemms: Optional[List[GemmRecord]]) -> np.ndarray:
        out = x
        for step in self._steps:
            out = step(out, gemms)
        return out

    def run(self, x: np.ndarray, record_gemms: bool = False):
        """Execute the plan on one batch.

        Large batches of per-sample-independent graphs execute in
        cache-sized chunks (``chunk_size`` samples) so every intermediate
        stays hot across the whole plan instead of streaming through memory
        once per step.

        With ``record_gemms`` the return value is ``(output, gemms)`` where
        ``gemms`` holds every dense/conv ``(A, B, C)`` matrix product of the
        run, for randomized verification
        (:func:`repro.verification.verify_compiled_run`).
        """
        x = np.asarray(x, dtype=np.float64)
        n = x.shape[0]
        if n == 0:
            out = np.empty((0,) + self.output_shape, dtype=np.float64)
            return (out, []) if record_gemms else out
        if record_gemms:
            gemms: List[GemmRecord] = []
            out = np.array(self._run_steps(x, gemms))
            return out, gemms
        if self.stacking_exact and n > self.chunk_size:
            out = np.empty((n,) + self.output_shape, dtype=np.float64)
            for start in range(0, n, self.chunk_size):
                stop = start + self.chunk_size
                out[start:stop] = self._run_steps(x[start:stop], None)
            return out
        # np.array detaches the result from the plan-owned buffers.
        return np.array(self._run_steps(x, None))

    __call__ = run

    def run_many(self, windows: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Execute the plan over many windows in one stacked sweep.

        All windows are concatenated along the batch axis, executed once,
        and split back — per-window results are identical to per-window
        :meth:`run` calls because every kernel is per-sample independent.
        The returned arrays are views into one shared result tensor.
        Graphs with *uncalibrated* data-dependent quantization
        (``activation_bits`` / ``quantize`` nodes) fall back to a per-window
        loop so each window keeps its own quantization statistics; after
        :meth:`calibrate_activations` the quantizers use static recorded
        ranges and such graphs stack exactly like fp32 ones.
        """
        arrays = [np.asarray(w, dtype=np.float64) for w in windows]
        if not arrays:
            return []
        if not self.stacking_exact:
            return [self.run(w) for w in arrays]
        parts = [w for w in arrays if w.shape[0] > 0]
        if not parts:
            return [np.empty((0,) + self.output_shape, dtype=np.float64) for _ in arrays]
        stacked = self.run(np.concatenate(parts, axis=0))
        return split_stacked(stacked, [w.shape[0] for w in arrays])


class FleetExecutor:
    """Run heterogeneous compiled model variants across a fleet in one sweep.

    The paper deploys a *different* artifact per device class (fp32 on
    phones, int8 on MCUs, pruned on DSPs...).  Serving such a fleet
    per-device wastes the batching the compiled plans offer; the fleet
    executor groups devices by their assigned variant and executes each
    variant's plan once over the group's stacked windows.
    """

    def __init__(self, plans: Mapping[str, CompiledExecutor]) -> None:
        self.plans: Dict[str, CompiledExecutor] = dict(plans)

    @classmethod
    def from_graphs(
        cls,
        graphs: Mapping[str, GraphIR],
        apply_quantization: bool = True,
        calibration_data: Optional[np.ndarray] = None,
    ) -> "FleetExecutor":
        """Compile one plan per named graph (e.g. per-target artifacts).

        ``calibration_data`` (one shared batch) calibrates every variant's
        activation quantizers so quantized variants stay stackable."""
        return cls(
            {
                name: CompiledExecutor(
                    g, apply_quantization=apply_quantization, calibration_data=calibration_data
                )
                for name, g in graphs.items()
            }
        )

    @classmethod
    def from_models(cls, models: Mapping[str, object], pipeline=None) -> "FleetExecutor":
        """Compile ``repro.nn`` models (e.g. optimize/ variants) into plans.

        Each model is exported to the IR and lowered with the standard
        inference pipeline (or a caller-supplied one) before compilation.
        """
        from .graph import from_sequential
        from .passes import PassPipeline

        pipeline = pipeline or PassPipeline.standard_inference()
        return cls({name: CompiledExecutor(pipeline.run(from_sequential(m))) for name, m in models.items()})

    def run_fleet(
        self,
        assignments: Mapping[str, str],
        inputs: Mapping[str, np.ndarray],
    ) -> Dict[str, np.ndarray]:
        """One sweep over the fleet: ``{device_id: output}`` for every device
        that has both an assignment (``{device_id: variant_name}``) and an
        input window."""
        groups: Dict[str, List[str]] = {}
        for device_id, variant in assignments.items():
            if device_id in inputs:
                groups.setdefault(variant, []).append(device_id)
        unknown = sorted(set(groups) - set(self.plans))
        if unknown:
            raise KeyError(f"no compiled plan for variant(s) {unknown}")
        outputs: Dict[str, np.ndarray] = {}
        for variant, device_ids in groups.items():
            results = self.plans[variant].run_many([inputs[d] for d in device_ids])
            outputs.update(zip(device_ids, results))
        return outputs
