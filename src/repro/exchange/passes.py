"""Compiler passes over the graph IR.

The passes mirror what TVM / TFLite converters do when lowering a trained
model for a specific edge target (paper Section IV):

* :func:`fold_batchnorm` — fold inference-time BatchNorm into the preceding
  conv/dense weights (removes ops unsupported on tiny runtimes).
* :func:`fuse_activations` — mark element-wise activations as fused into the
  preceding compute node (fewer kernel launches / memory round-trips).
* :func:`annotate_quantization` — attach bit-width / scheme attributes that
  the executor and cost model honour.
* :func:`eliminate_dropout` — remove training-only ops.
* :func:`insert_preprocessing` — prepend normalization nodes so the deployed
  artifact is self-contained (paper Section III-A: pipelines include pre/post
  processing).
* :func:`PassPipeline` — compose passes and record what was applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .graph import GraphIR, GraphNode
from .ops import get_op_spec

__all__ = [
    "fold_batchnorm",
    "fuse_activations",
    "annotate_quantization",
    "eliminate_dropout",
    "insert_preprocessing",
    "insert_postprocessing",
    "PassPipeline",
]

GraphPass = Callable[[GraphIR], GraphIR]


def eliminate_dropout(graph: GraphIR) -> GraphIR:
    """Remove dropout nodes (identity at inference time)."""
    nodes = [n.clone() for n in graph.nodes if n.op_type != "dropout"]
    out = GraphIR(nodes, graph.input_shape, name=graph.name, metadata=dict(graph.metadata))
    out.metadata.setdefault("passes", []).append("eliminate_dropout")
    return out


def fold_batchnorm(graph: GraphIR) -> GraphIR:
    """Fold BatchNorm into the immediately preceding conv/dense node.

    For a preceding node computing ``z = x*W + b``, BatchNorm computes
    ``gamma * (z - mu) / sqrt(var + eps) + beta``; folding rescales ``W`` by
    ``gamma / sqrt(var + eps)`` per output channel and adjusts the bias.
    BatchNorm nodes that do not follow a foldable op are kept.
    """
    nodes: List[GraphNode] = []
    for node in graph.nodes:
        if node.op_type == "batchnorm" and nodes and nodes[-1].op_type in ("conv2d", "dense", "depthwise_conv2d"):
            prev = nodes[-1]
            eps = float(node.attrs.get("eps", 1e-5))
            gamma = node.params["gamma"]
            beta = node.params["beta"]
            mean = node.params["running_mean"]
            var = node.params["running_var"]
            scale = gamma / np.sqrt(var + eps)
            w = prev.params["W"]
            # The output-channel axis is the last axis for conv2d/dense and
            # also for depthwise kernels of shape (k, k, c).
            prev.params["W"] = w * scale.reshape((1,) * (w.ndim - 1) + (-1,))
            bias = prev.params.get("b")
            if bias is None:
                bias = np.zeros_like(beta)
                prev.attrs["use_bias"] = True
            prev.params["b"] = (bias - mean) * scale + beta
            prev.attrs["bn_folded"] = True
            continue
        nodes.append(node.clone())
    out = GraphIR(nodes, graph.input_shape, name=graph.name, metadata=dict(graph.metadata))
    out.metadata.setdefault("passes", []).append("fold_batchnorm")
    return out


def fuse_activations(graph: GraphIR) -> GraphIR:
    """Mark element-wise activations as fused into the preceding compute op.

    The activation node is removed and recorded in the compute node's
    ``fused_activation`` attribute.  The executor is unaffected numerically
    because :class:`~repro.exchange.executor.GraphExecutor` is only used on
    graphs where fused activations are re-expanded; for cost purposes fusion
    removes one activation's worth of memory traffic.
    """
    fusible = {"relu", "relu6", "leaky_relu", "sigmoid", "tanh", "hard_sigmoid", "linear"}
    compute_ops = {"conv2d", "dense", "depthwise_conv2d"}
    nodes: List[GraphNode] = []
    for node in graph.nodes:
        if (
            node.op_type in fusible
            and nodes
            and nodes[-1].op_type in compute_ops
            and "fused_activation" not in nodes[-1].attrs
        ):
            nodes[-1].attrs["fused_activation"] = node.op_type
            continue
        nodes.append(node.clone())
    out = GraphIR(nodes, graph.input_shape, name=graph.name, metadata=dict(graph.metadata))
    out.metadata.setdefault("passes", []).append("fuse_activations")
    return out


def expand_fused_activations(graph: GraphIR) -> GraphIR:
    """Inverse of :func:`fuse_activations` (used before reference execution)."""
    nodes: List[GraphNode] = []
    for node in graph.nodes:
        clone = node.clone()
        fused = clone.attrs.pop("fused_activation", None)
        nodes.append(clone)
        if fused:
            nodes.append(GraphNode(f"{clone.name}_fused_act", str(fused)))
    out = GraphIR(nodes, graph.input_shape, name=graph.name, metadata=dict(graph.metadata))
    out.metadata.setdefault("passes", []).append("expand_fused_activations")
    return out


def annotate_quantization(
    graph: GraphIR,
    bits: int = 8,
    scheme: str = "symmetric",
    per_channel: bool = False,
    activation_bits: Optional[int] = None,
    skip_ops: Sequence[str] = ("batchnorm",),
) -> GraphIR:
    """Attach quantization attributes to every parameterized node.

    This is "lowering" in the sense of the paper: the registry stores one
    base model and the optimization pipeline stamps out per-target variants
    with different bit widths (Section III-A).
    """
    if bits not in (1, 2, 4, 8, 16, 32):
        raise ValueError(f"unsupported bit width {bits}")
    out = graph.clone()
    for node in out.nodes:
        if node.op_type in skip_ops:
            continue
        if get_op_spec(node.op_type).has_params:
            node.attrs["bits"] = int(bits)
            node.attrs["quant_scheme"] = scheme
            node.attrs["per_channel"] = bool(per_channel)
            if activation_bits is not None:
                node.attrs["activation_bits"] = int(activation_bits)
    out.metadata.setdefault("passes", []).append(f"annotate_quantization[{bits}b]")
    out.metadata["bits"] = int(bits)
    return out


def insert_preprocessing(graph: GraphIR, mean: float | np.ndarray = 0.0, std: float | np.ndarray = 1.0) -> GraphIR:
    """Prepend a normalization node so deployment artifacts are self-contained."""
    pre = GraphNode("preprocess_normalize", "normalize", {"mean": mean, "std": std})
    out = GraphIR([pre] + [n.clone() for n in graph.nodes], graph.input_shape, name=graph.name, metadata=dict(graph.metadata))
    out.metadata.setdefault("passes", []).append("insert_preprocessing")
    return out


def insert_postprocessing(graph: GraphIR, kind: str = "softmax") -> GraphIR:
    """Append a post-processing node (softmax or argmax)."""
    if kind not in ("softmax", "argmax"):
        raise ValueError("postprocessing kind must be 'softmax' or 'argmax'")
    post = GraphNode(f"postprocess_{kind}", kind)
    out = GraphIR([n.clone() for n in graph.nodes] + [post], graph.input_shape, name=graph.name, metadata=dict(graph.metadata))
    out.metadata.setdefault("passes", []).append("insert_postprocessing")
    return out


@dataclass
class PassPipeline:
    """Ordered list of passes applied to a graph, with a record of changes."""

    passes: List[GraphPass] = field(default_factory=list)
    name: str = "pipeline"

    def add(self, p: GraphPass) -> "PassPipeline":
        """Append a pass; returns self for chaining."""
        self.passes.append(p)
        return self

    def run(self, graph: GraphIR) -> GraphIR:
        """Apply every pass in order."""
        out = graph
        for p in self.passes:
            out = p(out)
        return out

    @classmethod
    def standard_inference(cls) -> "PassPipeline":
        """The default inference-lowering pipeline: drop dropout, fold BN, fuse."""
        return cls([eliminate_dropout, fold_batchnorm, fuse_activations], name="standard_inference")
