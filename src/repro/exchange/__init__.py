"""Graph IR, compiler passes, device compatibility and target-aware lowering."""

from .analysis import graph_cost, memory_plan, per_node_cost, split_point_costs
from .compat import CompatibilityChecker, CompatibilityIssue, CompatibilityReport
from .compiled import CompiledExecutor, FleetExecutor
from .compiler import CompilationError, CompiledArtifact, Compiler
from .executor import GraphExecutor, execute_graph, quantize_node_params
from .graph import GraphIR, GraphNode, from_sequential
from .ops import OP_REGISTRY, OpSpec, get_op_spec, infer_shape, op_flops
from .passes import (
    PassPipeline,
    annotate_quantization,
    eliminate_dropout,
    expand_fused_activations,
    fold_batchnorm,
    fuse_activations,
    insert_postprocessing,
    insert_preprocessing,
)

__all__ = [
    "GraphIR",
    "GraphNode",
    "from_sequential",
    "GraphExecutor",
    "execute_graph",
    "quantize_node_params",
    "CompiledExecutor",
    "FleetExecutor",
    "OpSpec",
    "OP_REGISTRY",
    "get_op_spec",
    "infer_shape",
    "op_flops",
    "PassPipeline",
    "fold_batchnorm",
    "fuse_activations",
    "expand_fused_activations",
    "annotate_quantization",
    "eliminate_dropout",
    "insert_preprocessing",
    "insert_postprocessing",
    "CompatibilityChecker",
    "CompatibilityIssue",
    "CompatibilityReport",
    "Compiler",
    "CompiledArtifact",
    "CompilationError",
    "graph_cost",
    "memory_plan",
    "per_node_cost",
    "split_point_costs",
]
