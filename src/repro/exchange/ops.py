"""Operator registry for the exchange graph IR.

The paper (Section IV) points to ONNX / NNEF / TVM as attempts at a common
interchange layer between training frameworks and fragmented edge runtimes.
This module defines the operator vocabulary of our IR together with
per-operator metadata used by the compiler:

* shape inference,
* FLOP and byte-movement estimates,
* whether the op carries parameters,
* whether it is fusible into a preceding compute op.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = ["OpSpec", "OP_REGISTRY", "get_op_spec", "infer_shape", "op_flops"]

Shape = Tuple[int, ...]


@dataclass(frozen=True)
class OpSpec:
    """Metadata for one operator type.

    Attributes
    ----------
    name:
        Canonical operator name (lowercase).
    has_params:
        Whether nodes of this type carry weight tensors.
    elementwise:
        True for ops that preserve shape and operate element-wise; such ops
        are candidates for fusion into the preceding compute op.
    infer_shape:
        Function ``(input_shape, attrs) -> output_shape`` on per-example shapes.
    flops:
        Function ``(input_shape, output_shape, attrs, param_count) -> flops``.
    """

    name: str
    has_params: bool = False
    elementwise: bool = False
    infer_shape: Callable[[Shape, Dict], Shape] = lambda s, a: s
    flops: Callable[[Shape, Shape, Dict, int], float] = lambda i, o, a, p: float(np.prod(o))


def _dense_shape(s: Shape, attrs: Dict) -> Shape:
    return (int(attrs["units"]),)


def _dense_flops(i: Shape, o: Shape, attrs: Dict, params: int) -> float:
    return 2.0 * float(i[0]) * float(o[0])


def _conv_out_hw(s: Shape, attrs: Dict) -> Tuple[int, int]:
    h, w = s[0], s[1]
    k = int(attrs.get("kernel_size", 3))
    stride = int(attrs.get("stride", 1))
    pad = (k - 1) // 2 if attrs.get("padding", "same") == "same" else 0
    out_h = (h + 2 * pad - k) // stride + 1
    out_w = (w + 2 * pad - k) // stride + 1
    return out_h, out_w


def _conv2d_shape(s: Shape, attrs: Dict) -> Shape:
    out_h, out_w = _conv_out_hw(s, attrs)
    return (out_h, out_w, int(attrs["filters"]))


def _conv2d_flops(i: Shape, o: Shape, attrs: Dict, params: int) -> float:
    k = int(attrs.get("kernel_size", 3))
    return 2.0 * float(np.prod(o)) * k * k * float(i[-1])


def _depthwise_shape(s: Shape, attrs: Dict) -> Shape:
    out_h, out_w = _conv_out_hw(s, attrs)
    return (out_h, out_w, int(s[-1]))


def _depthwise_flops(i: Shape, o: Shape, attrs: Dict, params: int) -> float:
    k = int(attrs.get("kernel_size", 3))
    return 2.0 * float(np.prod(o)) * k * k


def _pool_shape(s: Shape, attrs: Dict) -> Shape:
    p = int(attrs.get("pool_size", 2))
    return (s[0] // p, s[1] // p, s[2])


def _gap_shape(s: Shape, attrs: Dict) -> Shape:
    return (s[-1],)


def _flatten_shape(s: Shape, attrs: Dict) -> Shape:
    return (int(np.prod(s)),)


OP_REGISTRY: Dict[str, OpSpec] = {
    "input": OpSpec("input", infer_shape=lambda s, a: s, flops=lambda i, o, a, p: 0.0),
    "dense": OpSpec("dense", has_params=True, infer_shape=_dense_shape, flops=_dense_flops),
    "conv2d": OpSpec("conv2d", has_params=True, infer_shape=_conv2d_shape, flops=_conv2d_flops),
    "depthwise_conv2d": OpSpec(
        "depthwise_conv2d", has_params=True, infer_shape=_depthwise_shape, flops=_depthwise_flops
    ),
    "batchnorm": OpSpec("batchnorm", has_params=True, elementwise=True, flops=lambda i, o, a, p: 2.0 * float(np.prod(o))),
    "relu": OpSpec("relu", elementwise=True),
    "relu6": OpSpec("relu6", elementwise=True),
    "leaky_relu": OpSpec("leaky_relu", elementwise=True),
    "sigmoid": OpSpec("sigmoid", elementwise=True),
    "tanh": OpSpec("tanh", elementwise=True),
    "hard_sigmoid": OpSpec("hard_sigmoid", elementwise=True),
    "softmax": OpSpec("softmax", elementwise=True),
    "linear": OpSpec("linear", elementwise=True),
    "dropout": OpSpec("dropout", elementwise=True, flops=lambda i, o, a, p: 0.0),
    "maxpool2d": OpSpec("maxpool2d", infer_shape=_pool_shape),
    "avgpool2d": OpSpec("avgpool2d", infer_shape=_pool_shape),
    "global_avgpool2d": OpSpec("global_avgpool2d", infer_shape=_gap_shape),
    "flatten": OpSpec("flatten", infer_shape=_flatten_shape, flops=lambda i, o, a, p: 0.0),
    "quantize": OpSpec("quantize", elementwise=True),
    "dequantize": OpSpec("dequantize", elementwise=True),
    "normalize": OpSpec("normalize", elementwise=True),
    "threshold": OpSpec("threshold", elementwise=True),
    "argmax": OpSpec("argmax", infer_shape=lambda s, a: (1,), flops=lambda i, o, a, p: float(np.prod(i))),
    "add": OpSpec("add", elementwise=True),
    "mul": OpSpec("mul", elementwise=True),
    "reshape": OpSpec(
        "reshape",
        infer_shape=lambda s, a: tuple(int(v) for v in a["shape"]),
        flops=lambda i, o, a, p: 0.0,
    ),
}


def get_op_spec(op_type: str) -> OpSpec:
    """Spec for an operator type, raising ``KeyError`` when unknown."""
    key = str(op_type).lower()
    if key not in OP_REGISTRY:
        raise KeyError(f"unknown op type {op_type!r}; known: {sorted(OP_REGISTRY)}")
    return OP_REGISTRY[key]


def infer_shape(op_type: str, input_shape: Shape, attrs: Optional[Dict] = None) -> Shape:
    """Per-example output shape of ``op_type`` applied to ``input_shape``."""
    return tuple(get_op_spec(op_type).infer_shape(tuple(input_shape), attrs or {}))


def op_flops(op_type: str, input_shape: Shape, output_shape: Shape, attrs: Optional[Dict] = None, params: int = 0) -> float:
    """FLOP estimate for one application of the operator."""
    return float(get_op_spec(op_type).flops(tuple(input_shape), tuple(output_shape), attrs or {}, params))
