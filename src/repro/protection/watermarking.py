"""Model watermarking: static (weight-space) and dynamic (trigger-set).

Paper Section V distinguishes static watermarks ("embed the watermark into
the weights of the model … we need white-box access to retrieve it") from
dynamic watermarks ("train the model to behave in a specific way for a
carefully designed set of trigger inputs … only black-box access is
required"), and evaluates them on fidelity / robustness / capacity.

* :class:`StaticWatermarker` embeds a binary message by nudging the signs of
  the projections of the flattened weights onto secret random directions
  (a spread-spectrum scheme in the spirit of Uchida et al.).
* :class:`TriggerSetWatermarker` fine-tunes the model to emit chosen labels
  on a secret set of out-of-distribution trigger inputs.
* :func:`evaluate_robustness` measures watermark survival under pruning,
  quantization and fine-tuning — the robustness axis of the paper's
  fidelity/robustness/capacity trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "WatermarkKey",
    "StaticWatermarker",
    "TriggerSetWatermarker",
    "evaluate_robustness",
]


@dataclass
class WatermarkKey:
    """Secret material needed to extract/verify a watermark."""

    owner: str
    kind: str
    seed: int
    message: np.ndarray  # binary message bits
    payload: Dict[str, np.ndarray] = field(default_factory=dict)


class StaticWatermarker:
    """Spread-spectrum weight-space watermark (white-box verification).

    The message bit ``b_i`` is encoded in the sign of ``<w, d_i>`` where
    ``d_i`` is a secret random unit direction.  Embedding projects the
    weights the minimal distance needed to give each projection the desired
    sign with margin ``strength``; extraction simply reads the signs back.
    """

    def __init__(self, message_bits: int = 32, strength: float = 0.05, seed: int = 0) -> None:
        if message_bits <= 0:
            raise ValueError("message_bits must be positive")
        self.message_bits = int(message_bits)
        self.strength = float(strength)
        self.seed = int(seed)

    def _directions(self, dim: int) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        d = rng.normal(size=(self.message_bits, dim))
        d /= np.linalg.norm(d, axis=1, keepdims=True)
        return d

    def embed(self, model, owner: str, message: Optional[np.ndarray] = None) -> Tuple[object, WatermarkKey]:
        """Embed a message into a copy of ``model``; returns (model, key)."""
        rng = np.random.default_rng(self.seed + 1)
        if message is None:
            message = rng.integers(0, 2, size=self.message_bits)
        message = np.asarray(message).astype(int) % 2
        if message.shape[0] != self.message_bits:
            raise ValueError("message length must equal message_bits")
        marked = model.clone(copy_weights=True, name=f"{model.name}-wm")
        w = marked.get_flat_weights()
        directions = self._directions(w.size)
        target_signs = np.where(message == 1, 1.0, -1.0)
        projections = directions @ w
        # Shift w along each direction so the projection reaches the target
        # sign with margin `strength` (directions are near-orthogonal at high
        # dimension, so sequential correction converges in one pass).
        for i in range(self.message_bits):
            needed = target_signs[i] * self.strength - projections[i]
            if target_signs[i] * projections[i] < self.strength:
                w = w + needed * directions[i]
                projections = directions @ w
        marked.set_flat_weights(w)
        key = WatermarkKey(owner=owner, kind="static", seed=self.seed, message=message)
        return marked, key

    def extract(self, model, key: WatermarkKey) -> np.ndarray:
        """Read the message bits out of a (possibly modified) model."""
        w = model.get_flat_weights()
        directions = self._directions(w.size)
        return (directions @ w > 0).astype(int)

    def verify(self, model, key: WatermarkKey) -> Dict[str, float]:
        """Bit-error rate and match decision for the embedded message."""
        extracted = self.extract(model, key)
        ber = float(np.mean(extracted != key.message))
        return {"bit_error_rate": ber, "matched": float(ber < 0.25), "bits": float(self.message_bits)}


class TriggerSetWatermarker:
    """Backdoor-style trigger-set watermark (black-box verification).

    Generates a small set of random out-of-distribution inputs, assigns them
    cyclic labels, and fine-tunes the model on a mix of clean data and the
    trigger set.  Ownership is claimed when the model's accuracy on the
    trigger set greatly exceeds chance.
    """

    def __init__(self, n_triggers: int = 20, epochs: int = 5, lr: float = 0.01, seed: int = 0) -> None:
        self.n_triggers = int(n_triggers)
        self.epochs = int(epochs)
        self.lr = float(lr)
        self.seed = int(seed)

    def _make_triggers(self, input_shape: Tuple[int, ...], num_classes: int) -> Tuple[np.ndarray, np.ndarray]:
        rng = np.random.default_rng(self.seed)
        x = rng.uniform(-3.0, 3.0, size=(self.n_triggers,) + tuple(input_shape))
        y = np.arange(self.n_triggers) % num_classes
        return x, y

    def embed(self, model, x_clean: np.ndarray, y_clean: np.ndarray, num_classes: int, owner: str) -> Tuple[object, WatermarkKey]:
        """Fine-tune a copy of the model to memorize the trigger set."""
        triggers_x, triggers_y = self._make_triggers(model.input_shape, num_classes)
        marked = model.clone(copy_weights=True, name=f"{model.name}-trigger-wm")
        # Oversample triggers so the small set is actually memorized.
        reps = max(1, int(np.ceil(0.2 * x_clean.shape[0] / max(self.n_triggers, 1))))
        x_mix = np.concatenate([x_clean] + [triggers_x] * reps, axis=0)
        y_mix = np.concatenate([y_clean] + [triggers_y] * reps, axis=0)
        marked.fit(x_mix, y_mix, epochs=self.epochs, lr=self.lr, batch_size=32, seed=self.seed)
        key = WatermarkKey(
            owner=owner,
            kind="trigger_set",
            seed=self.seed,
            message=triggers_y,
            payload={"triggers_x": triggers_x},
        )
        return marked, key

    def verify(self, model, key: WatermarkKey, chance_margin: float = 3.0) -> Dict[str, float]:
        """Trigger-set accuracy and the ownership decision.

        Ownership is asserted when trigger accuracy exceeds ``chance_margin``
        times the chance level (1 / num_classes inferred from the labels).
        """
        triggers_x = key.payload["triggers_x"]
        preds = model.predict_classes(triggers_x)
        acc = float(np.mean(preds == key.message))
        num_classes = int(key.message.max()) + 1
        chance = 1.0 / max(num_classes, 1)
        return {"trigger_accuracy": acc, "chance": chance, "matched": float(acc >= min(0.9, chance_margin * chance))}


def evaluate_robustness(
    watermarker,
    marked_model,
    key: WatermarkKey,
    x_finetune: Optional[np.ndarray] = None,
    y_finetune: Optional[np.ndarray] = None,
    prune_sparsities: Sequence[float] = (0.3, 0.5, 0.7),
    quant_bits: Sequence[int] = (8, 4),
    finetune_epochs: int = 2,
) -> List[Dict[str, float]]:
    """Watermark survival under common removal attacks.

    Returns one record per attack with the verification metrics of the
    attacked model, plus its accuracy drop when fine-tune data is provided.
    """
    from repro.optimize.pruning import magnitude_prune
    from repro.optimize.quantization import QuantizationConfig, quantize_model

    results: List[Dict[str, float]] = []

    def check(attacked, attack: str, param: float) -> None:
        metrics = watermarker.verify(attacked, key)
        record = {"attack": attack, "param": param, **metrics}
        if x_finetune is not None and y_finetune is not None:
            record["accuracy_after_attack"] = attacked.evaluate(x_finetune, y_finetune)["accuracy"]
        results.append(record)

    check(marked_model, "none", 0.0)
    for sp in prune_sparsities:
        check(magnitude_prune(marked_model, sp), "prune", float(sp))
    for bits in quant_bits:
        check(quantize_model(marked_model, QuantizationConfig(bits=bits)), "quantize", float(bits))
    if x_finetune is not None and y_finetune is not None and finetune_epochs > 0:
        tuned = marked_model.clone(copy_weights=True, name=f"{marked_model.name}-ft")
        tuned.fit(x_finetune, y_finetune, epochs=finetune_epochs, lr=0.005, batch_size=32)
        check(tuned, "finetune", float(finetune_epochs))
    return results
