"""Model encryption at rest and key management.

Paper Section V: "encryption techniques can protect the model while it is
downloaded or stored on the device.  The model is then decrypted as it is
loaded in memory, right before being used" (as OpenVINO and CoreML do).

The implementation uses a keyed keystream cipher (SHA-256 in counter mode —
standard library only, no external crypto dependency) with an
encrypt-then-MAC construction, so both confidentiality of the stored blob
and integrity of what gets loaded are covered.  The
:class:`ModelKeyManager` derives per-device keys from a master secret so a
leaked device key does not expose other devices' artifacts.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = ["EncryptedBlob", "encrypt_blob", "decrypt_blob", "ModelKeyManager", "IntegrityError"]


class IntegrityError(RuntimeError):
    """Raised when decrypting a blob whose MAC does not verify."""


@dataclass(frozen=True)
class EncryptedBlob:
    """An encrypted model artifact: nonce + ciphertext + MAC tag."""

    nonce: bytes
    ciphertext: bytes
    tag: bytes

    @property
    def size_bytes(self) -> int:
        return len(self.nonce) + len(self.ciphertext) + len(self.tag)


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    """SHA-256 counter-mode keystream of the requested length."""
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < length:
        blocks.append(hashlib.sha256(key + nonce + counter.to_bytes(8, "little")).digest())
        counter += 1
    return b"".join(blocks)[:length]


def encrypt_blob(plaintext: bytes, key: bytes, nonce: Optional[bytes] = None) -> EncryptedBlob:
    """Encrypt-then-MAC a model blob with the given key."""
    if not isinstance(plaintext, (bytes, bytearray)):
        raise TypeError("plaintext must be bytes")
    if nonce is None:
        nonce = os.urandom(16)
    stream = _keystream(key, nonce, len(plaintext))
    ciphertext = bytes(a ^ b for a, b in zip(plaintext, stream))
    tag = hmac.new(key, nonce + ciphertext, hashlib.sha256).digest()
    return EncryptedBlob(nonce=nonce, ciphertext=ciphertext, tag=tag)


def decrypt_blob(blob: EncryptedBlob, key: bytes) -> bytes:
    """Verify the MAC then decrypt; raises :class:`IntegrityError` on tamper."""
    expected = hmac.new(key, blob.nonce + blob.ciphertext, hashlib.sha256).digest()
    if not hmac.compare_digest(expected, blob.tag):
        raise IntegrityError("MAC verification failed: blob was modified or the key is wrong")
    stream = _keystream(key, blob.nonce, len(blob.ciphertext))
    return bytes(a ^ b for a, b in zip(blob.ciphertext, stream))


class ModelKeyManager:
    """Derives and tracks per-device model-encryption keys.

    Key hierarchy: ``master -> (model, device) key``.  Devices only ever hold
    their own derived key; revoking a device simply means refusing to wrap
    new artifacts for it.
    """

    def __init__(self, master_secret: bytes = b"tinymlops-model-protection") -> None:
        self._master = bytes(master_secret)
        self._revoked: set[str] = set()
        self.issued: Dict[Tuple[str, str], bytes] = {}

    def device_key(self, model_name: str, device_id: str) -> bytes:
        """Derive (and record) the key protecting ``model_name`` on ``device_id``."""
        if device_id in self._revoked:
            raise PermissionError(f"device {device_id!r} is revoked")
        key = hmac.new(self._master, f"{model_name}|{device_id}".encode(), hashlib.sha256).digest()
        self.issued[(model_name, device_id)] = key
        return key

    def revoke_device(self, device_id: str) -> None:
        """Stop issuing keys to a device (e.g. after detected tampering)."""
        self._revoked.add(device_id)

    def is_revoked(self, device_id: str) -> bool:
        return device_id in self._revoked

    def wrap_model(self, model_bytes: bytes, model_name: str, device_id: str, nonce: Optional[bytes] = None) -> EncryptedBlob:
        """Encrypt a model artifact for a specific device."""
        return encrypt_blob(model_bytes, self.device_key(model_name, device_id), nonce=nonce)

    def unwrap_model(self, blob: EncryptedBlob, model_name: str, device_id: str) -> bytes:
        """Decrypt a model artifact on the device (integrity-checked)."""
        return decrypt_blob(blob, self.device_key(model_name, device_id))


def decryption_overhead_factor(model_bytes: int, device_peak_flops: float, bytes_per_second_crypto: float = 5e7) -> float:
    """Rough latency overhead of decrypt-before-use relative to inference.

    The paper notes that encrypted models cost extra compute at load time;
    this helper converts blob size and an assumed software-crypto throughput
    into seconds, which experiments compare against inference latency.
    """
    return model_bytes / bytes_per_second_crypto
