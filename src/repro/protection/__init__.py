"""IP protection: watermarking, encryption at rest, extraction attacks and defences."""

from .defenses import (
    ExtractionDetector,
    ProtectedModel,
    get_poisoning,
    noisy_probabilities,
    reverse_sigmoid_poisoning,
    round_probabilities,
    top1_only,
)
from .encryption import (
    EncryptedBlob,
    IntegrityError,
    ModelKeyManager,
    decrypt_blob,
    decryption_overhead_factor,
    encrypt_blob,
)
from .extraction import ExtractionResult, QueryBasedExtractor, direct_theft
from .watermarking import (
    StaticWatermarker,
    TriggerSetWatermarker,
    WatermarkKey,
    evaluate_robustness,
)

__all__ = [
    "StaticWatermarker",
    "TriggerSetWatermarker",
    "WatermarkKey",
    "evaluate_robustness",
    "EncryptedBlob",
    "encrypt_blob",
    "decrypt_blob",
    "decryption_overhead_factor",
    "ModelKeyManager",
    "IntegrityError",
    "ExtractionResult",
    "QueryBasedExtractor",
    "direct_theft",
    "ExtractionDetector",
    "ProtectedModel",
    "get_poisoning",
    "round_probabilities",
    "top1_only",
    "noisy_probabilities",
    "reverse_sigmoid_poisoning",
]
