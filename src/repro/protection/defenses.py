"""Defences against indirect model stealing: detection and prediction poisoning.

Paper Section V: "There are two common families of solutions to protect
against this: detecting stealing queries patterns and prediction poisoning."

* :class:`ExtractionDetector` — PRADA-style monitor of the distribution of
  distances between successive queries: benign traffic follows the data
  manifold (distance distribution close to the reference), synthetic attack
  queries do not.  Also tracks an information-gain-style score (entropy of
  the returned predictions).
* Prediction poisoning — :func:`round_probabilities` (the "can be as simple
  as rounding the confidence values" defence), :func:`top1_only`,
  :func:`noisy_probabilities` and :func:`reverse_sigmoid_poisoning`
  (accuracy-preserving but gradient-misleading perturbation).
* :class:`ProtectedModel` — wraps a deployed model with a poisoning policy
  and the detector, exposing the same ``predict`` interface pipelines use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.nn.activations import softmax

__all__ = [
    "round_probabilities",
    "top1_only",
    "noisy_probabilities",
    "reverse_sigmoid_poisoning",
    "get_poisoning",
    "ExtractionDetector",
    "ProtectedModel",
]


# ---------------------------------------------------------------------------
# prediction poisoning
# ---------------------------------------------------------------------------

def round_probabilities(probs: np.ndarray, decimals: int = 1) -> np.ndarray:
    """Round confidences to ``decimals`` places (Tramèr et al. style)."""
    rounded = np.round(probs, decimals)
    norm = rounded.sum(axis=-1, keepdims=True)
    norm[norm == 0] = 1.0
    return rounded / norm


def top1_only(probs: np.ndarray) -> np.ndarray:
    """Return a one-hot vector of the argmax — the least informative API."""
    out = np.zeros_like(probs)
    out[np.arange(probs.shape[0]), probs.argmax(axis=-1)] = 1.0
    return out


def noisy_probabilities(probs: np.ndarray, scale: float = 0.1, seed: int = 0) -> np.ndarray:
    """Add argmax-preserving Dirichlet-style noise to the probability vector."""
    rng = np.random.default_rng(seed)
    noise = rng.dirichlet(np.ones(probs.shape[-1]), size=probs.shape[0])
    mixed = (1.0 - scale) * probs + scale * noise
    # Restore the original argmax so accuracy is unchanged.
    orig = probs.argmax(axis=-1)
    cur = mixed.argmax(axis=-1)
    swap = cur != orig
    rows = np.flatnonzero(swap)
    if rows.size:
        mixed[rows, orig[rows]], mixed[rows, cur[rows]] = mixed[rows, cur[rows]], mixed[rows, orig[rows]]
    return mixed / mixed.sum(axis=-1, keepdims=True)


def reverse_sigmoid_poisoning(probs: np.ndarray, beta: float = 0.7, gamma: float = 0.2) -> np.ndarray:
    """Reverse-sigmoid perturbation (Lee et al. / prediction-poisoning flavour).

    Adds a non-monotone perturbation to every probability that preserves the
    argmax but makes the soft outputs a poor distillation target.
    """
    p = np.clip(probs, 1e-7, 1.0 - 1e-7)
    perturb = beta * (1.0 / (1.0 + np.exp(gamma * np.log(p / (1.0 - p)))) - 0.5)
    poisoned = p - perturb
    poisoned = np.clip(poisoned, 1e-7, None)
    # Restore argmax then renormalize.
    orig = probs.argmax(axis=-1)
    boost = np.zeros_like(poisoned)
    boost[np.arange(p.shape[0]), orig] = poisoned.max(axis=-1) * 1.05 - poisoned[np.arange(p.shape[0]), orig]
    poisoned = poisoned + np.maximum(boost, 0.0)
    return poisoned / poisoned.sum(axis=-1, keepdims=True)


_POISONS: Dict[str, Callable[..., np.ndarray]] = {
    "none": lambda p, **kw: p,
    "round": round_probabilities,
    "top1": lambda p, **kw: top1_only(p),
    "noise": noisy_probabilities,
    "reverse_sigmoid": reverse_sigmoid_poisoning,
}


def get_poisoning(name: str) -> Callable[..., np.ndarray]:
    """Look up a poisoning function by name."""
    key = str(name).lower()
    if key not in _POISONS:
        raise KeyError(f"unknown poisoning {name!r}; known: {sorted(_POISONS)}")
    return _POISONS[key]


# ---------------------------------------------------------------------------
# extraction detection
# ---------------------------------------------------------------------------

class ExtractionDetector:
    """PRADA-style detector of model-extraction query patterns.

    Benign queries are drawn from the data distribution, so the distances
    between successive queries concentrate around the typical inter-sample
    distance of the reference data.  Synthetic / perturbation-based attack
    queries produce a distance distribution that deviates; we flag a client
    when the Kolmogorov–Smirnov-like distance between its recent query
    distances and the reference distances exceeds ``threshold``.  A second
    signal is the average prediction entropy (attackers probing decision
    boundaries see higher-entropy outputs).
    """

    def __init__(self, reference_x: np.ndarray, window: int = 64, threshold: float = 0.35, seed: int = 0) -> None:
        reference_x = np.asarray(reference_x, dtype=np.float64)
        flat = reference_x.reshape(reference_x.shape[0], -1)
        rng = np.random.default_rng(seed)
        n = min(flat.shape[0], 512)
        idx = rng.choice(flat.shape[0], size=n, replace=False)
        sample = flat[idx]
        # Reference distribution of nearest-neighbour-ish distances.
        pair_idx = rng.integers(0, n, size=(min(2000, n * 4), 2))
        self.reference_distances = np.linalg.norm(sample[pair_idx[:, 0]] - sample[pair_idx[:, 1]], axis=1)
        self.window = int(window)
        self.threshold = float(threshold)
        self._per_client: Dict[str, List[np.ndarray]] = {}
        self.flags: Dict[str, bool] = {}
        self.scores: Dict[str, float] = {}

    def observe(self, client_id: str, queries: np.ndarray) -> None:
        """Record a batch of queries issued by a client."""
        flat = np.asarray(queries, dtype=np.float64).reshape(queries.shape[0], -1)
        buf = self._per_client.setdefault(client_id, [])
        buf.append(flat)
        total = sum(b.shape[0] for b in buf)
        while total > self.window and len(buf) > 1:
            total -= buf.pop(0).shape[0]

    def score(self, client_id: str) -> float:
        """Distribution-distance score for a client's recent queries."""
        buf = self._per_client.get(client_id)
        if not buf:
            return 0.0
        flat = np.concatenate(buf, axis=0)
        if flat.shape[0] < 4:
            return 0.0
        dists = np.linalg.norm(np.diff(flat, axis=0), axis=1)
        # Empirical-CDF max deviation between client distances and reference.
        grid = np.quantile(self.reference_distances, np.linspace(0.02, 0.98, 25))
        ref_cdf = np.searchsorted(np.sort(self.reference_distances), grid, side="right") / self.reference_distances.size
        cli_cdf = np.searchsorted(np.sort(dists), grid, side="right") / dists.size
        return float(np.max(np.abs(ref_cdf - cli_cdf)))

    def check(self, client_id: str) -> bool:
        """Evaluate and record whether a client looks like an extractor."""
        score = self.score(client_id)
        self.scores[client_id] = score
        flagged = score > self.threshold
        self.flags[client_id] = flagged
        return flagged

    def flagged_clients(self) -> List[str]:
        """Clients currently flagged as suspicious."""
        return sorted(c for c, f in self.flags.items() if f)


# ---------------------------------------------------------------------------
# protected deployment wrapper
# ---------------------------------------------------------------------------

class ProtectedModel:
    """A deployed model wrapped with poisoning + extraction detection.

    This is the object the runtime actually exposes to the application: it
    looks like a model (``predict_proba``) but applies the configured output
    perturbation and feeds the query stream to the detector.
    """

    def __init__(
        self,
        model,
        poisoning: str = "none",
        poisoning_kwargs: Optional[Dict[str, object]] = None,
        detector: Optional[ExtractionDetector] = None,
        deny_flagged: bool = False,
    ) -> None:
        self.model = model
        self.poisoning_name = poisoning
        self._poison = get_poisoning(poisoning)
        self._poison_kwargs = dict(poisoning_kwargs or {})
        self.detector = detector
        self.deny_flagged = bool(deny_flagged)
        self.query_count = 0

    def predict_proba(self, x: np.ndarray, client_id: str = "default") -> np.ndarray:
        """Poisoned probability outputs (and detector bookkeeping)."""
        x = np.asarray(x, dtype=np.float64)
        self.query_count += x.shape[0]
        if self.detector is not None:
            self.detector.observe(client_id, x)
            flagged = self.detector.check(client_id)
            if flagged and self.deny_flagged:
                # Degrade to uniform outputs for flagged clients.
                k = self.model.output_shape[-1]
                return np.full((x.shape[0], k), 1.0 / k)
        probs = softmax(self.model.forward(x, training=False), axis=-1)
        return self._poison(probs, **self._poison_kwargs)

    def predict_logits(self, x: np.ndarray, client_id: str = "default") -> np.ndarray:
        """Log of the poisoned probabilities (what a stealing attacker records)."""
        return np.log(np.clip(self.predict_proba(x, client_id=client_id), 1e-12, None))

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        """Task accuracy as seen by a legitimate user of the protected API."""
        probs = self.predict_proba(x, client_id="legitimate-eval")
        return float(np.mean(probs.argmax(axis=-1) == y))
