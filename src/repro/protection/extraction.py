"""Model-extraction (stealing) attack simulators.

Paper Section V, threat models:

* **Direct stealing** — the attacker obtains the weights themselves.  On the
  edge this is as easy as reading the (unencrypted) model file; the
  simulator quantifies what encryption at rest prevents.
* **Indirect stealing** — the attacker only queries the model and trains a
  surrogate on the recorded input/output pairs ("student-teacher learning …
  for a fraction of the cost of training the original model").  On the edge
  the attacker queries locally, so there is no rate limit and no server-side
  anomaly detection — the paper's argument for why the risk is higher.

The attack implementations are intentionally standard (no novel attack
capability): they exist so the defences in :mod:`repro.protection.defenses`
can be evaluated quantitatively (experiment E8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.nn.metrics import agreement
from repro.nn.model import Sequential
from repro.optimize.distillation import distill

__all__ = ["ExtractionResult", "QueryBasedExtractor", "direct_theft"]


@dataclass
class ExtractionResult:
    """Outcome of an extraction attack."""

    n_queries: int
    surrogate: Sequential
    agreement_with_victim: float
    surrogate_accuracy: float
    victim_accuracy: float
    queries: np.ndarray = field(repr=False, default=None)

    def fidelity_gap(self) -> float:
        """Accuracy gap between victim and stolen surrogate (smaller = worse theft)."""
        return self.victim_accuracy - self.surrogate_accuracy


def direct_theft(victim: Sequential, encrypted: bool) -> Optional[Sequential]:
    """Direct model stealing: copy the weights if they are stored in the clear.

    Returns an exact clone when the artifact is unencrypted (the default
    situation the paper warns about for edge deployment), or ``None`` when
    encryption at rest blocks the attack.
    """
    if encrypted:
        return None
    return victim.clone(copy_weights=True, name=f"{victim.name}-stolen")


class QueryBasedExtractor:
    """Indirect model stealing via black-box queries + surrogate training."""

    def __init__(
        self,
        surrogate_factory: Callable[[], Sequential],
        query_budget: int = 2000,
        epochs: int = 8,
        lr: float = 0.005,
        temperature: float = 2.0,
        seed: int = 0,
    ) -> None:
        self.surrogate_factory = surrogate_factory
        self.query_budget = int(query_budget)
        self.epochs = int(epochs)
        self.lr = float(lr)
        self.temperature = float(temperature)
        self.seed = int(seed)

    def synthesize_queries(self, input_shape: Tuple[int, ...], reference_x: Optional[np.ndarray] = None) -> np.ndarray:
        """Generate attack queries: perturbed in-distribution samples if the
        attacker has some public data, otherwise uniform noise in the input box."""
        rng = np.random.default_rng(self.seed)
        if reference_x is not None and reference_x.shape[0] > 0:
            idx = rng.integers(0, reference_x.shape[0], size=self.query_budget)
            noise = rng.normal(0.0, 0.3, size=(self.query_budget,) + tuple(input_shape))
            return reference_x[idx] + noise
        return rng.uniform(-2.0, 2.0, size=(self.query_budget,) + tuple(input_shape))

    def run(
        self,
        victim_predict: Callable[[np.ndarray], np.ndarray],
        input_shape: Tuple[int, ...],
        x_eval: np.ndarray,
        y_eval: np.ndarray,
        reference_x: Optional[np.ndarray] = None,
        victim_model: Optional[Sequential] = None,
    ) -> ExtractionResult:
        """Execute the attack against a black-box prediction function.

        ``victim_predict`` maps a batch of inputs to the logits/probabilities
        the deployed application exposes (possibly poisoned by a defence).
        """
        queries = self.synthesize_queries(input_shape, reference_x)
        victim_outputs = victim_predict(queries)
        surrogate = self.surrogate_factory()
        # The attacker distils the victim's outputs into the surrogate with
        # no access to true labels (hard labels = victim argmax).
        distill(
            teacher=victim_model if victim_model is not None else surrogate,
            student=surrogate,
            x=queries,
            y=None,
            epochs=self.epochs,
            lr=self.lr,
            temperature=self.temperature,
            teacher_logits=victim_outputs,
            seed=self.seed,
        )
        surrogate_eval = surrogate.evaluate(x_eval, y_eval)
        victim_eval_logits = victim_predict(x_eval)
        victim_acc = float(np.mean(victim_eval_logits.argmax(axis=-1) == y_eval))
        return ExtractionResult(
            n_queries=self.query_budget,
            surrogate=surrogate,
            agreement_with_victim=agreement(surrogate.forward(x_eval), victim_eval_logits),
            surrogate_accuracy=surrogate_eval["accuracy"],
            victim_accuracy=victim_acc,
            queries=queries,
        )
