"""Federated learning: clients, aggregation, compression, scheduling, personalization."""

from .aggregation import (
    Aggregator,
    FedAdamAggregator,
    FedAvgAggregator,
    SecureAggregator,
    TrimmedMeanAggregator,
)
from .client import ClientUpdate, FederatedClient
from .compression import (
    CompressedUpdate,
    NoCompression,
    QuantizedCompressor,
    SignSGDCompressor,
    TernaryCompressor,
    TopKSparsifier,
    UpdateCompressor,
    get_compressor,
)
from .engine import (
    Cohort,
    FederatedEngine,
    RoundScenario,
    noniid_severity_sweep,
    partition_cohorts,
    train_clients_batched,
    vectorized_supported,
)
from .scheduling import ClientScheduler, EligibilityScheduler, EnergyAwareScheduler, RandomScheduler
from .server import FederatedServer, RoundResult, centralized_baseline

__all__ = [
    "FederatedClient",
    "ClientUpdate",
    "FederatedServer",
    "FederatedEngine",
    "RoundScenario",
    "RoundResult",
    "centralized_baseline",
    "noniid_severity_sweep",
    "train_clients_batched",
    "vectorized_supported",
    "Cohort",
    "partition_cohorts",
    "Aggregator",
    "FedAvgAggregator",
    "FedAdamAggregator",
    "TrimmedMeanAggregator",
    "SecureAggregator",
    "UpdateCompressor",
    "CompressedUpdate",
    "NoCompression",
    "TopKSparsifier",
    "SignSGDCompressor",
    "TernaryCompressor",
    "QuantizedCompressor",
    "get_compressor",
    "ClientScheduler",
    "RandomScheduler",
    "EligibilityScheduler",
    "EnergyAwareScheduler",
]
