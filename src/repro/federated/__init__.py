"""Federated learning: clients, aggregation, compression, scheduling, personalization."""

from .aggregation import (
    Aggregator,
    FedAdamAggregator,
    FedAvgAggregator,
    SecureAggregator,
    TrimmedMeanAggregator,
)
from .client import ClientUpdate, FederatedClient
from .compression import (
    CompressedUpdate,
    NoCompression,
    QuantizedCompressor,
    SignSGDCompressor,
    TernaryCompressor,
    TopKSparsifier,
    UpdateCompressor,
    get_compressor,
)
from .scheduling import ClientScheduler, EligibilityScheduler, EnergyAwareScheduler, RandomScheduler
from .server import FederatedServer, RoundResult, centralized_baseline

__all__ = [
    "FederatedClient",
    "ClientUpdate",
    "FederatedServer",
    "RoundResult",
    "centralized_baseline",
    "Aggregator",
    "FedAvgAggregator",
    "FedAdamAggregator",
    "TrimmedMeanAggregator",
    "SecureAggregator",
    "UpdateCompressor",
    "CompressedUpdate",
    "NoCompression",
    "TopKSparsifier",
    "SignSGDCompressor",
    "TernaryCompressor",
    "QuantizedCompressor",
    "get_compressor",
    "ClientScheduler",
    "RandomScheduler",
    "EligibilityScheduler",
    "EnergyAwareScheduler",
]
