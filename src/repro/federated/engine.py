"""Fleet-scale vectorized federated training engine.

The seed-era :class:`~repro.federated.server.FederatedServer` executed a
round client by client: clone the global model, run local SGD in a Python
loop, compress one delta at a time.  This module executes the same round
*fleet-wide*:

* client shards are stacked into padded 3-D tensors ``(clients, samples,
  features)`` and the local SGD epochs run as batched matrix products over
  every selected client at once (:func:`train_clients_batched`), replaying
  the exact per-client shuffle order and FedProx term so the result matches
  the per-client loop to float tolerance;
* compressor round-trips are vectorized over the stacked deltas
  (:meth:`UpdateCompressor.roundtrip_batch`);
* client selection is driven from live :class:`~repro.devices.fleet.Fleet`
  state (battery state of charge, metered-network flags) instead of
  hand-built context dicts, and participating devices pay a per-device
  energy cost for local training;
* the round loop supports deployment scenarios: mid-round dropouts,
  straggler timeouts and byzantine clients injecting scaled / sign-flipped
  deltas (exercised against :class:`TrimmedMeanAggregator`).

The legacy per-client loop is preserved as
:meth:`FederatedEngine.run_round_legacy` so benchmarks can assert the
vectorized path stays equivalent and at least an order of magnitude faster
(``bench_e6``), mirroring the batched-serving guardrail of ``bench_e1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn import activations as A
from repro.nn.layers import Dense
from repro.nn.model import Sequential

from .aggregation import Aggregator, FedAvgAggregator
from .client import ClientUpdate, FederatedClient
from .compression import NoCompression, UpdateCompressor
from .scheduling import ClientScheduler, RandomScheduler

__all__ = [
    "RoundResult",
    "RoundScenario",
    "FederatedEngine",
    "vectorized_supported",
    "train_clients_batched",
    "noniid_severity_sweep",
]


@dataclass
class RoundResult:
    """Metrics of one federated round.

    ``participants`` lists the clients whose updates were actually
    aggregated; under a :class:`RoundScenario` that can be a strict subset
    of ``n_selected`` (dropouts and stragglers receive the model — and are
    billed for downlink — but never deliver an update).
    """

    round_index: int
    participants: List[str]
    train_loss: float
    global_accuracy: float
    uplink_bytes: int
    downlink_bytes: int
    mean_local_accuracy: float = 0.0
    n_selected: int = 0
    n_dropouts: int = 0
    n_stragglers: int = 0
    n_byzantine: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "round": self.round_index,
            "n_participants": len(self.participants),
            "train_loss": round(self.train_loss, 4),
            "global_accuracy": round(self.global_accuracy, 4),
            "uplink_kb": round(self.uplink_bytes / 1024, 2),
            "downlink_kb": round(self.downlink_bytes / 1024, 2),
            "n_selected": self.n_selected,
            "n_dropouts": self.n_dropouts,
            "n_stragglers": self.n_stragglers,
            "n_byzantine": self.n_byzantine,
        }


@dataclass
class RoundScenario:
    """Failure / adversary model applied to every round the engine runs.

    * ``dropout_rate`` — probability that a selected client vanishes
      mid-round (network loss, app killed): it never trains nor uploads.
    * ``straggler_timeout_s`` — round deadline.  Each trained client's
      simulated local-training latency is ``n_samples * local_epochs *
      time_per_sample_s`` with log-normal jitter; clients over the deadline
      finish training (and pay the energy) but their update is discarded.
    * ``hardware_latency`` — derive each client's per-sample time from its
      *device profile* instead of the fleet-wide ``time_per_sample_s``
      constant: one training step costs the device's per-inference latency
      (``peak_flops``, memory bandwidth and bit-width aware, via the cost
      model) times the cost model's forward+backward ``training_factor``.
      An MCU then genuinely straggles behind a flagship phone under the
      same deadline.  Clients without a mapped fleet device keep the
      ``time_per_sample_s`` fallback.
    * ``byzantine_ids`` — clients that inject corrupted deltas:
      ``"scale"`` multiplies the honest delta by ``byzantine_scale``,
      ``"flip"`` additionally reverses its sign.  Pair with
      :class:`~repro.federated.aggregation.TrimmedMeanAggregator` to keep
      the aggregate bounded by the honest clients' range.
    """

    dropout_rate: float = 0.0
    straggler_timeout_s: Optional[float] = None
    time_per_sample_s: float = 1e-3
    hardware_latency: bool = False
    latency_jitter: float = 0.5
    byzantine_ids: frozenset = field(default_factory=frozenset)
    byzantine_mode: str = "scale"
    byzantine_scale: float = 10.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.dropout_rate < 1.0:
            raise ValueError("dropout_rate must be in [0, 1)")
        if self.byzantine_mode not in ("scale", "flip"):
            raise ValueError("byzantine_mode must be 'scale' or 'flip'")
        self.byzantine_ids = frozenset(self.byzantine_ids)


# ---------------------------------------------------------------------------
# vectorized local training
# ---------------------------------------------------------------------------

_SUPPORTED_ACTIVATIONS = {None, "relu", "leaky_relu", "relu6", "tanh", "sigmoid", "linear"}


def _dense_stack(model: Sequential) -> Optional[List[Dense]]:
    """The model's layers if it is a pure Dense stack the trainer supports."""
    layers: List[Dense] = []
    for layer in model.layers:
        if type(layer) is not Dense or layer.activation_name not in _SUPPORTED_ACTIVATIONS:
            return None
        layers.append(layer)
    return layers if layers else None


def vectorized_supported(model: Sequential, clients: Sequence[FederatedClient]) -> bool:
    """Whether :func:`train_clients_batched` can replay this configuration.

    Requires a pure Dense stack (the MLPs every federated experiment uses),
    plain-SGD clients and a uniform batch size / epoch count across the
    clients that hold data.  Anything else falls back to the per-client
    loop, so correctness never depends on this returning True.
    """
    if _dense_stack(model) is None:
        return False
    active = [c for c in clients if c.n_samples > 0]
    if not active:
        return True
    ref = active[0]
    return all(
        c.optimizer_name == "sgd" and c.batch_size == ref.batch_size and c.local_epochs == ref.local_epochs
        for c in active
    )


# Recreating ``default_rng(seed)`` for every client each round is a
# measurable share of a vectorized round, so Generators are pooled: the
# initial bit-generator state per seed is cached and restored on reuse,
# which reproduces the exact stream a fresh ``default_rng(seed)`` yields.
_RNG_POOL: Dict[int, Tuple[np.random.Generator, dict]] = {}


def _pooled_rng(seed: int) -> np.random.Generator:
    entry = _RNG_POOL.get(seed)
    if entry is None:
        rng = np.random.default_rng(seed)
        _RNG_POOL[seed] = (rng, rng.bit_generator.state)
        return rng
    rng, state = entry
    rng.bit_generator.state = state
    return rng


def train_clients_batched(
    global_model: Sequential,
    clients: Sequence[FederatedClient],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run every client's local SGD epochs in lock-step with stacked tensors.

    Replays exactly what ``FederatedClient.train_round`` does per client —
    same seeded shuffles, same cross-entropy gradients averaged over the
    true (unpadded) batch sizes, same SGD / FedProx updates — but as one
    sequence of batched ``(clients, batch, features)`` matrix products.

    Returns ``(deltas, mean_losses, local_accuracies)`` where ``deltas`` has
    shape ``(len(clients), n_params)``.  Clients without samples get a zero
    delta, zero loss and zero accuracy, matching the per-client loop.
    """
    layers = _dense_stack(global_model)
    if layers is None:
        raise ValueError("model is not a pure Dense stack; use the per-client loop")
    n_params = global_model.get_flat_weights().size
    deltas = np.zeros((len(clients), n_params), dtype=np.float64)
    losses = np.zeros(len(clients), dtype=np.float64)
    accs = np.zeros(len(clients), dtype=np.float64)
    active = [(i, c) for i, c in enumerate(clients) if c.n_samples > 0]
    if not active:
        return deltas, losses, accs

    C = len(active)
    counts = np.array([c.n_samples for _, c in active], dtype=np.int64)
    n_max = int(counts.max())
    x_dim = int(np.prod(global_model.input_shape))
    X = np.zeros((C, n_max, x_dim), dtype=np.float64)
    Y = np.zeros((C, n_max), dtype=np.int64)
    for ci, (_, client) in enumerate(active):
        X[ci, : counts[ci]] = client.data.x.reshape(counts[ci], -1)
        Y[ci, : counts[ci]] = client.data.y.astype(np.int64)

    batch_size = active[0][1].batch_size
    epochs = active[0][1].local_epochs
    lr3 = np.array([c.lr for _, c in active])[:, None, None]
    mu = np.array([c.proximal_mu for _, c in active], dtype=np.float64)
    use_prox = bool(np.any(mu > 0.0))
    seen_seeds: set = set()
    rngs = []
    for _, c in active:
        # Pooled generators are keyed by seed; a duplicate seed within one
        # call needs its own independent stream, exactly like the legacy loop.
        rngs.append(np.random.default_rng(c.seed) if c.seed in seen_seeds else _pooled_rng(c.seed))
        seen_seeds.add(c.seed)

    # Stacked per-client parameters, seeded from the global weights.
    globals_w = [layer.params["W"] for layer in layers]
    globals_b = [layer.params.get("b") for layer in layers]
    acts = [A.get_activation(layer.activation_name) if layer.activation_name else None for layer in layers]
    relu_like = [layer.activation_name == "relu" for layer in layers]
    W = [np.repeat(g[None], C, axis=0) for g in globals_w]
    b = [np.repeat(g[None], C, axis=0) if g is not None else None for g in globals_b]
    dims = [int(np.prod(global_model.input_shape))] + [layer.units for layer in layers]
    n_layers = len(layers)

    rows = np.arange(C)[:, None]
    loss_sum = np.zeros(C)
    n_batches = np.zeros(C)
    perm = np.zeros((C, n_max), dtype=np.int64)
    steps = math.ceil(n_max / batch_size)

    # All step tensors are preallocated per batch width and every hot op
    # writes through ``out=`` — on a 100-client fleet the allocator churn of
    # fresh (clients, batch, features) temporaries otherwise rivals the
    # arithmetic itself.  Buffers: z/y per layer, gradient ping-pong per
    # layer width, per-layer weight/bias gradients, targets and loss temp.
    buffers: Dict[int, Dict[str, object]] = {}

    def _buffers(width: int) -> Dict[str, object]:
        buf = buffers.get(width)
        if buf is None:
            buf = {
                "z": [np.empty((C, width, dims[li + 1])) for li in range(n_layers)],
                "y": [np.empty((C, width, dims[li + 1])) for li in range(n_layers)],
                "g": [np.empty((C, width, dims[li + 1])) for li in range(n_layers)],
                "gw": [np.empty((C, dims[li], dims[li + 1])) for li in range(n_layers)],
                "gb": [np.empty((C, dims[li + 1])) if b[li] is not None else None for li in range(n_layers)],
                "t": np.empty((C, width, dims[-1])),
                "tmp": np.empty((C, width, dims[-1])),
            }
            buffers[width] = buf
        return buf

    Xp = np.empty_like(X)
    Yp = np.empty_like(Y)
    for _epoch in range(epochs):
        for ci, rng in enumerate(rngs):
            idx = np.arange(counts[ci])
            rng.shuffle(idx)
            perm[ci, : counts[ci]] = idx
        # One gather per epoch; every step below slices contiguous views.
        Xp[:] = X[rows, perm]
        Yp[:] = Y[rows, perm]
        for s in range(steps):
            nb = np.clip(counts - s * batch_size, 0, batch_size)
            width = int(nb.max())
            if width == 0:
                break
            xb = Xp[:, s * batch_size : s * batch_size + width]
            yb = Yp[:, s * batch_size : s * batch_size + width]
            mask = np.arange(width)[None, :] < nb[:, None]
            buf = _buffers(width)
            zs: List[np.ndarray] = buf["z"]  # type: ignore[assignment]
            ys: List[np.ndarray] = buf["y"]  # type: ignore[assignment]
            gs: List[np.ndarray] = buf["g"]  # type: ignore[assignment]
            gws: List[np.ndarray] = buf["gw"]  # type: ignore[assignment]
            gbs = buf["gb"]

            # Forward pass through the Dense stack.
            h = xb
            hs = []
            for li in range(n_layers):
                hs.append(h)
                np.matmul(h, W[li], out=zs[li])
                if b[li] is not None:
                    zs[li] += b[li][:, None, :]
                if acts[li] is not None:
                    if relu_like[li]:
                        np.maximum(zs[li], 0.0, out=ys[li])
                    else:
                        ys[li][:] = acts[li][0](zs[li])
                    h = ys[li]
                else:
                    h = zs[li]
            logits = h

            # Softmax cross-entropy averaged over each client's true batch
            # size; the shared shifted-exponential pass yields probabilities
            # and log-probabilities bitwise identical to the ``softmax`` /
            # ``log_softmax`` pair the per-client loss uses.
            denom = np.maximum(nb, 1).astype(np.float64)
            targets: np.ndarray = buf["t"]  # type: ignore[assignment]
            targets[:] = 0.0
            targets[rows, np.arange(width)[None, :], yb] = mask.astype(np.float64)
            tmp: np.ndarray = buf["tmp"]  # type: ignore[assignment]
            np.subtract(logits, np.max(logits, axis=-1, keepdims=True), out=tmp)  # shifted
            g_out = gs[n_layers - 1]
            np.exp(tmp, out=g_out)  # e
            norm = np.sum(g_out, axis=-1, keepdims=True)
            np.subtract(tmp, np.log(norm), out=tmp)  # log-probabilities
            tmp *= targets
            step_loss = -tmp.sum(axis=(1, 2)) / denom
            np.divide(g_out, norm, out=g_out)  # probabilities
            g_out -= targets
            g_out /= denom[:, None, None]
            g_out *= mask[:, :, None]

            # Backward pass, accumulating per-layer gradients.
            g = g_out
            for li in range(n_layers - 1, -1, -1):
                if relu_like[li]:
                    g *= zs[li] > 0.0
                elif acts[li] is not None:
                    g *= acts[li][1](zs[li], ys[li])
                np.matmul(hs[li].transpose(0, 2, 1), g, out=gws[li])
                if b[li] is not None:
                    g.sum(axis=1, out=gbs[li])
                if li > 0:
                    np.matmul(g, W[li].transpose(0, 2, 1), out=gs[li - 1])
                    g = gs[li - 1]

            step_active = nb > 0
            if use_prox:
                gate = (mu * step_active)[:, None, None]
                sq = np.zeros(C)
                for li in range(n_layers):
                    dw = W[li] - globals_w[li][None]
                    gws[li] += gate * dw
                    sq += (dw * dw).sum(axis=(1, 2))
                    if b[li] is not None:
                        db = b[li] - globals_b[li][None]
                        gbs[li] += gate[:, :, 0] * db
                        sq += (db * db).sum(axis=1)
                step_loss = step_loss + 0.5 * mu * sq
            loss_sum += np.where(step_active, step_loss, 0.0)
            n_batches += step_active

            # Plain SGD; inactive clients have all-zero gradients.
            for li in range(n_layers):
                gws[li] *= lr3
                W[li] -= gws[li]
                if b[li] is not None:
                    gbs[li] *= lr3[:, :, 0]
                    b[li] -= gbs[li]

    # Local evaluation of the trained weights on each client's own shard.
    h = X
    for li in range(n_layers):
        z = h @ W[li]
        if b[li] is not None:
            z += b[li][:, None, :]
        h = acts[li][0](z) if acts[li] is not None else z
    valid = np.arange(n_max)[None, :] < counts[:, None]
    correct = ((h.argmax(axis=-1) == Y) & valid).sum(axis=1)

    # Flatten (trained - global) into the get_flat_weights layout.
    parts = []
    for li in range(n_layers):
        for key in sorted(layers[li].params):
            if key == "W":
                parts.append((W[li] - globals_w[li][None]).reshape(C, -1))
            else:
                parts.append((b[li] - globals_b[li][None]).reshape(C, -1))
    flat = np.concatenate(parts, axis=1)
    for ci, (i, _) in enumerate(active):
        deltas[i] = flat[ci]
        losses[i] = loss_sum[ci] / max(n_batches[ci], 1.0)
        accs[i] = correct[ci] / counts[ci]
    return deltas, losses, accs


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------


class FederatedEngine:
    """Executes federated rounds fleet-wide instead of client-by-client.

    Parameters mirror the seed-era ``FederatedServer`` plus:

    fleet:
        A :class:`~repro.devices.fleet.Fleet` whose live device state
        (battery, network, idleness) feeds the scheduler each round.  When
        given, participating devices also pay a training energy cost
        proportional to their shard size and the model's per-inference cost
        on their hardware profile.
    device_map:
        Optional ``client_id -> device_id`` mapping; defaults to the client
        id itself.
    scenario:
        Optional :class:`RoundScenario` describing dropouts, stragglers and
        byzantine clients.
    """

    def __init__(
        self,
        global_model: Sequential,
        clients: Sequence[FederatedClient],
        aggregator: Optional[Aggregator] = None,
        compressor: Optional[UpdateCompressor] = None,
        scheduler: Optional[ClientScheduler] = None,
        eval_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        fleet=None,
        device_map: Optional[Dict[str, str]] = None,
        scenario: Optional[RoundScenario] = None,
        train_energy_factor: float = 3.0,
    ) -> None:
        if not clients:
            raise ValueError("at least one client is required")
        self.global_model = global_model
        self.clients: Dict[str, FederatedClient] = {c.client_id: c for c in clients}
        self.aggregator = aggregator or FedAvgAggregator()
        self.compressor = compressor or NoCompression()
        self.scheduler = scheduler or RandomScheduler(fraction=1.0)
        self.eval_data = eval_data
        self.fleet = fleet
        self.device_map = dict(device_map or {})
        self.scenario = scenario
        self.train_energy_factor = float(train_energy_factor)
        self.history: List[RoundResult] = []
        self._model_bytes = self.global_model.get_flat_weights().size * 4
        self._cost_model = None
        # hardware_latency per-sample times, keyed by device profile name.
        self._per_sample_time_cache: Dict[str, float] = {}

    # -- fleet integration ----------------------------------------------
    def _device_for(self, client_id: str):
        if self.fleet is None:
            return None
        return self.fleet.devices.get(self.device_map.get(client_id, client_id))

    def fleet_context(self) -> Optional[Dict[str, Dict[str, object]]]:
        """Live scheduler context built from the fleet's current state."""
        if self.fleet is None:
            return None
        context: Dict[str, Dict[str, object]] = {}
        for cid in self.clients:
            device = self._device_for(cid)
            if device is not None:
                context[cid] = device.context()
        return context

    def _drain_training_energy(self, client_ids: Sequence[str]) -> None:
        """Charge each training device for its local epochs (fwd + bwd)."""
        if self.fleet is None or not client_ids:
            return
        self._ensure_cost_model()
        for cid in client_ids:
            device = self._device_for(cid)
            if device is None:
                continue
            client = self.clients[cid]
            cost = self._cost_model.model_inference_cost(device.profile, self.global_model)
            device.battery.draw(cost.energy_j * self.train_energy_factor * client.local_epochs * client.n_samples)

    def _ensure_cost_model(self):
        if self._cost_model is None:
            from repro.devices.cost import CostModel

            self._cost_model = CostModel()
        return self._cost_model

    def _time_per_sample_s(self, client_id: str) -> float:
        """One training step's simulated wall time for a client.

        With ``scenario.hardware_latency`` and a mapped fleet device this is
        the device-profile inference latency (peak_flops / memory-bandwidth
        aware) times the cost model's forward+backward training factor;
        otherwise the scenario's fleet-wide ``time_per_sample_s`` constant.
        Cached per profile name — the value depends only on (profile, model
        architecture), and the architecture is fixed for an engine's life —
        so a round costs O(#distinct profiles) cost-model walks, not
        O(#clients).
        """
        sc = self.scenario
        if sc is not None and sc.hardware_latency:
            device = self._device_for(client_id)
            if device is not None:
                cached = self._per_sample_time_cache.get(device.profile.name)
                if cached is not None:
                    return cached
                cost_model = self._ensure_cost_model()
                forward = cost_model.model_inference_cost(device.profile, self.global_model)
                per_sample = forward.latency_s * cost_model.training_factor
                self._per_sample_time_cache[device.profile.name] = per_sample
                return per_sample
        return sc.time_per_sample_s if sc is not None else 0.0

    # -- scenario --------------------------------------------------------
    def _apply_scenario(
        self, selected: List[str], round_index: int
    ) -> Tuple[List[str], List[str], int, int]:
        """Split the selection into contributors vs dropouts/stragglers."""
        sc = self.scenario
        if sc is None:
            return selected, [], 0, 0
        rng = np.random.default_rng([sc.seed, round_index])
        dropped = rng.random(len(selected)) < sc.dropout_rate
        jitter = rng.lognormal(mean=0.0, sigma=sc.latency_jitter, size=len(selected))
        survivors = [cid for cid, d in zip(selected, dropped) if not d]
        n_dropouts = int(dropped.sum())
        stragglers: List[str] = []
        if sc.straggler_timeout_s is not None:
            surviving = set(survivors)
            keep = []
            for cid, jit in zip(selected, jitter):
                if cid not in surviving:
                    continue
                client = self.clients[cid]
                latency = client.n_samples * client.local_epochs * self._time_per_sample_s(cid) * jit
                (keep if latency <= sc.straggler_timeout_s else stragglers).append(cid)
            survivors = keep
        return survivors, stragglers, n_dropouts, len(stragglers)

    def _corrupt_deltas(self, contributors: Sequence[str], deltas: np.ndarray) -> int:
        """Overwrite byzantine clients' rows in place; returns how many."""
        sc = self.scenario
        if sc is None or not sc.byzantine_ids:
            return 0
        n = 0
        factor = -sc.byzantine_scale if sc.byzantine_mode == "flip" else sc.byzantine_scale
        for i, cid in enumerate(contributors):
            if cid in sc.byzantine_ids:
                deltas[i] *= factor
                n += 1
        return n

    # -- round execution -------------------------------------------------
    def _collect_deltas(self, contributors: Sequence[str]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Local training for the contributors: vectorized when supported."""
        clients = [self.clients[cid] for cid in contributors]
        if vectorized_supported(self.global_model, clients):
            return train_clients_batched(self.global_model, clients)
        deltas = np.zeros((len(clients), self.global_model.get_flat_weights().size))
        losses = np.zeros(len(clients))
        accs = np.zeros(len(clients))
        for i, client in enumerate(clients):
            update = client.train_round(self.global_model)
            deltas[i] = update.delta
            losses[i] = update.local_loss
            accs[i] = update.metrics.get("local_accuracy", 0.0)
        return deltas, losses, accs

    def run_round(
        self, round_index: int, device_context: Optional[Dict[str, Dict[str, object]]] = None
    ) -> RoundResult:
        """Execute one vectorized round and append its result to ``history``."""
        context = device_context if device_context is not None else self.fleet_context()
        selected = self.scheduler.select(list(self.clients), round_index, context=context)
        if not selected:
            result = RoundResult(round_index, [], 0.0, self._evaluate(), 0, 0)
            self.history.append(result)
            return result

        contributors, stragglers, n_dropouts, n_stragglers = self._apply_scenario(selected, round_index)
        downlink = self._model_bytes * len(selected)
        if not contributors:
            # Stragglers still trained (and pay for it) even though every
            # update missed the deadline and the round aggregates nothing.
            self._drain_training_energy(stragglers)
            result = RoundResult(
                round_index, [], 0.0, self._evaluate(), 0, int(downlink),
                n_selected=len(selected), n_dropouts=n_dropouts, n_stragglers=n_stragglers,
            )
            self.history.append(result)
            return result

        deltas, losses, accs = self._collect_deltas(contributors)
        n_byzantine = self._corrupt_deltas(contributors, deltas)
        decompressed, nbytes = self.compressor.roundtrip_batch(deltas)
        n_samples = np.array([self.clients[cid].n_samples for cid in contributors], dtype=np.float64)
        if type(self.aggregator) is FedAvgAggregator:
            # Fast path: we already hold the stack FedAvg would build, so
            # skip the per-update object churn.
            delta = self.aggregator.aggregate_stack(decompressed, n_samples)
        else:
            updates = [
                ClientUpdate(
                    client_id=cid,
                    delta=decompressed[i],
                    n_samples=self.clients[cid].n_samples,
                    local_loss=float(losses[i]),
                    metrics={"local_accuracy": float(accs[i])} if self.clients[cid].n_samples > 0 else {},
                )
                for i, cid in enumerate(contributors)
            ]
            delta = self.aggregator.aggregate(updates)
        self.global_model.set_flat_weights(self.global_model.get_flat_weights() + delta)
        self._drain_training_energy(list(contributors) + stragglers)

        result = RoundResult(
            round_index=round_index,
            participants=list(contributors),
            train_loss=float(np.mean(losses)),
            global_accuracy=self._evaluate(),
            uplink_bytes=int(nbytes.sum()),
            downlink_bytes=int(downlink),
            mean_local_accuracy=float(np.mean(accs)),
            n_selected=len(selected),
            n_dropouts=n_dropouts,
            n_stragglers=n_stragglers,
            n_byzantine=n_byzantine,
        )
        self.history.append(result)
        return result

    def run_round_legacy(
        self, round_index: int, device_context: Optional[Dict[str, Dict[str, object]]] = None
    ) -> RoundResult:
        """The seed-era per-client round loop, kept as the equivalence and
        performance baseline for ``bench_e6`` (no scenario support)."""
        context = device_context if device_context is not None else self.fleet_context()
        selected = self.scheduler.select(list(self.clients), round_index, context=context)
        if not selected:
            result = RoundResult(round_index, [], 0.0, self._evaluate(), 0, 0)
            self.history.append(result)
            return result
        updates: List[ClientUpdate] = []
        uplink = 0
        for cid in selected:
            update = self.clients[cid].train_round(self.global_model)
            decompressed, compressed = self.compressor.roundtrip(update.delta)
            uplink += compressed.nbytes
            updates.append(
                ClientUpdate(
                    client_id=update.client_id,
                    delta=decompressed,
                    n_samples=update.n_samples,
                    local_loss=update.local_loss,
                    metrics=update.metrics,
                )
            )
        delta = self.aggregator.aggregate(updates)
        self.global_model.set_flat_weights(self.global_model.get_flat_weights() + delta)
        result = RoundResult(
            round_index=round_index,
            participants=selected,
            train_loss=float(np.mean([u.local_loss for u in updates])),
            global_accuracy=self._evaluate(),
            uplink_bytes=int(uplink),
            downlink_bytes=int(self._model_bytes * len(selected)),
            mean_local_accuracy=float(np.mean([u.metrics.get("local_accuracy", 0.0) for u in updates])),
            n_selected=len(selected),
        )
        self.history.append(result)
        return result

    def run(
        self, n_rounds: int, device_context: Optional[Dict[str, Dict[str, object]]] = None
    ) -> List[RoundResult]:
        """Run ``n_rounds`` federated rounds."""
        return [self.run_round(r, device_context=device_context) for r in range(n_rounds)]

    # -- reporting --------------------------------------------------------
    def _evaluate(self) -> float:
        if self.eval_data is None:
            return 0.0
        x, y = self.eval_data
        return self.global_model.evaluate(x, y)["accuracy"]

    def total_communication(self) -> Dict[str, float]:
        """Aggregate uplink/downlink volume over all rounds so far."""
        return {
            "uplink_mb": sum(r.uplink_bytes for r in self.history) / 1e6,
            "downlink_mb": sum(r.downlink_bytes for r in self.history) / 1e6,
            "rounds": float(len(self.history)),
        }


def noniid_severity_sweep(
    dataset,
    alphas: Sequence[float],
    model_fn,
    n_clients: int = 10,
    rounds: int = 3,
    eval_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    seed: int = 0,
    **client_kwargs,
) -> Dict[float, Dict[str, float]]:
    """Run short federated trainings across a Dirichlet non-IID severity sweep.

    For each ``alpha`` the dataset is re-partitioned with
    :func:`repro.data.federated.partition_dirichlet`, a fresh model from
    ``model_fn()`` is trained for ``rounds`` engine rounds, and the sweep
    reports the partition's label-skew statistics next to the resulting
    accuracy — the paper's "federated learning must cope with heterogeneous
    client data" trade-off as one table.
    """
    from repro.data.federated import partition_dirichlet, partition_statistics

    results: Dict[float, Dict[str, float]] = {}
    for alpha in alphas:
        parts = partition_dirichlet(dataset, n_clients, alpha=alpha, seed=seed)
        stats = partition_statistics(parts, dataset.num_classes)
        clients = [FederatedClient(p, seed=seed + i, **client_kwargs) for i, p in enumerate(parts)]
        engine = FederatedEngine(model_fn(), clients, eval_data=eval_data)
        history = engine.run(rounds)
        results[float(alpha)] = {
            "final_accuracy": history[-1].global_accuracy,
            "final_train_loss": history[-1].train_loss,
            "mean_tv_distance": stats["mean_tv_distance"],
            "size_imbalance": stats["size_imbalance"],
        }
    return results
