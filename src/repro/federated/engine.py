"""Fleet-scale vectorized federated training engine.

The seed-era :class:`~repro.federated.server.FederatedServer` executed a
round client by client: clone the global model, run local SGD in a Python
loop, compress one delta at a time.  This module executes the same round
*fleet-wide*:

* client shards are stacked into padded 3-D tensors ``(clients, samples,
  features)`` and the local training epochs run as batched matrix products
  over every selected client at once (:func:`train_clients_batched`),
  replaying the exact per-client shuffle order, Dropout mask streams,
  optimizer state updates (plain SGD, momentum, Adam — with per-client
  hyper-parameters broadcast over stacked state tensors) and FedProx term,
  so the result matches the per-client loop to float tolerance;
* heterogeneous fleets are *bucketed*: :func:`partition_cohorts` groups the
  selected clients into homogeneous (optimizer family, batch size, epochs)
  cohorts and the engine runs one vectorized sweep per cohort, so a fleet
  mixing Adam phones with SGD sensors no longer collapses to the scalar
  loop — only genuinely unreplayable clients (stateful optimizer instances,
  unsupported layer types) take the per-client fallback;
* compressor round-trips are vectorized over the stacked deltas
  (:meth:`UpdateCompressor.roundtrip_batch`);
* client selection is driven from live :class:`~repro.devices.fleet.Fleet`
  state (battery state of charge, metered-network flags) instead of
  hand-built context dicts, and participating devices pay a per-device
  energy cost for local training;
* the round loop supports deployment scenarios: mid-round dropouts,
  straggler timeouts and byzantine clients injecting scaled / sign-flipped
  deltas (exercised against :class:`TrimmedMeanAggregator`).

The legacy per-client loop is preserved behind
``run_round(..., engine="oracle")`` (the unified toggle convention of
:mod:`repro.dispatch`; the old :meth:`FederatedEngine.run_round_legacy`
spelling survives as a deprecated alias) so benchmarks can assert the
vectorized path stays equivalent and at least an order of magnitude faster
(``bench_e6``), mirroring the batched-serving guardrail of ``bench_e1``.
``run_round(..., engine="sharded")`` additionally distributes the batched
cohorts across a process pool (:mod:`repro.runtime.sharded`) and merges the
delta stack at a barrier, byte-identical to the in-process batched path.

**Extending the batched trainer** (the federated twin of the fused-kernel
recipe in :mod:`repro.exchange.compiled`):

1. *New layer type*: teach :func:`_supported_layers` to accept it, thread it
   through the ``plan`` built in :func:`train_clients_batched` (a forward
   entry, a backward entry, any per-step per-client state such as the
   Dropout masks), and make sure the flat-delta layout still walks
   ``sorted(layer.params)`` in model order.
2. *New optimizer family*: give the :class:`~repro.nn.optimizers.Optimizer`
   subclass ``state_slots`` + ``hyperparams()``, allocate the matching
   ``(clients, n_params)`` state planes next to the momentum/Adam ones, and
   apply the update with per-client ``(C, 1)`` hyper-parameter broadcasts
   plus ``np.copyto(..., where=active)`` masking (in-place when every client
   stepped) so clients that exhausted their batches keep bit-identical
   state.  Replicate the *exact* elementwise operation order of
   ``Optimizer.update_param`` — equivalence suites assert allclose against
   the per-client loop.
3. *New config axis*: add it to the cohort key in :func:`partition_cohorts`
   (structural knobs like batch size split cohorts; purely numeric knobs
   like learning rates broadcast inside one cohort) and extend the
   hypothesis suite in ``tests/federated/test_batched_cohorts.py``.
"""

from __future__ import annotations

import math
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dispatch import ENGINE_ORACLE, ENGINE_SHARDED, resolve_engine
from repro.faults import (
    CheckpointStore,
    FaultInjector,
    RetryPolicy,
    RoundCheckpoint,
    RoundInterrupted,
    simulate_delivery,
)
from repro.nn import activations as A
from repro.nn.layers import Dense, Dropout, Layer
from repro.nn.model import Sequential

from .aggregation import Aggregator, FedAvgAggregator
from .client import ClientUpdate, FederatedClient
from .compression import NoCompression, UpdateCompressor
from .scheduling import ClientScheduler, RandomScheduler

__all__ = [
    "RoundResult",
    "RoundScenario",
    "FederatedEngine",
    "Cohort",
    "partition_cohorts",
    "vectorized_supported",
    "train_clients_batched",
    "noniid_severity_sweep",
]


@dataclass
class RoundResult:
    """Metrics of one federated round.

    ``participants`` lists the clients whose updates were actually
    aggregated; under a :class:`RoundScenario` that can be a strict subset
    of ``n_selected`` (dropouts and stragglers receive the model — and are
    billed for downlink — but never deliver an update).
    """

    round_index: int
    participants: List[str]
    train_loss: float
    global_accuracy: float
    uplink_bytes: int
    downlink_bytes: int
    mean_local_accuracy: float = 0.0
    n_selected: int = 0
    n_dropouts: int = 0
    n_stragglers: int = 0
    n_byzantine: int = 0
    # Shards the sharded backend re-executed in-process after a worker fault
    # (repro.runtime.sharded); 0 on fault-free runs and single-process
    # engines, so cross-engine result equality is unaffected.
    shard_recoveries: int = 0
    # Degradation telemetry (repro.faults): clients that crashed before
    # training, delta deliveries that never arrived, the retransmit /
    # duplicate traffic the retry policy generated, and — when a quorum is
    # configured — the commit target plus how far an aborted round fell
    # short.  All zero/False on fault-free runs, so cross-engine result
    # equality is unaffected.
    n_crashes: int = 0
    n_delivery_failures: int = 0
    n_retransmits: int = 0
    n_duplicates: int = 0
    quorum_required: int = 0
    quorum_shortfall: int = 0
    aborted: bool = False
    abort_reason: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "round": self.round_index,
            "n_participants": len(self.participants),
            "train_loss": round(self.train_loss, 4),
            "global_accuracy": round(self.global_accuracy, 4),
            "uplink_kb": round(self.uplink_bytes / 1024, 2),
            "downlink_kb": round(self.downlink_bytes / 1024, 2),
            "n_selected": self.n_selected,
            "n_dropouts": self.n_dropouts,
            "n_stragglers": self.n_stragglers,
            "n_byzantine": self.n_byzantine,
            "shard_recoveries": self.shard_recoveries,
            "n_crashes": self.n_crashes,
            "n_delivery_failures": self.n_delivery_failures,
            "n_retransmits": self.n_retransmits,
            "n_duplicates": self.n_duplicates,
            "quorum_required": self.quorum_required,
            "quorum_shortfall": self.quorum_shortfall,
            "aborted": self.aborted,
            "abort_reason": self.abort_reason,
        }


@dataclass
class RoundScenario:
    """Failure / adversary model applied to every round the engine runs.

    * ``dropout_rate`` — probability that a selected client vanishes
      mid-round (network loss, app killed): it never trains nor uploads.
    * ``straggler_timeout_s`` — round deadline.  Each trained client's
      simulated local-training latency is ``n_samples * local_epochs *
      time_per_sample_s`` with log-normal jitter; clients over the deadline
      finish training (and pay the energy) but their update is discarded.
    * ``hardware_latency`` — derive each client's per-sample time from its
      *device profile* instead of the fleet-wide ``time_per_sample_s``
      constant: one training step costs the device's per-inference latency
      (``peak_flops``, memory bandwidth and bit-width aware, via the cost
      model) times the cost model's forward+backward ``training_factor``.
      An MCU then genuinely straggles behind a flagship phone under the
      same deadline.  Clients without a mapped fleet device keep the
      ``time_per_sample_s`` fallback.
    * ``byzantine_ids`` — clients that inject corrupted deltas:
      ``"scale"`` multiplies the honest delta by ``byzantine_scale``,
      ``"flip"`` additionally reverses its sign.  Pair with
      :class:`~repro.federated.aggregation.TrimmedMeanAggregator` to keep
      the aggregate bounded by the honest clients' range.
    """

    dropout_rate: float = 0.0
    straggler_timeout_s: Optional[float] = None
    time_per_sample_s: float = 1e-3
    hardware_latency: bool = False
    latency_jitter: float = 0.5
    byzantine_ids: frozenset = field(default_factory=frozenset)
    byzantine_mode: str = "scale"
    byzantine_scale: float = 10.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.dropout_rate < 1.0:
            raise ValueError("dropout_rate must be in [0, 1)")
        if self.byzantine_mode not in ("scale", "flip"):
            raise ValueError("byzantine_mode must be 'scale' or 'flip'")
        if self.straggler_timeout_s is not None and self.straggler_timeout_s <= 0.0:
            raise ValueError("straggler_timeout_s must be positive (or None to disable)")
        if self.time_per_sample_s < 0.0:
            raise ValueError("time_per_sample_s must be >= 0")
        if self.latency_jitter < 0.0:
            raise ValueError("latency_jitter must be >= 0")
        if self.byzantine_scale <= 0.0:
            raise ValueError("byzantine_scale must be positive ('flip' supplies the sign)")
        self.byzantine_ids = frozenset(self.byzantine_ids)


# ---------------------------------------------------------------------------
# cohort partitioning
# ---------------------------------------------------------------------------

_SUPPORTED_ACTIVATIONS = {None, "relu", "leaky_relu", "relu6", "tanh", "sigmoid", "linear"}


def _supported_layers(model: Sequential) -> Optional[List[Tuple[str, Layer]]]:
    """The model's layers as ``(kind, layer)`` ops if the batched trainer
    can replay them: a stack of Dense (supported activations) and Dropout
    layers with at least one Dense."""
    ops: List[Tuple[str, Layer]] = []
    n_dense = 0
    for layer in model.layers:
        if type(layer) is Dense and layer.activation_name in _SUPPORTED_ACTIVATIONS:
            ops.append(("dense", layer))
            n_dense += 1
        elif type(layer) is Dropout:
            ops.append(("drop", layer))
        else:
            return None
    return ops if n_dense else None


@dataclass(frozen=True)
class Cohort:
    """A homogeneous slice of one round's contributors.

    ``kind`` is ``"batched"`` (one vectorized sweep), ``"fallback"``
    (per-client loop: unsupported model or unreplayable optimizer) or
    ``"idle"`` (zero-sample clients: zero delta, no work at all).
    ``indices`` are positions into the client sequence that was partitioned.
    """

    kind: str
    key: Tuple
    indices: Tuple[int, ...]

    @property
    def batched(self) -> bool:
        return self.kind == "batched"


def partition_cohorts(model: Sequential, clients: Sequence[FederatedClient]) -> List[Cohort]:
    """Partition clients into homogeneous cohorts for per-cohort sweeps.

    Clients sharing (optimizer family, batch size, local epochs) form one
    batched cohort — per-client *numeric* hyper-parameters (lr, momentum,
    betas, weight decay, FedProx mu) broadcast inside the sweep and never
    split a cohort.  Zero-sample clients land in an ``idle`` cohort.
    Clients the batched trainer cannot replay (a shared
    :class:`~repro.nn.optimizers.Optimizer` instance whose state persists
    across rounds) and every client of an unsupported model (non-Dense /
    Dropout layers) form ``fallback`` cohorts served by the per-client
    loop, so correctness never depends on batching.
    """
    supported_model = _supported_layers(model) is not None
    groups: "OrderedDict[Tuple, List[int]]" = OrderedDict()
    for i, client in enumerate(clients):
        if client.n_samples == 0:
            key: Tuple = ("idle",)
        elif not supported_model:
            key = ("fallback", "model")
        else:
            cfg = client.batched_optimizer_config()
            if cfg is None:
                key = ("fallback", "optimizer")
            else:
                key = ("batched", cfg["family"], int(client.batch_size), int(client.local_epochs))
        groups.setdefault(key, []).append(i)
    return [Cohort(kind=key[0], key=key[1:], indices=tuple(idx)) for key, idx in groups.items()]


def vectorized_supported(model: Sequential, clients: Sequence[FederatedClient]) -> bool:
    """Whether ONE batched sweep covers every data-holding client.

    Heterogeneous-but-replayable fleets return False here yet still avoid
    the scalar loop: :func:`partition_cohorts` splits them into multiple
    batched cohorts.  This predicate is the "no bucketing needed" fast
    answer (and the seed-era compatibility surface).
    """
    if _supported_layers(model) is None:
        return False
    cohorts = [c for c in partition_cohorts(model, clients) if c.kind != "idle"]
    return all(c.batched for c in cohorts) and len(cohorts) <= 1


# ---------------------------------------------------------------------------
# vectorized local training
# ---------------------------------------------------------------------------

# Recreating ``default_rng(seed)`` for every client each round is a
# measurable share of a vectorized round, so Generators are pooled: the
# initial bit-generator state per seed is cached and restored on reuse,
# which reproduces the exact stream a fresh ``default_rng(seed)`` yields.
# The pool is a small LRU — long multi-round runs that keep minting fresh
# client seeds (e.g. per-round resampling) would otherwise grow it without
# bound; an evicted seed simply pays one ``default_rng`` construction again
# and restarts the identical stream.
_RNG_POOL: "OrderedDict[int, Tuple[np.random.Generator, dict]]" = OrderedDict()
_RNG_POOL_MAX = 512


def _pooled_rng(seed: int) -> np.random.Generator:
    entry = _RNG_POOL.get(seed)
    if entry is None:
        rng = np.random.default_rng(seed)
        _RNG_POOL[seed] = (rng, rng.bit_generator.state)
        while len(_RNG_POOL) > _RNG_POOL_MAX:
            _RNG_POOL.popitem(last=False)
        return rng
    _RNG_POOL.move_to_end(seed)
    rng, state = entry
    rng.bit_generator.state = state
    return rng


def _momentum_update(param, vel, grad, scratch, mom, lr, active) -> None:
    """Heavy-ball step on a stacked parameter, masked to active clients.

    Elementwise operation order replicates ``Momentum.update_param``
    (``v *= m; v -= lr * grad; param += v``) exactly; rows of clients that
    ran out of batches this step keep their state bit-identical.  With
    ``active is None`` (every client stepped — the common case) state
    updates in place, skipping the candidate + masked-copy round-trip.
    """
    if active is None:
        vel *= mom
        np.multiply(grad, lr, out=grad)
        vel -= grad
        param += vel
        return
    np.multiply(vel, mom, out=scratch)
    np.multiply(grad, lr, out=grad)
    scratch -= grad
    np.copyto(vel, scratch, where=active)
    scratch += param
    np.copyto(param, scratch, where=active)


def _adam_update(param, m, v, grad, mc, vc, t1, b1, omb1, b2, omb2, eps, lr, c1, c2, active) -> None:
    """Adam step on a stacked parameter, masked to active clients.

    Replicates ``Adam.update_param`` elementwise: moment decay + gradient
    blend, per-client bias corrections ``c1 = 1 - beta1**t`` /
    ``c2 = 1 - beta2**t`` (computed with Python-float pow, like the scalar
    loop), then ``param -= lr * m_hat / (sqrt(v_hat) + eps)``.  With
    ``active is None`` (every client stepped) the moments update in place.
    """
    if active is None:
        m *= b1
        np.multiply(grad, omb1, out=t1)
        m += t1
        v *= b2
        np.multiply(grad, grad, out=grad)
        grad *= omb2
        v += grad
        np.divide(m, c1, out=mc)  # m_hat
        np.divide(v, c2, out=vc)  # v_hat
        np.sqrt(vc, out=vc)
        vc += eps
        mc *= lr
        mc /= vc
        param -= mc
        return
    np.multiply(m, b1, out=mc)
    np.multiply(grad, omb1, out=t1)
    mc += t1
    np.multiply(v, b2, out=vc)
    np.multiply(grad, grad, out=grad)
    grad *= omb2
    vc += grad
    np.copyto(m, mc, where=active)
    np.copyto(v, vc, where=active)
    mc /= c1  # m_hat
    vc /= c2  # v_hat
    np.sqrt(vc, out=vc)
    vc += eps
    mc *= lr
    mc /= vc
    np.subtract(param, mc, out=mc)
    np.copyto(param, mc, where=active)


def train_clients_batched(
    global_model: Sequential,
    clients: Sequence[FederatedClient],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run every client's local epochs in lock-step with stacked tensors.

    Replays exactly what ``FederatedClient.train_round`` does per client —
    same seeded shuffles, same Dropout masks (each client's mask stream is
    cloned from the model's Dropout generators, exactly like the per-client
    model clone), same cross-entropy gradients averaged over the true
    (unpadded) batch sizes, same SGD / momentum / Adam state updates with
    per-client hyper-parameters, same FedProx term — but as one sequence of
    batched ``(clients, batch, features)`` matrix products.

    The clients must form one homogeneous cohort: same optimizer family,
    batch size and epoch count across the clients that hold data (numeric
    hyper-parameters may differ per client).  Mixed fleets are split with
    :func:`partition_cohorts` and swept per cohort.

    Returns ``(deltas, mean_losses, local_accuracies)`` where ``deltas`` has
    shape ``(len(clients), n_params)``.  Clients without samples get a zero
    delta, zero loss and zero accuracy, matching the per-client loop.
    """
    ops = _supported_layers(global_model)
    if ops is None:
        raise ValueError("model is not a Dense/Dropout stack; use the per-client loop")
    n_params = global_model.get_flat_weights().size
    deltas = np.zeros((len(clients), n_params), dtype=np.float64)
    losses = np.zeros(len(clients), dtype=np.float64)
    accs = np.zeros(len(clients), dtype=np.float64)
    active = [(i, c) for i, c in enumerate(clients) if c.n_samples > 0]
    if not active:
        return deltas, losses, accs

    configs = [c.batched_optimizer_config() for _, c in active]
    ref = active[0][1]
    family = None if configs[0] is None else str(configs[0]["family"])
    if family is None or any(
        cfg is None
        or cfg["family"] != family
        or c.batch_size != ref.batch_size
        or c.local_epochs != ref.local_epochs
        for cfg, (_, c) in zip(configs, active)
    ):
        raise ValueError(
            "clients do not form a homogeneous batched cohort; split them with partition_cohorts() first"
        )

    C = len(active)
    counts = np.array([c.n_samples for _, c in active], dtype=np.int64)
    n_max = int(counts.max())
    x_dim = int(np.prod(global_model.input_shape))
    X = np.zeros((C, n_max, x_dim), dtype=np.float64)
    Y = np.zeros((C, n_max), dtype=np.int64)
    for ci, (_, client) in enumerate(active):
        X[ci, : counts[ci]] = client.data.x.reshape(counts[ci], -1)
        Y[ci, : counts[ci]] = client.data.y.astype(np.int64)

    batch_size = ref.batch_size
    epochs = ref.local_epochs
    mu = np.array([c.proximal_mu for _, c in active], dtype=np.float64)
    use_prox = bool(np.any(mu > 0.0))
    seen_seeds: set = set()
    rngs = []
    for _, c in active:
        # Pooled generators are keyed by seed; a duplicate seed within one
        # call needs its own independent stream, exactly like the legacy loop.
        rngs.append(np.random.default_rng(c.seed) if c.seed in seen_seeds else _pooled_rng(c.seed))
        seen_seeds.add(c.seed)

    # Per-client hyper-parameters broadcast as (C, 1) columns over the flat
    # parameter planes below.
    lr2 = np.array([cfg["lr"] for cfg in configs], dtype=np.float64)[:, None]
    wd2 = np.array([cfg["weight_decay"] for cfg in configs], dtype=np.float64)[:, None]
    use_wd = bool(np.any(wd2 != 0.0))
    if family == "momentum":
        mom2 = np.array([cfg["momentum"] for cfg in configs], dtype=np.float64)[:, None]
    elif family == "adam":
        b1_py = [float(cfg["beta1"]) for cfg in configs]
        b2_py = [float(cfg["beta2"]) for cfg in configs]
        b1_2 = np.array(b1_py, dtype=np.float64)[:, None]
        b2_2 = np.array(b2_py, dtype=np.float64)[:, None]
        omb1_2 = 1.0 - b1_2
        omb2_2 = 1.0 - b2_2
        eps2 = np.array([cfg["eps"] for cfg in configs], dtype=np.float64)[:, None]

    # Stacked per-client parameters live in ONE flat (clients, n_params)
    # plane in the get_flat_weights layout; each Dense layer's weight and
    # bias are reshaped *views* into it, so GEMMs read/write the stacks
    # directly while optimizer state updates, weight decay, FedProx and the
    # final delta all run as single fused ops over the whole plane (per-step
    # per-layer ufunc chains would otherwise dominate small models).
    dense_layers = [layer for kind, layer in ops if kind == "dense"]
    n_dense = len(dense_layers)
    acts = [A.get_activation(l.activation_name) if l.activation_name else None for l in dense_layers]
    relu_like = [l.activation_name == "relu" for l in dense_layers]
    dims = [x_dim] + [layer.units for layer in dense_layers]
    gflat = global_model.get_flat_weights()
    WF = np.repeat(gflat[None], C, axis=0)  # parameter plane
    GF = np.empty_like(WF)  # gradient plane (fully rewritten every step)
    W: List[np.ndarray] = []
    b: List[Optional[np.ndarray]] = []
    gw_v: List[np.ndarray] = []
    gb_v: List[Optional[np.ndarray]] = []
    offset = 0
    for layer in dense_layers:
        wk, bk = None, None
        for key in sorted(layer.params):  # "W" precedes "b", like get_flat_weights
            size = layer.params[key].size
            if key == "W":
                shape = (C,) + layer.params[key].shape
                W.append(WF[:, offset : offset + size].reshape(shape))
                gw_v.append(GF[:, offset : offset + size].reshape(shape))
                wk = True
            else:
                b.append(WF[:, offset : offset + size].reshape(C, size))
                gb_v.append(GF[:, offset : offset + size].reshape(C, size))
                bk = True
            offset += size
        if bk is None:
            b.append(None)
            gb_v.append(None)
        assert wk is not None

    plan: List[Tuple[str, int]] = []
    drop_dims: List[int] = []
    drop_keep: List[float] = []
    drop_u: List[np.ndarray] = []
    cur_dim, di = x_dim, 0
    for kind, layer in ops:
        if kind == "dense":
            plan.append(("dense", di))
            di += 1
            cur_dim = layer.units
        elif layer.rate > 0.0:
            # Zero-rate Dropout draws nothing in the per-client loop either.
            plan.append(("drop", len(drop_dims)))
            drop_dims.append(cur_dim)
            drop_keep.append(1.0 - float(layer.rate))
            # Every per-client model clone inherits the SAME generator state
            # from this layer, so all clients read one common uniform stream
            # — each at its own rate (counts[ci] rows per epoch).  Draw the
            # deepest client's worth once; per-epoch gathers below slice each
            # client's exact stream window, so masks are value-identical to
            # the scalar loop's sequential per-batch draws.
            drop_u.append(layer.spawn_stream().random((epochs * n_max, cur_dim)))
    n_drop = len(drop_dims)
    # Per-epoch per-client mask rows gathered from the common streams.
    drop_epoch = [np.empty((C, n_max, drop_dims[pi])) for pi in range(n_drop)]

    # Optimizer state planes + flat update scratch (all (C, n_params)).
    if family == "momentum":
        VF = np.zeros_like(WF)
    elif family == "adam":
        MF = np.zeros_like(WF)
        VF = np.zeros_like(WF)
    U1 = np.empty_like(WF) if (use_wd or use_prox or family != "sgd") else None
    U2 = np.empty_like(WF) if (use_prox or family == "adam") else None
    U3 = np.empty_like(WF) if family == "adam" else None

    rows = np.arange(C)[:, None]
    loss_sum = np.zeros(C)
    n_batches = np.zeros(C)
    perm = np.zeros((C, n_max), dtype=np.int64)

    # Step geometry (true batch widths, padding masks, loss denominators,
    # active-client rows) repeats identically every epoch, so precompute it
    # once — on fleet-scale sweeps the per-step ufunc dispatch for these
    # little arrays otherwise costs as much as the GEMMs.
    step_meta: List[Dict[str, object]] = []
    for s in range(math.ceil(n_max / batch_size)):
        nb = np.clip(counts - s * batch_size, 0, batch_size)
        width = int(nb.max())
        if width == 0:
            break
        rowmask = np.arange(width)[None, :] < nb[:, None]
        step_on = nb > 0
        step_meta.append(
            {
                "nb": nb,
                "width": width,
                "mask": rowmask,
                "maskf": rowmask.astype(np.float64),
                "cols": np.arange(width)[None, :],
                "denom": np.maximum(nb, 1).astype(np.float64),
                "full": bool(rowmask.all()),
                "active": step_on,
                "active2": step_on[:, None],
                "activef": step_on.astype(np.float64),
                "all_on": bool(step_on.all()),
            }
        )
    steps = len(step_meta)

    if family == "adam":
        # Bias corrections 1 - beta**t depend only on the (epoch, step)
        # position; tabulate them with Python-float pow (matching the scalar
        # loop's arithmetic) instead of re-deriving per step.
        c1_tab = np.ones((epochs * steps, C))
        c2_tab = np.ones((epochs * steps, C))
        t_run = np.zeros(C, dtype=np.int64)
        k = 0
        for _e in range(epochs):
            for s in range(steps):
                act = step_meta[s]["active"]
                t_run += act
                r1, r2 = c1_tab[k], c2_tab[k]
                for ci in range(C):
                    if act[ci]:
                        t = int(t_run[ci])
                        r1[ci] = 1.0 - b1_py[ci] ** t
                        r2[ci] = 1.0 - b2_py[ci] ** t
                k += 1

    # All step tensors are preallocated per batch width and every hot op
    # writes through ``out=`` — on a 100-client fleet the allocator churn of
    # fresh (clients, batch, features) temporaries otherwise rivals the
    # arithmetic itself.  Buffers: z/y per dense layer, gradient ping-pong
    # per layer width, per-layer weight/bias gradients, Dropout masks and
    # outputs, targets and loss temp.
    buffers: Dict[int, Dict[str, object]] = {}

    def _buffers(width: int) -> Dict[str, object]:
        buf = buffers.get(width)
        if buf is None:
            buf = {
                "z": [np.empty((C, width, dims[li + 1])) for li in range(n_dense)],
                "y": [np.empty((C, width, dims[li + 1])) for li in range(n_dense)],
                "g": [np.empty((C, width, dims[li + 1])) for li in range(n_dense)],
                "dm": [np.empty((C, width, drop_dims[pi])) for pi in range(n_drop)],
                "do": [np.empty((C, width, drop_dims[pi])) for pi in range(n_drop)],
                "t": np.empty((C, width, dims[-1])),
                "tmp": np.empty((C, width, dims[-1])),
            }
            buffers[width] = buf
        return buf

    Xp = np.empty_like(X)
    Yp = np.empty_like(Y)
    sample_rows = np.arange(n_max)[None, :]
    for _epoch in range(epochs):
        for ci, rng in enumerate(rngs):
            idx = np.arange(counts[ci])
            rng.shuffle(idx)
            perm[ci, : counts[ci]] = idx
        # One gather per epoch; every step below slices contiguous views.
        Xp[:] = X[rows, perm]
        Yp[:] = Y[rows, perm]
        for pi in range(n_drop):
            # Client ci consumes counts[ci] mask rows per epoch, so its
            # epoch-e window starts at common-stream row e * counts[ci].
            np.take(drop_u[pi], _epoch * counts[:, None] + sample_rows, axis=0, out=drop_epoch[pi])
        for s in range(steps):
            meta = step_meta[s]
            width: int = meta["width"]  # type: ignore[assignment]
            mask: np.ndarray = meta["mask"]  # type: ignore[assignment]
            full: bool = meta["full"]  # type: ignore[assignment]
            xb = Xp[:, s * batch_size : s * batch_size + width]
            yb = Yp[:, s * batch_size : s * batch_size + width]
            buf = _buffers(width)
            zs: List[np.ndarray] = buf["z"]  # type: ignore[assignment]
            ys: List[np.ndarray] = buf["y"]  # type: ignore[assignment]
            gs: List[np.ndarray] = buf["g"]  # type: ignore[assignment]
            dms: List[np.ndarray] = buf["dm"]  # type: ignore[assignment]
            dos: List[np.ndarray] = buf["do"]  # type: ignore[assignment]

            # Forward pass through the Dense/Dropout plan.
            h = xb
            inputs: List[Optional[np.ndarray]] = [None] * n_dense
            for kind, k_idx in plan:
                if kind == "dense":
                    li = k_idx
                    inputs[li] = h
                    np.matmul(h, W[li], out=zs[li])
                    if b[li] is not None:
                        zs[li] += b[li][:, None, :]
                    if acts[li] is not None:
                        if relu_like[li]:
                            np.maximum(zs[li], 0.0, out=ys[li])
                        else:
                            ys[li][:] = acts[li][0](zs[li])
                        h = ys[li]
                    else:
                        h = zs[li]
                else:
                    pi = k_idx
                    dmask = dms[pi]
                    keep = drop_keep[pi]
                    vals = drop_epoch[pi][:, s * batch_size : s * batch_size + width]
                    np.copyto(dmask, vals < keep, casting="unsafe")
                    if not full:
                        dmask *= mask[:, :, None]  # padded rows draw no mask
                    dmask /= keep
                    np.multiply(h, dmask, out=dos[pi])
                    h = dos[pi]
            logits = h

            # Softmax cross-entropy averaged over each client's true batch
            # size; the shared shifted-exponential pass yields probabilities
            # and log-probabilities bitwise identical to the ``softmax`` /
            # ``log_softmax`` pair the per-client loss uses.
            denom: np.ndarray = meta["denom"]  # type: ignore[assignment]
            targets: np.ndarray = buf["t"]  # type: ignore[assignment]
            targets[:] = 0.0
            targets[rows, meta["cols"], yb] = meta["maskf"]
            tmp: np.ndarray = buf["tmp"]  # type: ignore[assignment]
            np.subtract(logits, np.max(logits, axis=-1, keepdims=True), out=tmp)  # shifted
            g_out = gs[n_dense - 1]
            np.exp(tmp, out=g_out)  # e
            norm = np.sum(g_out, axis=-1, keepdims=True)
            np.subtract(tmp, np.log(norm), out=tmp)  # log-probabilities
            tmp *= targets
            step_loss = -tmp.sum(axis=(1, 2)) / denom
            np.divide(g_out, norm, out=g_out)  # probabilities
            g_out -= targets
            g_out /= denom[:, None, None]
            if not full:
                g_out *= mask[:, :, None]

            # Backward pass; per-layer gradients land in their GF plane views.
            g = g_out
            for kind, k_idx in reversed(plan):
                if kind == "drop":
                    g *= dms[k_idx]
                    continue
                li = k_idx
                if relu_like[li]:
                    g *= zs[li] > 0.0
                elif acts[li] is not None:
                    g *= acts[li][1](zs[li], ys[li])
                np.matmul(inputs[li].transpose(0, 2, 1), g, out=gw_v[li])
                if b[li] is not None:
                    g.sum(axis=1, out=gb_v[li])
                if li == 0:
                    break  # nothing trainable upstream of the first Dense
                np.matmul(g, W[li].transpose(0, 2, 1), out=gs[li - 1])
                g = gs[li - 1]

            step_active: np.ndarray = meta["active"]  # type: ignore[assignment]
            all_on: bool = meta["all_on"]  # type: ignore[assignment]
            if use_prox:
                np.subtract(WF, gflat[None], out=U1)  # w - w_global
                np.multiply(U1, U1, out=U2)
                sq = U2.sum(axis=1)
                U1 *= (mu * step_active)[:, None]
                GF += U1
                step_loss = step_loss + 0.5 * mu * sq
            if not all_on:
                step_loss *= meta["activef"]  # inactive clients record no batch
            loss_sum += step_loss
            n_batches += step_active

            # Optimizer step: ONE fused update over the flat planes with
            # per-client (C, 1) hyper-parameter broadcasts and active-row
            # masking (rows whose client ran out of batches keep state).
            act2 = None if all_on else meta["active2"]
            if use_wd:
                # ``Optimizer.step``: grad = grad + weight_decay * param.
                np.multiply(WF, wd2, out=U1)
                GF += U1
            if family == "sgd":
                if use_wd and act2 is not None:
                    # Without decay inactive rows are exactly zero grads.
                    GF *= act2
                GF *= lr2
                WF -= GF
            elif family == "momentum":
                _momentum_update(WF, VF, GF, U1, mom2, lr2, act2)
            else:  # adam
                k = _epoch * steps + s
                _adam_update(
                    WF, MF, VF, GF, U1, U2, U3,
                    b1_2, omb1_2, b2_2, omb2_2, eps2, lr2,
                    c1_tab[k][:, None], c2_tab[k][:, None], act2,
                )

    # Local evaluation of the trained weights on each client's own shard
    # (training=False: Dropout is identity, exactly like ``model.evaluate``).
    h = X
    for li in range(n_dense):
        z = h @ W[li]
        if b[li] is not None:
            z += b[li][:, None, :]
        h = acts[li][0](z) if acts[li] is not None else z
    valid = np.arange(n_max)[None, :] < counts[:, None]
    correct = ((h.argmax(axis=-1) == Y) & valid).sum(axis=1)

    # The parameter plane already IS the get_flat_weights layout (Dropout
    # layers hold no parameters), so the deltas are one subtraction.
    flat = WF - gflat[None]
    for ci, (i, _) in enumerate(active):
        deltas[i] = flat[ci]
        losses[i] = loss_sum[ci] / max(n_batches[ci], 1.0)
        accs[i] = correct[ci] / counts[ci]
    return deltas, losses, accs


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------


@dataclass
class _RoundPlan:
    """Everything a round decides *before* any local training happens.

    Scenario dropouts/stragglers, fault-plan crashes, the simulated
    delivery verdict of every surviving contributor and the quorum
    check are all data-independent (seeded RNG + plan lookups only), so
    the engine resolves them up front.  That is what makes the quorum
    abort transactional: an aborted round is decided at admission time
    and performs *zero* work — no training, no energy drain, no weight
    update — leaving fleet planes, ledgers and client RNG streams
    byte-untouched.  ``trivial`` marks the no-scenario/no-fault/no-quorum
    case where every engine path must stay byte-identical to its
    pre-fault-plane behaviour.
    """

    selected: List[str]
    contributors: List[str]
    stragglers: List[str]
    n_dropouts: int = 0
    n_stragglers: int = 0
    n_crashes: int = 0
    # Rows into ``contributors`` whose delta arrived (None = all), and the
    # per-row uplink transmission count (attempts + duplicates).
    delivered_rows: Optional[List[int]] = None
    tx_counts: Optional[List[int]] = None
    n_retransmits: int = 0
    n_duplicates: int = 0
    n_delivery_failures: int = 0
    # Delivered rows whose uplink showed >= 1 corrupt attempt before the
    # clean copy arrived (suspect links; quorum_mode="verified" discounts
    # them from the commit threshold).
    corrupt_rows: Optional[List[int]] = None
    quorum_required: int = 0
    # Deliveries counted toward the quorum threshold under the engine's
    # quorum_mode (== n_delivered in legacy "delivered" mode).
    quorum_counted: int = 0
    aborted: bool = False
    abort_reason: str = ""
    trivial: bool = True

    @property
    def n_delivered(self) -> int:
        return len(self.contributors) if self.delivered_rows is None else len(self.delivered_rows)


class FederatedEngine:
    """Executes federated rounds fleet-wide instead of client-by-client.

    Parameters mirror the seed-era ``FederatedServer`` plus:

    fleet:
        A :class:`~repro.devices.fleet.Fleet` whose live device state
        (battery, network, idleness) feeds the scheduler each round.  When
        given, participating devices also pay a training energy cost
        proportional to their shard size and the model's per-inference cost
        on their hardware profile.
    device_map:
        Optional ``client_id -> device_id`` mapping; defaults to the client
        id itself.
    scenario:
        Optional :class:`RoundScenario` describing dropouts, stragglers and
        byzantine clients.
    fault_injector:
        Optional :class:`repro.faults.FaultInjector` replaying a seeded
        :class:`~repro.faults.FaultPlan` against the round loop: client
        crashes, lossy/corrupted/duplicated delta deliveries (retried
        under ``retry_policy``) and coordinator interrupts.  ``None`` (and
        an empty plan) keep every path byte-identical to the plain engine.
    quorum:
        Optional commit fraction in ``(0, 1]``: a round merges iff at
        least ``ceil(quorum * n_selected)`` deltas are delivered,
        otherwise it aborts deterministically with zero side effects.
    quorum_mode:
        How deliveries count toward the quorum threshold.
        ``"delivered"`` (default, today's behaviour) counts every
        delivered delta.  ``"verified"`` counts only deliveries the
        coordinator can vouch for: the client is not in
        ``scenario.byzantine_ids`` and its uplink showed no corrupt
        attempts (a link that corrupted payloads before the clean retry
        is integrity-suspect).  Byzantine deltas still *aggregate* in
        both modes — robust aggregation stays the aggregator's job — so
        a verified-mode round that meets quorum commits byte-identically
        to legacy mode; only the abort decision differs.
    retry_policy:
        The :class:`repro.faults.RetryPolicy` governing delta-delivery
        retries (defaults to ``RetryPolicy()`` when an injector is set).
    checkpoints:
        Optional :class:`repro.faults.CheckpointStore`.  When set, the
        batched round loop persists a :class:`RoundCheckpoint` after
        selection and after every completed cohort sweep; a
        ``RoundInterrupted`` round re-issued against the same store
        resumes from the checkpoint and commits byte-identically to an
        uninterrupted run.
    """

    def __init__(
        self,
        global_model: Sequential,
        clients: Sequence[FederatedClient],
        aggregator: Optional[Aggregator] = None,
        compressor: Optional[UpdateCompressor] = None,
        scheduler: Optional[ClientScheduler] = None,
        eval_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        fleet=None,
        device_map: Optional[Dict[str, str]] = None,
        scenario: Optional[RoundScenario] = None,
        train_energy_factor: float = 3.0,
        fault_injector: Optional[FaultInjector] = None,
        quorum: Optional[float] = None,
        quorum_mode: str = "delivered",
        retry_policy: Optional[RetryPolicy] = None,
        checkpoints: Optional[CheckpointStore] = None,
    ) -> None:
        if not clients:
            raise ValueError("at least one client is required")
        if quorum is not None and not 0.0 < quorum <= 1.0:
            raise ValueError("quorum must be in (0, 1]")
        if quorum_mode not in ("delivered", "verified"):
            raise ValueError(
                f'quorum_mode must be "delivered" or "verified", got {quorum_mode!r}'
            )
        self.global_model = global_model
        self.clients: Dict[str, FederatedClient] = {c.client_id: c for c in clients}
        self.aggregator = aggregator or FedAvgAggregator()
        self.compressor = compressor or NoCompression()
        self.scheduler = scheduler or RandomScheduler(fraction=1.0)
        self.eval_data = eval_data
        self.fleet = fleet
        self.device_map = dict(device_map or {})
        self.scenario = scenario
        self.train_energy_factor = float(train_energy_factor)
        self.fault_injector = fault_injector
        self.quorum = None if quorum is None else float(quorum)
        self.quorum_mode = quorum_mode
        self.retry_policy = retry_policy
        self.checkpoints = checkpoints
        self.history: List[RoundResult] = []
        self._model_bytes = self.global_model.get_flat_weights().size * 4
        self._cost_model = None
        # hardware_latency per-sample times, keyed by device profile name.
        self._per_sample_time_cache: Dict[str, float] = {}
        # Optional pre-configured repro.runtime.sharded.ShardedFleetRunner
        # used by run_round(engine="sharded"); None builds a default per call.
        self.shard_runner = None

    @classmethod
    def for_candidate(
        cls, incumbent: Sequential, clients: Sequence[FederatedClient], **kwargs
    ) -> "FederatedEngine":
        """An engine for a *triggered* retraining round (model lifecycle).

        The engine's rounds mutate ``global_model`` in place, which is the
        right behaviour for an in-production federated update but wrong for
        a lifecycle-triggered retrain: the candidate must not touch the
        serving incumbent until a canary gate promotes it.  This constructor
        trains a weight-copy clone instead — the incumbent is never written,
        and the trained candidate is available as ``engine.global_model``
        (:class:`repro.lifecycle.LifecyclePipeline` registers it as a new
        base version and canaries it).
        """
        return cls(incumbent.clone(copy_weights=True), clients, **kwargs)

    # -- fleet integration ----------------------------------------------
    def _device_for(self, client_id: str):
        if self.fleet is None:
            return None
        return self.fleet.devices.get(self.device_map.get(client_id, client_id))

    def fleet_context(self) -> Optional[Dict[str, Dict[str, object]]]:
        """Live scheduler context built from the fleet's current state.

        One :meth:`~repro.devices.Fleet.context_rows` sweep over the columnar
        store covers every mapped client — no device objects are
        materialized, so building context for a million-device fleet is a
        handful of array ops plus one dict per client.
        """
        if self.fleet is None:
            return None
        mapped = {cid: self.device_map.get(cid, cid) for cid in self.clients}
        present = [did for did in dict.fromkeys(mapped.values()) if did in self.fleet.devices]
        if not present:
            return {}
        by_device = self.fleet.context_rows(present)
        return {cid: by_device[did] for cid, did in mapped.items() if did in by_device}

    def _drain_training_energy(self, client_ids: Sequence[str]) -> None:
        """Charge each training device for its local epochs (fwd + bwd)."""
        if self.fleet is None or not client_ids:
            return
        self._ensure_cost_model()
        for cid in client_ids:
            device = self._device_for(cid)
            if device is None:
                continue
            client = self.clients[cid]
            cost = self._cost_model.model_inference_cost(device.profile, self.global_model)
            device.battery.draw(cost.energy_j * self.train_energy_factor * client.local_epochs * client.n_samples)

    def _ensure_cost_model(self):
        if self._cost_model is None:
            from repro.devices.cost import CostModel

            self._cost_model = CostModel()
        return self._cost_model

    def _time_per_sample_s(self, client_id: str) -> float:
        """One training step's simulated wall time for a client.

        With ``scenario.hardware_latency`` and a mapped fleet device this is
        the device-profile inference latency (peak_flops / memory-bandwidth
        aware) times the cost model's forward+backward training factor;
        otherwise the scenario's fleet-wide ``time_per_sample_s`` constant.
        Cached per profile name — the value depends only on (profile, model
        architecture), and the architecture is fixed for an engine's life —
        so a round costs O(#distinct profiles) cost-model walks, not
        O(#clients).
        """
        sc = self.scenario
        if sc is not None and sc.hardware_latency:
            device = self._device_for(client_id)
            if device is not None:
                cached = self._per_sample_time_cache.get(device.profile.name)
                if cached is not None:
                    return cached
                cost_model = self._ensure_cost_model()
                forward = cost_model.model_inference_cost(device.profile, self.global_model)
                per_sample = forward.latency_s * cost_model.training_factor
                self._per_sample_time_cache[device.profile.name] = per_sample
                return per_sample
        return sc.time_per_sample_s if sc is not None else 0.0

    # -- scenario --------------------------------------------------------
    def _apply_scenario(
        self, selected: List[str], round_index: int
    ) -> Tuple[List[str], List[str], int, int]:
        """Split the selection into contributors vs dropouts/stragglers."""
        sc = self.scenario
        if sc is None:
            return selected, [], 0, 0
        rng = np.random.default_rng([sc.seed, round_index])
        dropped = rng.random(len(selected)) < sc.dropout_rate
        jitter = rng.lognormal(mean=0.0, sigma=sc.latency_jitter, size=len(selected))
        survivors = [cid for cid, d in zip(selected, dropped) if not d]
        n_dropouts = int(dropped.sum())
        stragglers: List[str] = []
        if sc.straggler_timeout_s is not None:
            surviving = set(survivors)
            keep = []
            for cid, jit in zip(selected, jitter):
                if cid not in surviving:
                    continue
                client = self.clients[cid]
                latency = client.n_samples * client.local_epochs * self._time_per_sample_s(cid) * jit
                (keep if latency <= sc.straggler_timeout_s else stragglers).append(cid)
            survivors = keep
        return survivors, stragglers, n_dropouts, len(stragglers)

    def _corrupt_deltas(self, contributors: Sequence[str], deltas: np.ndarray) -> int:
        """Overwrite byzantine clients' rows in place; returns how many."""
        sc = self.scenario
        if sc is None or not sc.byzantine_ids:
            return 0
        n = 0
        factor = -sc.byzantine_scale if sc.byzantine_mode == "flip" else sc.byzantine_scale
        for i, cid in enumerate(contributors):
            if cid in sc.byzantine_ids:
                deltas[i] *= factor
                n += 1
        return n

    # -- fault plane ------------------------------------------------------
    def _weights_digest(self) -> str:
        """Content address of the current global weights (checkpoint key)."""
        import hashlib

        return hashlib.sha256(
            np.ascontiguousarray(self.global_model.get_flat_weights()).tobytes()
        ).hexdigest()

    def _scheduler_rng_state(self) -> Optional[dict]:
        """The scheduler's post-selection RNG stream state, if it has one.

        Stock schedulers (``RandomScheduler`` / ``EligibilityScheduler``)
        keep a persistent ``_rng`` Generator, so a resumed round must
        restore — not re-draw — the stream or every later round diverges.
        """
        rng = getattr(self.scheduler, "_rng", None)
        if isinstance(rng, np.random.Generator):
            return rng.bit_generator.state
        return None

    def _restore_scheduler_rng(self, state: Optional[dict]) -> None:
        rng = getattr(self.scheduler, "_rng", None)
        if state is not None and isinstance(rng, np.random.Generator):
            rng.bit_generator.state = state

    def _plan_round(self, round_index: int, selected: List[str]) -> _RoundPlan:
        """Resolve every pre-training decision of a round.

        Applies the scenario (dropouts/stragglers), the fault plan's
        client crashes, simulates each surviving contributor's delta
        delivery under the retry policy, and runs the quorum check.  All
        of it is data-independent, so an abort can be decided before any
        work is scheduled and costs nothing.
        """
        contributors, stragglers, n_dropouts, n_stragglers = self._apply_scenario(selected, round_index)
        plan = _RoundPlan(
            selected=list(selected),
            contributors=list(contributors),
            stragglers=list(stragglers),
            n_dropouts=n_dropouts,
            n_stragglers=n_stragglers,
            trivial=self.scenario is None and self.fault_injector is None and self.quorum is None,
        )
        inj = self.fault_injector
        if inj is not None:
            crashed = set(inj.crashed_clients(round_index, plan.contributors))
            if crashed:
                plan.contributors = [cid for cid in plan.contributors if cid not in crashed]
                plan.n_crashes = len(crashed)
            policy = self.retry_policy or inj.retry_policy
            delivered_rows: List[int] = []
            tx_counts: List[int] = []
            corrupt_rows: List[int] = []
            for row, cid in enumerate(plan.contributors):
                outcomes = inj.delivery_outcomes(round_index, cid)
                verdict = simulate_delivery(
                    outcomes, policy, seed=[inj.plan.seed, round_index, row]
                )
                tx_counts.append(verdict.transmissions)
                plan.n_retransmits += verdict.retransmits
                plan.n_duplicates += verdict.duplicates
                if verdict.delivered:
                    delivered_rows.append(row)
                    if verdict.corrupt:
                        corrupt_rows.append(row)
                else:
                    plan.n_delivery_failures += 1
            plan.delivered_rows = delivered_rows
            plan.tx_counts = tx_counts
            plan.corrupt_rows = corrupt_rows
        if self.quorum is not None:
            plan.quorum_required = int(math.ceil(self.quorum * len(selected)))
            plan.quorum_counted = plan.n_delivered
            if self.quorum_mode == "verified":
                byzantine = self.scenario.byzantine_ids if self.scenario is not None else frozenset()
                suspect = set(plan.corrupt_rows or ())
                rows = range(len(plan.contributors)) if plan.delivered_rows is None else plan.delivered_rows
                plan.quorum_counted = sum(
                    1 for row in rows
                    if row not in suspect and plan.contributors[row] not in byzantine
                )
            if plan.quorum_counted < plan.quorum_required:
                plan.aborted = True
                mode = "" if self.quorum_mode == "delivered" else " verified"
                plan.abort_reason = (
                    f"quorum not met: {plan.quorum_counted}/{plan.quorum_required}"
                    f"{mode} deliverable of {len(selected)} selected"
                )
        return plan

    def _finish_round(self, round_index: int, result: RoundResult) -> RoundResult:
        """Commit a round's outcome: persist the commit record, drop the
        round's resume pointers and append to ``history``.

        The commit record (post-round weights + result dict + scheduler
        RNG stream) is the *between-rounds* crash anchor: a fresh process
        restores the latest commit, replays nothing before it and resumes
        any in-flight checkpoint after it — see
        :class:`repro.faults.durable.DurableCheckpointStore`."""
        if self.checkpoints is not None:
            self.checkpoints.record_commit(
                round_index,
                self.global_model.get_flat_weights(),
                result.as_dict(),
                self._scheduler_rng_state(),
            )
            self.checkpoints.clear_round(round_index)
        self.history.append(result)
        return result

    def _abort_result(self, round_index: int, plan: _RoundPlan) -> RoundResult:
        """A deterministic abort: the coordinator refuses to start a round
        it already knows cannot commit, so nothing is broadcast, trained,
        drained or merged — fleet planes, ledgers and RNG streams stay
        byte-untouched (the chaos suite asserts this against a no-fault
        world)."""
        result = RoundResult(
            round_index, [], 0.0, self._evaluate(), 0, 0,
            n_selected=len(plan.selected),
            n_dropouts=plan.n_dropouts,
            n_stragglers=plan.n_stragglers,
            n_crashes=plan.n_crashes,
            n_delivery_failures=plan.n_delivery_failures,
            n_retransmits=plan.n_retransmits,
            n_duplicates=plan.n_duplicates,
            quorum_required=plan.quorum_required,
            quorum_shortfall=plan.quorum_required - plan.quorum_counted,
            aborted=True,
            abort_reason=plan.abort_reason,
        )
        return self._finish_round(round_index, result)

    def _plan_from_checkpoint(self, ckpt: RoundCheckpoint) -> _RoundPlan:
        counts = ckpt.counts
        return _RoundPlan(
            selected=list(ckpt.selected),
            contributors=list(ckpt.contributors),
            stragglers=list(ckpt.stragglers),
            n_dropouts=int(counts.get("n_dropouts", 0)),
            n_stragglers=int(counts.get("n_stragglers", 0)),
            n_crashes=int(counts.get("n_crashes", 0)),
            delivered_rows=None if ckpt.delivered_rows is None else list(ckpt.delivered_rows),
            tx_counts=None if ckpt.tx_counts is None else list(ckpt.tx_counts),
            n_retransmits=int(counts.get("n_retransmits", 0)),
            n_duplicates=int(counts.get("n_duplicates", 0)),
            n_delivery_failures=int(counts.get("n_delivery_failures", 0)),
            quorum_required=int(counts.get("quorum_required", 0)),
            trivial=bool(counts.get("trivial", 0)),
        )

    def _checkpoint_for(self, round_index: int, plan: _RoundPlan) -> RoundCheckpoint:
        return RoundCheckpoint(
            round_index=round_index,
            model_digest=self._weights_digest(),
            selected=tuple(plan.selected),
            contributors=tuple(plan.contributors),
            stragglers=tuple(plan.stragglers),
            counts={
                "n_dropouts": plan.n_dropouts,
                "n_stragglers": plan.n_stragglers,
                "n_crashes": plan.n_crashes,
                "n_retransmits": plan.n_retransmits,
                "n_duplicates": plan.n_duplicates,
                "n_delivery_failures": plan.n_delivery_failures,
                "quorum_required": plan.quorum_required,
                "trivial": int(plan.trivial),
            },
            delivered_rows=None if plan.delivered_rows is None else tuple(plan.delivered_rows),
            tx_counts=None if plan.tx_counts is None else tuple(plan.tx_counts),
            scheduler_state=self._scheduler_rng_state(),
        )

    # -- round execution -------------------------------------------------
    def _collect_deltas(
        self,
        contributors: Sequence[str],
        round_index: Optional[int] = None,
        checkpoint: Optional[RoundCheckpoint] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Local training for the contributors: one vectorized sweep per
        homogeneous cohort, per-client fallback for the rest.

        With a ``checkpoint``, already-recorded cohorts are restored
        instead of retrained (their sweeps are pure functions of the
        global weights, so the restored rows are the bytes a retrain
        would produce), every fresh cohort is persisted to the engine's
        checkpoint store as it completes, and a fault-plan coordinator
        interrupt raises :class:`RoundInterrupted` *between* sweeps —
        after the finished work is safely checkpointed.
        """
        clients = [self.clients[cid] for cid in contributors]
        n_params = self.global_model.get_flat_weights().size
        deltas = np.zeros((len(clients), n_params))
        losses = np.zeros(len(clients))
        accs = np.zeros(len(clients))
        inj = self.fault_injector if checkpoint is not None else None
        completed = 0
        for position, cohort in enumerate(partition_cohorts(self.global_model, clients)):
            if cohort.kind == "idle":
                continue  # zero-sample clients keep their zero rows
            if checkpoint is not None and position in checkpoint.cohorts:
                payload = checkpoint.cohorts[position]
                idx = payload["indices"].tolist()
                deltas[idx] = payload["deltas"]
                losses[idx] = payload["losses"]
                accs[idx] = payload["accs"]
                completed += 1
                continue
            if inj is not None:
                after = inj.interrupt_after(round_index)
                if after is not None and completed >= after:
                    inj.fire_interrupt(round_index)
                    raise RoundInterrupted(round_index, self.checkpoints.put(checkpoint))
            if cohort.batched:
                sub = [clients[i] for i in cohort.indices]
                d, l, a = train_clients_batched(self.global_model, sub)
                idx = list(cohort.indices)
                deltas[idx] = d
                losses[idx] = l
                accs[idx] = a
            else:
                idx = list(cohort.indices)
                d = np.zeros((len(idx), n_params))
                l = np.zeros(len(idx))
                a = np.zeros(len(idx))
                for j, i in enumerate(idx):
                    update = clients[i].train_round(self.global_model)
                    d[j] = update.delta
                    l[j] = update.local_loss
                    a[j] = update.metrics.get("local_accuracy", 0.0)
                deltas[idx] = d
                losses[idx] = l
                accs[idx] = a
            completed += 1
            if checkpoint is not None:
                checkpoint.record_cohort(position, idx, deltas[idx], losses[idx], accs[idx])
                self.checkpoints.put(checkpoint)
        if inj is not None:
            # An interrupt scheduled at-or-past the cohort count fires
            # after the last sweep: all work is checkpointed, only the
            # commit is missing — resume replays it from restored rows.
            after = inj.interrupt_after(round_index)
            if after is not None and completed >= after:
                inj.fire_interrupt(round_index)
                raise RoundInterrupted(round_index, self.checkpoints.put(checkpoint))
        return deltas, losses, accs

    def run_round(
        self,
        round_index: int,
        device_context: Optional[Dict[str, Dict[str, object]]] = None,
        engine: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> RoundResult:
        """Execute one round and append its result to ``history``.

        ``engine="batched"`` (default) runs the vectorized cohort sweep;
        ``engine="oracle"`` runs the seed-era per-client loop kept as the
        equivalence and performance baseline; ``engine="sharded"``
        distributes the batched cohorts across ``workers`` processes (a
        :class:`~repro.runtime.sharded.ShardedFleetRunner`; assign
        :attr:`shard_runner` to customize backend/timeouts) and merges the
        delta stack at a barrier, byte-identical to the batched path
        (:mod:`repro.dispatch`).

        Fault semantics (``fault_injector`` / ``quorum`` /
        ``checkpoints``, see :mod:`repro.faults`): crashes, delivery
        verdicts and the quorum check resolve *before* training
        (:meth:`_plan_round`) identically on every engine path; a quorum
        shortfall aborts with zero side effects.  With a checkpoint
        store the cohort sweeps run in-process even under
        ``engine="sharded"`` (the sharded merge is all-or-nothing and
        byte-identical, so checkpointing mid-dispatch would add nothing)
        and a fault-plan coordinator interrupt raises
        :class:`~repro.faults.RoundInterrupted`; re-issuing the same
        ``run_round`` resumes from the checkpoint byte-identically.
        """
        engine = resolve_engine(
            engine, None, owner="FederatedEngine.run_round", extra=(ENGINE_SHARDED,)
        )
        if engine == ENGINE_ORACLE:
            return self._run_round_oracle(round_index, device_context=device_context)
        runner = None
        if engine == ENGINE_SHARDED:
            from repro.runtime.sharded import ShardedFleetRunner

            runner = self.shard_runner or ShardedFleetRunner(workers=workers)

        resume = None
        if self.checkpoints is not None:
            resume = self.checkpoints.latest_for(round_index, self._weights_digest())
        if resume is not None:
            selected = list(resume.selected)
            plan = self._plan_from_checkpoint(resume)
            self._restore_scheduler_rng(resume.scheduler_state)
            if self.fault_injector is not None:
                # The checkpoint *is* the evidence the interrupt fired: a
                # fresh process (whose injector never saw it fire) must
                # mark it spent or resume would re-crash forever.
                # In-process this is a no-op (already fired).
                self.fault_injector.fire_interrupt(round_index)
        else:
            context = device_context if device_context is not None else self.fleet_context()
            selected = self.scheduler.select(list(self.clients), round_index, context=context)
            if not selected:
                result = RoundResult(round_index, [], 0.0, self._evaluate(), 0, 0)
                return self._finish_round(round_index, result)
            plan = self._plan_round(round_index, selected)

        if plan.aborted:
            return self._abort_result(round_index, plan)
        contributors, stragglers = plan.contributors, plan.stragglers
        downlink = self._model_bytes * len(selected)
        if not contributors:
            # Stragglers still trained (and pay for it) even though every
            # update missed the deadline and the round aggregates nothing.
            self._drain_training_energy(stragglers)
            result = RoundResult(
                round_index, [], 0.0, self._evaluate(), 0, int(downlink),
                n_selected=len(selected), n_dropouts=plan.n_dropouts,
                n_stragglers=plan.n_stragglers, n_crashes=plan.n_crashes,
                quorum_required=plan.quorum_required,
            )
            return self._finish_round(round_index, result)

        checkpoint = resume
        if self.checkpoints is not None and checkpoint is None:
            checkpoint = self._checkpoint_for(round_index, plan)
            self.checkpoints.put(checkpoint)
        if runner is not None and checkpoint is None:
            deltas, losses, accs, shard_recoveries = runner.collect_deltas(self, contributors)
        else:
            deltas, losses, accs = self._collect_deltas(
                contributors, round_index=round_index, checkpoint=checkpoint
            )
            shard_recoveries = 0
        n_byzantine = self._corrupt_deltas(contributors, deltas)
        decompressed, nbytes = self.compressor.roundtrip_batch(deltas)
        if plan.delivered_rows is None:
            rows = None
            participants = list(contributors)
            uplink = int(nbytes.sum())
        else:
            rows = np.asarray(plan.delivered_rows, dtype=np.int64)
            participants = [contributors[i] for i in plan.delivered_rows]
            # Every attempt (and duplicate) of every contributor crossed
            # the uplink, including the ones that never arrived.
            uplink = int(np.sum(nbytes * np.asarray(plan.tx_counts, dtype=np.int64)))
        if participants:
            kept = decompressed if rows is None else decompressed[rows]
            kept_losses = losses if rows is None else losses[rows]
            kept_accs = accs if rows is None else accs[rows]
            n_samples = np.array(
                [self.clients[cid].n_samples for cid in participants], dtype=np.float64
            )
            if type(self.aggregator) is FedAvgAggregator:
                # Fast path: we already hold the stack FedAvg would build,
                # so skip the per-update object churn.
                delta = self.aggregator.aggregate_stack(kept, n_samples)
            else:
                updates = [
                    ClientUpdate(
                        client_id=cid,
                        delta=kept[i],
                        n_samples=self.clients[cid].n_samples,
                        local_loss=float(kept_losses[i]),
                        metrics={"local_accuracy": float(kept_accs[i])} if self.clients[cid].n_samples > 0 else {},
                    )
                    for i, cid in enumerate(participants)
                ]
                delta = self.aggregator.aggregate(updates)
            self.global_model.set_flat_weights(self.global_model.get_flat_weights() + delta)
            train_loss = float(np.mean(kept_losses))
            mean_local_accuracy = float(np.mean(kept_accs))
        else:
            # Everyone trained but nothing arrived (and no quorum was set
            # to abort): the round commits no delta.
            train_loss = 0.0
            mean_local_accuracy = 0.0
        self._drain_training_energy(list(contributors) + stragglers)

        result = RoundResult(
            round_index=round_index,
            participants=participants,
            train_loss=train_loss,
            global_accuracy=self._evaluate(),
            uplink_bytes=uplink,
            downlink_bytes=int(downlink),
            mean_local_accuracy=mean_local_accuracy,
            n_selected=len(selected),
            n_dropouts=plan.n_dropouts,
            n_stragglers=plan.n_stragglers,
            n_byzantine=n_byzantine,
            shard_recoveries=shard_recoveries,
            n_crashes=plan.n_crashes,
            n_delivery_failures=plan.n_delivery_failures,
            n_retransmits=plan.n_retransmits,
            n_duplicates=plan.n_duplicates,
            quorum_required=plan.quorum_required,
        )
        return self._finish_round(round_index, result)

    def run_round_legacy(
        self, round_index: int, device_context: Optional[Dict[str, Dict[str, object]]] = None
    ) -> RoundResult:
        """Deprecated alias for ``run_round(..., engine="oracle")``."""
        warnings.warn(
            'FederatedEngine.run_round_legacy is deprecated; use run_round(..., engine="oracle")',
            DeprecationWarning,
            stacklevel=2,
        )
        return self._run_round_oracle(round_index, device_context=device_context)

    def _run_round_oracle(
        self, round_index: int, device_context: Optional[Dict[str, Dict[str, object]]] = None
    ) -> RoundResult:
        """The seed-era per-client round loop, kept as the equivalence and
        performance baseline for ``bench_e6``.

        Scenarios and the fault plane resolve through the same
        :meth:`_plan_round` as the batched path — the dropout/straggler/
        byzantine RNG draws, crash sets, delivery verdicts and quorum
        decision are *identical* across ``engine="batched"|"oracle"|
        "sharded"`` (a differential test asserts this); only the local
        training and aggregation arithmetic stay scalar.  With no
        scenario, injector or quorum configured the loop is byte-for-byte
        the seed-era baseline (participants = selection, no energy
        drain), preserving every pre-fault-plane comparison.

        With a checkpoint store the loop checkpoints at *client*
        granularity (one single-row cohort per contributor, position =
        contributor row): a fault-plan interrupt's ``after_cohorts``
        therefore counts completed clients here, and a resumed round
        restores finished clients' deltas and trains only the rest —
        byte-identical to an uninterrupted oracle round, across process
        boundaries too (``train_round`` reseeds per call, so replay is
        exact).
        """
        resume = None
        if self.checkpoints is not None:
            resume = self.checkpoints.latest_for(round_index, self._weights_digest())
        if resume is not None:
            selected = list(resume.selected)
            plan = self._plan_from_checkpoint(resume)
            self._restore_scheduler_rng(resume.scheduler_state)
            if self.fault_injector is not None:
                self.fault_injector.fire_interrupt(round_index)
        else:
            context = device_context if device_context is not None else self.fleet_context()
            selected = self.scheduler.select(list(self.clients), round_index, context=context)
            if not selected:
                result = RoundResult(round_index, [], 0.0, self._evaluate(), 0, 0)
                return self._finish_round(round_index, result)
            plan = self._plan_round(round_index, selected)
        if plan.aborted:
            return self._abort_result(round_index, plan)
        contributors, stragglers = plan.contributors, plan.stragglers
        downlink = self._model_bytes * len(selected)
        if not contributors:
            self._drain_training_energy(stragglers)
            result = RoundResult(
                round_index, [], 0.0, self._evaluate(), 0, int(downlink),
                n_selected=len(selected), n_dropouts=plan.n_dropouts,
                n_stragglers=plan.n_stragglers, n_crashes=plan.n_crashes,
                quorum_required=plan.quorum_required,
            )
            return self._finish_round(round_index, result)
        checkpoint = resume
        if self.checkpoints is not None and checkpoint is None:
            checkpoint = self._checkpoint_for(round_index, plan)
            self.checkpoints.put(checkpoint)
        sc = self.scenario
        byz_factor = 1.0
        if sc is not None and sc.byzantine_ids:
            byz_factor = -sc.byzantine_scale if sc.byzantine_mode == "flip" else sc.byzantine_scale
        inj = self.fault_injector if checkpoint is not None else None
        raw: List[ClientUpdate] = []
        completed = 0
        for row, cid in enumerate(contributors):
            if checkpoint is not None and row in checkpoint.cohorts:
                payload = checkpoint.cohorts[row]
                client = self.clients[cid]
                raw.append(
                    ClientUpdate(
                        client_id=cid,
                        delta=payload["deltas"][0].copy(),
                        n_samples=client.n_samples,
                        local_loss=float(payload["losses"][0]),
                        metrics={"local_accuracy": float(payload["accs"][0])}
                        if client.n_samples > 0
                        else {},
                    )
                )
                completed += 1
                continue
            if inj is not None:
                after = inj.interrupt_after(round_index)
                if after is not None and completed >= after:
                    inj.fire_interrupt(round_index)
                    raise RoundInterrupted(round_index, self.checkpoints.put(checkpoint))
            update = self.clients[cid].train_round(self.global_model)
            raw.append(update)
            completed += 1
            if checkpoint is not None:
                checkpoint.record_cohort(
                    row,
                    [row],
                    update.delta[None, :],
                    [update.local_loss],
                    [update.metrics.get("local_accuracy", 0.0)],
                )
                self.checkpoints.put(checkpoint)
        if inj is not None:
            after = inj.interrupt_after(round_index)
            if after is not None and completed >= after:
                inj.fire_interrupt(round_index)
                raise RoundInterrupted(round_index, self.checkpoints.put(checkpoint))
        updates: List[ClientUpdate] = []
        uplink = 0
        n_byzantine = 0
        for row, (cid, update) in enumerate(zip(contributors, raw)):
            delta_out = update.delta
            if byz_factor != 1.0 and cid in sc.byzantine_ids:
                delta_out = delta_out * byz_factor
                n_byzantine += 1
            decompressed, compressed = self.compressor.roundtrip(delta_out)
            tx = 1 if plan.tx_counts is None else plan.tx_counts[row]
            uplink += compressed.nbytes * tx
            updates.append(
                ClientUpdate(
                    client_id=update.client_id,
                    delta=decompressed,
                    n_samples=update.n_samples,
                    local_loss=update.local_loss,
                    metrics=update.metrics,
                )
            )
        if plan.delivered_rows is None:
            delivered = updates
            participants = list(contributors)
        else:
            delivered = [updates[i] for i in plan.delivered_rows]
            participants = [contributors[i] for i in plan.delivered_rows]
        if delivered:
            delta = self.aggregator.aggregate(delivered)
            self.global_model.set_flat_weights(self.global_model.get_flat_weights() + delta)
            train_loss = float(np.mean([u.local_loss for u in delivered]))
            mean_local_accuracy = float(
                np.mean([u.metrics.get("local_accuracy", 0.0) for u in delivered])
            )
        else:
            train_loss = 0.0
            mean_local_accuracy = 0.0
        if not plan.trivial:
            # The seed-era baseline never drained energy; fault/scenario
            # runs mirror the batched path so fleet planes stay comparable
            # across engines.
            self._drain_training_energy(list(contributors) + stragglers)
        result = RoundResult(
            round_index=round_index,
            participants=participants,
            train_loss=train_loss,
            global_accuracy=self._evaluate(),
            uplink_bytes=int(uplink),
            downlink_bytes=int(downlink),
            mean_local_accuracy=mean_local_accuracy,
            n_selected=len(selected),
            n_dropouts=plan.n_dropouts,
            n_stragglers=plan.n_stragglers,
            n_byzantine=n_byzantine,
            n_crashes=plan.n_crashes,
            n_delivery_failures=plan.n_delivery_failures,
            n_retransmits=plan.n_retransmits,
            n_duplicates=plan.n_duplicates,
            quorum_required=plan.quorum_required,
        )
        return self._finish_round(round_index, result)

    def run(
        self,
        n_rounds: int,
        device_context: Optional[Dict[str, Dict[str, object]]] = None,
        engine: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> List[RoundResult]:
        """Run ``n_rounds`` federated rounds."""
        return [
            self.run_round(r, device_context=device_context, engine=engine, workers=workers)
            for r in range(n_rounds)
        ]

    # -- reporting --------------------------------------------------------
    def _evaluate(self) -> float:
        if self.eval_data is None:
            return 0.0
        x, y = self.eval_data
        return self.global_model.evaluate(x, y)["accuracy"]

    def total_communication(self) -> Dict[str, float]:
        """Aggregate uplink/downlink volume over all rounds so far."""
        return {
            "uplink_mb": sum(r.uplink_bytes for r in self.history) / 1e6,
            "downlink_mb": sum(r.downlink_bytes for r in self.history) / 1e6,
            "rounds": float(len(self.history)),
        }


def noniid_severity_sweep(
    dataset,
    alphas: Sequence[float],
    model_fn,
    n_clients: int = 10,
    rounds: int = 3,
    eval_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    seed: int = 0,
    **client_kwargs,
) -> Dict[float, Dict[str, float]]:
    """Run short federated trainings across a Dirichlet non-IID severity sweep.

    For each ``alpha`` the dataset is re-partitioned with
    :func:`repro.data.federated.partition_dirichlet`, a fresh model from
    ``model_fn()`` is trained for ``rounds`` engine rounds, and the sweep
    reports the partition's label-skew statistics next to the resulting
    accuracy — the paper's "federated learning must cope with heterogeneous
    client data" trade-off as one table.
    """
    from repro.data.federated import partition_dirichlet, partition_statistics

    results: Dict[float, Dict[str, float]] = {}
    for alpha in alphas:
        parts = partition_dirichlet(dataset, n_clients, alpha=alpha, seed=seed)
        stats = partition_statistics(parts, dataset.num_classes)
        clients = [FederatedClient(p, seed=seed + i, **client_kwargs) for i, p in enumerate(parts)]
        engine = FederatedEngine(model_fn(), clients, eval_data=eval_data)
        history = engine.run(rounds)
        results[float(alpha)] = {
            "final_accuracy": history[-1].global_accuracy,
            "final_train_loss": history[-1].train_loss,
            "mean_tv_distance": stats["mean_tv_distance"],
            "size_imbalance": stats["size_imbalance"],
        }
    return results
