"""Federated client: local training, personalization and semi-supervised labeling.

Each :class:`FederatedClient` owns a private :class:`~repro.data.ClientData`
shard (which never leaves the device), trains the global model locally and
returns only a (possibly compressed) weight update — the privacy argument of
paper Section III-D.  The client also implements:

* FedProx's proximal term (mu > 0) to tame non-IID drift,
* local personalization (continue training privately after a round),
* pseudo-labeling of the client's unlabeled pool (semi-supervised FL).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data.federated import ClientData
from repro.nn.losses import get_loss
from repro.nn.model import Sequential, batch_iterator
from repro.nn.optimizers import Optimizer, get_optimizer

__all__ = ["ClientUpdate", "FederatedClient"]


@dataclass
class ClientUpdate:
    """The result of one local training round on one client."""

    client_id: str
    delta: np.ndarray
    n_samples: int
    local_loss: float
    metrics: Dict[str, float] = field(default_factory=dict)


class FederatedClient:
    """On-device trainer for federated rounds."""

    def __init__(
        self,
        data: ClientData,
        local_epochs: int = 1,
        batch_size: int = 32,
        lr: float = 0.01,
        proximal_mu: float = 0.0,
        optimizer: str = "sgd",
        optimizer_kwargs: Optional[Dict[str, float]] = None,
        seed: int = 0,
    ) -> None:
        self.data = data
        self.local_epochs = int(local_epochs)
        self.batch_size = int(batch_size)
        self.lr = float(lr)
        self.proximal_mu = float(proximal_mu)
        self.optimizer_name = optimizer
        self.optimizer_kwargs: Dict[str, float] = dict(optimizer_kwargs or {})
        self.seed = int(seed)
        self.personal_model: Optional[Sequential] = None

    @property
    def client_id(self) -> str:
        return self.data.client_id

    @property
    def n_samples(self) -> int:
        return int(self.data.x.shape[0])

    # ------------------------------------------------------------------
    # optimizer introspection (vectorized engine support)
    # ------------------------------------------------------------------
    def _fresh_optimizer(self) -> Optional[Optimizer]:
        """The optimizer one local round would build, or None if that cannot
        be replayed in a batched cohort (a shared :class:`Optimizer` instance
        carries state across rounds; unknown names / kwargs fail anyway)."""
        if isinstance(self.optimizer_name, Optimizer):
            return None
        try:
            return get_optimizer(self.optimizer_name, lr=self.lr, **self.optimizer_kwargs)
        except (KeyError, TypeError, ValueError):
            return None

    def optimizer_state_layout(self) -> Optional[Tuple[str, ...]]:
        """Per-parameter optimizer state slots local training allocates
        (``()`` for SGD, ``("velocity",)`` for momentum, ``("m", "v", "t")``
        for Adam) — the layout the batched engine stacks per cohort.  None
        when the optimizer is not replayable in a batched sweep."""
        opt = self._fresh_optimizer()
        return None if opt is None else opt.state_slots

    def batched_optimizer_config(self) -> Optional[Dict[str, object]]:
        """Resolved optimizer family + hyper-parameters for cohort bucketing.

        Returns ``{"family": "sgd"|"momentum"|"adam", ...hyperparams}`` with
        every default filled in, or None when this client must take the
        per-client fallback path.
        """
        opt = self._fresh_optimizer()
        if opt is None:
            return None
        cfg: Dict[str, object] = dict(opt.hyperparams())
        cfg["family"] = type(opt).__name__.lower()
        return cfg

    # ------------------------------------------------------------------
    # local training
    # ------------------------------------------------------------------
    def _local_train(self, model: Sequential, global_weights: np.ndarray) -> float:
        """Train ``model`` in place on the local shard; returns mean loss."""
        loss_fn = get_loss("cross_entropy")
        opt = get_optimizer(self.optimizer_name, lr=self.lr, **self.optimizer_kwargs)
        rng = np.random.default_rng(self.seed)
        losses: List[float] = []
        for _epoch in range(self.local_epochs):
            for xb, yb in batch_iterator(self.data.x, self.data.y, self.batch_size, rng):
                out = model.forward(xb, training=True)
                loss, grad = loss_fn(out, yb)
                model.backward(grad)
                if self.proximal_mu > 0.0:
                    # FedProx: add mu * (w - w_global) to every gradient.
                    offset = 0
                    current = model.get_flat_weights()
                    prox = self.proximal_mu * (current - global_weights)
                    for layer in model.layers:
                        for key in sorted(layer.params):
                            size = layer.params[key].size
                            if key in layer.grads:
                                layer.grads[key] = layer.grads[key] + prox[offset : offset + size].reshape(
                                    layer.params[key].shape
                                )
                            offset += size
                    loss += 0.5 * self.proximal_mu * float(np.sum((current - global_weights) ** 2))
                opt.step(model._param_groups())
                losses.append(loss)
        return float(np.mean(losses)) if losses else 0.0

    def train_round(self, global_model: Sequential) -> ClientUpdate:
        """One federated round: local training, return the weight delta."""
        if self.n_samples == 0:
            return ClientUpdate(self.client_id, np.zeros(global_model.get_flat_weights().shape), 0, 0.0)
        local = global_model.clone(copy_weights=True, name=f"{global_model.name}@{self.client_id}")
        global_weights = global_model.get_flat_weights()
        mean_loss = self._local_train(local, global_weights)
        delta = local.get_flat_weights() - global_weights
        eval_metrics = local.evaluate(self.data.x, self.data.y)
        return ClientUpdate(
            client_id=self.client_id,
            delta=delta,
            n_samples=self.n_samples,
            local_loss=mean_loss,
            metrics={"local_accuracy": eval_metrics["accuracy"]},
        )

    # ------------------------------------------------------------------
    # personalization (paper Sec. III-D, "overfitted to a specific user")
    # ------------------------------------------------------------------
    def personalize(self, global_model: Sequential, epochs: int = 3, lr: Optional[float] = None) -> Sequential:
        """Fine-tune a private copy of the global model on local data only."""
        personal = global_model.clone(copy_weights=True, name=f"{global_model.name}-personal-{self.client_id}")
        if self.n_samples > 0:
            personal.fit(
                self.data.x,
                self.data.y,
                epochs=epochs,
                batch_size=self.batch_size,
                lr=lr if lr is not None else self.lr,
                optimizer="adam",
                seed=self.seed,
            )
        self.personal_model = personal
        return personal

    def evaluate_models(self, global_model: Sequential) -> Dict[str, float]:
        """Local-test accuracy of the global vs the personalized model."""
        out = {"global_accuracy": global_model.evaluate(self.data.x, self.data.y)["accuracy"]}
        if self.personal_model is not None:
            out["personal_accuracy"] = self.personal_model.evaluate(self.data.x, self.data.y)["accuracy"]
        return out

    # ------------------------------------------------------------------
    # semi-supervised: pseudo-label the unlabeled local pool
    # ------------------------------------------------------------------
    def pseudo_label(self, model: Sequential, confidence_threshold: float = 0.8) -> int:
        """Label confident unlabeled samples with the model's predictions.

        Returns the number of samples promoted into the labeled set.  This is
        the practical answer to the paper's observation that edge data is
        mostly unlabeled: the global model itself supplies labels when it is
        confident enough.
        """
        if self.data.x_unlabeled is None or self.data.x_unlabeled.shape[0] == 0:
            return 0
        probs = model.predict_proba(self.data.x_unlabeled)
        confidence = probs.max(axis=1)
        labels = probs.argmax(axis=1)
        keep = confidence >= confidence_threshold
        n_promoted = int(keep.sum())
        if n_promoted == 0:
            return 0
        self.data = ClientData(
            client_id=self.data.client_id,
            x=np.concatenate([self.data.x, self.data.x_unlabeled[keep]], axis=0),
            y=np.concatenate([self.data.y, labels[keep]], axis=0),
            x_unlabeled=self.data.x_unlabeled[~keep],
        )
        return n_promoted
