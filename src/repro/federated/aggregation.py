"""Server-side aggregation of client updates.

Implements the aggregation rules used by the federated experiments:

* :class:`FedAvgAggregator` — sample-count weighted averaging of deltas
  (McMahan et al., the paper's reference [32]).
* :class:`FedAdamAggregator` — server-side adaptive optimizer treating the
  averaged delta as a pseudo-gradient.
* :class:`TrimmedMeanAggregator` — robust aggregation that drops the most
  extreme client values per coordinate (a defence against faulty or
  malicious clients).
* :class:`SecureAggregator` — additive pairwise masking so the server only
  ever sees the *sum* of client updates, never an individual update
  (privacy requirement of paper Section III-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .client import ClientUpdate

__all__ = [
    "Aggregator",
    "FedAvgAggregator",
    "FedAdamAggregator",
    "TrimmedMeanAggregator",
    "SecureAggregator",
]


class Aggregator:
    """Base class: combine client deltas into one global delta."""

    def aggregate(self, updates: Sequence[ClientUpdate]) -> np.ndarray:
        raise NotImplementedError

    @staticmethod
    def _weights_from_counts(counts: np.ndarray) -> np.ndarray:
        counts = np.maximum(np.asarray(counts, dtype=np.float64), 0.0)
        total = counts.sum()
        if total <= 0:
            return np.full(counts.size, 1.0 / max(counts.size, 1))
        return counts / total

    @classmethod
    def _weights(cls, updates: Sequence[ClientUpdate]) -> np.ndarray:
        return cls._weights_from_counts(np.array([u.n_samples for u in updates], dtype=np.float64))


class FedAvgAggregator(Aggregator):
    """Sample-weighted average of client deltas."""

    def aggregate(self, updates: Sequence[ClientUpdate]) -> np.ndarray:
        if not updates:
            raise ValueError("no updates to aggregate")
        return self.aggregate_stack(
            np.stack([u.delta for u in updates], axis=0),
            np.array([u.n_samples for u in updates], dtype=np.float64),
        )

    def aggregate_stack(self, stacked: np.ndarray, n_samples: np.ndarray) -> np.ndarray:
        """FedAvg over an already-stacked ``(clients, dim)`` delta matrix.

        The vectorized :class:`~repro.federated.engine.FederatedEngine`
        holds the stack directly, so this skips the per-update objects.
        """
        if stacked.shape[0] == 0:
            raise ValueError("no updates to aggregate")
        weights = self._weights_from_counts(n_samples)
        return np.einsum("c,cd->d", weights, stacked, optimize=True)


class FedAdamAggregator(Aggregator):
    """Server Adam on the averaged pseudo-gradient (Reddi et al. style)."""

    def __init__(self, lr: float = 1.0, beta1: float = 0.9, beta2: float = 0.99, eps: float = 1e-6) -> None:
        self.lr = float(lr)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m: Optional[np.ndarray] = None
        self._v: Optional[np.ndarray] = None
        self._t = 0

    def aggregate(self, updates: Sequence[ClientUpdate]) -> np.ndarray:
        if not updates:
            raise ValueError("no updates to aggregate")
        weights = self._weights(updates)
        pseudo_grad = np.einsum("c,cd->d", weights, np.stack([u.delta for u in updates]), optimize=True)
        if self._m is None:
            self._m = np.zeros_like(pseudo_grad)
            self._v = np.zeros_like(pseudo_grad)
        self._t += 1
        self._m = self.beta1 * self._m + (1 - self.beta1) * pseudo_grad
        self._v = self.beta2 * self._v + (1 - self.beta2) * pseudo_grad**2
        m_hat = self._m / (1 - self.beta1**self._t)
        v_hat = self._v / (1 - self.beta2**self._t)
        return self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class TrimmedMeanAggregator(Aggregator):
    """Coordinate-wise trimmed mean: robust to a minority of bad clients."""

    def __init__(self, trim_fraction: float = 0.1) -> None:
        if not 0.0 <= trim_fraction < 0.5:
            raise ValueError("trim_fraction must be in [0, 0.5)")
        self.trim_fraction = float(trim_fraction)

    def aggregate(self, updates: Sequence[ClientUpdate]) -> np.ndarray:
        if not updates:
            raise ValueError("no updates to aggregate")
        stacked = np.stack([u.delta for u in updates], axis=0)
        n = stacked.shape[0]
        k = int(np.floor(self.trim_fraction * n))
        if k == 0 or n - 2 * k <= 0:
            return stacked.mean(axis=0)
        ordered = np.sort(stacked, axis=0)
        return ordered[k : n - k].mean(axis=0)


class SecureAggregator(Aggregator):
    """Additive-masking secure aggregation (Bonawitz et al., simplified).

    Every pair of participating clients agrees (via the shared seed derived
    from their ids) on a mask vector; one adds it, the other subtracts it.
    Masks cancel in the sum, so the server learns only the aggregate.  This
    class simulates both the client-side masking and the server-side
    unmasked aggregation so tests can verify the two properties:

    * the masked updates individually look like noise, and
    * the aggregate equals the FedAvg aggregate of the unmasked updates.
    """

    def __init__(self, mask_scale: float = 1.0, seed: int = 0) -> None:
        self.mask_scale = float(mask_scale)
        self.seed = int(seed)
        self._inner = FedAvgAggregator()

    def _pair_mask(self, id_a: str, id_b: str, dim: int) -> np.ndarray:
        key = hash((min(id_a, id_b), max(id_a, id_b), self.seed)) & 0xFFFFFFFF
        rng = np.random.default_rng(key)
        return rng.normal(0.0, self.mask_scale, size=dim)

    def mask_updates(self, updates: Sequence[ClientUpdate]) -> List[ClientUpdate]:
        """Return masked copies of the updates (what the server would see)."""
        ids = [u.client_id for u in updates]
        dim = updates[0].delta.shape[0] if updates else 0
        masked: List[ClientUpdate] = []
        weights = self._weights(updates)
        for i, update in enumerate(updates):
            mask = np.zeros(dim)
            for j, other in enumerate(ids):
                if other == update.client_id:
                    continue
                pair = self._pair_mask(update.client_id, other, dim)
                sign = 1.0 if update.client_id < other else -1.0
                # Scale the pairwise mask so it cancels under weighted averaging.
                mask += sign * pair / max(weights[i], 1e-12)
            masked.append(
                ClientUpdate(
                    client_id=update.client_id,
                    delta=update.delta + mask,
                    n_samples=update.n_samples,
                    local_loss=update.local_loss,
                    metrics=dict(update.metrics),
                )
            )
        return masked

    def aggregate(self, updates: Sequence[ClientUpdate]) -> np.ndarray:
        """Mask then aggregate; the result matches plain FedAvg up to float error."""
        if not updates:
            raise ValueError("no updates to aggregate")
        masked = self.mask_updates(updates)
        return self._inner.aggregate(masked)
