"""Federated server: orchestrates rounds, tracks communication and accuracy.

The :class:`FederatedServer` owns the global model and drives rounds:
select clients (scheduler) → broadcast the global weights → collect locally
trained updates → optionally compress / securely aggregate → apply the
aggregated delta → evaluate.  It accounts the bytes exchanged per round so
experiment E6 can compare compression schemes.

Round execution lives in :class:`~repro.federated.engine.FederatedEngine`:
``run_round`` buckets the selected clients into homogeneous cohorts
(optimizer family × batch size × epochs, via
:func:`~repro.federated.engine.partition_cohorts`) and trains each cohort
in one stacked batched sweep — SGD, momentum and Adam clients, with or
without Dropout — falling back to the per-client loop only for genuinely
unreplayable configurations, while ``run_round_legacy`` keeps the seed-era
loop as the equivalence baseline.  The server adds the client-facing
extras — personalization and the centralized upper-bound baseline.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.nn.model import Sequential

from .aggregation import Aggregator
from .client import FederatedClient
from .compression import UpdateCompressor
from .engine import FederatedEngine, RoundResult
from .scheduling import ClientScheduler

__all__ = ["RoundResult", "FederatedServer", "centralized_baseline"]


class FederatedServer(FederatedEngine):
    """Coordinates federated training across a set of clients.

    A thin facade over :class:`FederatedEngine` keeping the seed-era
    constructor signature (no fleet wiring) plus per-client
    personalization.
    """

    def __init__(
        self,
        global_model: Sequential,
        clients: Sequence[FederatedClient],
        aggregator: Optional[Aggregator] = None,
        compressor: Optional[UpdateCompressor] = None,
        scheduler: Optional[ClientScheduler] = None,
        eval_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> None:
        super().__init__(
            global_model,
            clients,
            aggregator=aggregator,
            compressor=compressor,
            scheduler=scheduler,
            eval_data=eval_data,
        )

    def personalize_all(self, epochs: int = 3) -> Dict[str, Dict[str, float]]:
        """Personalize every client and report global-vs-personal accuracy."""
        results: Dict[str, Dict[str, float]] = {}
        for cid, client in self.clients.items():
            client.personalize(self.global_model, epochs=epochs)
            results[cid] = client.evaluate_models(self.global_model)
        return results


def centralized_baseline(
    model: Sequential,
    clients: Sequence[FederatedClient],
    eval_data: Tuple[np.ndarray, np.ndarray],
    epochs: int = 5,
    lr: float = 0.01,
    batch_size: int = 32,
    seed: int = 0,
) -> Dict[str, float]:
    """Upper-bound baseline: pool all client data centrally and train.

    This is exactly what edge deployment is *not* allowed to do (the data
    would have to leave the devices); it serves as the accuracy reference
    that federated learning tries to approach in experiment E6.
    """
    x = np.concatenate([c.data.x for c in clients if c.n_samples > 0], axis=0)
    y = np.concatenate([c.data.y for c in clients if c.n_samples > 0], axis=0)
    model.fit(x, y, epochs=epochs, lr=lr, batch_size=batch_size, seed=seed)
    return {
        "accuracy": model.evaluate(eval_data[0], eval_data[1])["accuracy"],
        "n_samples": float(x.shape[0]),
    }
