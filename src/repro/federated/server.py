"""Federated server: orchestrates rounds, tracks communication and accuracy.

The :class:`FederatedServer` owns the global model and drives rounds:
select clients (scheduler) → broadcast the global weights → collect locally
trained updates → optionally compress / securely aggregate → apply the
aggregated delta → evaluate.  It accounts the bytes exchanged per round so
experiment E6 can compare compression schemes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.model import Sequential

from .aggregation import Aggregator, FedAvgAggregator
from .client import ClientUpdate, FederatedClient
from .compression import CompressedUpdate, NoCompression, UpdateCompressor
from .scheduling import ClientScheduler, RandomScheduler

__all__ = ["RoundResult", "FederatedServer", "centralized_baseline"]


@dataclass
class RoundResult:
    """Metrics of one federated round."""

    round_index: int
    participants: List[str]
    train_loss: float
    global_accuracy: float
    uplink_bytes: int
    downlink_bytes: int
    mean_local_accuracy: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "round": self.round_index,
            "n_participants": len(self.participants),
            "train_loss": round(self.train_loss, 4),
            "global_accuracy": round(self.global_accuracy, 4),
            "uplink_kb": round(self.uplink_bytes / 1024, 2),
            "downlink_kb": round(self.downlink_bytes / 1024, 2),
        }


class FederatedServer:
    """Coordinates federated training across a set of clients."""

    def __init__(
        self,
        global_model: Sequential,
        clients: Sequence[FederatedClient],
        aggregator: Optional[Aggregator] = None,
        compressor: Optional[UpdateCompressor] = None,
        scheduler: Optional[ClientScheduler] = None,
        eval_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> None:
        if not clients:
            raise ValueError("at least one client is required")
        self.global_model = global_model
        self.clients: Dict[str, FederatedClient] = {c.client_id: c for c in clients}
        self.aggregator = aggregator or FedAvgAggregator()
        self.compressor = compressor or NoCompression()
        self.scheduler = scheduler or RandomScheduler(fraction=1.0)
        self.eval_data = eval_data
        self.history: List[RoundResult] = []
        self._model_bytes = self.global_model.get_flat_weights().size * 4

    # ------------------------------------------------------------------
    def run_round(self, round_index: int, device_context: Optional[Dict[str, Dict[str, object]]] = None) -> RoundResult:
        """Execute one round and append its result to ``history``."""
        client_ids = list(self.clients)
        selected = self.scheduler.select(client_ids, round_index, context=device_context)
        if not selected:
            # Nothing eligible this round: record an empty round.
            result = RoundResult(round_index, [], 0.0, self._evaluate(), 0, 0)
            self.history.append(result)
            return result

        updates: List[ClientUpdate] = []
        uplink = 0
        for cid in selected:
            update = self.clients[cid].train_round(self.global_model)
            decompressed, compressed = self.compressor.roundtrip(update.delta)
            uplink += compressed.nbytes
            updates.append(
                ClientUpdate(
                    client_id=update.client_id,
                    delta=decompressed,
                    n_samples=update.n_samples,
                    local_loss=update.local_loss,
                    metrics=update.metrics,
                )
            )
        delta = self.aggregator.aggregate(updates)
        new_weights = self.global_model.get_flat_weights() + delta
        self.global_model.set_flat_weights(new_weights)

        result = RoundResult(
            round_index=round_index,
            participants=selected,
            train_loss=float(np.mean([u.local_loss for u in updates])),
            global_accuracy=self._evaluate(),
            uplink_bytes=int(uplink),
            downlink_bytes=int(self._model_bytes * len(selected)),
            mean_local_accuracy=float(np.mean([u.metrics.get("local_accuracy", 0.0) for u in updates])),
        )
        self.history.append(result)
        return result

    def run(self, n_rounds: int, device_context: Optional[Dict[str, Dict[str, object]]] = None) -> List[RoundResult]:
        """Run ``n_rounds`` federated rounds."""
        return [self.run_round(r, device_context=device_context) for r in range(n_rounds)]

    # ------------------------------------------------------------------
    def _evaluate(self) -> float:
        if self.eval_data is None:
            return 0.0
        x, y = self.eval_data
        return self.global_model.evaluate(x, y)["accuracy"]

    def total_communication(self) -> Dict[str, float]:
        """Aggregate uplink/downlink volume over all rounds so far."""
        return {
            "uplink_mb": sum(r.uplink_bytes for r in self.history) / 1e6,
            "downlink_mb": sum(r.downlink_bytes for r in self.history) / 1e6,
            "rounds": float(len(self.history)),
        }

    def personalize_all(self, epochs: int = 3) -> Dict[str, Dict[str, float]]:
        """Personalize every client and report global-vs-personal accuracy."""
        results: Dict[str, Dict[str, float]] = {}
        for cid, client in self.clients.items():
            client.personalize(self.global_model, epochs=epochs)
            results[cid] = client.evaluate_models(self.global_model)
        return results


def centralized_baseline(
    model: Sequential,
    clients: Sequence[FederatedClient],
    eval_data: Tuple[np.ndarray, np.ndarray],
    epochs: int = 5,
    lr: float = 0.01,
    batch_size: int = 32,
    seed: int = 0,
) -> Dict[str, float]:
    """Upper-bound baseline: pool all client data centrally and train.

    This is exactly what edge deployment is *not* allowed to do (the data
    would have to leave the devices); it serves as the accuracy reference
    that federated learning tries to approach in experiment E6.
    """
    x = np.concatenate([c.data.x for c in clients if c.n_samples > 0], axis=0)
    y = np.concatenate([c.data.y for c in clients if c.n_samples > 0], axis=0)
    model.fit(x, y, epochs=epochs, lr=lr, batch_size=batch_size, seed=seed)
    return {
        "accuracy": model.evaluate(eval_data[0], eval_data[1])["accuracy"],
        "n_samples": float(x.shape[0]),
    }
