"""Update compression for communication-efficient federated learning.

Paper Section III-D: "Several techniques have been developed to reduce the
communication overhead of the Federated Learning techniques … especially
useful when Federated Learning is used in wireless sensor nodes as network
communication is expensive in terms of energy consumption."

Implemented compressors (all operate on a flat update vector):

* :class:`NoCompression` — baseline.
* :class:`TopKSparsifier` — keep the k largest-magnitude coordinates.
* :class:`SignSGDCompressor` — 1-bit sign compression with a global scale.
* :class:`TernaryCompressor` — {-1, 0, +1} codes with a learned scale
  (ternary compression, ref [40]).
* :class:`QuantizedCompressor` — uniform b-bit quantization of the update.

Each compressor reports the compressed payload size in bytes so experiments
can trade accuracy against uplink volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "CompressedUpdate",
    "UpdateCompressor",
    "NoCompression",
    "TopKSparsifier",
    "SignSGDCompressor",
    "TernaryCompressor",
    "QuantizedCompressor",
    "get_compressor",
]


@dataclass
class CompressedUpdate:
    """A compressed client update plus the metadata needed to decode it."""

    kind: str
    payload: Dict[str, np.ndarray]
    original_dim: int
    nbytes: int

    def ratio(self) -> float:
        """Compression ratio versus float32 dense transmission."""
        dense = self.original_dim * 4
        return dense / max(self.nbytes, 1)


class UpdateCompressor:
    """Base interface: ``compress`` a flat vector, ``decompress`` it back."""

    name = "base"

    def compress(self, update: np.ndarray) -> CompressedUpdate:
        raise NotImplementedError

    def decompress(self, compressed: CompressedUpdate) -> np.ndarray:
        raise NotImplementedError

    def roundtrip(self, update: np.ndarray) -> Tuple[np.ndarray, CompressedUpdate]:
        """Compress then decompress (what the server effectively receives)."""
        compressed = self.compress(np.asarray(update, dtype=np.float64))
        return self.decompress(compressed), compressed

    @staticmethod
    def _as_stack(updates: np.ndarray) -> np.ndarray:
        updates = np.asarray(updates, dtype=np.float64)
        if updates.ndim != 2:
            raise ValueError(f"expected a (clients, dim) stack, got shape {updates.shape}")
        return updates

    def roundtrip_batch(self, updates: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Round-trip a stack of updates ``(clients, dim)`` in one call.

        Returns ``(decompressed, nbytes)`` where ``decompressed`` has the
        input's shape and ``nbytes[i]`` is the payload size the per-vector
        :meth:`compress` would report for row ``i``.  The base implementation
        loops over rows; the built-in compressors override it with fully
        vectorized versions that produce bit-identical results.
        """
        updates = self._as_stack(updates)
        decompressed = np.empty_like(updates)
        nbytes = np.empty(updates.shape[0], dtype=np.int64)
        for i, row in enumerate(updates):
            decoded, compressed = self.roundtrip(row)
            decompressed[i] = decoded
            nbytes[i] = compressed.nbytes
        return decompressed, nbytes


class NoCompression(UpdateCompressor):
    """Dense float32 transmission (the baseline)."""

    name = "none"

    def compress(self, update: np.ndarray) -> CompressedUpdate:
        update = np.asarray(update, dtype=np.float64)
        return CompressedUpdate(
            kind=self.name,
            payload={"values": update.astype(np.float32)},
            original_dim=update.size,
            nbytes=update.size * 4,
        )

    def decompress(self, compressed: CompressedUpdate) -> np.ndarray:
        return compressed.payload["values"].astype(np.float64)

    def roundtrip_batch(self, updates: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        updates = self._as_stack(updates)
        decompressed = updates.astype(np.float32).astype(np.float64)
        return decompressed, np.full(updates.shape[0], updates.shape[1] * 4, dtype=np.int64)


class TopKSparsifier(UpdateCompressor):
    """Keep only the ``k`` largest-magnitude coordinates of the update."""

    name = "topk"

    def __init__(self, fraction: float = 0.1) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self.fraction = float(fraction)

    def compress(self, update: np.ndarray) -> CompressedUpdate:
        update = np.asarray(update, dtype=np.float64)
        k = max(1, int(np.ceil(self.fraction * update.size)))
        idx = np.argpartition(np.abs(update), -k)[-k:]
        values = update[idx]
        # 4 bytes per index (uint32) + 4 bytes per float32 value.
        nbytes = k * 8
        return CompressedUpdate(
            kind=self.name,
            payload={"indices": idx.astype(np.uint32), "values": values.astype(np.float32)},
            original_dim=update.size,
            nbytes=nbytes,
        )

    def decompress(self, compressed: CompressedUpdate) -> np.ndarray:
        out = np.zeros(compressed.original_dim, dtype=np.float64)
        out[compressed.payload["indices"].astype(np.int64)] = compressed.payload["values"].astype(np.float64)
        return out

    def roundtrip_batch(self, updates: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        updates = self._as_stack(updates)
        n, dim = updates.shape
        k = max(1, int(np.ceil(self.fraction * dim)))
        idx = np.argpartition(np.abs(updates), -k, axis=1)[:, -k:]
        rows = np.arange(n)[:, None]
        decompressed = np.zeros_like(updates)
        decompressed[rows, idx] = updates[rows, idx].astype(np.float32).astype(np.float64)
        return decompressed, np.full(n, k * 8, dtype=np.int64)


class SignSGDCompressor(UpdateCompressor):
    """1-bit sign compression with an L1-preserving global scale."""

    name = "signsgd"

    def compress(self, update: np.ndarray) -> CompressedUpdate:
        update = np.asarray(update, dtype=np.float64)
        scale = float(np.mean(np.abs(update))) if update.size else 0.0
        signs = np.signbit(update)  # True for negative
        nbytes = int(np.ceil(update.size / 8)) + 4
        return CompressedUpdate(
            kind=self.name,
            payload={"signs": np.packbits(signs), "scale": np.array([scale], dtype=np.float32)},
            original_dim=update.size,
            nbytes=nbytes,
        )

    def decompress(self, compressed: CompressedUpdate) -> np.ndarray:
        signs = np.unpackbits(compressed.payload["signs"], count=compressed.original_dim).astype(bool)
        scale = float(compressed.payload["scale"][0])
        return np.where(signs, -scale, scale)

    def roundtrip_batch(self, updates: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        updates = self._as_stack(updates)
        n, dim = updates.shape
        if dim == 0:
            return np.zeros_like(updates), np.full(n, 4, dtype=np.int64)
        scale = np.abs(updates).mean(axis=1).astype(np.float32).astype(np.float64)[:, None]
        decompressed = np.where(np.signbit(updates), -scale, scale)
        return decompressed, np.full(n, int(np.ceil(dim / 8)) + 4, dtype=np.int64)


class TernaryCompressor(UpdateCompressor):
    """Ternary {-1, 0, +1} compression with threshold and optimal scale."""

    name = "ternary"

    def __init__(self, threshold_factor: float = 0.7) -> None:
        self.threshold_factor = float(threshold_factor)

    def compress(self, update: np.ndarray) -> CompressedUpdate:
        update = np.asarray(update, dtype=np.float64)
        if update.size == 0:
            return CompressedUpdate(self.name, {"codes": np.zeros(0, np.uint8), "scale": np.zeros(1, np.float32)}, 0, 4)
        threshold = self.threshold_factor * float(np.mean(np.abs(update)))
        codes = np.zeros(update.shape, dtype=np.int8)
        codes[update > threshold] = 1
        codes[update < -threshold] = -1
        nonzero = update[codes != 0]
        scale = float(np.mean(np.abs(nonzero))) if nonzero.size else 0.0
        # 2 bits/coordinate packed: store as uint8 codes (0,1,2) then packbits of 2-bit pairs ~ size/4.
        nbytes = int(np.ceil(update.size / 4)) + 4
        return CompressedUpdate(
            kind=self.name,
            payload={"codes": (codes + 1).astype(np.uint8), "scale": np.array([scale], dtype=np.float32)},
            original_dim=update.size,
            nbytes=nbytes,
        )

    def decompress(self, compressed: CompressedUpdate) -> np.ndarray:
        codes = compressed.payload["codes"].astype(np.int64) - 1
        scale = float(compressed.payload["scale"][0])
        return codes.astype(np.float64) * scale

    def roundtrip_batch(self, updates: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        updates = self._as_stack(updates)
        n, dim = updates.shape
        if dim == 0:
            return np.zeros_like(updates), np.full(n, 4, dtype=np.int64)
        magnitude = np.abs(updates)
        threshold = self.threshold_factor * magnitude.mean(axis=1, keepdims=True)
        codes = np.zeros(updates.shape, dtype=np.float64)
        codes[updates > threshold] = 1.0
        codes[updates < -threshold] = -1.0
        nonzero = codes != 0
        count = nonzero.sum(axis=1)
        total = np.where(nonzero, magnitude, 0.0).sum(axis=1)
        scale = np.where(count > 0, total / np.maximum(count, 1), 0.0)
        scale = scale.astype(np.float32).astype(np.float64)[:, None]
        return codes * scale, np.full(n, int(np.ceil(dim / 4)) + 4, dtype=np.int64)


class QuantizedCompressor(UpdateCompressor):
    """Uniform b-bit quantization of the update vector."""

    name = "quantized"

    def __init__(self, bits: int = 8) -> None:
        if bits not in (2, 4, 8, 16):
            raise ValueError("bits must be one of 2, 4, 8, 16")
        self.bits = int(bits)

    def compress(self, update: np.ndarray) -> CompressedUpdate:
        update = np.asarray(update, dtype=np.float64)
        lo = float(update.min()) if update.size else 0.0
        hi = float(update.max()) if update.size else 0.0
        qmax = 2**self.bits - 1
        scale = (hi - lo) / qmax if hi > lo else 1.0
        codes = np.clip(np.round((update - lo) / scale), 0, qmax).astype(np.uint16)
        nbytes = int(np.ceil(update.size * self.bits / 8)) + 8
        return CompressedUpdate(
            kind=f"{self.name}{self.bits}",
            payload={"codes": codes, "lo": np.array([lo], np.float32), "scale": np.array([scale], np.float32)},
            original_dim=update.size,
            nbytes=nbytes,
        )

    def decompress(self, compressed: CompressedUpdate) -> np.ndarray:
        codes = compressed.payload["codes"].astype(np.float64)
        lo = float(compressed.payload["lo"][0])
        scale = float(compressed.payload["scale"][0])
        return codes * scale + lo

    def roundtrip_batch(self, updates: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        updates = self._as_stack(updates)
        n, dim = updates.shape
        if dim == 0:
            return np.zeros_like(updates), np.full(n, 8, dtype=np.int64)
        lo = updates.min(axis=1, keepdims=True)
        hi = updates.max(axis=1, keepdims=True)
        qmax = 2**self.bits - 1
        scale = np.where(hi > lo, (hi - lo) / qmax, 1.0)
        codes = np.clip(np.round((updates - lo) / scale), 0, qmax)
        # Decode with the float32-cast lo/scale the payload would carry.
        lo32 = lo.astype(np.float32).astype(np.float64)
        scale32 = scale.astype(np.float32).astype(np.float64)
        nbytes = np.full(n, int(np.ceil(dim * self.bits / 8)) + 8, dtype=np.int64)
        return codes * scale32 + lo32, nbytes


def get_compressor(name: str, **kwargs) -> UpdateCompressor:
    """Factory: ``none``, ``topk``, ``signsgd``, ``ternary``, ``quantized``."""
    key = str(name).lower()
    if key == "none":
        return NoCompression()
    if key == "topk":
        return TopKSparsifier(**kwargs)
    if key == "signsgd":
        return SignSGDCompressor()
    if key == "ternary":
        return TernaryCompressor(**kwargs)
    if key == "quantized":
        return QuantizedCompressor(**kwargs)
    raise KeyError(f"unknown compressor {name!r}")
