"""Client selection strategies for federated rounds.

Paper Section III-D: "It might be possible to temporarily store some of the
data locally and to calculate the model updates when the device is idle or
connected to a charger."  Client schedulers decide which devices take part
in a round based on random sampling or on device context (battery, network,
idleness) provided by the fleet simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["ClientScheduler", "RandomScheduler", "EligibilityScheduler", "EnergyAwareScheduler"]


def _context_float(ctx: Dict[str, object], key: str, default: float = 0.0) -> float:
    """A numeric context value, tolerating missing, None or junk entries.

    Device context snapshots come from heterogeneous simulated firmware;
    a missing or malformed field must make the device *ineligible*, never
    crash the round.
    """
    value = ctx.get(key, default)
    try:
        return float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return default


class ClientScheduler:
    """Base interface: select client ids to participate in a round."""

    def select(self, client_ids: Sequence[str], round_index: int, context: Optional[Dict[str, Dict[str, object]]] = None) -> List[str]:
        raise NotImplementedError


class RandomScheduler(ClientScheduler):
    """Uniformly sample a fixed fraction of clients each round."""

    def __init__(self, fraction: float = 0.3, min_clients: int = 2, seed: int = 0) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self.fraction = float(fraction)
        self.min_clients = int(min_clients)
        self._rng = np.random.default_rng(seed)

    def select(self, client_ids: Sequence[str], round_index: int, context: Optional[Dict[str, Dict[str, object]]] = None) -> List[str]:
        if not client_ids:
            return []
        n = max(self.min_clients, int(round(self.fraction * len(client_ids))))
        n = min(n, len(client_ids))
        picked = self._rng.choice(len(client_ids), size=n, replace=False)
        return [client_ids[i] for i in sorted(picked)]


class EligibilityScheduler(ClientScheduler):
    """Only select clients whose device context satisfies the eligibility rule.

    The context dict maps client id to the device's ``context()`` snapshot
    (see :meth:`repro.devices.fleet.EdgeDevice.context`).  Clients without
    context are considered ineligible.
    """

    def __init__(self, max_clients: Optional[int] = None, require_unmetered: bool = True, min_soc: float = 0.6, seed: int = 0) -> None:
        self.max_clients = max_clients
        self.require_unmetered = bool(require_unmetered)
        self.min_soc = float(min_soc)
        self._rng = np.random.default_rng(seed)

    def _eligible(self, ctx: Dict[str, object]) -> bool:
        if not isinstance(ctx, dict) or not ctx.get("network_online", False):
            return False
        if self.require_unmetered and ctx.get("metered", False):
            return False
        if not ctx.get("idle", False):
            return False
        plugged = ctx.get("power_state") == "plugged_in"
        return plugged or _context_float(ctx, "state_of_charge") >= self.min_soc

    def select(self, client_ids: Sequence[str], round_index: int, context: Optional[Dict[str, Dict[str, object]]] = None) -> List[str]:
        context = context or {}
        eligible = [cid for cid in client_ids if cid in context and self._eligible(context[cid])]
        if self.max_clients is not None and len(eligible) > self.max_clients:
            picked = self._rng.choice(len(eligible), size=self.max_clients, replace=False)
            eligible = [eligible[i] for i in sorted(picked)]
        return eligible


class EnergyAwareScheduler(ClientScheduler):
    """Prefer plugged-in / high-battery clients, filling up to ``max_clients``.

    Ranks clients by a simple score: plugged-in clients first, then by state
    of charge; ties broken deterministically by id.  This models the
    practical deployment policy of running training only where the energy
    cost is acceptable.
    """

    def __init__(self, max_clients: int = 10) -> None:
        if max_clients <= 0:
            raise ValueError("max_clients must be positive")
        self.max_clients = int(max_clients)

    def select(self, client_ids: Sequence[str], round_index: int, context: Optional[Dict[str, Dict[str, object]]] = None) -> List[str]:
        context = context or {}

        def score(cid: str) -> tuple:
            ctx = context.get(cid) or {}
            plugged = 1 if ctx.get("power_state") == "plugged_in" else 0
            soc = _context_float(ctx, "state_of_charge")
            online = 1 if ctx.get("network_online", False) else 0
            return (online, plugged, soc)

        candidates = [cid for cid in client_ids if (context.get(cid) or {}).get("network_online", False)]
        ranked = sorted(candidates, key=lambda cid: (score(cid), cid), reverse=True)
        return ranked[: self.max_clients]
