"""Disk-backed crash-recovery plane: durable checkpoints, plans, ledgers, decisions.

PR 9 made federated rounds transactional, but every durability primitive
lived in process memory — a coordinator that actually dies (SIGKILL,
OOM, node loss) lost all of it.  This module persists the fault plane's
state to a run directory so a *fresh process* resumes byte-identically:

``DurableCheckpointStore``
    The :class:`~repro.faults.checkpoint.CheckpointStore` interface
    (``put`` / ``get`` / ``latest_for`` / ``clear_round``) backed by a
    manifest + content-addressed payload files, plus committed-round
    records (:meth:`~DurableCheckpointStore.record_commit` /
    :meth:`~DurableCheckpointStore.latest_commit`), fault plans, exported
    :class:`~repro.billing.metering.UsageLedger` segments, and a
    merge-intent WAL for the sharded runner's barrier merge.

``DurableDecisionLog``
    An append-only, digest-verified log of lifecycle decision records
    (including promotion audit maps) that
    :class:`~repro.lifecycle.LifecyclePipeline` replays on restart.

Write protocol (see :mod:`repro.persist`): every payload file commits
via write-to-temp → fsync → atomic-rename, then the manifest — itself
carrying a self-digest — is atomically replaced to reference it.  A
crash between the two leaves an *orphan* payload file that no manifest
entry references: invisible to every reader, never resumed.  A crash
mid-payload-write leaves only a ``*.tmp-*`` file, equally invisible.
Every read verifies the manifest's recorded size + sha256 digest before
parsing a single byte; checkpoints additionally recompute their content
digest after parsing.  Any mismatch — truncation, bit flip, a manifest
referencing a deleted file, a tampered manifest — raises
:class:`CheckpointCorrupted` with the offending path and digests.  No
code path loads unverified bytes.

Persisting a new record kind
----------------------------
The store is generic below the checkpoint/commit layer; adding a record
kind is three lines, no schema migration:

1. Pick a kind slug (``"my-kind"``) and a JSON-safe payload dict.
2. Write with ``store.put_record("my-kind", name, payload)`` — the
   payload file and manifest entry commit atomically, stamped with a
   monotonic sequence number.
3. Read back with ``store.get_record("my-kind", name)`` (digest
   verified) or iterate ``store.record_names("my-kind")`` in write
   order.  That is exactly how fault plans (``put_plan``), ledger
   segments (``put_ledger_segments``) and merge intents
   (``begin_merge``) are built; read their few-line implementations as
   worked examples.

For two-phase records (visible only after a second commit), write with
``committed=False`` and flip it later — ``begin_merge`` /
``commit_merge`` do this so a crash *during* a sharded barrier merge
leaves an uncommitted intent that readers skip: the disk never holds a
partial merge.
"""

from __future__ import annotations

import io
import json
import os
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.persist import (
    IntegrityError,
    atomic_write_bytes,
    atomic_write_json,
    canonical_json,
    read_bytes_verified,
    read_json_verified,
    sha256_bytes,
)

from .checkpoint import CheckpointStore, RoundCheckpoint
from .plan import FaultPlan

__all__ = ["CheckpointCorrupted", "DurableCheckpointStore", "DurableDecisionLog"]

_MANIFEST_NAME = "MANIFEST.json"
_FORMAT = 1


class CheckpointCorrupted(IntegrityError):
    """A persisted fault-plane artifact failed verification.

    Raised — never silently skipped — whenever resuming would require
    trusting bytes that do not match their recorded digest: a truncated
    or bit-flipped payload, a manifest entry whose file is gone (stale
    manifest), a tampered manifest, or an explicit resume against a
    mismatched model digest.  Inherits ``path`` / ``expected`` /
    ``actual`` from :class:`repro.persist.IntegrityError`.
    """


def _corrupt(exc: IntegrityError) -> CheckpointCorrupted:
    """Re-type a persistence-layer integrity failure as CheckpointCorrupted."""
    err = CheckpointCorrupted(exc.path, exc.reason, expected=exc.expected, actual=exc.actual)
    err.__cause__ = exc
    return err


# ---------------------------------------------------------------------------
# checkpoint (de)serialization
# ---------------------------------------------------------------------------

def _checkpoint_to_bytes(ckpt: RoundCheckpoint) -> bytes:
    """One npz container: canonical JSON metadata + raw cohort arrays."""
    meta = {
        "round_index": ckpt.round_index,
        "model_digest": ckpt.model_digest,
        "selected": list(ckpt.selected),
        "contributors": list(ckpt.contributors),
        "stragglers": list(ckpt.stragglers),
        "counts": {k: int(v) for k, v in sorted(ckpt.counts.items())},
        "delivered_rows": None if ckpt.delivered_rows is None else list(ckpt.delivered_rows),
        "tx_counts": None if ckpt.tx_counts is None else list(ckpt.tx_counts),
        "scheduler_state": ckpt.scheduler_state,
        "cohort_positions": sorted(int(p) for p in ckpt.cohorts),
    }
    arrays: Dict[str, np.ndarray] = {
        "meta": np.frombuffer(canonical_json(meta), dtype=np.uint8)
    }
    for position in sorted(ckpt.cohorts):
        payload = ckpt.cohorts[position]
        for key in ("indices", "deltas", "losses", "accs"):
            arrays[f"c{position}_{key}"] = np.ascontiguousarray(payload[key])
    buf = io.BytesIO()
    np.savez(buf, **arrays)
    return buf.getvalue()


def _checkpoint_from_bytes(data: bytes, path: str) -> RoundCheckpoint:
    try:
        with np.load(io.BytesIO(data), allow_pickle=False) as archive:
            meta = json.loads(bytes(archive["meta"].tobytes()).decode())
            ckpt = RoundCheckpoint(
                round_index=int(meta["round_index"]),
                model_digest=str(meta["model_digest"]),
                selected=tuple(meta["selected"]),
                contributors=tuple(meta["contributors"]),
                stragglers=tuple(meta["stragglers"]),
                counts={k: int(v) for k, v in meta["counts"].items()},
                delivered_rows=None
                if meta["delivered_rows"] is None
                else tuple(int(r) for r in meta["delivered_rows"]),
                tx_counts=None
                if meta["tx_counts"] is None
                else tuple(int(t) for t in meta["tx_counts"]),
                scheduler_state=meta["scheduler_state"],
            )
            for position in meta["cohort_positions"]:
                ckpt.record_cohort(
                    int(position),
                    archive[f"c{position}_indices"],
                    archive[f"c{position}_deltas"],
                    archive[f"c{position}_losses"],
                    archive[f"c{position}_accs"],
                )
    except (KeyError, ValueError, OSError, json.JSONDecodeError) as exc:
        raise CheckpointCorrupted(path, f"checkpoint payload unparseable ({exc})") from exc
    return ckpt


# ---------------------------------------------------------------------------
# the manifest-backed store
# ---------------------------------------------------------------------------

class DurableCheckpointStore(CheckpointStore):
    """A :class:`CheckpointStore` whose state survives process death.

    Layout under ``root``::

        MANIFEST.json            self-digested index of everything below
        objects/<digest>.npz     content-addressed RoundCheckpoint payloads
        commits/round-<n>.npz    committed-round records (weights + result)
        records/<kind>/<seq>.json  generic JSON records (plans, ledger
                                   segments, merge intents, ...)

    Construction on an existing directory replays the manifest; a fresh
    process sees exactly the committed state of the dead one.  The
    in-memory :class:`CheckpointStore` API contract holds (``latest_for``
    returns ``None`` for an unknown ``(round, model_digest)`` key, the
    archive outlives ``clear_round``), with one addition: any access
    that *would* return persisted bytes failing verification raises
    :class:`CheckpointCorrupted` instead of resuming partially.
    """

    def __init__(self, root: str) -> None:
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)
        self._manifest_path = os.path.join(self.root, _MANIFEST_NAME)
        self._manifest = self._load_manifest()

    # -- manifest ---------------------------------------------------------
    def _empty_manifest(self) -> Dict[str, object]:
        return {
            "format": _FORMAT,
            "seq": 0,
            "checkpoints": {},
            "latest": {},
            "commits": {},
            "records": {},
        }

    def _load_manifest(self) -> Dict[str, object]:
        if not os.path.exists(self._manifest_path):
            return self._empty_manifest()
        try:
            body = read_json_verified(self._manifest_path)
        except IntegrityError as exc:
            raise _corrupt(exc) from exc
        if not isinstance(body, dict) or body.get("format") != _FORMAT:
            raise CheckpointCorrupted(
                self._manifest_path, "manifest format unrecognized",
                expected=_FORMAT, actual=body.get("format") if isinstance(body, dict) else None,
            )
        recorded = body.pop("manifest_digest", None)
        actual = sha256_bytes(canonical_json(body))
        if recorded != actual:
            raise CheckpointCorrupted(
                self._manifest_path, "manifest self-digest mismatch",
                expected=recorded, actual=actual,
            )
        return body

    def _flush(self) -> None:
        body = dict(self._manifest)
        body.pop("manifest_digest", None)
        body["manifest_digest"] = sha256_bytes(canonical_json(body))
        atomic_write_json(self._manifest_path, body)

    def _next_seq(self) -> int:
        self._manifest["seq"] = int(self._manifest["seq"]) + 1
        return int(self._manifest["seq"])

    def _read_payload(self, entry: Mapping[str, object]) -> bytes:
        path = os.path.join(self.root, str(entry["file"]))
        try:
            return read_bytes_verified(
                path,
                expected_digest=str(entry["file_digest"]),
                expected_size=int(entry["size"]),
            )
        except IntegrityError as exc:
            raise _corrupt(exc) from exc

    def _write_payload(self, relpath: str, data: bytes) -> Dict[str, object]:
        path = os.path.join(self.root, relpath)
        digest = atomic_write_bytes(path, data)
        return {"file": relpath, "file_digest": digest, "size": len(data)}

    # -- CheckpointStore interface ---------------------------------------
    def __len__(self) -> int:
        return len(self._manifest["checkpoints"])

    def put(self, checkpoint: RoundCheckpoint) -> str:
        digest = checkpoint.digest()
        checkpoints: Dict[str, dict] = self._manifest["checkpoints"]  # type: ignore[assignment]
        if digest not in checkpoints:
            entry = self._write_payload(
                os.path.join("objects", f"{digest}.npz"),
                _checkpoint_to_bytes(checkpoint),
            )
            entry.update(
                round_index=int(checkpoint.round_index),
                model_digest=checkpoint.model_digest,
                seq=self._next_seq(),
            )
            checkpoints[digest] = entry
        self._manifest["latest"][  # type: ignore[index]
            f"{int(checkpoint.round_index)}:{checkpoint.model_digest}"
        ] = digest
        self._flush()
        return digest

    def get(self, digest: str) -> Optional[RoundCheckpoint]:
        entry = self._manifest["checkpoints"].get(digest)  # type: ignore[union-attr]
        if entry is None:
            return None
        ckpt = _checkpoint_from_bytes(
            self._read_payload(entry), os.path.join(self.root, str(entry["file"]))
        )
        actual = ckpt.digest()
        if actual != digest:
            raise CheckpointCorrupted(
                os.path.join(self.root, str(entry["file"])),
                "checkpoint content digest mismatch",
                expected=digest, actual=actual,
            )
        return ckpt

    def latest_for(self, round_index: int, model_digest: str) -> Optional[RoundCheckpoint]:
        digest = self._manifest["latest"].get(f"{int(round_index)}:{model_digest}")  # type: ignore[union-attr]
        if digest is None:
            return None
        ckpt = self.get(digest)
        if ckpt is None:
            raise CheckpointCorrupted(
                self._manifest_path, "latest pointer references an unknown checkpoint",
                expected=digest, actual=None,
            )
        return ckpt

    def resume_or_raise(self, round_index: int, model_digest: str) -> RoundCheckpoint:
        """``latest_for`` that treats "no checkpoint for these weights" as an error.

        ``latest_for`` stays ``None``-tolerant (the engine's opt-in resume
        probe); harnesses that *know* a round was interrupted call this to
        get a :class:`CheckpointCorrupted` naming the digest mismatch
        instead of silently restarting the round.
        """
        found = self.latest_for(round_index, model_digest)
        if found is not None:
            return found
        stored = sorted(
            key.split(":", 1)[1]
            for key in self._manifest["latest"]  # type: ignore[union-attr]
            if key.split(":", 1)[0] == str(int(round_index))
        )
        raise CheckpointCorrupted(
            self._manifest_path,
            f"no checkpoint for round {int(round_index)} under the current model digest",
            expected=model_digest,
            actual=stored or None,
        )

    def clear_round(self, round_index: int) -> None:
        latest: Dict[str, str] = self._manifest["latest"]  # type: ignore[assignment]
        stale = [k for k in latest if k.split(":", 1)[0] == str(int(round_index))]
        for key in stale:
            del latest[key]
        if stale:
            self._flush()

    # -- committed rounds -------------------------------------------------
    def record_commit(
        self,
        round_index: int,
        weights: np.ndarray,
        result: Mapping[str, object],
        scheduler_state: Optional[dict] = None,
    ) -> None:
        meta = {
            "round_index": int(round_index),
            "result": dict(result),
            "scheduler_state": scheduler_state,
        }
        buf = io.BytesIO()
        np.savez(
            buf,
            meta=np.frombuffer(canonical_json(meta), dtype=np.uint8),
            weights=np.ascontiguousarray(np.asarray(weights, dtype=np.float64)),
        )
        entry = self._write_payload(
            os.path.join("commits", f"round-{int(round_index):06d}.npz"), buf.getvalue()
        )
        entry["seq"] = self._next_seq()
        self._manifest["commits"][str(int(round_index))] = entry  # type: ignore[index]
        self._flush()

    def _load_commit(self, key: str) -> Dict[str, object]:
        entry = self._manifest["commits"][key]  # type: ignore[index]
        path = os.path.join(self.root, str(entry["file"]))
        data = self._read_payload(entry)
        try:
            with np.load(io.BytesIO(data), allow_pickle=False) as archive:
                meta = json.loads(bytes(archive["meta"].tobytes()).decode())
                weights = np.array(archive["weights"], dtype=np.float64)
        except (KeyError, ValueError, OSError, json.JSONDecodeError) as exc:
            raise CheckpointCorrupted(path, f"commit record unparseable ({exc})") from exc
        return {
            "round_index": int(meta["round_index"]),
            "weights": weights,
            "result": meta["result"],
            "scheduler_state": meta["scheduler_state"],
        }

    def latest_commit(self) -> Optional[Dict[str, object]]:
        commits: Dict[str, dict] = self._manifest["commits"]  # type: ignore[assignment]
        if not commits:
            return None
        return self._load_commit(max(commits, key=int))

    def commits(self) -> List[Dict[str, object]]:
        """Every committed-round record in round order (all verified)."""
        keys = sorted(self._manifest["commits"], key=int)  # type: ignore[arg-type]
        return [self._load_commit(k) for k in keys]

    # -- generic records --------------------------------------------------
    def put_record(
        self, kind: str, name: str, payload: Mapping[str, object], committed: bool = True
    ) -> str:
        """Persist one JSON record atomically; returns its content digest.

        See the module docstring's "persisting a new record kind" recipe.
        """
        seq = self._next_seq()
        entry = self._write_payload(
            os.path.join("records", kind, f"{seq:06d}.json"),
            canonical_json(dict(payload)),
        )
        entry.update(seq=seq, committed=bool(committed))
        self._manifest["records"][f"{kind}/{name}"] = entry  # type: ignore[index]
        self._flush()
        return str(entry["file_digest"])

    def get_record(self, kind: str, name: str) -> Optional[Dict[str, object]]:
        entry = self._manifest["records"].get(f"{kind}/{name}")  # type: ignore[union-attr]
        if entry is None:
            return None
        return json.loads(self._read_payload(entry).decode())

    def record_names(self, kind: str, committed_only: bool = True) -> List[str]:
        """Names of a kind's records in write (sequence) order."""
        prefix = f"{kind}/"
        entries: Dict[str, dict] = self._manifest["records"]  # type: ignore[assignment]
        names = [
            (int(e["seq"]), key[len(prefix):])
            for key, e in entries.items()
            if key.startswith(prefix) and (not committed_only or e.get("committed", True))
        ]
        return [name for _, name in sorted(names)]

    # -- fault plans ------------------------------------------------------
    def put_plan(self, plan: FaultPlan) -> str:
        digest = plan.digest()
        self.put_record("fault-plan", digest, {"digest": digest, "plan": json.loads(plan.to_json())})
        return digest

    def load_plan(self, digest: Optional[str] = None) -> Optional[FaultPlan]:
        """The plan with ``digest`` (or the latest persisted one), re-verified."""
        if digest is None:
            names = self.record_names("fault-plan")
            if not names:
                return None
            digest = names[-1]
        record = self.get_record("fault-plan", digest)
        if record is None:
            return None
        plan = FaultPlan.from_json(json.dumps(record["plan"]))
        actual = plan.digest()
        if actual != digest:
            raise CheckpointCorrupted(
                self._manifest_path, "fault plan content digest mismatch",
                expected=digest, actual=actual,
            )
        return plan

    # -- ledger segments --------------------------------------------------
    def put_ledger_segments(self, label: str, segments: Mapping[str, Sequence]) -> str:
        """Persist exported :class:`UsageLedger` segments under one label.

        ``segments`` maps device id → the entries of
        ``ledger.export_segment(start)``.  Restoring replays them through
        ``append_segment``, which re-verifies every MAC against the
        device key — a tampered persisted segment can never re-enter a
        chain.
        """
        payload = {
            "label": str(label),
            "segments": {
                device_id: [entry.to_dict() for entry in entries]
                for device_id, entries in segments.items()
            },
        }
        return self.put_record("ledger-segment", str(label), payload)

    def iter_ledger_segments(self) -> List[Tuple[str, Dict[str, list]]]:
        """All persisted segments in write order, entries rehydrated."""
        from repro.billing.metering import LedgerEntry

        out: List[Tuple[str, Dict[str, list]]] = []
        for name in self.record_names("ledger-segment"):
            record = self.get_record("ledger-segment", name)
            if record is None:  # pragma: no cover - names come from the manifest
                continue
            out.append(
                (
                    str(record["label"]),
                    {
                        device_id: [LedgerEntry.from_dict(e) for e in entries]
                        for device_id, entries in record["segments"].items()
                    },
                )
            )
        return out

    # -- merge-intent WAL -------------------------------------------------
    def begin_merge(self, scope: str, payload: Mapping[str, object]) -> str:
        """Persist a pre-merge snapshot; returns the intent token.

        The sharded runner writes this *before* its barrier merge touches
        the parent world.  Until :meth:`commit_merge` flips the entry,
        every reader (``pending_merges`` aside) skips it — a crash during
        the merge leaves the disk with no partial merge, only an
        uncommitted intent to inspect or discard.
        """
        token = f"{scope}-{self._next_seq():06d}"
        self.put_record("merge-intent", token, {"scope": scope, **dict(payload)}, committed=False)
        return token

    def commit_merge(self, token: str) -> None:
        entry = self._manifest["records"].get(f"merge-intent/{token}")  # type: ignore[union-attr]
        if entry is None:
            raise KeyError(f"unknown merge intent {token!r}")
        entry["committed"] = True
        self._flush()

    def pending_merges(self) -> List[Dict[str, object]]:
        """Uncommitted merge intents (interrupted merges), oldest first."""
        out = []
        for name in self.record_names("merge-intent", committed_only=False):
            entry = self._manifest["records"][f"merge-intent/{name}"]  # type: ignore[index]
            if not entry.get("committed", True):
                record = self.get_record("merge-intent", name)
                out.append({"token": name, **(record or {})})
        return out

    def discard_pending_merges(self) -> int:
        """Drop uncommitted intents (the crash recovery path); returns count."""
        records: Dict[str, dict] = self._manifest["records"]  # type: ignore[assignment]
        stale = [
            key for key, e in records.items()
            if key.startswith("merge-intent/") and not e.get("committed", True)
        ]
        for key in stale:
            del records[key]
        if stale:
            self._flush()
        return len(stale)


# ---------------------------------------------------------------------------
# lifecycle decision log
# ---------------------------------------------------------------------------

class DurableDecisionLog:
    """Append-only, digest-verified log of lifecycle decision records.

    Each appended payload (a ``LifecycleDecision.as_dict()`` plus its
    registry record digest and promotion audit map) becomes one
    atomically-committed JSON file referenced by a self-digested
    manifest; :meth:`load` replays them in append order, verifying every
    digest, so a restarted :class:`~repro.lifecycle.LifecyclePipeline`
    reconstructs its history and cycle counter exactly.
    """

    def __init__(self, root: str) -> None:
        # Own subdirectory: a lifecycle run may share its state_dir with a
        # DurableCheckpointStore, and each manifest assumes exclusive
        # ownership of its directory.
        self._store = DurableCheckpointStore(os.path.join(os.fspath(root), "decisions"))

    def __len__(self) -> int:
        return len(self._store.record_names("lifecycle-decision"))

    def append(self, payload: Mapping[str, object]) -> str:
        index = len(self)
        return self._store.put_record(
            "lifecycle-decision", f"{index:06d}", dict(payload)
        )

    def load(self) -> List[Dict[str, object]]:
        return [
            self._store.get_record("lifecycle-decision", name)
            for name in self._store.record_names("lifecycle-decision")
        ]
