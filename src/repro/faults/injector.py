"""Replay a :class:`~repro.faults.plan.FaultPlan` against the engines.

The injector is the single stateful object of the fault plane: it holds
deterministic position counters (which serving window we are on, which
pooled dispatch the sharded runner is issuing) plus the fired-interrupt
set, so the same plan replays identically and ``reset()`` rewinds a
world for differential runs.  Everything else is pure lookups into the
plan's sparse event tables.

:class:`RetryPolicy` is the shared failure-handling knob: client delta
delivery *simulates* its schedule (attempts, exponential backoff with
seeded jitter, a deadline budget) against the plan's per-attempt outcome
codes, while the sharded runner *executes* the same schedule for real
between worker re-dispatch passes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .plan import FaultKind, FaultPlan

__all__ = ["RetryPolicy", "DeliveryResult", "simulate_delivery", "FaultInjector"]


@dataclass(frozen=True)
class RetryPolicy:
    """Deadline-budgeted exponential backoff with seeded jitter.

    ``max_attempts`` counts the first try; ``backoff_s(k, seed)`` is the
    wait before attempt ``k + 2`` — ``base_delay_s * multiplier**k``
    scaled by a jitter factor drawn uniformly from ``[1 - jitter,
    1 + jitter]`` with ``default_rng(seed)``, so a given (seed, attempt)
    pair always waits the same time.  ``deadline_s`` caps the *total*
    schedule: once elapsed simulated (or real) time crosses it, the
    operation fails even if attempts remain.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.0
    multiplier: float = 2.0
    jitter: float = 0.5
    deadline_s: float = math.inf

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0.0:
            raise ValueError("base_delay_s must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.deadline_s <= 0.0:
            raise ValueError("deadline_s must be positive")

    def backoff_s(self, attempt: int, seed) -> float:
        """Wait after failed attempt ``attempt`` (0-based)."""
        if self.base_delay_s == 0.0:
            return 0.0
        delay = self.base_delay_s * self.multiplier ** attempt
        if self.jitter > 0.0:
            rng = np.random.default_rng(seed if not isinstance(seed, (list, tuple)) else list(seed))
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay

    def schedule(self, seed) -> Tuple[float, ...]:
        """The full backoff schedule (``max_attempts - 1`` waits)."""
        base = list(seed) if isinstance(seed, (list, tuple)) else [seed]
        return tuple(self.backoff_s(k, base + [k]) for k in range(self.max_attempts - 1))


@dataclass(frozen=True)
class DeliveryResult:
    """Outcome of one client's delta delivery under a retry policy."""

    delivered: bool
    attempts: int
    retransmits: int
    duplicates: int
    corrupt: int
    sim_time_s: float
    reason: str = ""

    @property
    def transmissions(self) -> int:
        """Payload copies that crossed the uplink (attempts + dups)."""
        return self.attempts + self.duplicates


def simulate_delivery(
    outcomes: Sequence[str], policy: RetryPolicy, seed, transfer_time_s: float = 0.0
) -> DeliveryResult:
    """Walk a plan's per-attempt outcome codes through a retry policy.

    Attempts beyond the recorded sequence succeed — unless the sequence
    is straight failures with no terminating success code (the plan's
    "link down this round" marker; generated plans only emit such
    sequences at the full ``max_attempt_draws`` length), in which case
    they keep failing.  Simulated
    time accumulates ``transfer_time_s`` per attempt plus the policy's
    seeded backoff; crossing ``deadline_s`` (or an infinite transfer
    time — an offline link) fails the delivery outright.
    """
    outcomes = tuple(outcomes)
    exhausted = bool(outcomes) and all(
        o in (FaultKind.DELIVERY_LOST, FaultKind.DELIVERY_CORRUPT) for o in outcomes
    )
    if not math.isfinite(transfer_time_s):
        return DeliveryResult(False, 0, 0, 0, 0, math.inf, reason="offline")
    backoffs = policy.schedule(seed)
    t = 0.0
    retransmits = corrupt = 0
    for attempt in range(policy.max_attempts):
        t += transfer_time_s
        if t > policy.deadline_s:
            return DeliveryResult(False, attempt + 1, retransmits, 0, corrupt, t, reason="deadline")
        if attempt < len(outcomes):
            outcome = outcomes[attempt]
        else:
            outcome = FaultKind.DELIVERY_LOST if exhausted else FaultKind.DELIVERY_OK
        if outcome in (FaultKind.DELIVERY_OK, FaultKind.DELIVERY_DUPLICATE):
            dups = 1 if outcome == FaultKind.DELIVERY_DUPLICATE else 0
            return DeliveryResult(True, attempt + 1, retransmits, dups, corrupt, t)
        if outcome == FaultKind.DELIVERY_CORRUPT:
            corrupt += 1
        retransmits += 1
        if attempt + 1 < policy.max_attempts:
            wait = backoffs[attempt]
            t += wait
            if t > policy.deadline_s:
                return DeliveryResult(
                    False, attempt + 1, retransmits, 0, corrupt, t, reason="deadline"
                )
    return DeliveryResult(
        False, policy.max_attempts, retransmits, 0, corrupt, t, reason="attempts exhausted"
    )


class FaultInjector:
    """Replays one plan; each engine layer queries its slice of it.

    Counters (`_serve_window`, per-scope dispatch indices, fired
    interrupts) advance exactly once per consumed event, so two runs
    issuing the same sequence of queries see the same faults.  Call
    :meth:`reset` before replaying a world from scratch.

    ``connectivity`` optionally maps device id →
    :class:`~repro.devices.network.ConnectivityTrace`: each
    :meth:`filter_window` call steps every trace once (in sorted device
    order) and partitions the devices whose chain landed offline, in
    *union* with the plan's flat ``serve_offline`` table — offline
    windows drawn from a Markov connectivity model instead of (or on top
    of) flat rates.  Trace positions are snapshotted at construction and
    rewound by :meth:`reset`, so trace-driven runs replay deterministically.
    """

    def __init__(
        self,
        plan: FaultPlan,
        retry_policy: Optional[RetryPolicy] = None,
        connectivity: Optional[Dict[str, object]] = None,
    ) -> None:
        self.plan = plan
        self.retry_policy = retry_policy or RetryPolicy()
        self.connectivity = dict(connectivity or {})
        self._trace_snapshots = {
            device_id: trace.state_dict() for device_id, trace in self.connectivity.items()
        }
        self._offline: Dict[int, Set[str]] = {}
        for window, device_id in plan.serve_offline:
            self._offline.setdefault(int(window), set()).add(device_id)
        self._crashes: Dict[int, Set[str]] = {}
        for round_index, client_id in plan.crashes:
            self._crashes.setdefault(int(round_index), set()).add(client_id)
        self._deliveries: Dict[Tuple[int, str], Tuple[str, ...]] = {
            (int(r), c): tuple(outs) for r, c, outs in plan.deliveries
        }
        self._shard_faults: Dict[Tuple[str, int, int], str] = {
            (scope, int(d), int(s)): mode for scope, d, s, mode in plan.shard_faults
        }
        self._interrupts: Dict[int, int] = {int(r): int(k) for r, k in plan.interrupts}
        self.reset()

    @classmethod
    def from_seed(cls, seed: int, retry_policy: Optional[RetryPolicy] = None, **generate_kwargs) -> "FaultInjector":
        return cls(FaultPlan.generate(seed, **generate_kwargs), retry_policy=retry_policy)

    def reset(self) -> None:
        """Rewind all positional counters (replay the plan from the top)."""
        self._serve_window = 0
        self._dispatch: Dict[str, int] = {"serve": 0, "train": 0}
        self._fired_interrupts: Set[int] = set()
        for device_id, trace in self.connectivity.items():
            trace.load_state_dict(self._trace_snapshots[device_id])

    # -- serving ---------------------------------------------------------
    def filter_window(self, window: Dict[str, object]) -> Tuple[Dict[str, object], Dict[str, object]]:
        """Split one serving window into (reachable, partitioned) entries.

        Values pass through untouched (device_id → query array).  Advances
        the window counter exactly once per call; callers must invoke it
        once per window in order (``ServingEngine.serve_fleet`` does,
        before engine dispatch, so batched/oracle/sharded all see the
        identical filtered window).
        """
        offline = set(self._offline.get(self._serve_window, ()))
        self._serve_window += 1
        # Every trace advances exactly once per window — including devices
        # absent from this window's payload — so chain positions stay
        # aligned with the window counter regardless of traffic shape.
        for device_id in sorted(self.connectivity):
            if not self.connectivity[device_id].step().online:
                offline.add(device_id)
        if not offline:
            return window, {}
        kept = {d: v for d, v in window.items() if d not in offline}
        dropped = {d: v for d, v in window.items() if d in offline}
        return kept, dropped

    # -- federated -------------------------------------------------------
    def crashed_clients(self, round_index: int, candidates: Sequence[str]) -> List[str]:
        """The candidates that crash before training this round."""
        crashed = self._crashes.get(int(round_index), ())
        return [cid for cid in candidates if cid in crashed]

    def delivery_outcomes(self, round_index: int, client_id: str) -> Tuple[str, ...]:
        """Per-attempt outcome codes for one client's delta uplink."""
        return self._deliveries.get((int(round_index), client_id), ())

    def interrupt_after(self, round_index: int) -> Optional[int]:
        """Cohort count after which the coordinator crashes (or None).

        Consuming is explicit: :meth:`fire_interrupt` marks it spent so a
        resumed round runs to completion.
        """
        if int(round_index) in self._fired_interrupts:
            return None
        return self._interrupts.get(int(round_index))

    def fire_interrupt(self, round_index: int) -> None:
        self._fired_interrupts.add(int(round_index))

    # -- sharded runtime -------------------------------------------------
    def next_dispatch(self, scope: str) -> int:
        """Sequence number of the next pooled dispatch for a scope."""
        index = self._dispatch.get(scope, 0)
        self._dispatch[scope] = index + 1
        return index

    def shard_fault(self, scope: str, dispatch_index: int, shard_index: int) -> Optional[str]:
        """Fault mode for one shard of one dispatch (or None)."""
        return self._shard_faults.get((scope, int(dispatch_index), int(shard_index)))
