"""Transactional round checkpoints: interrupt a round, resume it byte-identically.

A federated round is a transaction: selection → local training (one
sweep per cohort) → delivery → quorum commit.  The coordinator can die
between cohort sweeps; :class:`RoundCheckpoint` persists everything the
round decided before the crash — the selection (including the
scheduler's post-selection RNG stream state, because schedulers are
*stateful* and re-selecting on resume would double-advance the stream),
the fault-plan verdicts (crashes, delivery outcomes, quorum target) and
every completed cohort's delta stack — content-addressed, so a resumed
round replays the missing cohorts only and commits byte-identically to
a run that was never interrupted (the chaos suite asserts this).
"""

from __future__ import annotations

import copy
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = ["RoundInterrupted", "RoundCheckpoint", "CheckpointStore"]


class RoundInterrupted(RuntimeError):
    """The coordinator crashed mid-round; a checkpoint holds the progress.

    Carries the round index and the checkpoint's content digest so the
    caller can re-issue ``run_round`` against the same store and resume.
    """

    def __init__(self, round_index: int, checkpoint_digest: str) -> None:
        super().__init__(
            f"round {round_index} interrupted; resume from checkpoint {checkpoint_digest[:12]}"
        )
        self.round_index = int(round_index)
        self.checkpoint_digest = checkpoint_digest


@dataclass
class RoundCheckpoint:
    """Durable state of one in-flight round.

    ``model_digest`` pins the global weights the round started from — a
    checkpoint never resumes onto different weights.  ``cohorts`` maps
    cohort position → the completed sweep's ``(indices, deltas, losses,
    accs)`` payload; positions absent from the map still need training.
    """

    round_index: int
    model_digest: str
    selected: Tuple[str, ...]
    contributors: Tuple[str, ...]
    stragglers: Tuple[str, ...]
    counts: Dict[str, int] = field(default_factory=dict)
    delivered_rows: Optional[Tuple[int, ...]] = None
    tx_counts: Optional[Tuple[int, ...]] = None
    scheduler_state: Optional[dict] = None
    cohorts: Dict[int, Dict[str, np.ndarray]] = field(default_factory=dict)

    def record_cohort(
        self,
        position: int,
        indices: Sequence[int],
        deltas: np.ndarray,
        losses: np.ndarray,
        accs: np.ndarray,
    ) -> None:
        """Persist one completed cohort sweep (arrays are copied)."""
        self.cohorts[int(position)] = {
            "indices": np.asarray(indices, dtype=np.int64).copy(),
            "deltas": np.asarray(deltas, dtype=np.float64).copy(),
            "losses": np.asarray(losses, dtype=np.float64).copy(),
            "accs": np.asarray(accs, dtype=np.float64).copy(),
        }

    @property
    def n_cohorts_done(self) -> int:
        return len(self.cohorts)

    def digest(self) -> str:
        """Content address: sha256 over the metadata's canonical JSON and
        every cohort payload's raw bytes in position order."""
        h = hashlib.sha256()
        meta = {
            "round_index": self.round_index,
            "model_digest": self.model_digest,
            "selected": list(self.selected),
            "contributors": list(self.contributors),
            "stragglers": list(self.stragglers),
            "counts": {k: int(v) for k, v in sorted(self.counts.items())},
            "delivered_rows": None if self.delivered_rows is None else list(self.delivered_rows),
            "tx_counts": None if self.tx_counts is None else list(self.tx_counts),
            "scheduler_state": self.scheduler_state,
        }
        h.update(json.dumps(meta, sort_keys=True, separators=(",", ":"), default=int).encode())
        for position in sorted(self.cohorts):
            payload = self.cohorts[position]
            h.update(str(position).encode())
            for key in ("indices", "deltas", "losses", "accs"):
                h.update(np.ascontiguousarray(payload[key]).tobytes())
        return h.hexdigest()


class CheckpointStore:
    """Content-addressed archive of round checkpoints + a resume pointer.

    ``put`` snapshots the checkpoint under its digest and records it as
    the latest for its ``(round_index, model_digest)`` key;
    ``latest_for`` hands back a *copy*, so a resumed run never mutates
    the archived snapshot.
    """

    def __init__(self) -> None:
        self._objects: Dict[str, RoundCheckpoint] = {}
        self._latest: Dict[Tuple[int, str], str] = {}
        self._commits: Dict[int, Dict[str, object]] = {}

    def __len__(self) -> int:
        return len(self._objects)

    def put(self, checkpoint: RoundCheckpoint) -> str:
        digest = checkpoint.digest()
        if digest not in self._objects:
            self._objects[digest] = copy.deepcopy(checkpoint)
        self._latest[(checkpoint.round_index, checkpoint.model_digest)] = digest
        return digest

    def get(self, digest: str) -> Optional[RoundCheckpoint]:
        found = self._objects.get(digest)
        return copy.deepcopy(found) if found is not None else None

    def latest_for(self, round_index: int, model_digest: str) -> Optional[RoundCheckpoint]:
        digest = self._latest.get((int(round_index), model_digest))
        return self.get(digest) if digest is not None else None

    def clear_round(self, round_index: int) -> None:
        """Drop resume pointers for a committed round (archive stays)."""
        for key in [k for k in self._latest if k[0] == int(round_index)]:
            del self._latest[key]

    # -- committed rounds -------------------------------------------------
    def record_commit(
        self,
        round_index: int,
        weights: np.ndarray,
        result: Dict[str, object],
        scheduler_state: Optional[dict] = None,
    ) -> None:
        """Snapshot a *committed* round: post-commit weights, the round's
        result dict and the post-round scheduler RNG stream.

        In-flight checkpoints cover a crash *inside* a round; commit
        records are the between-rounds anchor a fresh process restores
        before replaying later rounds (``repro.faults.durable`` persists
        them to disk — the in-memory form keeps both implementations
        behaviourally interchangeable)."""
        self._commits[int(round_index)] = {
            "round_index": int(round_index),
            "weights": np.asarray(weights, dtype=np.float64).copy(),
            "result": copy.deepcopy(dict(result)),
            "scheduler_state": copy.deepcopy(scheduler_state),
        }

    def latest_commit(self) -> Optional[Dict[str, object]]:
        """The highest committed round's record (a copy), or None."""
        if not self._commits:
            return None
        return copy.deepcopy(self._commits[max(self._commits)])
