"""Deterministic fault-injection plane: seeded, replayable failures.

The paper's fleets are operationally hostile — devices die mid-round,
radios drop uplinks, workers hang — yet every invariant the platform
sells (MAC-chained ledgers, exact billing, deterministic promotion) must
survive.  This package makes failure a *first-class input*: a
content-addressed :class:`FaultPlan` is generated from one seed, a
:class:`FaultInjector` replays it against the serving, federated,
sharded-runtime and lifecycle layers, and the chaos differential suite
(``tests/faults/``) asserts the invariants hold for a whole matrix of
plan seeds.  Because the plan is data-independent and the injector's
counters are deterministic, any faulty run can be replayed
fault-for-fault from ``(world seed, plan seed)`` alone.

Fault kinds shipped today
-------------------------

=====================  ====================================================
kind                   effect
=====================  ====================================================
``partition``          a device is unreachable for one serving window: its
                       queries never arrive (counted as
                       ``network_failures``, never billed)
``device_crash``       a selected federated client vanishes before local
                       training (no energy spent, no update)
``uplink loss``        a delta-delivery attempt is dropped; the client
                       retransmits under the shared :class:`RetryPolicy`
``uplink corrupt``     a delivery attempt arrives damaged and is rejected
                       (checksum model); retransmitted like a loss
``duplicate``          the delivery succeeds but the uplink carries the
                       payload twice (dedup keeps aggregation exact;
                       bytes are billed)
``worker raise/exit``  a shard worker process dies mid-task; the sharded
                       runner retries, then re-executes in-process
``hung shard``         a shard worker sleeps past the pool deadline;
                       recovered exactly like a death
``round_interrupt``    the coordinator crashes between cohort sweeps; a
                       :class:`RoundCheckpoint` resumes the round
                       byte-identically
``trace partition``    a device's Markov :class:`ConnectivityTrace` chain
                       lands offline for a serving window; unioned with
                       the plan's flat ``partition`` table (pass
                       ``connectivity={device_id: trace}`` to
                       :class:`FaultInjector`; the injector snapshots and
                       rewinds the chains so replays stay deterministic)
``quorum shortfall``   not a new event — a *counting mode*:
                       ``FederatedEngine(quorum_mode="verified")`` counts
                       only deliveries that are non-byzantine and arrived
                       with zero corrupt attempts toward the quorum, so a
                       round a byzantine cohort would have carried aborts
                       instead (weights stay byte-untouched; the default
                       ``"delivered"`` mode preserves prior behaviour)
=====================  ====================================================

Crash recovery
--------------

In-memory :class:`CheckpointStore` survives an *exception*;
:class:`~repro.faults.durable.DurableCheckpointStore` (and
:class:`~repro.faults.durable.DurableDecisionLog`) survive a *process
death*: every checkpoint, commit record, fault plan, ledger segment and
lifecycle decision is persisted with write-to-temp → fsync → atomic
rename under a self-digested manifest, and every load re-verifies both
the file digest and the recomputed content digest — a half-written or
tampered file surfaces as a typed
:class:`~repro.faults.durable.CheckpointCorrupted`, never as silently
wrong state.  ``tests/faults/test_crash_recovery.py`` SIGKILLs a real
child process mid-round and asserts a fresh process resumes to
bit-identical weights, results and ledger MACs.

Adding a fault kind
-------------------

1. *Plan it.*  Add a rate knob to :class:`FaultRates` and draw the new
   event table in :meth:`FaultPlan.generate` — **append the draws after
   the existing ones** so old seeds keep producing byte-identical plans,
   and store the table as plain tuples so the content digest and JSON
   round-trip stay canonical.
2. *Inject it.*  Give :class:`FaultInjector` a query method for the
   layer that consumes the event (a pure lookup plus, if the fault is
   positional, a deterministic counter like ``_serve_window``), and
   thread the injector call through that layer behind
   ``if injector is not None`` so the no-injector path stays
   byte-identical.
3. *Prove it.*  Extend ``tests/faults/test_fault_plan.py`` (generation
   determinism + digest stability) and add the new kind to the chaos
   invariant matrix in ``tests/faults/test_chaos_invariants.py`` — the
   empty-plan byte-identity and ledger/billing assertions must stay
   green over every seed.

Environment variables (the one place they are documented)
---------------------------------------------------------

``REPRO_SHARD_FAULT``
    Env-driven worker fault for the sharded runtime, spelled
    ``"<shard>:<raise|hang|exit>[:any]"`` (``repro.runtime.sharded``).
    It predates the fault plane and remains supported for one-off
    debugging; plan-driven shard faults (:meth:`FaultPlan.generate`
    ``worker_fault`` rate, shipped per-payload by the runner) are the
    replayable spelling.
``REPRO_CHAOS_SEEDS``
    Comma-separated fault-plan seeds for the chaos invariant suite
    (``tests/faults/test_chaos_invariants.py``), e.g.
    ``REPRO_CHAOS_SEEDS="0,1,2,3,5,8,13,21"``.  Unset, the suite runs
    its default eight-seed matrix; CI's chaos-smoke leg pins the matrix
    explicitly so the tested seeds are visible in the workflow file.
``REPRO_TEST_WORKERS``
    Default worker count for sharded runners built without an explicit
    ``workers=`` (documented in ``repro.runtime.sharded``; listed here
    because the chaos suite composes with it).
``REPRO_CHAOS_STATE_DIR``
    Root directory for the crash-recovery suite's durable state dirs
    (``tests/faults/test_crash_recovery.py``).  Each test run creates a
    unique subdirectory under it; unset, pytest's ``tmp_path`` is used.
    CI's crash-recovery leg points it at a ``mktemp -d`` scratch dir so
    the persisted state survives for post-mortem upload on failure.
"""

from .checkpoint import CheckpointStore, RoundCheckpoint, RoundInterrupted
from .durable import CheckpointCorrupted, DurableCheckpointStore, DurableDecisionLog
from .injector import DeliveryResult, FaultInjector, RetryPolicy, simulate_delivery
from .plan import FaultKind, FaultPlan, FaultRates

__all__ = [
    "FaultKind",
    "FaultPlan",
    "FaultRates",
    "FaultInjector",
    "RetryPolicy",
    "DeliveryResult",
    "simulate_delivery",
    "RoundCheckpoint",
    "CheckpointStore",
    "RoundInterrupted",
    "CheckpointCorrupted",
    "DurableCheckpointStore",
    "DurableDecisionLog",
]
