"""Content-addressed, seeded fault plans.

A :class:`FaultPlan` is the *complete* failure schedule of a run, drawn
up front from one seed: which devices partition in which serving
windows, which federated clients crash in which rounds, the outcome
sequence of every delta-delivery attempt, which shard workers die in
which dispatch, and where the coordinator itself gets interrupted.
Plans are plain immutable data — no RNG state, no callbacks — so they
serialize to canonical JSON, hash to a stable content digest, and replay
byte-identically anywhere.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = ["FaultKind", "FaultRates", "FaultPlan"]


class FaultKind:
    """String constants naming the fault kinds a plan can schedule."""

    PARTITION = "partition"
    DEVICE_CRASH = "device_crash"
    # Per-delivery-attempt outcome codes (see FaultPlan.deliveries).
    DELIVERY_OK = "ok"
    DELIVERY_LOST = "lost"
    DELIVERY_CORRUPT = "corrupt"
    DELIVERY_DUPLICATE = "duplicate"
    # Shard worker fault modes (repro.runtime.sharded spelling).
    WORKER_RAISE = "raise"
    WORKER_EXIT = "exit"
    WORKER_HANG = "hang"
    ROUND_INTERRUPT = "round_interrupt"


@dataclass(frozen=True)
class FaultRates:
    """Per-event probabilities used by :meth:`FaultPlan.generate`.

    All rates default to 0 except the classic radio faults, so
    ``FaultRates()`` yields a lossy-network plan and explicit knobs opt
    into the heavier process-level chaos.  ``max_attempt_draws`` caps the
    per-(round, client) delivery outcome sequence: a client whose first
    ``max_attempt_draws`` attempts all fail is considered unreachable for
    the round (its link is down, not merely lossy).
    """

    partition: float = 0.05
    device_crash: float = 0.05
    uplink_loss: float = 0.10
    uplink_corrupt: float = 0.05
    uplink_duplicate: float = 0.05
    worker_fault: float = 0.0
    round_interrupt: float = 0.0
    max_attempt_draws: int = 6
    worker_fault_modes: Tuple[str, ...] = (FaultKind.WORKER_RAISE, FaultKind.WORKER_EXIT)

    def __post_init__(self) -> None:
        for name in ("partition", "device_crash", "uplink_loss", "uplink_corrupt",
                     "uplink_duplicate", "worker_fault", "round_interrupt"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.uplink_loss + self.uplink_corrupt > 1.0:
            raise ValueError("uplink_loss + uplink_corrupt must not exceed 1")
        if self.max_attempt_draws < 1:
            raise ValueError("max_attempt_draws must be >= 1")
        for mode in self.worker_fault_modes:
            if mode not in (FaultKind.WORKER_RAISE, FaultKind.WORKER_EXIT, FaultKind.WORKER_HANG):
                raise ValueError(f"unknown worker fault mode {mode!r}")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, content-addressed failure schedule.

    Event tables (all sparse — only non-trivial events are stored):

    ``serve_offline``
        ``(window_index, device_id)`` pairs: the device is partitioned
        for that serving window.
    ``crashes``
        ``(round_index, client_id)`` pairs: the client vanishes before
        local training.
    ``deliveries``
        ``(round_index, client_id, outcomes)`` where ``outcomes`` is the
        per-attempt code sequence (``"lost"`` / ``"corrupt"`` /
        ``"duplicate"`` / ``"ok"``).  Absent pairs deliver first try.  A
        sequence of straight failures with no success code marks the
        link down for the whole round — extra attempts keep failing
        (generation emits these at the full ``max_attempt_draws``
        length; to encode "fail then recover", end with ``"ok"``).
    ``shard_faults``
        ``(scope, dispatch_index, shard_index, mode)`` — the
        ``dispatch_index``-th pooled dispatch of ``scope`` (``"serve"``
        or ``"train"``) kills/hangs that shard's worker.
    ``interrupts``
        ``(round_index, after_cohorts)`` — the coordinator crashes after
        completing that many cohort sweeps (checkpoint/resume path).
    """

    seed: int
    serve_offline: Tuple[Tuple[int, str], ...] = ()
    crashes: Tuple[Tuple[int, str], ...] = ()
    deliveries: Tuple[Tuple[int, str, Tuple[str, ...]], ...] = ()
    shard_faults: Tuple[Tuple[str, int, int, str], ...] = ()
    interrupts: Tuple[Tuple[int, int], ...] = ()
    rates: FaultRates = field(default_factory=FaultRates)

    # -- construction ----------------------------------------------------
    @classmethod
    def empty(cls, seed: int = 0) -> "FaultPlan":
        """The no-fault plan: every layer behaves byte-identically to a
        run without an injector at all (the chaos suite asserts this)."""
        return cls(seed=seed, rates=FaultRates(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0))

    @classmethod
    def generate(
        cls,
        seed: int,
        device_ids: Sequence[str] = (),
        client_ids: Sequence[str] = (),
        n_windows: int = 0,
        n_rounds: int = 0,
        rates: FaultRates = FaultRates(),
        n_dispatches: int = 4,
        max_shards: int = 8,
    ) -> "FaultPlan":
        """Draw a plan from one seed with a fixed, documented draw order.

        Draw order (append new kinds at the end — see the package
        docstring's recipe): partitions per ``(window, device)``, crashes
        per ``(round, client)``, delivery outcomes per ``(round,
        client)``, shard faults per ``(scope, dispatch, shard)``,
        interrupts per round.  Iteration is row-major over the given
        sequences, so identical inputs yield byte-identical plans.
        """
        rng = np.random.default_rng(seed)
        serve_offline = []
        for w in range(n_windows):
            for did in device_ids:
                if rng.random() < rates.partition:
                    serve_offline.append((w, str(did)))
        crashes = []
        for r in range(n_rounds):
            for cid in client_ids:
                if rng.random() < rates.device_crash:
                    crashes.append((r, str(cid)))
        crashed = set(crashes)
        deliveries = []
        lossy = rates.uplink_loss + rates.uplink_corrupt + rates.uplink_duplicate > 0.0
        for r in range(n_rounds):
            for cid in client_ids:
                if not lossy:
                    break
                outcomes = []
                for _ in range(rates.max_attempt_draws):
                    draw = rng.random()
                    if draw < rates.uplink_loss:
                        outcomes.append(FaultKind.DELIVERY_LOST)
                        continue
                    if draw < rates.uplink_loss + rates.uplink_corrupt:
                        outcomes.append(FaultKind.DELIVERY_CORRUPT)
                        continue
                    dup = rng.random() < rates.uplink_duplicate
                    outcomes.append(FaultKind.DELIVERY_DUPLICATE if dup else FaultKind.DELIVERY_OK)
                    break
                # Only non-trivial sequences are stored; crashed clients
                # never attempt delivery, but their draws above keep the
                # stream aligned across rate changes.
                if tuple(outcomes) != (FaultKind.DELIVERY_OK,) and (r, str(cid)) not in crashed:
                    deliveries.append((r, str(cid), tuple(outcomes)))
        shard_faults = []
        if rates.worker_fault > 0.0 and rates.worker_fault_modes:
            for scope in ("serve", "train"):
                for dispatch in range(n_dispatches):
                    for shard in range(max_shards):
                        if rng.random() < rates.worker_fault:
                            mode = rates.worker_fault_modes[
                                int(rng.integers(0, len(rates.worker_fault_modes)))
                            ]
                            shard_faults.append((scope, dispatch, shard, mode))
        interrupts = []
        for r in range(n_rounds):
            if rng.random() < rates.round_interrupt:
                interrupts.append((r, int(rng.integers(0, 3))))
        return cls(
            seed=seed,
            serve_offline=tuple(serve_offline),
            crashes=tuple(crashes),
            deliveries=tuple(deliveries),
            shard_faults=tuple(shard_faults),
            interrupts=tuple(interrupts),
            rates=rates,
        )

    # -- identity --------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return not (self.serve_offline or self.crashes or self.deliveries
                    or self.shard_faults or self.interrupts)

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, no whitespace — digest input."""
        payload = {
            "seed": self.seed,
            "serve_offline": [list(e) for e in self.serve_offline],
            "crashes": [list(e) for e in self.crashes],
            "deliveries": [[r, c, list(o)] for r, c, o in self.deliveries],
            "shard_faults": [list(e) for e in self.shard_faults],
            "interrupts": [list(e) for e in self.interrupts],
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        raw: Dict = json.loads(text)
        return cls(
            seed=int(raw["seed"]),
            serve_offline=tuple((int(w), str(d)) for w, d in raw["serve_offline"]),
            crashes=tuple((int(r), str(c)) for r, c in raw["crashes"]),
            deliveries=tuple(
                (int(r), str(c), tuple(str(o) for o in outs)) for r, c, outs in raw["deliveries"]
            ),
            shard_faults=tuple((str(s), int(d), int(i), str(m)) for s, d, i, m in raw["shard_faults"]),
            interrupts=tuple((int(r), int(k)) for r, k in raw["interrupts"]),
        )

    def digest(self) -> str:
        """Stable content address of the schedule (sha256 of the
        canonical JSON); two plans with equal events share a digest even
        if they were generated with different rate objects."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()
