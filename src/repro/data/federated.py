"""Federated data partitioning: non-IID client splits and label noise.

Paper Section III-D highlights that federated learning on edge devices must
cope with heterogeneous (non-IID) client data and largely unlabeled data.
These partitioners create the client datasets used by :mod:`repro.federated`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .synthetic import Dataset

__all__ = [
    "ClientData",
    "partition_iid",
    "partition_dirichlet",
    "partition_shards",
    "add_label_noise",
    "drop_labels",
    "partition_statistics",
]


@dataclass
class ClientData:
    """Per-client dataset, optionally with an unlabeled portion.

    Attributes
    ----------
    client_id:
        Identifier matching a device in the fleet simulator.
    x, y:
        Labeled training data for this client.
    x_unlabeled:
        Samples whose labels were dropped (semi-supervised FL scenario).
    """

    client_id: str
    x: np.ndarray
    y: np.ndarray
    x_unlabeled: Optional[np.ndarray] = None

    def __len__(self) -> int:
        n = int(self.x.shape[0])
        if self.x_unlabeled is not None:
            n += int(self.x_unlabeled.shape[0])
        return n

    def label_distribution(self, num_classes: int) -> np.ndarray:
        """Normalized histogram of this client's labels."""
        counts = np.bincount(self.y.astype(int), minlength=num_classes).astype(np.float64)
        total = counts.sum()
        return counts / total if total > 0 else counts


def _make_clients(dataset: Dataset, assignment: List[np.ndarray], prefix: str) -> List[ClientData]:
    clients = []
    for i, idx in enumerate(assignment):
        idx = np.asarray(idx, dtype=np.int64)
        clients.append(ClientData(client_id=f"{prefix}{i}", x=dataset.x[idx], y=dataset.y[idx]))
    return clients


def partition_iid(dataset: Dataset, n_clients: int, seed: int = 0, prefix: str = "client-") -> List[ClientData]:
    """Split a dataset uniformly at random into ``n_clients`` equal parts."""
    if n_clients <= 0:
        raise ValueError("n_clients must be positive")
    rng = np.random.default_rng(seed)
    idx = rng.permutation(len(dataset))
    assignment = np.array_split(idx, n_clients)
    return _make_clients(dataset, list(assignment), prefix)


def partition_dirichlet(
    dataset: Dataset,
    n_clients: int,
    alpha: float = 0.5,
    seed: int = 0,
    min_samples: int = 2,
    prefix: str = "client-",
) -> List[ClientData]:
    """Label-skewed split: each class is divided among clients by Dirichlet(α).

    Small ``alpha`` (e.g. 0.1) produces highly non-IID clients where most
    clients only see a couple of classes; large ``alpha`` approaches IID.
    Clients are guaranteed at least ``min_samples`` samples by re-drawing.
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    rng = np.random.default_rng(seed)
    num_classes = dataset.num_classes
    for _ in range(50):
        buckets: List[List[int]] = [[] for _ in range(n_clients)]
        for c in range(num_classes):
            class_idx = np.flatnonzero(dataset.y == c)
            rng.shuffle(class_idx)
            proportions = rng.dirichlet(np.full(n_clients, alpha))
            # Convert proportions to contiguous split points.
            splits = (np.cumsum(proportions)[:-1] * class_idx.size).astype(int)
            for client, part in enumerate(np.split(class_idx, splits)):
                buckets[client].extend(part.tolist())
        sizes = np.array([len(b) for b in buckets])
        if sizes.min() >= min_samples:
            break
    assignment = [np.array(sorted(b), dtype=np.int64) for b in buckets]
    return _make_clients(dataset, assignment, prefix)


def partition_shards(
    dataset: Dataset,
    n_clients: int,
    shards_per_client: int = 2,
    seed: int = 0,
    prefix: str = "client-",
) -> List[ClientData]:
    """Classic FedAvg-paper pathological split: sort by label, deal out shards."""
    rng = np.random.default_rng(seed)
    order = np.argsort(dataset.y, kind="stable")
    n_shards = n_clients * shards_per_client
    shards = np.array_split(order, n_shards)
    shard_ids = rng.permutation(n_shards)
    assignment = []
    for i in range(n_clients):
        take = shard_ids[i * shards_per_client : (i + 1) * shards_per_client]
        idx = np.concatenate([shards[s] for s in take]) if len(take) else np.empty(0, dtype=np.int64)
        assignment.append(idx)
    return _make_clients(dataset, assignment, prefix)


def add_label_noise(client: ClientData, noise_rate: float, num_classes: int, seed: int = 0) -> ClientData:
    """Flip a fraction of labels uniformly at random (low-quality user labels)."""
    if not 0.0 <= noise_rate <= 1.0:
        raise ValueError("noise_rate must be in [0, 1]")
    rng = np.random.default_rng(seed)
    y = client.y.copy()
    flip = rng.random(y.shape[0]) < noise_rate
    y[flip] = rng.integers(0, num_classes, size=int(flip.sum()))
    return ClientData(client.client_id, client.x, y, client.x_unlabeled)


def drop_labels(client: ClientData, unlabeled_fraction: float, seed: int = 0) -> ClientData:
    """Move a fraction of a client's samples into the unlabeled pool."""
    if not 0.0 <= unlabeled_fraction <= 1.0:
        raise ValueError("unlabeled_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    n = client.x.shape[0]
    mask = rng.random(n) < unlabeled_fraction
    x_unlabeled = client.x[mask]
    if client.x_unlabeled is not None and client.x_unlabeled.size:
        x_unlabeled = np.concatenate([client.x_unlabeled, x_unlabeled], axis=0)
    return ClientData(client.client_id, client.x[~mask], client.y[~mask], x_unlabeled)


def partition_statistics(clients: Sequence[ClientData], num_classes: int) -> Dict[str, float]:
    """Summary statistics of how non-IID a partition is.

    Returns the mean/max total-variation distance between each client's label
    distribution and the global distribution, plus size imbalance.
    """
    sizes = np.array([c.x.shape[0] for c in clients], dtype=np.float64)
    all_labels = np.concatenate([c.y for c in clients]) if clients else np.empty(0, dtype=np.int64)
    global_dist = np.bincount(all_labels.astype(int), minlength=num_classes).astype(np.float64)
    global_dist /= max(global_dist.sum(), 1.0)
    tvs = []
    for c in clients:
        if c.x.shape[0] == 0:
            continue
        tvs.append(0.5 * float(np.abs(c.label_distribution(num_classes) - global_dist).sum()))
    tvs_arr = np.array(tvs) if tvs else np.zeros(1)
    return {
        "mean_tv_distance": float(tvs_arr.mean()),
        "max_tv_distance": float(tvs_arr.max()),
        "size_imbalance": float(sizes.max() / max(sizes.min(), 1.0)) if sizes.size else 1.0,
        "n_clients": float(len(clients)),
    }
