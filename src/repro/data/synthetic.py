"""Synthetic dataset generators standing in for real TinyML workloads.

The paper motivates edge deployment with vision, audio and sensor use cases
(smart appliances, virtual assistants, predictive maintenance).  Real data
for those is proprietary or simply unavailable offline, so each generator
here produces a controllable synthetic analogue that exercises the same code
paths: multi-class classification with class structure, image-like tensors,
spectrogram-like tensors and multivariate sensor streams with anomalies.

All generators take an explicit ``seed`` and return ``float64`` features with
integer labels, ready for :class:`repro.nn.Sequential`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "Dataset",
    "make_gaussian_blobs",
    "make_two_moons",
    "make_synthetic_digits",
    "make_keyword_spectrograms",
    "make_sensor_windows",
    "make_regression",
    "train_test_split",
]


@dataclass
class Dataset:
    """A simple (features, labels) container with train/test split helpers."""

    x: np.ndarray
    y: np.ndarray
    name: str = "dataset"
    num_classes: int = 0

    def __post_init__(self) -> None:
        if self.num_classes == 0 and self.y.size and np.issubdtype(self.y.dtype, np.integer):
            self.num_classes = int(self.y.max()) + 1

    def __len__(self) -> int:
        return int(self.x.shape[0])

    def split(self, test_fraction: float = 0.25, seed: int = 0) -> Tuple["Dataset", "Dataset"]:
        """Shuffle and split into (train, test) datasets."""
        (x_tr, y_tr), (x_te, y_te) = train_test_split(self.x, self.y, test_fraction, seed)
        return (
            Dataset(x_tr, y_tr, name=f"{self.name}-train", num_classes=self.num_classes),
            Dataset(x_te, y_te, name=f"{self.name}-test", num_classes=self.num_classes),
        )

    def subset(self, indices: np.ndarray, name: Optional[str] = None) -> "Dataset":
        """Dataset restricted to ``indices`` (view-based where possible)."""
        return Dataset(self.x[indices], self.y[indices], name=name or self.name, num_classes=self.num_classes)


def train_test_split(
    x: np.ndarray, y: np.ndarray, test_fraction: float = 0.25, seed: int = 0
) -> Tuple[Tuple[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray]]:
    """Shuffle and split arrays into train/test partitions."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    n = x.shape[0]
    idx = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    test_idx, train_idx = idx[:n_test], idx[n_test:]
    return (x[train_idx], y[train_idx]), (x[test_idx], y[test_idx])


def make_gaussian_blobs(
    n_samples: int = 1000,
    n_features: int = 16,
    n_classes: int = 4,
    cluster_std: float = 1.0,
    center_spread: float = 4.0,
    seed: int = 0,
) -> Dataset:
    """Gaussian clusters: the generic classification workload.

    Class centres are drawn uniformly in a hypercube of half-width
    ``center_spread``; samples are isotropic Gaussians around their centre.
    """
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-center_spread, center_spread, size=(n_classes, n_features))
    labels = rng.integers(0, n_classes, size=n_samples)
    x = centers[labels] + rng.normal(0.0, cluster_std, size=(n_samples, n_features))
    return Dataset(x, labels.astype(np.int64), name="gaussian_blobs", num_classes=n_classes)


def make_two_moons(n_samples: int = 1000, noise: float = 0.1, seed: int = 0) -> Dataset:
    """Two interleaved half-circles — a non-linearly separable binary task."""
    rng = np.random.default_rng(seed)
    n_out = n_samples // 2
    n_in = n_samples - n_out
    theta_out = rng.uniform(0, np.pi, n_out)
    theta_in = rng.uniform(0, np.pi, n_in)
    outer = np.stack([np.cos(theta_out), np.sin(theta_out)], axis=1)
    inner = np.stack([1.0 - np.cos(theta_in), 0.5 - np.sin(theta_in)], axis=1)
    x = np.concatenate([outer, inner], axis=0)
    x += rng.normal(0.0, noise, size=x.shape)
    y = np.concatenate([np.zeros(n_out, dtype=np.int64), np.ones(n_in, dtype=np.int64)])
    perm = rng.permutation(n_samples)
    return Dataset(x[perm], y[perm], name="two_moons", num_classes=2)


def _digit_templates(size: int) -> np.ndarray:
    """Procedural stroke templates for digits 0-9 on a ``size x size`` grid."""
    grid = np.zeros((10, size, size), dtype=np.float64)
    yy, xx = np.mgrid[0:size, 0:size]
    cx = cy = (size - 1) / 2.0
    r_outer = size * 0.38
    ring = np.abs(np.hypot(xx - cx, yy - cy) - r_outer) < size * 0.09
    vline = np.abs(xx - cx) < size * 0.08
    hline_mid = np.abs(yy - cy) < size * 0.08
    hline_top = np.abs(yy - size * 0.15) < size * 0.08
    hline_bot = np.abs(yy - size * 0.85) < size * 0.08
    diag = np.abs((xx - cx) + (yy - cy)) < size * 0.1
    anti = np.abs((xx - cx) - (yy - cy)) < size * 0.1
    left = xx < cx
    right = ~left
    top = yy < cy
    bottom = ~top

    grid[0][ring] = 1.0
    grid[1][vline] = 1.0
    grid[2][hline_top | hline_bot | anti] = 1.0
    grid[3][hline_top | hline_mid | hline_bot] = 1.0
    grid[3][ring & right] = 1.0
    grid[4][vline & bottom] = 1.0
    grid[4][hline_mid] = 1.0
    grid[4][(np.abs(xx - size * 0.25) < size * 0.08) & top] = 1.0
    grid[5][hline_top | hline_mid] = 1.0
    grid[5][(np.abs(xx - size * 0.25) < size * 0.08) & top] = 1.0
    grid[5][ring & bottom & right] = 1.0
    grid[6][ring & bottom] = 1.0
    grid[6][(np.abs(xx - size * 0.25) < size * 0.08)] = 1.0
    grid[7][hline_top | anti] = 1.0
    grid[8][ring | hline_mid] = 1.0
    grid[9][ring & top] = 1.0
    grid[9][(np.abs(xx - size * 0.75) < size * 0.08)] = 1.0
    return grid


def make_synthetic_digits(
    n_samples: int = 2000,
    image_size: int = 12,
    noise: float = 0.25,
    num_classes: int = 10,
    seed: int = 0,
    flat: bool = False,
) -> Dataset:
    """Procedurally drawn digit-like images (the MNIST stand-in).

    Each sample is a noisy, randomly shifted copy of one of ten stroke
    templates.  ``flat=True`` returns flattened feature vectors for MLPs;
    otherwise NHWC tensors of shape ``(n, size, size, 1)``.
    """
    if not 2 <= num_classes <= 10:
        raise ValueError("num_classes must be between 2 and 10")
    rng = np.random.default_rng(seed)
    templates = _digit_templates(image_size)[:num_classes]
    labels = rng.integers(0, num_classes, size=n_samples)
    images = templates[labels].copy()
    # Random small translations via np.roll per sample (vectorized per shift value).
    shifts_x = rng.integers(-1, 2, size=n_samples)
    shifts_y = rng.integers(-1, 2, size=n_samples)
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            mask = (shifts_y == dy) & (shifts_x == dx)
            if not np.any(mask) or (dx == 0 and dy == 0):
                continue
            images[mask] = np.roll(images[mask], shift=(dy, dx), axis=(1, 2))
    images += rng.normal(0.0, noise, size=images.shape)
    images = np.clip(images, 0.0, 1.5)
    if flat:
        x = images.reshape(n_samples, -1)
    else:
        x = images[..., None]
    return Dataset(x, labels.astype(np.int64), name="synthetic_digits", num_classes=num_classes)


def make_keyword_spectrograms(
    n_samples: int = 1500,
    n_mels: int = 16,
    n_frames: int = 16,
    num_keywords: int = 4,
    noise: float = 0.3,
    seed: int = 0,
) -> Dataset:
    """Keyword-spotting-like spectrograms (the audio wake-word stand-in).

    Each keyword class is a distinct time-frequency energy pattern (a chirp
    with class-specific slope and centre frequency) plus background noise.
    Output tensors are NHWC with a single channel.
    """
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, num_keywords, size=n_samples)
    t = np.linspace(0.0, 1.0, n_frames)
    f = np.linspace(0.0, 1.0, n_mels)
    tt, ff = np.meshgrid(t, f)  # (n_mels, n_frames)
    specs = np.empty((n_samples, n_mels, n_frames), dtype=np.float64)
    for k in range(num_keywords):
        slope = (k + 1) / num_keywords * 0.8
        center = 0.2 + 0.6 * k / max(1, num_keywords - 1)
        track = center + slope * (tt - 0.5)
        pattern = np.exp(-((ff - track) ** 2) / (2 * 0.02))
        idx = labels == k
        amp = rng.uniform(0.7, 1.3, size=(int(idx.sum()), 1, 1))
        specs[idx] = pattern[None, :, :] * amp
    specs += rng.normal(0.0, noise, size=specs.shape) ** 2
    return Dataset(specs[..., None], labels.astype(np.int64), name="keyword_spectrograms", num_classes=num_keywords)


def make_sensor_windows(
    n_samples: int = 2000,
    window: int = 32,
    n_channels: int = 3,
    anomaly_fraction: float = 0.05,
    machine_signature: float = 0.0,
    seed: int = 0,
) -> Dataset:
    """Vibration-sensor windows for predictive-maintenance anomaly detection.

    Normal windows are sums of two sinusoids plus noise; anomalous windows
    add a high-frequency burst.  ``machine_signature`` shifts the base
    frequencies, modelling per-machine characteristics that personalization
    (paper Section III-D) can exploit.  Features are flattened windows;
    labels are 0 (normal) / 1 (anomaly).
    """
    rng = np.random.default_rng(seed)
    t = np.arange(window) / window
    base_f1 = 3.0 + machine_signature
    base_f2 = 7.0 + 0.5 * machine_signature
    labels = (rng.random(n_samples) < anomaly_fraction).astype(np.int64)
    phases = rng.uniform(0, 2 * np.pi, size=(n_samples, n_channels, 1))
    amp = rng.uniform(0.8, 1.2, size=(n_samples, n_channels, 1))
    signal = amp * np.sin(2 * np.pi * base_f1 * t[None, None, :] + phases)
    signal += 0.5 * amp * np.sin(2 * np.pi * base_f2 * t[None, None, :] + phases * 0.7)
    signal += rng.normal(0.0, 0.1, size=signal.shape)
    burst = np.sin(2 * np.pi * 15.0 * t)[None, None, :] * (t > 0.5)[None, None, :]
    signal[labels == 1] += 0.9 * burst
    x = signal.reshape(n_samples, -1)
    return Dataset(x, labels, name="sensor_windows", num_classes=2)


def make_regression(
    n_samples: int = 1000,
    n_features: int = 8,
    noise: float = 0.1,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Linear-plus-sine regression data for telemetry / calibration tests."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n_samples, n_features))
    w = rng.normal(size=n_features)
    y = x @ w + 0.5 * np.sin(x[:, 0] * 3.0) + rng.normal(0.0, noise, size=n_samples)
    return x, y[:, None]
