"""Drift injection and streaming generators for observability experiments.

Paper Section III-B argues that on-device monitoring must detect data drift
from local statistics only.  These utilities create controlled drifting
streams so drift detectors in :mod:`repro.observability` can be evaluated
for detection delay and false-positive rate (experiment E4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from .synthetic import Dataset

__all__ = [
    "covariate_shift",
    "prior_shift",
    "concept_shift",
    "DriftSpec",
    "DriftingStream",
]


def covariate_shift(x: np.ndarray, magnitude: float = 1.0, scale: float = 1.0, seed: int = 0) -> np.ndarray:
    """Shift and rescale the feature distribution (P(x) changes, P(y|x) fixed).

    A random but fixed direction is scaled by ``magnitude`` and added to every
    sample; features are additionally multiplied by ``scale``.
    """
    rng = np.random.default_rng(seed)
    direction = rng.normal(size=x.shape[1:])
    direction /= max(np.linalg.norm(direction), 1e-12)
    return x * scale + magnitude * direction


def prior_shift(dataset: Dataset, class_weights: np.ndarray, n_samples: int, seed: int = 0) -> Dataset:
    """Resample a dataset so the label distribution matches ``class_weights``."""
    weights = np.asarray(class_weights, dtype=np.float64)
    if weights.shape[0] != dataset.num_classes:
        raise ValueError("class_weights length must equal num_classes")
    weights = weights / weights.sum()
    rng = np.random.default_rng(seed)
    chosen: List[int] = []
    per_class_idx = [np.flatnonzero(dataset.y == c) for c in range(dataset.num_classes)]
    labels = rng.choice(dataset.num_classes, size=n_samples, p=weights)
    for c in range(dataset.num_classes):
        count = int(np.sum(labels == c))
        if count == 0:
            continue
        pool = per_class_idx[c]
        if pool.size == 0:
            raise ValueError(f"dataset has no samples of class {c}")
        chosen.extend(rng.choice(pool, size=count, replace=True).tolist())
    idx = np.array(chosen)
    rng.shuffle(idx)
    return dataset.subset(idx, name=f"{dataset.name}-prior_shift")


def concept_shift(y: np.ndarray, num_classes: int, fraction: float = 1.0, seed: int = 0) -> np.ndarray:
    """Permute label semantics for a fraction of samples (P(y|x) changes)."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(num_classes)
    flip = rng.random(y.shape[0]) < fraction
    out = y.copy()
    out[flip] = perm[y[flip]]
    return out


@dataclass
class DriftSpec:
    """Description of a drift event within a stream.

    Attributes
    ----------
    start:
        Index of the first drifted batch.
    kind:
        ``"covariate"``, ``"prior"`` or ``"concept"``.
    magnitude:
        Severity knob; its meaning depends on ``kind``.
    ramp:
        Number of batches over which the drift ramps from 0 to full
        magnitude (0 = abrupt drift).
    """

    start: int
    kind: str = "covariate"
    magnitude: float = 1.0
    ramp: int = 0

    def severity_at(self, batch_index: int) -> float:
        """Effective drift magnitude at ``batch_index`` (0 before start)."""
        if batch_index < self.start:
            return 0.0
        if self.ramp <= 0:
            return self.magnitude
        progress = min(1.0, (batch_index - self.start + 1) / self.ramp)
        return self.magnitude * progress


@dataclass
class DriftingStream:
    """Batch generator producing data whose distribution drifts over time.

    The stream draws batches from a base :class:`Dataset` and applies the
    configured :class:`DriftSpec` transformations, simulating what a deployed
    edge device observes in the field.
    """

    dataset: Dataset
    batch_size: int = 64
    specs: List[DriftSpec] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        for spec in self.specs:
            if spec.kind not in ("covariate", "prior", "concept"):
                raise ValueError(f"unknown drift kind {spec.kind!r}")

    def batches(self, n_batches: int) -> Iterator[Tuple[np.ndarray, np.ndarray, bool]]:
        """Yield ``(x, y, drifted)`` tuples for ``n_batches`` batches."""
        num_classes = self.dataset.num_classes
        for b in range(n_batches):
            idx = self._rng.integers(0, len(self.dataset), size=self.batch_size)
            x = self.dataset.x[idx].astype(np.float64, copy=True)
            y = self.dataset.y[idx].copy()
            drifted = False
            for spec in self.specs:
                sev = spec.severity_at(b)
                if sev <= 0.0:
                    continue
                drifted = True
                if spec.kind == "covariate":
                    x = covariate_shift(x, magnitude=sev, seed=self.seed + 1)
                elif spec.kind == "concept":
                    y = concept_shift(y, num_classes, fraction=min(1.0, sev), seed=self.seed + 2)
                elif spec.kind == "prior":
                    # Oversample the first class proportionally to severity.
                    weights = np.ones(num_classes)
                    weights[0] += sev * num_classes
                    weights /= weights.sum()
                    relabel = self._rng.choice(num_classes, size=self.batch_size, p=weights)
                    for c in range(num_classes):
                        pool = np.flatnonzero(self.dataset.y == c)
                        take = relabel == c
                        if pool.size and np.any(take):
                            pick = self._rng.choice(pool, size=int(take.sum()), replace=True)
                            x[take] = self.dataset.x[pick]
                            y[take] = c
            yield x, y, drifted

    def first_drift_batch(self) -> Optional[int]:
        """Index of the first batch at which any drift is active."""
        if not self.specs:
            return None
        return min(spec.start for spec in self.specs)
