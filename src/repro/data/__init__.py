"""Synthetic data generators, drift injectors and federated partitioners."""

from .drift import DriftingStream, DriftSpec, concept_shift, covariate_shift, prior_shift
from .federated import (
    ClientData,
    add_label_noise,
    drop_labels,
    partition_dirichlet,
    partition_iid,
    partition_shards,
    partition_statistics,
)
from .synthetic import (
    Dataset,
    make_gaussian_blobs,
    make_keyword_spectrograms,
    make_regression,
    make_sensor_windows,
    make_synthetic_digits,
    make_two_moons,
    train_test_split,
)

__all__ = [
    "Dataset",
    "make_gaussian_blobs",
    "make_two_moons",
    "make_synthetic_digits",
    "make_keyword_spectrograms",
    "make_sensor_windows",
    "make_regression",
    "train_test_split",
    "DriftSpec",
    "DriftingStream",
    "covariate_shift",
    "prior_shift",
    "concept_shift",
    "ClientData",
    "partition_iid",
    "partition_dirichlet",
    "partition_shards",
    "add_label_noise",
    "drop_labels",
    "partition_statistics",
]
