"""Closed-loop model lifecycle: drift → retrain → canary → promote/rollback.

Paper Section III-A demands that "if the base model is updated or retrained,
we also have to automatically trigger the execution of the optimization
pipeline".  The repo has had every organ for a while — the registry
(store/triggers/versioning), drift monitoring, the federated engine, the
one-sweep fleet serving path — but nothing connected them into a loop.
:class:`LifecyclePipeline` is that loop.

Architecture (one cycle)
------------------------

::

    trigger ──► retrain ──► register ──► canary ──► gate ──► promote
      │            │            │           │          │        │
      │            │            │           │          │        └─ rollback
    drift      federated    new base    sandboxed   compare
    events /   rounds on    version +   serve_fleet candidate vs
    schedule   a CLONE      derived     on a fleet  incumbent
               (incumbent   variants    slice       (accuracy /
               untouched)   (Trigger-   (cloned     latency /
                            Manager)    state)      drift / size)

1. **Trigger** — :meth:`LifecyclePipeline.poll` consumes *new* drift events
   from every deployed device's :class:`~repro.observability.EdgeMonitor`
   (cursor-based :meth:`~repro.observability.EdgeMonitor.drift_events_since`,
   each event seen exactly once) and falls back to a fixed-interval
   schedule; :meth:`run_cycle` also accepts explicit/manual triggers.
2. **Retrain** — federated rounds run on a *weight-copy clone* of the
   incumbent (:meth:`~repro.federated.FederatedEngine.for_candidate`), so a
   candidate that later fails its gate never touched the serving model.
3. **Register** — the candidate registers as a new **base** version with the
   incumbent as lineage parent and fires
   :meth:`~repro.registry.TriggerManager.on_base_registered`: every
   subscribed optimization pipeline re-derives its variants from the new
   base, which (post-bugfix) clears
   :meth:`~repro.registry.ModelRegistry.stale_variants` by matching
   (kind, recipe, pipeline) identity.
4. **Canary** — a deterministic, seeded slice of the deployed fleet is
   *cloned* (``FleetState.extract_rows`` + deep-copied ledgers/monitors)
   into a sandbox :class:`~repro.core.serving.ServingEngine`; candidate and
   incumbent each serve the *same* seeded traffic windows through the
   existing one-sweep ``serve_fleet`` path.  The production fleet's planes,
   MAC-chained ledgers and monitors are byte-for-byte untouched (the tests
   assert this against a no-canary run).
5. **Gate** — ordered :class:`GateCheck`\\ s compare the two
   :class:`CanaryReport`\\ s: architecture compatibility (a wrong-input-shape
   candidate fails to execute), size (oversized vs the incumbent or vs the
   canary devices' flash), accuracy, latency and fresh-drift rate.
6. **Promote / rollback** — on promotion the platform adopts the candidate
   (:meth:`~repro.core.TinyMLOpsPlatform.promote_model`: serving-plan
   rebuild, post-promotion variant regeneration + per-device re-selection,
   registry deployment flips, stage ``production``); on rollback the
   candidate is staged ``rejected`` and nothing else changes.  Either way
   the full decision (trigger, gate metrics, reasons, lineage) is persisted
   as a content-addressed record in the registry store and tagged onto the
   candidate version.

Determinism: every random choice (canary slice, canary traffic, federated
rounds) derives from ``LifecycleConfig.seed`` and the cycle index, so a
seeded drift→retrain→canary→promote run reproduces the same promoted
version id and bit-identical gate metrics.

Adding a gate metric (recipe)
-----------------------------

1. *Measure it.*  Pass ``metric_probes={"my_metric": probe}`` to
   :class:`LifecyclePipeline`; the probe receives the candidate's sandbox
   ``(serving_engine, model, fleet_report)`` after the canary sweep and
   returns a float, which lands in ``CanaryReport.extras["my_metric"]`` for
   both candidate and incumbent.  (Anything derivable from the model or the
   report alone — memory, payload size — can skip this step and read
   existing fields.)
2. *Gate on it.*  Append a check to the defaults::

       def energy_check(candidate, incumbent, config):
           if candidate.extras["my_metric"] > 1.2 * incumbent.extras["my_metric"]:
               return "candidate energy regressed >20%"
           return None

       pipeline = platform.lifecycle(..., gates=default_gates() + [GateCheck("energy", energy_check)])

   A check returns ``None`` to pass or a human-readable reason to fail; any
   failing gate rolls the candidate back and the reasons are recorded in
   the decision.
3. *Tune thresholds* via :class:`LifecycleConfig` (add a field) rather than
   closing over constants, so scenario suites can sweep them.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.serving import ServingEngine
from repro.core.traffic import TrafficGenerator
from repro.devices import Fleet
from repro.nn.layers import Dense
from repro.nn.model import Sequential

__all__ = [
    "LifecycleConfig",
    "CanaryReport",
    "GateCheck",
    "default_gates",
    "LifecycleDecision",
    "LifecyclePipeline",
    "bad_architecture_candidate",
    "oversized_candidate",
    "degraded_candidate",
]


@dataclass(frozen=True)
class LifecycleConfig:
    """Knobs of the closed loop.

    Canary sizing, retraining effort, and the default gate thresholds.
    ``canary_engine`` selects the serving path for the sandbox sweeps
    (``"batched"`` — the one-sweep path — by default; ``"oracle"`` and
    ``"sharded"`` are accepted wherever ``serve_fleet`` accepts them, and
    the benchmarks assert batched≡oracle gate metrics).
    """

    canary_fraction: float = 0.2
    min_canary_devices: int = 2
    canary_windows: int = 2
    canary_rate: float = 24.0
    canary_engine: str = "batched"
    rounds: int = 2
    local_epochs: int = 1
    lr: float = 0.05
    min_accuracy_delta: float = -0.05
    max_latency_ratio: float = 1.5
    max_size_ratio: float = 4.0
    max_drift_increase: float = 0.25
    schedule_every: Optional[int] = None
    seed: int = 0


@dataclass
class CanaryReport:
    """What one sandboxed canary sweep measured for one model.

    ``error`` is set when the model failed to execute at all (evaluation or
    serving raised) — the architecture gate turns it into a rollback.
    ``drift_devices`` counts canary devices whose monitors appended *new*
    drift events during the sweep (pre-existing history is excluded via
    :meth:`~repro.observability.EdgeMonitor.drift_events_since` cursors).
    """

    accuracy: float = 0.0
    latency_s: float = 0.0
    size_bytes: int = 0
    flash_compatible_fraction: float = 0.0
    requested: int = 0
    served: int = 0
    denied_quota: int = 0
    battery_failures: int = 0
    drift_devices: int = 0
    drift_fraction: float = 0.0
    error: Optional[str] = None
    extras: Dict[str, float] = field(default_factory=dict)

    def metrics(self) -> Dict[str, object]:
        """Flat record for decisions / registry tags."""
        out = {
            "accuracy": self.accuracy,
            "latency_s": self.latency_s,
            "size_bytes": self.size_bytes,
            "flash_compatible_fraction": self.flash_compatible_fraction,
            "requested": self.requested,
            "served": self.served,
            "denied_quota": self.denied_quota,
            "battery_failures": self.battery_failures,
            "drift_devices": self.drift_devices,
            "drift_fraction": self.drift_fraction,
            "error": self.error,
        }
        out.update(self.extras)
        return out


@dataclass(frozen=True)
class GateCheck:
    """One named promotion gate.

    ``check(candidate, incumbent, config)`` returns ``None`` to pass or a
    human-readable failure reason; see the module docstring for the
    "adding a gate metric" recipe.
    """

    name: str
    check: Callable[[CanaryReport, CanaryReport, LifecycleConfig], Optional[str]]


def _architecture_check(candidate: CanaryReport, incumbent: CanaryReport, config: LifecycleConfig) -> Optional[str]:
    if candidate.error:
        return f"candidate failed to execute: {candidate.error}"
    return None


def _oversized_check(candidate: CanaryReport, incumbent: CanaryReport, config: LifecycleConfig) -> Optional[str]:
    if incumbent.size_bytes and candidate.size_bytes > config.max_size_ratio * incumbent.size_bytes:
        return (
            f"candidate is {candidate.size_bytes / incumbent.size_bytes:.1f}x the incumbent "
            f"(max {config.max_size_ratio}x)"
        )
    if candidate.flash_compatible_fraction == 0.0:
        return "candidate fits no canary device's flash"
    return None


def _accuracy_check(candidate: CanaryReport, incumbent: CanaryReport, config: LifecycleConfig) -> Optional[str]:
    floor = incumbent.accuracy + config.min_accuracy_delta
    if candidate.accuracy < floor:
        return f"accuracy {candidate.accuracy:.4f} below floor {floor:.4f} (incumbent {incumbent.accuracy:.4f})"
    return None


def _latency_check(candidate: CanaryReport, incumbent: CanaryReport, config: LifecycleConfig) -> Optional[str]:
    ceiling = incumbent.latency_s * config.max_latency_ratio
    if incumbent.latency_s and candidate.latency_s > ceiling:
        return f"mean canary latency {candidate.latency_s:.6f}s above ceiling {ceiling:.6f}s"
    return None


def _drift_check(candidate: CanaryReport, incumbent: CanaryReport, config: LifecycleConfig) -> Optional[str]:
    ceiling = incumbent.drift_fraction + config.max_drift_increase
    if candidate.drift_fraction > ceiling:
        return f"fresh-drift fraction {candidate.drift_fraction:.3f} above ceiling {ceiling:.3f}"
    return None


def default_gates() -> List[GateCheck]:
    """The standard promotion gates, in evaluation order."""
    return [
        GateCheck("architecture", _architecture_check),
        GateCheck("oversized", _oversized_check),
        GateCheck("accuracy", _accuracy_check),
        GateCheck("latency", _latency_check),
        GateCheck("drift", _drift_check),
    ]


@dataclass
class LifecycleDecision:
    """The auditable outcome of one lifecycle cycle."""

    cycle: int
    trigger: Dict[str, object]
    promoted: bool
    candidate_version: str
    incumbent_version: str
    reasons: List[str]
    candidate_metrics: Dict[str, object]
    incumbent_metrics: Dict[str, object]
    derived_versions: List[str]
    canary_devices: List[str]
    training: Dict[str, object] = field(default_factory=dict)
    stale_variants_after: int = 0
    record_digest: str = ""
    promotion: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        payload = {
            "cycle": self.cycle,
            "trigger": dict(self.trigger),
            "promoted": self.promoted,
            "candidate_version": self.candidate_version,
            "incumbent_version": self.incumbent_version,
            "reasons": list(self.reasons),
            "candidate_metrics": dict(self.candidate_metrics),
            "incumbent_metrics": dict(self.incumbent_metrics),
            "derived_versions": list(self.derived_versions),
            "canary_devices": list(self.canary_devices),
            "training": dict(self.training),
            "stale_variants_after": self.stale_variants_after,
        }
        # Like ``training["degraded"]``: the key appears only when the
        # cycle actually promoted, so rollback records keep their
        # pre-durability shape (and digests).
        if self.promotion:
            payload["promotion"] = dict(self.promotion)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "LifecycleDecision":
        """Rebuild a decision from a persisted record (``as_dict`` plus an
        optional ``record_digest`` key added by the durable log)."""
        return cls(
            cycle=int(payload["cycle"]),
            trigger=dict(payload.get("trigger", {})),
            promoted=bool(payload["promoted"]),
            candidate_version=str(payload["candidate_version"]),
            incumbent_version=str(payload["incumbent_version"]),
            reasons=list(payload.get("reasons", [])),
            candidate_metrics=dict(payload.get("candidate_metrics", {})),
            incumbent_metrics=dict(payload.get("incumbent_metrics", {})),
            derived_versions=list(payload.get("derived_versions", [])),
            canary_devices=list(payload.get("canary_devices", [])),
            training=dict(payload.get("training", {})),
            stale_variants_after=int(payload.get("stale_variants_after", 0)),
            record_digest=str(payload.get("record_digest", "")),
            promotion=dict(payload.get("promotion", {})),
        )


# ---------------------------------------------------------------------------
# scenario-injected bad candidates (mlops-chi style)
# ---------------------------------------------------------------------------

def _dense_dims(model: Sequential) -> Tuple[int, int]:
    dense = [layer for layer in model.layers if isinstance(layer, Dense)]
    if not dense:
        raise ValueError("model has no Dense layers to derive dimensions from")
    return int(dense[0].params["W"].shape[0]), int(dense[-1].params["W"].shape[1])


def bad_architecture_candidate(incumbent: Sequential, seed: int = 0) -> Sequential:
    """A candidate whose input width does not match the deployment.

    Serving it raises at the first canary window, so the architecture gate
    must catch and roll it back (the mlops-chi "bad model" scenario).
    """
    from repro.nn.zoo import make_mlp

    in_dim, out_dim = _dense_dims(incumbent)
    return make_mlp(in_dim + 3, out_dim, hidden=(8,), seed=seed, name=incumbent.name)


def oversized_candidate(incumbent: Sequential, hidden_width: int = 4096, seed: int = 0) -> Sequential:
    """A candidate far too large for the fleet (size gate must reject it)."""
    from repro.nn.zoo import make_mlp

    in_dim, out_dim = _dense_dims(incumbent)
    return make_mlp(in_dim, out_dim, hidden=(hidden_width,), seed=seed, name=incumbent.name)


def degraded_candidate(incumbent: Sequential, seed: int = 0) -> Sequential:
    """Same architecture, freshly re-initialized weights (accuracy gate)."""
    clone = incumbent.clone(copy_weights=False)
    clone.name = incumbent.name
    return clone


# ---------------------------------------------------------------------------
# the loop
# ---------------------------------------------------------------------------

class LifecyclePipeline:
    """Drift → retrain → canary → promote/rollback over a platform world.

    Parameters
    ----------
    platform:
        The :class:`~repro.core.TinyMLOpsPlatform` whose fleet, registry,
        monitors and serving state the loop manages.
    model_name:
        The released + deployed model family to operate on.
    client_data:
        Federated shards (:class:`~repro.data.federated.ClientData`) used
        for triggered retraining rounds.
    eval_data:
        ``(x, y)`` held-out data: the accuracy gate's measurement set and
        the default canary traffic pool.
    config / gates / metric_probes:
        See :class:`LifecycleConfig`, :func:`default_gates` and the module
        docstring's gate-metric recipe.
    """

    def __init__(
        self,
        platform,
        model_name: str,
        client_data: Sequence,
        eval_data: Tuple[np.ndarray, np.ndarray],
        config: Optional[LifecycleConfig] = None,
        gates: Optional[Sequence[GateCheck]] = None,
        metric_probes: Optional[Mapping[str, Callable]] = None,
        fault_injector=None,
        quorum: Optional[float] = None,
        quorum_mode: str = "delivered",
        retry_policy=None,
        checkpoints=None,
        state_dir: Optional[str] = None,
    ) -> None:
        self.platform = platform
        self.model_name = model_name
        self.client_data = list(client_data)
        self.eval_data = eval_data
        self.config = config or LifecycleConfig()
        self.gates: List[GateCheck] = list(gates) if gates is not None else default_gates()
        self.metric_probes: Dict[str, Callable] = dict(metric_probes or {})
        # repro.faults passthrough: retraining rounds run under this fault
        # plan / quorum / retry policy (None keeps the plain engine).  An
        # aborted retraining round is surfaced in the decision record's
        # ``training`` dict so a degraded cycle is operator-visible.
        self.fault_injector = fault_injector
        self.quorum = quorum
        self.quorum_mode = quorum_mode
        self.retry_policy = retry_policy
        self.checkpoints = checkpoints
        self.history: List[LifecycleDecision] = []
        self._drift_cursors: Dict[str, int] = {}
        self._ticks = 0
        self._cycles = 0
        # Durable decision log: with a ``state_dir`` every decision (and
        # its promotion audit map) is atomically persisted, and a pipeline
        # rebuilt over the same directory restarts with its history and
        # cycle counter restored — registry state is rebuilt by the world
        # setup; the *decisions* are what only this log remembers.
        self._decision_log = None
        if state_dir is not None:
            from repro.faults.durable import DurableDecisionLog

            self._decision_log = DurableDecisionLog(state_dir)
            for payload in self._decision_log.load():
                decision = LifecycleDecision.from_dict(payload)
                self.history.append(decision)
                self._cycles = max(self._cycles, decision.cycle + 1)

    # ------------------------------------------------------------------
    # triggers
    # ------------------------------------------------------------------
    def consume_drift_events(self) -> List[Dict[str, object]]:
        """New drift events across the fleet since the previous poll."""
        events: List[Dict[str, object]] = []
        for device_id in sorted(self.platform.monitors):
            monitor = self.platform.monitors[device_id]
            fresh, cursor = monitor.drift_events_since(self._drift_cursors.get(device_id, 0))
            self._drift_cursors[device_id] = cursor
            events.extend({"device_id": device_id, **event} for event in fresh)
        return events

    def poll(self) -> Optional[Dict[str, object]]:
        """The trigger that is due now, or None.

        Drift events take priority; otherwise a cycle is due every
        ``config.schedule_every``-th poll (when configured).
        """
        self._ticks += 1
        events = self.consume_drift_events()
        if events:
            return {
                "kind": "drift",
                "n_events": len(events),
                "devices": sorted({str(e["device_id"]) for e in events}),
            }
        if self.config.schedule_every and self._ticks % self.config.schedule_every == 0:
            return {"kind": "schedule", "tick": self._ticks}
        return None

    def step(self) -> Optional[LifecycleDecision]:
        """Poll for a trigger and run one cycle if one is due."""
        trigger = self.poll()
        if trigger is None:
            return None
        return self.run_cycle(trigger=trigger)

    # ------------------------------------------------------------------
    # one full cycle
    # ------------------------------------------------------------------
    def run_cycle(
        self,
        trigger: Optional[Dict[str, object]] = None,
        candidate_model: Optional[Sequential] = None,
        canary_inputs: Optional[np.ndarray] = None,
    ) -> LifecycleDecision:
        """Retrain (or take an injected candidate), canary, promote/rollback.

        ``candidate_model`` bypasses retraining — the scenario-injection
        hook used to prove the gate rejects bad-architecture / oversized /
        degraded candidates.  ``canary_inputs`` overrides the canary traffic
        pool (defaults to the held-out eval inputs; pass the live drifted
        window to canary under the conditions that fired the trigger).
        """
        trigger = dict(trigger) if trigger else {"kind": "manual"}
        cycle = self._cycles
        self._cycles += 1
        platform = self.platform
        registry = platform.registry
        incumbent_model = platform.deployed_models[self.model_name]
        production = registry.production(self.model_name)
        incumbent_version = (production or registry.latest(self.model_name, kind="base")).version_id

        # 1. retrain on a clone (or take the injected candidate as-is)
        training: Dict[str, object] = {}
        if candidate_model is None:
            engine = platform.build_federated_engine(
                incumbent_model,
                self.client_data,
                local_epochs=self.config.local_epochs,
                lr=self.config.lr,
                eval_data=self.eval_data,
                train_in_place=False,
                fault_injector=self.fault_injector,
                quorum=self.quorum,
                quorum_mode=self.quorum_mode,
                retry_policy=self.retry_policy,
                checkpoints=self.checkpoints,
            )
            rounds = engine.run(self.config.rounds)
            candidate_model = engine.global_model
            training = {
                "rounds": len(rounds),
                "final_accuracy": rounds[-1].global_accuracy if rounds else 0.0,
            }
            aborted = [r for r in rounds if r.aborted]
            degraded = {
                "aborted_rounds": len(aborted),
                "abort_reasons": [r.abort_reason for r in aborted],
                "n_crashes": sum(r.n_crashes for r in rounds),
                "n_delivery_failures": sum(r.n_delivery_failures for r in rounds),
                "n_retransmits": sum(r.n_retransmits for r in rounds),
                "shard_recoveries": sum(r.shard_recoveries for r in rounds),
            }
            if any(degraded[k] for k in degraded):
                # Only a degraded run carries the block, so fault-free
                # decision records keep their pre-fault-plane shape.
                training["degraded"] = degraded
        else:
            training = {"rounds": 0, "injected": True}

        # 2. register the candidate as a new base; fire optimization pipelines
        candidate_version = registry.register_model(
            candidate_model,
            kind="base",
            parents=(incumbent_version,),
            tags={"stage": "candidate", "trigger": trigger.get("kind", "manual"), "cycle": cycle},
            model_name=self.model_name,
        )
        derived = platform.triggers.on_base_registered(candidate_version)

        # 3. canary both models on cloned state with identical traffic
        canary_ids = self._canary_slice(cycle)
        windows = self._canary_windows(canary_ids, cycle, canary_inputs)
        candidate_report = self._canary_report(candidate_model, canary_ids, windows)
        incumbent_report = self._canary_report(incumbent_model, canary_ids, windows)

        # 4. gate
        reasons: List[str] = []
        for gate in self.gates:
            failure = gate.check(candidate_report, incumbent_report, self.config)
            if failure:
                reasons.append(f"{gate.name}: {failure}")
        promoted = not reasons

        # 5. apply
        promotion_audit: Dict[str, object] = {}
        if promoted:
            x_eval, y_eval = self.eval_data
            promotion_audit = platform.promote_model(
                self.model_name, candidate_model, candidate_version.version_id, x_eval=x_eval, y_eval=y_eval
            )
        else:
            registry.set_stage(candidate_version.version_id, "rejected")

        # 6. record the decision (content-addressed, tagged onto the version)
        decision = LifecycleDecision(
            cycle=cycle,
            trigger=trigger,
            promoted=promoted,
            candidate_version=candidate_version.version_id,
            incumbent_version=incumbent_version,
            reasons=reasons,
            candidate_metrics=candidate_report.metrics(),
            incumbent_metrics=incumbent_report.metrics(),
            derived_versions=[v.version_id for v in derived],
            canary_devices=list(canary_ids),
            training=training,
            stale_variants_after=len(registry.stale_variants(self.model_name)),
            promotion=promotion_audit or {},
        )
        record = registry.store.put_object(
            decision.as_dict(),
            kind="lifecycle-decision",
            name=f"{self.model_name}:cycle-{cycle}",
        )
        decision.record_digest = record.digest
        registry.tag_version(candidate_version.version_id, gate_record=record.digest)
        platform._log(
            "lifecycle_decision",
            model=self.model_name,
            cycle=cycle,
            trigger=trigger.get("kind"),
            promoted=promoted,
            candidate=candidate_version.version_id,
            reasons=reasons,
        )
        self.history.append(decision)
        if self._decision_log is not None:
            self._decision_log.append({**decision.as_dict(), "record_digest": record.digest})
        return decision

    # ------------------------------------------------------------------
    # canary internals
    # ------------------------------------------------------------------
    def _deployed_device_ids(self) -> List[str]:
        registry = self.platform.registry
        return sorted(
            device_id
            for device_id in registry.deployments
            if device_id in self.platform.fleet.devices
            and registry.deployed_version(device_id, self.model_name) is not None
        )

    def _canary_slice(self, cycle: int) -> List[str]:
        """A deterministic, seeded slice of the deployed fleet."""
        deployed = self._deployed_device_ids()
        if not deployed:
            raise RuntimeError(f"no deployed devices to canary {self.model_name!r} on")
        n = max(
            min(self.config.min_canary_devices, len(deployed)),
            int(round(self.config.canary_fraction * len(deployed))),
        )
        n = min(n, len(deployed))
        rng = np.random.default_rng([self.config.seed, 7, cycle])
        picks = rng.choice(len(deployed), size=n, replace=False)
        return [deployed[i] for i in sorted(picks)]

    def _canary_windows(
        self, canary_ids: Sequence[str], cycle: int, canary_inputs: Optional[np.ndarray]
    ) -> List[Dict[str, np.ndarray]]:
        """Seeded canary traffic, materialized once and replayed for both models."""
        pool = canary_inputs if canary_inputs is not None else self.eval_data[0]
        seed = int(np.random.SeedSequence([self.config.seed, 11, cycle]).generate_state(1)[0])
        generator = TrafficGenerator(list(canary_ids), seed=seed)
        counts = generator.steady(self.config.canary_windows, rate=self.config.canary_rate)
        return list(generator.windows(counts, np.asarray(pool)))

    def _sandbox(self, canary_ids: Sequence[str], model: Sequential) -> ServingEngine:
        """A serving engine over *clones* of the canary devices' state.

        ``FleetState.extract_rows`` copies the planes (deep-copying RNG
        streams) and the ledgers/monitors are deep-copied, so nothing the
        canary does can perturb the production fleet — the same isolation
        contract the sharded backend's workers rely on.
        """
        platform = self.platform
        rows = platform.fleet.rows_for(canary_ids)
        sub_fleet = Fleet.from_state(platform.fleet.state.extract_rows(rows))
        ledgers = {
            device_id: copy.deepcopy(platform.ledgers[device_id])
            for device_id in canary_ids
            if device_id in platform.ledgers
        }
        monitors = {
            device_id: copy.deepcopy(platform.monitors[device_id])
            for device_id in canary_ids
            if device_id in platform.monitors
        }
        engine = ServingEngine(
            sub_fleet,
            cost_model=platform.cost_model,
            models={self.model_name: model},
            ledgers=ledgers,
            monitors=monitors,
        )
        try:
            engine.compile_model(self.model_name)
        except Exception:
            # Serving falls back to the nn forward; a model that cannot run
            # at all still surfaces as a serve error below.
            pass
        return engine

    def _canary_report(
        self,
        model: Sequential,
        canary_ids: Sequence[str],
        windows: Sequence[Dict[str, np.ndarray]],
    ) -> CanaryReport:
        """Serve the canary windows in a sandbox and measure the gate metrics."""
        platform = self.platform
        report = CanaryReport(size_bytes=model.num_params() * 4)

        profiles = [platform.fleet.get(device_id).profile for device_id in canary_ids]
        report.flash_compatible_fraction = float(
            np.mean([p.flash_bytes >= report.size_bytes for p in profiles])
        )
        latency_by_profile: Dict[str, float] = {}
        try:
            for profile in profiles:
                if profile.name not in latency_by_profile:
                    latency_by_profile[profile.name] = platform.cost_model.model_inference_cost(
                        profile, model
                    ).latency_s
            report.latency_s = float(np.mean([latency_by_profile[p.name] for p in profiles]))
            x_eval, y_eval = self.eval_data
            report.accuracy = float(model.evaluate(x_eval, y_eval)["accuracy"])
        except Exception as exc:  # wrong-architecture candidates die here
            report.error = f"{type(exc).__name__}: {exc}"
            return report

        sandbox = self._sandbox(canary_ids, model)
        cursors = {
            device_id: len(monitor.drift_events) for device_id, monitor in sandbox.monitors.items()
        }
        try:
            fleet_report = sandbox.serve_fleet(
                self.model_name, list(windows), engine=self.config.canary_engine
            )
        except Exception as exc:
            report.error = f"{type(exc).__name__}: {exc}"
            return report
        report.requested = fleet_report.requested
        report.served = fleet_report.served
        report.denied_quota = fleet_report.denied_quota
        report.battery_failures = fleet_report.battery_failures
        report.drift_devices = sum(
            1
            for device_id, monitor in sandbox.monitors.items()
            if monitor.drift_events_since(cursors[device_id])[0]
        )
        report.drift_fraction = report.drift_devices / max(len(canary_ids), 1)
        for name, probe in self.metric_probes.items():
            report.extras[name] = float(probe(sandbox, model, fleet_report))
        return report
