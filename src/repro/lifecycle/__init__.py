"""Closed-loop model lifecycle automation (drift → retrain → canary → promote)."""

from repro.lifecycle.pipeline import (
    CanaryReport,
    GateCheck,
    LifecycleConfig,
    LifecycleDecision,
    LifecyclePipeline,
    bad_architecture_candidate,
    default_gates,
    degraded_candidate,
    oversized_candidate,
)

__all__ = [
    "CanaryReport",
    "GateCheck",
    "LifecycleConfig",
    "LifecycleDecision",
    "LifecyclePipeline",
    "bad_architecture_candidate",
    "default_gates",
    "degraded_candidate",
    "oversized_candidate",
]
