"""Portable processing modules and the capability sandbox.

Paper Sections III-A / IV: pipelines need "data preprocessing and
postprocessing operations such as normalization, thresholding or even some
control logic", packaged as "portable and re-usable modules" (the hotg.ai
WebAssembly/Rune approach, ref [24]) and run "in an isolated sandbox [to]
restrict the access to parts of the operating system or external sensors".

A :class:`Module` is a named, versioned, signed processing block with a
declared set of required capabilities.  The :class:`Sandbox` refuses to run
a module whose requirements exceed the capabilities granted on the device.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Capability",
    "Module",
    "Sandbox",
    "SandboxViolation",
    "normalize_module",
    "threshold_module",
    "argmax_module",
    "softmax_module",
    "model_module",
    "graph_module",
]


class Capability:
    """Capabilities a module may request and a sandbox may grant."""

    COMPUTE = "compute"
    SENSOR_CAMERA = "sensor:camera"
    SENSOR_MICROPHONE = "sensor:microphone"
    SENSOR_IMU = "sensor:imu"
    NETWORK = "network"
    STORAGE = "storage"
    SECURE_ENCLAVE = "secure_enclave"

    ALL = (COMPUTE, SENSOR_CAMERA, SENSOR_MICROPHONE, SENSOR_IMU, NETWORK, STORAGE, SECURE_ENCLAVE)


class SandboxViolation(PermissionError):
    """Raised when a module requires a capability the sandbox did not grant."""


@dataclass
class Module:
    """A portable processing block (the WASM-container stand-in).

    Attributes
    ----------
    name / version:
        Identity of the module; the digest covers both plus the declared
        capabilities, so tampering with the manifest is detectable.
    fn:
        The processing function ``(np.ndarray) -> np.ndarray``.
    requires:
        Capabilities the module needs at runtime.
    size_bytes:
        Approximate packaged size (used by placement decisions).
    """

    name: str
    fn: Callable[[np.ndarray], np.ndarray]
    version: str = "1.0.0"
    requires: FrozenSet[str] = frozenset({Capability.COMPUTE})
    size_bytes: int = 1024
    metadata: Dict[str, object] = field(default_factory=dict)

    def digest(self) -> str:
        """Manifest digest binding name, version and capability set."""
        payload = f"{self.name}|{self.version}|{','.join(sorted(self.requires))}".encode()
        return hashlib.sha256(payload).hexdigest()

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.fn(x)


class Sandbox:
    """Capability-based isolation for module execution on a device."""

    def __init__(self, granted: Sequence[str] = (Capability.COMPUTE,), device_id: str = "") -> None:
        unknown = set(granted) - set(Capability.ALL)
        if unknown:
            raise ValueError(f"unknown capabilities {sorted(unknown)}")
        self.granted: FrozenSet[str] = frozenset(granted)
        self.device_id = device_id
        self.execution_log: List[Dict[str, object]] = []

    def can_run(self, module: Module) -> bool:
        """Whether every required capability is granted."""
        return module.requires <= self.granted

    def run(self, module: Module, x: np.ndarray) -> np.ndarray:
        """Execute a module, enforcing the capability policy."""
        missing = module.requires - self.granted
        if missing:
            raise SandboxViolation(
                f"module {module.name!r} requires {sorted(missing)} not granted on {self.device_id or 'device'}"
            )
        out = module(x)
        self.execution_log.append({"module": module.name, "version": module.version, "n": int(np.asarray(x).shape[0])})
        return out


# ---------------------------------------------------------------------------
# standard module factories
# ---------------------------------------------------------------------------

def normalize_module(mean: float | np.ndarray = 0.0, std: float | np.ndarray = 1.0, name: str = "normalize") -> Module:
    """Input normalization ``(x - mean) / std``."""
    mean_arr = np.asarray(mean, dtype=np.float64)
    std_arr = np.asarray(std, dtype=np.float64)

    def fn(x: np.ndarray) -> np.ndarray:
        return (np.asarray(x, dtype=np.float64) - mean_arr) / std_arr

    return Module(name=name, fn=fn, metadata={"mean": mean, "std": std}, size_bytes=256)


def threshold_module(value: float = 0.5, name: str = "threshold") -> Module:
    """Binarize scores at a threshold."""
    def fn(x: np.ndarray) -> np.ndarray:
        return (np.asarray(x, dtype=np.float64) >= value).astype(np.float64)

    return Module(name=name, fn=fn, metadata={"value": value}, size_bytes=128)


def argmax_module(name: str = "argmax") -> Module:
    """Class decision from logits/probabilities."""
    def fn(x: np.ndarray) -> np.ndarray:
        return np.asarray(x).argmax(axis=-1)

    return Module(name=name, fn=fn, size_bytes=128)


def softmax_module(name: str = "softmax") -> Module:
    """Convert logits into probabilities."""
    from repro.nn.activations import softmax

    return Module(name=name, fn=lambda x: softmax(np.asarray(x, dtype=np.float64), axis=-1), size_bytes=128)


def model_module(model, name: Optional[str] = None, bits: int = 32) -> Module:
    """Wrap a :class:`repro.nn.Sequential` as a pipeline module."""
    return Module(
        name=name or model.name,
        fn=lambda x: model.forward(np.asarray(x, dtype=np.float64), training=False),
        requires=frozenset({Capability.COMPUTE}),
        size_bytes=int(np.ceil(model.num_params() * bits / 8)),
        metadata={"kind": "model", "params": model.num_params(), "bits": bits},
    )


def graph_module(graph, name: Optional[str] = None) -> Module:
    """Wrap a lowered :class:`repro.exchange.GraphIR` as a pipeline module.

    The graph executes through the compiled plan
    (:class:`repro.exchange.CompiledExecutor`): fused activations run
    natively (no re-expansion), quantized weights are folded once, and
    workspaces are reused across calls.
    """
    from repro.exchange.compiled import CompiledExecutor

    executor = CompiledExecutor(graph)
    return Module(
        name=name or graph.name,
        fn=executor.run,
        requires=frozenset({Capability.COMPUTE}),
        size_bytes=graph.size_bytes(),
        metadata={
            "kind": "graph",
            "bits": graph.metadata.get("bits", 32),
            "target": graph.metadata.get("target"),
            "compiled": True,
            # Data-dependent quantization makes per-sample outputs depend on
            # the rest of the batch; Pipeline.run_many must not stack
            # windows through such a module.
            "stackable": executor.stacking_exact,
        },
    )
