"""Offloading marketplace and edge-cloud split execution.

Paper Section IV: "We could then envision a marketplace where every device
in the network can potentially execute a certain machine learning workload
… Owners of the device will be incentivized to run workloads as they
receive a monetary compensation … It is even possible to split a model
between edge and cloud."

* :class:`OffloadMarketplace` — devices advertise capacity and a price; a
  workload (FLOPs + payload size) is placed on the bidder minimizing
  latency (or cost) including the network transfer to reach it.
* :func:`find_best_split` — choose the layer after which to cut a graph so
  that edge-compute + transfer + cloud-compute latency is minimized, using
  :func:`repro.exchange.analysis.split_point_costs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.devices.cost import CostModel
from repro.devices.fleet import EdgeDevice
from repro.devices.network import NetworkCondition
from repro.devices.profiles import DeviceProfile
from repro.exchange.analysis import split_point_costs
from repro.exchange.graph import GraphIR

__all__ = ["OffloadBid", "OffloadMarketplace", "SplitDecision", "find_best_split"]


@dataclass
class OffloadBid:
    """One device's offer to execute workloads."""

    device_id: str
    profile: DeviceProfile
    price_per_gflop: float
    network: NetworkCondition
    available: bool = True


@dataclass
class OffloadDecision:
    """Chosen executor for a workload, with the predicted cost breakdown."""

    device_id: str
    latency_s: float
    transfer_s: float
    compute_s: float
    price: float


class OffloadMarketplace:
    """Matches workloads to the cheapest/fastest available executor."""

    def __init__(self, cost_model: Optional[CostModel] = None) -> None:
        self.cost_model = cost_model or CostModel()
        self.bids: Dict[str, OffloadBid] = {}
        self.ledger: List[OffloadDecision] = []

    def register_bid(self, bid: OffloadBid) -> None:
        """Add or update a device's offer."""
        self.bids[bid.device_id] = bid

    def withdraw(self, device_id: str) -> None:
        """Remove a device from the marketplace."""
        self.bids.pop(device_id, None)

    def place_workload(
        self,
        flops: float,
        payload_bytes: float,
        objective: str = "latency",
        max_price: Optional[float] = None,
    ) -> Optional[OffloadDecision]:
        """Choose the best executor for a workload.

        ``objective`` is ``"latency"`` (transfer + compute) or ``"price"``.
        Returns None when no available bidder satisfies the constraints.
        """
        if objective not in ("latency", "price"):
            raise ValueError("objective must be 'latency' or 'price'")
        best: Optional[OffloadDecision] = None
        for bid in self.bids.values():
            if not bid.available or not bid.network.online:
                continue
            price = bid.price_per_gflop * flops / 1e9
            if max_price is not None and price > max_price:
                continue
            transfer = bid.network.transfer_time(payload_bytes)
            compute = flops / bid.profile.peak_flops
            latency = transfer + compute
            decision = OffloadDecision(bid.device_id, latency, transfer, compute, round(price, 9))
            key = decision.latency_s if objective == "latency" else decision.price
            best_key = (best.latency_s if objective == "latency" else best.price) if best else None
            if best is None or key < best_key:
                best = decision
        if best is not None:
            self.ledger.append(best)
        return best

    def payouts(self) -> Dict[str, float]:
        """Accumulated compensation owed to each executing device."""
        out: Dict[str, float] = {}
        for decision in self.ledger:
            out[decision.device_id] = out.get(decision.device_id, 0.0) + decision.price
        return {k: round(v, 9) for k, v in out.items()}


@dataclass
class SplitDecision:
    """Best edge/cloud split for a graph under given conditions."""

    split_after: int
    edge_latency_s: float
    transfer_s: float
    cloud_latency_s: float
    total_latency_s: float
    all_edge_latency_s: float
    all_cloud_latency_s: float

    def speedup_vs_edge(self) -> float:
        return self.all_edge_latency_s / max(self.total_latency_s, 1e-12)

    def speedup_vs_cloud(self) -> float:
        return self.all_cloud_latency_s / max(self.total_latency_s, 1e-12)


def find_best_split(
    graph: GraphIR,
    edge_profile: DeviceProfile,
    cloud_profile: DeviceProfile,
    network: NetworkCondition,
    bits: int = 32,
) -> SplitDecision:
    """Minimize end-to-end latency over all possible split points.

    ``split_after = -1`` means everything runs in the cloud (raw input is
    transferred); ``split_after = len(graph) - 1`` means everything runs on
    the edge.  The optimum typically sits after a layer that shrinks the
    activation volume (pooling / bottleneck), which is the behaviour the
    split-computing literature cited by the paper reports.
    """
    candidates = split_point_costs(graph, default_bits=bits)
    best: Optional[SplitDecision] = None
    all_edge = None
    all_cloud = None
    for row in candidates:
        edge_t = row["edge_flops"] / edge_profile.peak_flops
        cloud_t = row["cloud_flops"] / cloud_profile.peak_flops
        transfer_t = network.transfer_time(row["transfer_bytes"]) if row["cloud_flops"] > 0 else 0.0
        total = edge_t + transfer_t + cloud_t
        decision = SplitDecision(
            split_after=int(row["split_after"]),
            edge_latency_s=edge_t,
            transfer_s=transfer_t,
            cloud_latency_s=cloud_t,
            total_latency_s=total,
            all_edge_latency_s=0.0,
            all_cloud_latency_s=0.0,
        )
        if int(row["split_after"]) == len(graph) - 1:
            all_edge = total
        if int(row["split_after"]) == -1:
            all_cloud = total
        if best is None or total < best.total_latency_s:
            best = decision
    assert best is not None
    best.all_edge_latency_s = all_edge if all_edge is not None else best.total_latency_s
    best.all_cloud_latency_s = all_cloud if all_cloud is not None else best.total_latency_s
    return best
