"""Portable module runtime: sandboxed pipelines, orchestration, offloading,
and the sharded multi-process fleet backend (:mod:`repro.runtime.sharded`)."""

from .modules import (
    Capability,
    Module,
    Sandbox,
    SandboxViolation,
    argmax_module,
    graph_module,
    model_module,
    normalize_module,
    softmax_module,
    threshold_module,
)
from .offload import OffloadBid, OffloadMarketplace, SplitDecision, find_best_split
from .orchestrator import Orchestrator, PlacementDecision, RolloutPlan
from .pipeline import ConditionalStage, Pipeline
from .sharded import ShardedFleetRunner, shard_row_groups

__all__ = [
    "Capability",
    "Module",
    "Sandbox",
    "SandboxViolation",
    "normalize_module",
    "threshold_module",
    "argmax_module",
    "softmax_module",
    "model_module",
    "graph_module",
    "Pipeline",
    "ConditionalStage",
    "Orchestrator",
    "PlacementDecision",
    "RolloutPlan",
    "OffloadMarketplace",
    "OffloadBid",
    "SplitDecision",
    "find_best_split",
    "ShardedFleetRunner",
    "shard_row_groups",
]
