"""Sharded multi-process fleet backend with deterministic barrier merges.

Closes ROADMAP item 2: after the columnar :class:`~repro.devices.FleetState`
redesign made fleet state ~16 NumPy planes, this module partitions those
planes into per-worker shards, runs the *batched* single-process engines
independently per shard on a :mod:`multiprocessing` pool, and merges the
results at a barrier so the outcome is **byte-identical** to
``engine="batched"`` — which stays the in-process oracle (and itself stays
equivalent to ``engine="oracle"``, the scalar loop).

What gets sharded, and why it is byte-safe
------------------------------------------
*Serving* (``serve_fleet``): the window's devices are split into contiguous,
balanced shards.  Every per-device outcome is independent — quota metering
is per-device (each device owns its MAC chain), battery admission is a
per-row closed form, compiled-plan ``run_many`` is per-window exact, and
:class:`~repro.observability.FleetMonitor` sweeps equal the per-device loop
— so shard composition cannot change any value.  At the barrier:

* MAC-chained ledger segments are re-chained in shard order via
  :meth:`~repro.billing.UsageLedger.append_segment` (each worker metered
  against a copy of the parent ledger, so its segment is a valid chain
  extension of the parent head);
* drift events / telemetry come home as whole updated monitor objects,
  re-installed in canonical device order (each device's monitor observed
  exactly the slice the batched sweep would have fed it);
* battery/counter planes merge back via
  :meth:`~repro.devices.FleetState.merge_rows` (or are written in place by
  the ``shared`` backend).

*Federated* (``run_round``): work is distributed at **cohort granularity** —
each homogeneous cohort's :func:`~repro.federated.engine.train_clients_batched`
sweep runs whole inside one worker with identical inputs, because splitting
a cohort would change the stacked tensor geometry (``n_max`` padding, GEMM
widths) and risk last-ulp drift.  Fallback cohorts (stateful optimizer
instances) train in the parent so their cross-round client state persists;
idle cohorts keep their zero rows.  Delta rows are placed back by cohort
indices, and the aggregation that follows (NumPy's pairwise-stable
summation inside the aggregator) runs in the parent on the merged stack —
bitwise the same stack the batched path builds.

Backends (``backend=`` kwarg)
-----------------------------
``"pickle"``   chunked pickling over a process pool: each worker receives a
               pickled sub-store (:meth:`FleetState.extract_rows`) plus
               deep-copied ledgers/monitors, and ships results back.
               Portable to any start method.
``"shared"``   shared-memory NumPy views: the serving-mutable planes
               (``level_j``, ``query_count``) are rebound onto anonymous
               shared ``mmap`` buffers before the pool forks, so workers
               write admission results in place and nothing but results /
               ledger segments / monitors travels back.  Requires the
               ``fork`` start method; degrades to ``"pickle"`` elsewhere.
``"inline"``   the full shard/split/merge machinery executed in-process —
               no pool.  Exists so differential and property tests can
               exercise shard semantics deterministically and cheaply; it
               must be (and is asserted) byte-identical to the pooled
               backends.
``"auto"``     ``"pickle"`` when a pool is available, else ``"inline"``.

Fault tolerance — never a partial merge
---------------------------------------
Workers can raise, hang or die mid-task.  The runner collects *all* shard
results before any merge: a failed/hung/killed shard is retried once on a
fresh pool (``retries=``), then re-executed deterministically in-process.
Only when every shard has a result does the barrier merge run; recovered
shards are counted in the caller's report/result
(``FleetServeReport.shard_recoveries`` / ``RoundResult.shard_recoveries``).
If even the in-process re-execution raises (a genuinely poisoned shard),
the exception propagates with the parent's ledgers, monitors and planes
untouched (the ``shared`` backend restores its plane snapshot first).

Fault injection comes in two spellings (both documented centrally in the
:mod:`repro.faults` package docstring): the env hook
``REPRO_SHARD_FAULT="<shard>:<mode>[:any]"`` with mode ``raise`` /
``hang`` / ``exit`` (one-off debugging; without the ``:any`` scope the
fault only fires inside pool workers, so in-process recovery succeeds),
and the replayable plan-driven spelling — construct the runner with
``fault_injector=`` and the :class:`~repro.faults.FaultPlan`'s
``shard_faults`` events ship inside the task payloads, firing in the
matching pooled dispatch's workers.  A ``retry_policy=`` additionally
makes the retry passes wait out the policy's seeded exponential backoff
(and caps the pass count / total deadline), the same
:class:`~repro.faults.RetryPolicy` contract client delta delivery
simulates.

``workers=`` resolution order: explicit argument, else the
``REPRO_TEST_WORKERS`` environment variable, else ``os.cpu_count()``.
"""

from __future__ import annotations

import copy
import mmap
import multiprocessing as mp
import os
import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ShardedFleetRunner", "shard_row_groups", "FAULT_ENV", "WORKERS_ENV"]

FAULT_ENV = "REPRO_SHARD_FAULT"
WORKERS_ENV = "REPRO_TEST_WORKERS"

_BACKENDS = ("auto", "pickle", "shared", "inline")

# Planes serve-sweeps mutate; the shared backend rebinds exactly these onto
# anonymous shared mmap buffers (and snapshots them for fault recovery).
_SHARED_SERVE_PLANES = ("level_j", "query_count")

# Parent-side FleetState inherited by fork()ed pool workers of the shared
# backend (set immediately before the pool is created, cleared after).
_SHARED_STATE = None


def shard_row_groups(n_items: int, workers: int) -> List[np.ndarray]:
    """Contiguous, balanced, non-empty index groups over ``range(n_items)``.

    At most ``workers`` groups; sizes differ by at most one, so ragged
    fleets (n not divisible by workers) split without empty shards.
    """
    if n_items <= 0:
        return []
    workers = max(1, int(workers))
    return list(np.array_split(np.arange(n_items), min(workers, n_items)))


def _env_workers() -> int:
    raw = os.environ.get(WORKERS_ENV, "").strip()
    try:
        return max(0, int(raw)) if raw else 0
    except ValueError:
        return 0


def _apply_fault_mode(mode: str, shard_index: int) -> None:
    if mode == "raise":
        raise RuntimeError(f"injected fault in shard {shard_index}")
    if mode == "hang":
        time.sleep(3600.0)
        return
    if mode == "exit":
        os._exit(13)
    raise ValueError(f"unknown shard fault mode {mode!r}")


def _maybe_inject_fault(shard_index: int, parent_pid: int, fault: Optional[str] = None) -> None:
    """Honor shard fault injection: the plan-driven ``fault`` payload field
    first, then the REPRO_SHARD_FAULT env hook (no-op when both are unset).

    Both spellings fire only inside pool workers (plan faults model
    *worker* deaths — the deterministic in-process re-execution must
    succeed, which is exactly what makes faulty runs byte-identical to
    clean ones); the env hook's ``:any`` scope can opt out for tests.
    """
    if fault is not None and os.getpid() != parent_pid:
        _apply_fault_mode(fault, shard_index)
    spec = os.environ.get(FAULT_ENV, "")
    if not spec:
        return
    parts = spec.split(":")
    if len(parts) < 2 or int(parts[0]) != shard_index:
        return
    scope = parts[2] if len(parts) > 2 else "worker"
    if scope == "worker" and os.getpid() == parent_pid:
        return  # only poison pool workers; in-process recovery succeeds
    _apply_fault_mode(parts[1], shard_index)


# ---------------------------------------------------------------------------
# worker task bodies (module-level: picklable under any start method)
# ---------------------------------------------------------------------------


def _serve_shard_task(payload: Dict[str, object]) -> Dict[str, object]:
    """One serving shard: run the batched fleet-window sweep on a sub-world."""
    _maybe_inject_fault(payload["shard_index"], payload["parent_pid"], payload.get("fault"))  # type: ignore[arg-type]
    from repro.core.serving import FleetServeReport, ServingEngine
    from repro.devices.fleet import Fleet

    state = payload["state"]
    if state is None:  # shared backend: the fork()ed parent store, planes in shm
        state = _SHARED_STATE
    fleet = Fleet.from_state(state)
    engine = ServingEngine(
        fleet,
        cost_model=payload["cost_model"],
        models=payload["models"],
        ledgers=payload["ledgers"],
        monitors=payload["monitors"],
    )
    model_name: str = payload["model_name"]  # type: ignore[assignment]
    if payload["plan_options"] is not None:
        pipeline, apply_quantization = payload["plan_options"]  # type: ignore[misc]
        engine.compile_model(model_name, pipeline=pipeline, apply_quantization=apply_quantization)
    ledger_base = {device_id: len(ledger.entries) for device_id, ledger in engine.ledgers.items()}
    report = FleetServeReport(model_name=model_name)
    results = engine._serve_fleet_window(
        model_name, dict(payload["items"]), report, bits=payload["bits"]  # type: ignore[arg-type]
    )
    return {
        "shard_index": payload["shard_index"],
        "results": results,
        "ledger_segments": {
            device_id: ledger.export_segment(ledger_base[device_id])
            for device_id, ledger in engine.ledgers.items()
        },
        "monitors": dict(engine.monitors),
        "state": payload["state"],  # the mutated sub-store (None on shared)
    }


def _train_shard_task(payload: Dict[str, object]) -> Dict[str, object]:
    """One federated shard: a whole batched cohort trained in lock-step."""
    _maybe_inject_fault(payload["shard_index"], payload["parent_pid"], payload.get("fault"))  # type: ignore[arg-type]
    from repro.federated.engine import train_clients_batched

    deltas, losses, accs = train_clients_batched(payload["model"], payload["clients"])
    return {
        "shard_index": payload["shard_index"],
        "positions": payload["positions"],
        "deltas": deltas,
        "losses": losses,
        "accs": accs,
    }


# ---------------------------------------------------------------------------
# shared-memory plane handle (fork backend)
# ---------------------------------------------------------------------------


class _SharedServePlanes:
    """Rebind the serve-mutable planes onto anonymous shared mmap buffers.

    Created *before* the pool forks so workers inherit the buffers; rows are
    shard-disjoint, so concurrent writes never race.  Keeps a private
    snapshot for fault recovery, and :meth:`close` copies the final values
    back into ordinary private arrays.
    """

    def __init__(self, state) -> None:
        self.state = state
        self.snapshots = {p: getattr(state, p).copy() for p in _SHARED_SERVE_PLANES}
        self._maps: List[mmap.mmap] = []
        for plane in _SHARED_SERVE_PLANES:
            src = getattr(state, plane)
            buf = mmap.mmap(-1, max(src.nbytes, 1))  # MAP_SHARED | MAP_ANONYMOUS
            arr = np.frombuffer(buf, dtype=src.dtype, count=src.size).reshape(src.shape)
            arr[:] = src
            setattr(state, plane, arr)
            self._maps.append(buf)

    def restore_rows(self, rows: np.ndarray) -> None:
        """Reset the given rows to their pre-dispatch values."""
        for plane in _SHARED_SERVE_PLANES:
            getattr(self.state, plane)[rows] = self.snapshots[plane][rows]

    def close(self) -> None:
        """Copy final values back into private arrays and release the maps."""
        for plane in _SHARED_SERVE_PLANES:
            setattr(self.state, plane, np.array(getattr(self.state, plane), copy=True))
        for buf in self._maps:
            buf.close()


# ---------------------------------------------------------------------------
# the runner
# ---------------------------------------------------------------------------


class ShardedFleetRunner:
    """Partition fleet work across processes; merge byte-identically.

    Parameters
    ----------
    workers:
        Worker count; ``None``/0 resolves ``REPRO_TEST_WORKERS`` then
        ``os.cpu_count()``.  The effective count is capped by the number of
        shardable items.
    backend:
        ``"auto"`` / ``"pickle"`` / ``"shared"`` / ``"inline"`` (module
        docstring).  ``"shared"`` only affects serving sweeps; federated
        cohort tasks always travel by pickle (they carry no plane writes).
    timeout_s:
        Per-dispatch deadline for collecting pool results; a shard that
        produced nothing by then (hung or killed worker) is recovered.
    retries:
        How many fresh-pool retry passes failed shards get before the
        deterministic in-process fallback (0 goes straight to in-process).
    retry_policy:
        Optional :class:`repro.faults.RetryPolicy` governing shard
        re-execution: its ``max_attempts`` overrides ``retries`` (total
        pool passes), each retry pass waits out the policy's seeded
        exponential backoff, and crossing its ``deadline_s`` sends the
        remaining shards straight to the in-process fallback.
    fault_injector:
        Optional :class:`repro.faults.FaultInjector`; each pooled
        dispatch draws its plan-scheduled worker faults and ships them in
        the task payloads (fires in pool workers only — recovery keeps
        results byte-identical, so fault-plan runs merge the same bytes).
    durable_store:
        Optional :class:`repro.faults.durable.DurableCheckpointStore`; the
        parent journals every serving barrier merge through it
        (``begin_merge`` → merge → ``commit_merge``): the pre-merge ledger
        segments are persisted *before* the parent world is touched, so a
        crash mid-merge leaves an uncommitted journal record — detectable
        via ``pending_merges()`` — never a silently half-merged world.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        backend: str = "auto",
        timeout_s: float = 60.0,
        retries: int = 1,
        retry_policy=None,
        fault_injector=None,
        durable_store=None,
    ) -> None:
        if backend not in _BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; expected one of {_BACKENDS}")
        self.workers = workers
        self.backend = backend
        self.timeout_s = float(timeout_s)
        self.retries = int(retries)
        self.retry_policy = retry_policy
        self.fault_injector = fault_injector
        self.durable_store = durable_store

    def _attach_faults(self, scope: str, payloads: Sequence[Dict[str, object]]) -> None:
        """Stamp each payload with its plan-scheduled fault (or nothing)."""
        inj = self.fault_injector
        if inj is None:
            return
        dispatch = inj.next_dispatch(scope)
        for payload in payloads:
            fault = inj.shard_fault(scope, dispatch, payload["shard_index"])  # type: ignore[arg-type]
            if fault is not None:
                payload["fault"] = fault

    # -- resolution ------------------------------------------------------
    def resolve_workers(self, n_items: int) -> int:
        workers = self.workers
        if not workers or workers <= 0:
            workers = _env_workers() or os.cpu_count() or 1
        return max(1, min(int(workers), max(n_items, 1)))

    @staticmethod
    def _fork_available() -> bool:
        return "fork" in mp.get_all_start_methods()

    def _resolve_backend(self) -> str:
        """The effective backend for a pooled dispatch."""
        if self.backend == "inline":
            return "inline"
        try:
            mp.get_context()  # a context at all
        except Exception:  # pragma: no cover - exotic platforms
            return "inline"
        if self.backend == "shared":
            return "shared" if self._fork_available() else "pickle"
        return "pickle"

    def _mp_context(self):
        return mp.get_context("fork") if self._fork_available() else mp.get_context()

    # -- generic dispatch ------------------------------------------------
    def _run_shards(
        self,
        payloads: Sequence[Dict[str, object]],
        task_fn: Callable[[Dict[str, object]], Dict[str, object]],
        pooled: bool,
        inline_prep: Optional[Callable[[Dict[str, object]], Dict[str, object]]] = None,
        on_retry: Optional[Callable[[List[int]], None]] = None,
    ) -> Tuple[List[Dict[str, object]], Tuple[int, ...]]:
        """Run one payload per shard; return (results in shard order, recovered).

        All shards produce a result before this returns — pool failures
        (exceptions, hangs, killed workers) drain through one fresh-pool
        retry pass per ``retries`` and finally the deterministic in-process
        fallback.  An in-process failure propagates, leaving the caller's
        world unmerged.  ``on_retry`` runs after each pool teardown with the
        still-failed shard indices (the shared backend restores planes
        there); ``inline_prep`` rewrites a payload for in-process execution.
        """
        n = len(payloads)
        results: List[Optional[Dict[str, object]]] = [None] * n
        if not pooled or n < 2:
            prep = inline_prep or (lambda p: p)
            return [task_fn(prep(p)) for p in payloads], ()

        ctx = self._mp_context()
        failed = list(range(n))
        recovered: List[int] = []
        policy = self.retry_policy
        passes = policy.max_attempts if policy is not None else 1 + max(0, self.retries)
        started = time.monotonic()
        for attempt in range(passes):
            if not failed:
                break
            if attempt > 0 and policy is not None:
                if time.monotonic() - started > policy.deadline_s:
                    break  # deadline budget spent: straight to in-process
                time.sleep(policy.backoff_s(attempt - 1, seed=attempt - 1))
            pool = ctx.Pool(processes=min(self.resolve_workers(len(failed)), len(failed)))
            try:
                handles = [(i, pool.apply_async(task_fn, (payloads[i],))) for i in failed]
                deadline = time.monotonic() + self.timeout_s
                still: List[int] = []
                for i, handle in handles:
                    remaining = max(0.05, deadline - time.monotonic())
                    try:
                        results[i] = handle.get(remaining)
                    except Exception:
                        # Raised in the worker, timed out (hung), or the
                        # worker died and the task never produced a result.
                        still.append(i)
            finally:
                pool.terminate()
                pool.join()
            if attempt > 0:
                recovered.extend(i for i in failed if i not in still)
            failed = still
            if failed and on_retry is not None:
                on_retry(failed)
        if failed:
            prep = inline_prep or (lambda p: p)
            for i in failed:
                results[i] = task_fn(prep(payloads[i]))  # in-process; raises propagate
            recovered.extend(failed)
        return results, tuple(sorted(recovered))  # type: ignore[return-value]

    # -- serving ---------------------------------------------------------
    def serve_window(
        self,
        engine,
        model_name: str,
        window: Mapping[str, np.ndarray],
        report,
        bits: int = 32,
    ) -> None:
        """Serve one fleet window sharded; merge into ``report`` and the world.

        Byte-identical to ``engine._serve_fleet_window`` on the same window:
        per-device results land in window order, ledgers extend by the same
        entries, monitors observe the same slices, planes end in the same
        state.  Degenerate cases (single worker, <2 window devices, a
        compiled plan whose lowering options were not recorded) fall back to
        the single-process sweep directly.
        """
        global _SHARED_STATE
        items: List[Tuple[str, np.ndarray]] = []
        for device_id, x in window.items():
            x = np.asarray(x)
            if x.shape[0]:
                items.append((device_id, x))
        if not items:
            return
        n = len(items)
        workers = self.resolve_workers(n)
        # A plan installed without recorded lowering options cannot be
        # recompiled identically in a worker; serve it in-process.
        plan_unreplayable = model_name in engine.plans and model_name not in engine._plan_options
        if workers < 2 or n < 2 or plan_unreplayable:
            engine._serve_fleet_window(model_name, dict(items), report, bits=bits)
            return
        mode = self.backend if self.backend == "inline" else self._resolve_backend()
        if mode == "inline" and self.backend != "inline":
            # No usable pool: graceful single-process fallback.
            engine._serve_fleet_window(model_name, dict(items), report, bits=bits)
            return

        state = engine.fleet.state
        model = engine.models[model_name]
        plan_options = engine._plan_options.get(model_name) if model_name in engine.plans else None
        shared = _SharedServePlanes(state) if mode == "shared" else None
        groups = shard_row_groups(n, workers)
        payloads: List[Dict[str, object]] = []
        shard_rows: List[np.ndarray] = []
        for shard_index, group in enumerate(groups):
            ids = [items[k][0] for k in group]
            rows = engine.fleet.rows_for(ids)
            shard_rows.append(rows)
            payloads.append(
                {
                    "shard_index": shard_index,
                    "parent_pid": os.getpid(),
                    "model_name": model_name,
                    "bits": bits,
                    "items": [items[k] for k in group],
                    "cost_model": engine.cost_model,
                    "models": {model_name: model},
                    "plan_options": plan_options,
                    # Deep copies: workers get pickled copies anyway; the
                    # inline backend must mutate copies too so the merge
                    # below is the only thing that touches the parent world.
                    "ledgers": copy.deepcopy(
                        {d: engine.ledgers[d] for d in ids if d in engine.ledgers}
                    ),
                    "monitors": copy.deepcopy(
                        {d: engine.monitors[d] for d in ids if d in engine.monitors}
                    ),
                    "state": None if mode == "shared" else state.extract_rows(rows),
                    "rows": rows,
                }
            )

        def inline_prep(payload: Dict[str, object]) -> Dict[str, object]:
            if payload["state"] is None:  # shared shard recovered in-process
                assert shared is not None
                shared.restore_rows(payload["rows"])  # type: ignore[arg-type]
                payload = dict(payload)
                payload["state"] = state.extract_rows(payload["rows"])  # type: ignore[arg-type]
            return payload

        def on_retry(failed: List[int]) -> None:
            if shared is not None:  # undo partial writes of dead workers
                for i in failed:
                    shared.restore_rows(shard_rows[i])

        self._attach_faults("serve", payloads)
        if mode == "shared":
            _SHARED_STATE = state  # inherited by the fork()ed pool workers
        try:
            task_results, recovered = self._run_shards(
                payloads,
                _serve_shard_task,
                pooled=mode != "inline",
                inline_prep=inline_prep,
                on_retry=on_retry,
            )
        except Exception:
            if shared is not None:
                shared.restore_rows(np.concatenate(shard_rows))
            raise
        finally:
            _SHARED_STATE = None
            if shared is not None:
                shared.close()

        # Barrier merge, in shard (= canonical window) order.  Nothing above
        # touched the parent world, so a raise before this point is clean.
        # With a durable store the merge is journaled: the intent record
        # (per-shard ledger segments, the auditable plane writes) is
        # fsynced *before* the first parent-world mutation and committed
        # after the last, so a crash mid-merge is detectable
        # (``pending_merges()``) rather than a silently partial merge.
        merge_token = None
        if self.durable_store is not None:
            merge_token = self.durable_store.begin_merge(
                "serve",
                {
                    "model_name": model_name,
                    "n_shards": len(task_results),
                    "ledger_segments": [
                        {
                            device_id: [entry.to_dict() for entry in segment]
                            for device_id, segment in task_result["ledger_segments"].items()
                            if segment
                        }
                        for task_result in task_results
                    ],
                },
            )
        for shard_index, task_result in enumerate(task_results):
            sub_state = task_result["state"]
            if sub_state is not None:
                state.merge_rows(sub_state, shard_rows[shard_index])
            for device_id, segment in task_result["ledger_segments"].items():  # type: ignore[union-attr]
                if segment:
                    engine.ledgers[device_id].append_segment(segment)
            for device_id, monitor in task_result["monitors"].items():  # type: ignore[union-attr]
                engine.monitors[device_id] = monitor
            for result in task_result["results"]:  # type: ignore[union-attr]
                report.add(result)
        if merge_token is not None:
            self.durable_store.commit_merge(merge_token)
        report.shard_recoveries += len(recovered)

    # -- federated -------------------------------------------------------
    def collect_deltas(
        self, fed_engine, contributors: Sequence[str]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """Sharded twin of ``FederatedEngine._collect_deltas``.

        Batched cohorts are dispatched whole (one worker each, so the
        stacked-tensor geometry — and therefore every float — matches the
        single-process sweep exactly); fallback cohorts train in the parent
        because their clients may carry cross-round optimizer state; idle
        cohorts keep their zero rows.  Returns
        ``(deltas, losses, accs, shard_recoveries)`` with rows placed by
        cohort indices, bitwise equal to the batched path.
        """
        from repro.federated.engine import partition_cohorts

        clients = [fed_engine.clients[cid] for cid in contributors]
        n_params = fed_engine.global_model.get_flat_weights().size
        deltas = np.zeros((len(clients), n_params))
        losses = np.zeros(len(clients))
        accs = np.zeros(len(clients))
        batched_cohorts = []
        fallback_positions: List[int] = []
        for cohort in partition_cohorts(fed_engine.global_model, clients):
            if cohort.kind == "idle":
                continue
            if cohort.batched:
                batched_cohorts.append(list(cohort.indices))
            else:
                fallback_positions.extend(cohort.indices)

        recovered: Tuple[int, ...] = ()
        if batched_cohorts:
            workers = self.resolve_workers(len(batched_cohorts))
            mode = self.backend if self.backend == "inline" else self._resolve_backend()
            pooled = mode != "inline" and workers >= 2 and len(batched_cohorts) >= 2
            payloads = [
                {
                    "shard_index": shard_index,
                    "parent_pid": os.getpid(),
                    "model": fed_engine.global_model,
                    "clients": [clients[p] for p in positions],
                    "positions": positions,
                }
                for shard_index, positions in enumerate(batched_cohorts)
            ]
            self._attach_faults("train", payloads)
            task_results, recovered = self._run_shards(payloads, _train_shard_task, pooled=pooled)
            for task_result in task_results:
                positions = task_result["positions"]
                deltas[positions] = task_result["deltas"]
                losses[positions] = task_result["losses"]
                accs[positions] = task_result["accs"]
        for position in fallback_positions:
            update = clients[position].train_round(fed_engine.global_model)
            deltas[position] = update.delta
            losses[position] = update.local_loss
            accs[position] = update.metrics.get("local_accuracy", 0.0)
        return deltas, losses, accs, len(recovered)
