"""Pipeline placement and deployment roll-outs across a fleet.

Paper Section IV: containers "could then easily be deployed to different
target devices, solving the fragmentation issue … the containers could be
controlled by an orchestration framework that automatically deploys updated
models or that distributes an application over multiple devices".

The :class:`Orchestrator` places pipelines on fleet devices subject to
storage/capability constraints, and :class:`RolloutPlan` implements staged /
canary roll-outs of new versions with automatic rollback when the canary's
health metric regresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.devices.fleet import EdgeDevice, Fleet, InstalledArtifact

from .modules import Sandbox
from .pipeline import Pipeline

__all__ = ["PlacementDecision", "Orchestrator", "RolloutPlan"]


@dataclass
class PlacementDecision:
    """Outcome of trying to place one pipeline on one device."""

    device_id: str
    pipeline: str
    placed: bool
    reason: str = ""


class Orchestrator:
    """Places pipelines onto devices and tracks what runs where."""

    def __init__(self, fleet: Fleet) -> None:
        self.fleet = fleet
        self.placements: Dict[str, List[str]] = {}  # device_id -> pipeline names
        self.sandboxes: Dict[str, Sandbox] = {}
        self.log: List[PlacementDecision] = []

    def grant_capabilities(self, device_id: str, capabilities: Sequence[str]) -> Sandbox:
        """Configure the sandbox capabilities available on a device."""
        sandbox = Sandbox(granted=capabilities, device_id=device_id)
        self.sandboxes[device_id] = sandbox
        return sandbox

    def can_place(self, pipeline: Pipeline, device: EdgeDevice) -> Tuple[bool, str]:
        """Check storage and capability constraints for a placement."""
        if not device.can_install(pipeline.size_bytes()):
            return False, "insufficient storage"
        sandbox = self.sandboxes.get(device.device_id)
        if sandbox is not None and not pipeline.required_capabilities() <= sandbox.granted:
            missing = pipeline.required_capabilities() - sandbox.granted
            return False, f"missing capabilities: {sorted(missing)}"
        return True, "ok"

    def place(self, pipeline: Pipeline, device_ids: Sequence[str]) -> List[PlacementDecision]:
        """Attempt to install a pipeline on the given devices."""
        decisions: List[PlacementDecision] = []
        for device_id in device_ids:
            device = self.fleet.get(device_id)
            ok, reason = self.can_place(pipeline, device)
            if ok:
                device.install(
                    InstalledArtifact(
                        artifact_id=pipeline.name,
                        version=pipeline.version,
                        size_bytes=pipeline.size_bytes(),
                        metadata=pipeline.manifest(),
                    )
                )
                self.placements.setdefault(device_id, []).append(pipeline.name)
            decisions.append(PlacementDecision(device_id, pipeline.name, ok, reason))
        self.log.extend(decisions)
        return decisions

    def place_everywhere(self, pipeline: Pipeline) -> Dict[str, int]:
        """Try to place on every device; returns success/failure counts."""
        decisions = self.place(pipeline, [d.device_id for d in self.fleet])
        placed = sum(1 for d in decisions if d.placed)
        return {"placed": placed, "failed": len(decisions) - placed}

    def devices_running(self, pipeline_name: str) -> List[str]:
        """Devices that currently host a pipeline."""
        return sorted(d for d, pipes in self.placements.items() if pipeline_name in pipes)

    def broadcast(self, pipeline: Pipeline, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Run a placed pipeline over every hosting device's window.

        Devices without a configured sandbox execute through one batched
        :meth:`~repro.runtime.pipeline.Pipeline.run_many` sweep — the
        compiled plans behind the pipeline's stages see a single stacked
        batch instead of one call per device.  Sandboxed devices run
        per-device through their own :class:`~repro.runtime.modules.Sandbox`
        so capability enforcement and the execution audit log stay exactly
        as in individual :meth:`~repro.runtime.pipeline.Pipeline.run`
        calls; devices whose sandbox lacks a required capability are
        skipped up front (exactly the devices :meth:`place` would refuse).
        """
        required = pipeline.required_capabilities()
        unsandboxed: List[str] = []
        sandboxed: List[str] = []
        for device_id in self.devices_running(pipeline.name):
            if device_id not in inputs:
                continue
            sandbox = self.sandboxes.get(device_id)
            if sandbox is None:
                unsandboxed.append(device_id)
            elif required <= sandbox.granted:
                sandboxed.append(device_id)
        outputs: Dict[str, np.ndarray] = dict(
            zip(unsandboxed, pipeline.run_many([inputs[d] for d in unsandboxed]))
        )
        for device_id in sandboxed:
            outputs[device_id] = pipeline.run(inputs[device_id], sandbox=self.sandboxes[device_id])
        return outputs

    def coverage(self, pipeline_name: str) -> float:
        """Fraction of the fleet running a pipeline."""
        return len(self.devices_running(pipeline_name)) / max(len(self.fleet), 1)


@dataclass
class RolloutPlan:
    """Staged roll-out of a new pipeline/model version across a fleet.

    Stages are fractions of the fleet (e.g. ``[0.05, 0.25, 1.0]``).  After
    each stage the supplied ``health_check`` is evaluated on the devices
    updated so far; if it returns False the roll-out stops and the devices
    are rolled back to the previous version.
    """

    orchestrator: Orchestrator
    new_pipeline: Pipeline
    previous_pipeline: Optional[Pipeline] = None
    stages: Sequence[float] = (0.05, 0.25, 1.0)
    seed: int = 0
    history: List[Dict[str, object]] = field(default_factory=list)

    def execute(self, health_check: Callable[[List[str]], bool]) -> Dict[str, object]:
        """Run the staged roll-out; returns a summary including final status."""
        rng = np.random.default_rng(self.seed)
        device_ids = [d.device_id for d in self.orchestrator.fleet]
        rng.shuffle(device_ids)
        updated: List[str] = []
        status = "completed"
        for stage_fraction in self.stages:
            target_count = int(np.ceil(stage_fraction * len(device_ids)))
            batch = [d for d in device_ids[:target_count] if d not in updated]
            decisions = self.orchestrator.place(self.new_pipeline, batch)
            updated.extend(d.device_id for d in decisions if d.placed)
            healthy = bool(health_check(list(updated)))
            self.history.append(
                {
                    "stage_fraction": stage_fraction,
                    "updated_devices": len(updated),
                    "healthy": healthy,
                }
            )
            if not healthy:
                status = "rolled_back"
                self._rollback(updated)
                break
        return {
            "status": status,
            "updated_devices": len(updated) if status == "completed" else 0,
            "stages_run": len(self.history),
        }

    def _rollback(self, device_ids: Sequence[str]) -> None:
        for device_id in device_ids:
            device = self.orchestrator.fleet.get(device_id)
            device.uninstall(self.new_pipeline.name)
            pipes = self.orchestrator.placements.get(device_id, [])
            if self.new_pipeline.name in pipes:
                pipes.remove(self.new_pipeline.name)
            if self.previous_pipeline is not None and self.previous_pipeline.name not in pipes:
                ok, _ = self.orchestrator.can_place(self.previous_pipeline, device)
                if ok:
                    self.orchestrator.place(self.previous_pipeline, [device_id])
