"""Inference pipelines: ordered modules with optional control logic.

Paper Section III-A: "the machine learning pipeline will also require data
preprocessing and postprocessing operations … or even some control logic to
activate a different part of the pipeline depending on the result of a
first model.  The TinyMLOps system should make it easy for users to
configure pipelines like this."

A :class:`Pipeline` is a list of stages.  A stage is either a plain
:class:`~repro.runtime.modules.Module` or a :class:`ConditionalStage` that
routes each sample to one of two sub-pipelines based on a predicate over the
intermediate result — the classic cascade (cheap model first, escalate the
hard samples to a bigger model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .modules import Module, Sandbox

__all__ = ["ConditionalStage", "Pipeline"]


@dataclass
class ConditionalStage:
    """Routes samples to ``if_true`` / ``if_false`` based on ``predicate``.

    ``predicate`` receives the current intermediate array and returns a
    boolean mask over the batch.  Both branches must produce outputs of the
    same trailing shape so the results can be re-assembled.
    """

    name: str
    predicate: Callable[[np.ndarray], np.ndarray]
    if_true: "Pipeline"
    if_false: "Pipeline"

    def run(self, x: np.ndarray, sandbox: Optional[Sandbox] = None) -> np.ndarray:
        mask = np.asarray(self.predicate(x), dtype=bool)
        if mask.shape[0] != x.shape[0]:
            raise ValueError("predicate must return one boolean per sample")
        out_true = self.if_true.run(x[mask], sandbox=sandbox) if mask.any() else None
        out_false = self.if_false.run(x[~mask], sandbox=sandbox) if (~mask).any() else None
        template = out_true if out_true is not None else out_false
        assert template is not None
        out = np.zeros((x.shape[0],) + template.shape[1:], dtype=template.dtype)
        if out_true is not None:
            out[mask] = out_true
        if out_false is not None:
            out[~mask] = out_false
        return out

    @property
    def size_bytes(self) -> int:
        return self.if_true.size_bytes() + self.if_false.size_bytes() + 256

    @property
    def requires(self) -> frozenset:
        return self.if_true.required_capabilities() | self.if_false.required_capabilities()


Stage = Union[Module, ConditionalStage]


class Pipeline:
    """An ordered sequence of processing stages deployed as one unit."""

    def __init__(self, stages: Sequence[Stage], name: str = "pipeline", version: str = "1.0.0") -> None:
        self.stages: List[Stage] = list(stages)
        self.name = name
        self.version = version

    # -- execution ---------------------------------------------------------
    def run(self, x: np.ndarray, sandbox: Optional[Sandbox] = None) -> np.ndarray:
        """Run every stage in order, honouring the sandbox when provided."""
        out = np.asarray(x)
        for stage in self.stages:
            if isinstance(stage, ConditionalStage):
                out = stage.run(out, sandbox=sandbox)
            elif sandbox is not None:
                out = sandbox.run(stage, out)
            else:
                out = stage(out)
        return out

    __call__ = run

    # -- introspection ----------------------------------------------------
    def size_bytes(self) -> int:
        """Total packaged size of the pipeline (for placement decisions)."""
        return int(sum(s.size_bytes for s in self.stages))

    def required_capabilities(self) -> frozenset:
        """Union of all stages' capability requirements."""
        caps: frozenset = frozenset()
        for stage in self.stages:
            caps = caps | stage.requires
        return caps

    def stage_names(self) -> List[str]:
        """Names of all stages in order."""
        return [s.name for s in self.stages]

    def manifest(self) -> Dict[str, object]:
        """Deployment manifest describing the pipeline."""
        return {
            "name": self.name,
            "version": self.version,
            "stages": self.stage_names(),
            "size_bytes": self.size_bytes(),
            "capabilities": sorted(self.required_capabilities()),
        }

    def describe(self) -> str:
        """Readable one-line-per-stage description."""
        lines = [f"Pipeline {self.name!r} v{self.version} ({self.size_bytes()} B)"]
        for stage in self.stages:
            kind = "conditional" if isinstance(stage, ConditionalStage) else "module"
            lines.append(f"  [{kind}] {stage.name}")
        return "\n".join(lines)
