"""Inference pipelines: ordered modules with optional control logic.

Paper Section III-A: "the machine learning pipeline will also require data
preprocessing and postprocessing operations … or even some control logic to
activate a different part of the pipeline depending on the result of a
first model.  The TinyMLOps system should make it easy for users to
configure pipelines like this."

A :class:`Pipeline` is a list of stages.  A stage is either a plain
:class:`~repro.runtime.modules.Module` or a :class:`ConditionalStage` that
routes each sample to one of two sub-pipelines based on a predicate over the
intermediate result — the classic cascade (cheap model first, escalate the
hard samples to a bigger model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .modules import Module, Sandbox

__all__ = ["ConditionalStage", "Pipeline"]


@dataclass
class ConditionalStage:
    """Routes samples to ``if_true`` / ``if_false`` based on ``predicate``.

    ``predicate`` receives the current intermediate array and returns a
    boolean mask over the batch.  Both branches must produce outputs of the
    same trailing shape so the results can be re-assembled.
    """

    name: str
    predicate: Callable[[np.ndarray], np.ndarray]
    if_true: "Pipeline"
    if_false: "Pipeline"
    # Predicates are opaque callables that may depend on the whole batch
    # (e.g. a median-confidence threshold), so cascades default to
    # non-stackable; set True only for genuinely per-sample predicates.
    stackable: bool = False

    def run(self, x: np.ndarray, sandbox: Optional[Sandbox] = None) -> np.ndarray:
        mask = np.asarray(self.predicate(x), dtype=bool)
        if mask.shape[0] != x.shape[0]:
            raise ValueError("predicate must return one boolean per sample")
        out_true = self.if_true.run(x[mask], sandbox=sandbox) if mask.any() else None
        out_false = self.if_false.run(x[~mask], sandbox=sandbox) if (~mask).any() else None
        template = out_true if out_true is not None else out_false
        assert template is not None
        out = np.zeros((x.shape[0],) + template.shape[1:], dtype=template.dtype)
        if out_true is not None:
            out[mask] = out_true
        if out_false is not None:
            out[~mask] = out_false
        return out

    @property
    def size_bytes(self) -> int:
        return self.if_true.size_bytes() + self.if_false.size_bytes() + 256

    @property
    def requires(self) -> frozenset:
        return self.if_true.required_capabilities() | self.if_false.required_capabilities()


Stage = Union[Module, ConditionalStage]


class Pipeline:
    """An ordered sequence of processing stages deployed as one unit."""

    def __init__(self, stages: Sequence[Stage], name: str = "pipeline", version: str = "1.0.0") -> None:
        self.stages: List[Stage] = list(stages)
        self.name = name
        self.version = version

    # -- execution ---------------------------------------------------------
    def run(self, x: np.ndarray, sandbox: Optional[Sandbox] = None) -> np.ndarray:
        """Run every stage in order, honouring the sandbox when provided."""
        out = np.asarray(x)
        for stage in self.stages:
            if isinstance(stage, ConditionalStage):
                out = stage.run(out, sandbox=sandbox)
            elif sandbox is not None:
                out = sandbox.run(stage, out)
            else:
                out = stage(out)
        return out

    __call__ = run

    def stackable(self) -> bool:
        """Whether per-window results are independent of batch composition.

        A module stage opts out by setting ``metadata["stackable"] = False``
        (:func:`~repro.runtime.modules.graph_module` does so automatically
        for graphs with data-dependent quantization); cascades opt *in* via
        :attr:`ConditionalStage.stackable` since their predicates may depend
        on the whole batch.
        """
        for stage in self.stages:
            if isinstance(stage, ConditionalStage):
                if not (stage.stackable and stage.if_true.stackable() and stage.if_false.stackable()):
                    return False
            elif not bool(getattr(stage, "metadata", {}).get("stackable", True)):
                return False
        return True

    def run_many(self, windows: Sequence[np.ndarray], sandbox: Optional[Sandbox] = None) -> List[np.ndarray]:
        """Run the pipeline once over many stacked windows and split results.

        All windows are concatenated along the batch axis and pushed through
        every stage in one sweep — each module (and each compiled graph plan
        behind :func:`~repro.runtime.modules.graph_module`) sees one big
        batch instead of one call per window.  Per-window results match
        individual :meth:`run` calls because stages are per-sample
        independent; pipelines containing a non-:meth:`stackable` stage
        (data-dependent quantization, batch-dependent cascade predicates)
        fall back to a per-window loop so one window's data can never
        influence another's results.

        Sandbox note: on the stacked path each stage is logged once with
        the combined row count rather than once per window — use per-window
        :meth:`run` calls (as :meth:`Orchestrator.broadcast` does for
        sandboxed devices) when per-window audit entries matter.
        """
        from repro.exchange.compiled import split_stacked

        arrays = [np.asarray(w) for w in windows]
        parts = [w for w in arrays if w.shape[0] > 0]
        if not parts:
            return [self.run(w, sandbox=sandbox) for w in arrays]
        if not self.stackable():
            outs = [self.run(w, sandbox=sandbox) if w.shape[0] else None for w in arrays]
            template = next(o for o in outs if o is not None)
            empty = np.empty((0,) + template.shape[1:], dtype=template.dtype)
            return [o if o is not None else empty for o in outs]
        stacked = self.run(np.concatenate(parts, axis=0), sandbox=sandbox)
        return split_stacked(stacked, [w.shape[0] for w in arrays])

    # -- introspection ----------------------------------------------------
    def size_bytes(self) -> int:
        """Total packaged size of the pipeline (for placement decisions)."""
        return int(sum(s.size_bytes for s in self.stages))

    def required_capabilities(self) -> frozenset:
        """Union of all stages' capability requirements."""
        caps: frozenset = frozenset()
        for stage in self.stages:
            caps = caps | stage.requires
        return caps

    def stage_names(self) -> List[str]:
        """Names of all stages in order."""
        return [s.name for s in self.stages]

    def manifest(self) -> Dict[str, object]:
        """Deployment manifest describing the pipeline."""
        return {
            "name": self.name,
            "version": self.version,
            "stages": self.stage_names(),
            "size_bytes": self.size_bytes(),
            "capabilities": sorted(self.required_capabilities()),
        }

    def describe(self) -> str:
        """Readable one-line-per-stage description."""
        lines = [f"Pipeline {self.name!r} v{self.version} ({self.size_bytes()} B)"]
        for stage in self.stages:
            kind = "conditional" if isinstance(stage, ConditionalStage) else "module"
            lines.append(f"  [{kind}] {stage.name}")
        return "\n".join(lines)
