"""Atomic, digest-verified file persistence primitives.

The durability layer of the fault plane (:mod:`repro.faults.durable`)
needs exactly three guarantees from the filesystem, and this module is
the single place they are implemented:

1. **Atomic commit** — :func:`atomic_write_bytes` writes to a temp file
   in the destination directory, flushes, ``fsync``\\ s, then
   ``os.replace``\\ s onto the final name and fsyncs the directory.  A
   crash at any point leaves either the old file or the new file, never
   a half-written one; stray ``*.tmp-*`` files are the only debris and
   are ignored by every reader.
2. **Verified read** — :func:`read_bytes_verified` refuses to hand back
   bytes whose size or sha256 digest does not match what the caller
   recorded at write time, raising :class:`IntegrityError` with the
   offending path and digests.  No caller ever parses unverified bytes.
3. **Canonical JSON** — :func:`canonical_json` produces the one byte
   encoding of a JSON document (sorted keys, no whitespace, numpy
   scalars unwrapped) so content digests are stable across processes.

Everything here is stdlib + numpy only and safe to import from any
layer.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Optional

import numpy as np

__all__ = [
    "PersistError",
    "IntegrityError",
    "sha256_bytes",
    "canonical_json",
    "atomic_write_bytes",
    "atomic_write_json",
    "read_bytes_verified",
    "read_json_verified",
    "fsync_dir",
]


class PersistError(RuntimeError):
    """Base error of the persistence layer."""


class IntegrityError(PersistError):
    """A persisted file is missing, truncated or fails digest verification.

    Carries the offending ``path`` plus the ``expected``/``actual``
    values (a size or a digest, per ``reason``) so callers can surface
    exactly which artifact is damaged.
    """

    def __init__(self, path, reason: str, expected=None, actual=None) -> None:
        self.path = str(path)
        self.reason = reason
        self.expected = expected
        self.actual = actual
        message = f"{reason}: {self.path}"
        if expected is not None or actual is not None:
            message += f" (expected {expected!r}, got {actual!r})"
        super().__init__(message)


def sha256_bytes(data: bytes) -> str:
    """Hex sha256 content digest of a byte string."""
    return hashlib.sha256(data).hexdigest()


def _json_default(value):
    """Unwrap numpy scalars/arrays so canonical JSON never depends on dtype."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON serializable: {type(value).__name__}")


def canonical_json(obj) -> bytes:
    """The canonical byte encoding of a JSON document (digest-stable)."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), default=_json_default
    ).encode()


def fsync_dir(path: str) -> None:
    """Flush a directory's entry table (best effort; no-op where unsupported)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. Windows
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes) -> str:
    """Write ``data`` to ``path`` atomically; returns its sha256 digest.

    Protocol: temp file in the same directory (so the rename cannot
    cross filesystems) → write → flush+fsync → ``os.replace`` →
    directory fsync.  On any failure the temp file is removed and the
    destination is untouched.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".tmp-"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    fsync_dir(directory)
    return sha256_bytes(data)


def atomic_write_json(path: str, obj) -> str:
    """Atomically write an object's canonical JSON; returns the file digest."""
    return atomic_write_bytes(path, canonical_json(obj))


def read_bytes_verified(
    path: str,
    expected_digest: Optional[str] = None,
    expected_size: Optional[int] = None,
) -> bytes:
    """Read a file and verify its size/digest before returning any bytes.

    Raises :class:`IntegrityError` on a missing file, a size mismatch
    (truncation) or a digest mismatch (bit rot / tampering).  Size is
    checked first so a truncated file is reported as truncated, not as
    a generic digest failure.
    """
    path = os.fspath(path)
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        raise IntegrityError(path, "persisted file missing") from None
    except OSError as exc:
        raise IntegrityError(path, f"persisted file unreadable ({exc})") from exc
    if expected_size is not None and len(data) != int(expected_size):
        raise IntegrityError(
            path, "persisted file truncated", expected=int(expected_size), actual=len(data)
        )
    if expected_digest is not None:
        actual = sha256_bytes(data)
        if actual != expected_digest:
            raise IntegrityError(
                path, "persisted file digest mismatch", expected=expected_digest, actual=actual
            )
    return data


def read_json_verified(
    path: str,
    expected_digest: Optional[str] = None,
    expected_size: Optional[int] = None,
):
    """Verified read + JSON parse (a parse failure is an integrity failure)."""
    data = read_bytes_verified(path, expected_digest, expected_size)
    try:
        return json.loads(data.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise IntegrityError(path, f"persisted JSON unparseable ({exc})") from exc
