"""Evaluation metrics for classification and regression."""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = [
    "accuracy",
    "top_k_accuracy",
    "confusion_matrix",
    "precision_recall_f1",
    "r2_score",
    "agreement",
]


def accuracy(logits_or_preds: np.ndarray, labels: np.ndarray) -> float:
    """Classification accuracy.

    Accepts either a logits/probability matrix of shape ``(n, k)`` or a
    vector of already-arg-maxed predictions of shape ``(n,)``.
    """
    preds = logits_or_preds
    if preds.ndim == 2:
        preds = preds.argmax(axis=-1)
    return float(np.mean(preds == labels))


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 3) -> float:
    """Fraction of examples whose true label is in the top-``k`` predictions."""
    if logits.ndim != 2:
        raise ValueError("top_k_accuracy requires a (n, classes) logits matrix")
    k = min(k, logits.shape[1])
    topk = np.argpartition(-logits, kth=k - 1, axis=1)[:, :k]
    return float(np.mean(np.any(topk == labels[:, None], axis=1)))


def confusion_matrix(preds: np.ndarray, labels: np.ndarray, num_classes: int | None = None) -> np.ndarray:
    """Dense confusion matrix ``C[true, pred]``."""
    if preds.ndim == 2:
        preds = preds.argmax(axis=-1)
    if num_classes is None:
        num_classes = int(max(preds.max(initial=0), labels.max(initial=0))) + 1
    cm = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(cm, (labels.astype(int), preds.astype(int)), 1)
    return cm


def precision_recall_f1(preds: np.ndarray, labels: np.ndarray, num_classes: int | None = None) -> Dict[str, float]:
    """Macro-averaged precision, recall and F1."""
    cm = confusion_matrix(preds, labels, num_classes)
    tp = np.diag(cm).astype(np.float64)
    pred_pos = cm.sum(axis=0).astype(np.float64)
    true_pos = cm.sum(axis=1).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(pred_pos > 0, tp / pred_pos, 0.0)
        recall = np.where(true_pos > 0, tp / true_pos, 0.0)
        f1 = np.where(precision + recall > 0, 2 * precision * recall / (precision + recall), 0.0)
    return {
        "precision": float(precision.mean()),
        "recall": float(recall.mean()),
        "f1": float(f1.mean()),
    }


def r2_score(pred: np.ndarray, target: np.ndarray) -> float:
    """Coefficient of determination for regression outputs."""
    ss_res = float(np.sum((target - pred) ** 2))
    ss_tot = float(np.sum((target - target.mean()) ** 2))
    if ss_tot == 0.0:
        return 0.0 if ss_res > 0 else 1.0
    return 1.0 - ss_res / ss_tot


def agreement(logits_a: np.ndarray, logits_b: np.ndarray) -> float:
    """Fraction of inputs on which two models predict the same class.

    Used by the IP-protection experiments to measure how closely an extracted
    clone mimics the victim model (Section V of the paper).
    """
    pa = logits_a.argmax(axis=-1) if logits_a.ndim == 2 else logits_a
    pb = logits_b.argmax(axis=-1) if logits_b.ndim == 2 else logits_b
    return float(np.mean(pa == pb))
