"""Weight initialization schemes for the NumPy neural-network engine.

All initializers are plain functions taking a shape and a
:class:`numpy.random.Generator`; they return a freshly allocated
``float64`` array.  Keeping them functional (rather than stateful objects)
makes layer construction deterministic and easy to test.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

__all__ = [
    "zeros",
    "ones",
    "constant",
    "uniform",
    "normal",
    "glorot_uniform",
    "glorot_normal",
    "he_uniform",
    "he_normal",
    "get_initializer",
]

Initializer = Callable[[Sequence[int], np.random.Generator], np.ndarray]


def _fan_in_out(shape: Sequence[int]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and convolutional weight shapes.

    Dense weights have shape ``(in, out)``.  Convolution kernels have shape
    ``(kh, kw, in_channels, out_channels)``; the receptive-field size scales
    both fans, matching the Glorot/He conventions.
    """
    shape = tuple(int(s) for s in shape)
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[:-2])) if len(shape) > 2 else 1
    fan_in = shape[-2] * receptive
    fan_out = shape[-1] * receptive
    return fan_in, fan_out


def zeros(shape: Sequence[int], rng: np.random.Generator | None = None) -> np.ndarray:
    """All-zero initialization (used for biases and BatchNorm shifts)."""
    return np.zeros(shape, dtype=np.float64)


def ones(shape: Sequence[int], rng: np.random.Generator | None = None) -> np.ndarray:
    """All-one initialization (used for BatchNorm scales)."""
    return np.ones(shape, dtype=np.float64)


def constant(value: float) -> Initializer:
    """Return an initializer that fills the array with ``value``."""

    def _init(shape: Sequence[int], rng: np.random.Generator | None = None) -> np.ndarray:
        return np.full(shape, float(value), dtype=np.float64)

    return _init


def uniform(low: float = -0.05, high: float = 0.05) -> Initializer:
    """Uniform initializer over ``[low, high)``."""

    def _init(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(low, high, size=shape)

    return _init


def normal(mean: float = 0.0, std: float = 0.05) -> Initializer:
    """Gaussian initializer with the given mean and standard deviation."""

    def _init(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        return rng.normal(mean, std, size=shape)

    return _init


def glorot_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization, suitable for tanh/sigmoid nets."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def glorot_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    fan_in, fan_out = _fan_in_out(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def he_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """He uniform initialization, suitable for ReLU networks."""
    fan_in, _ = _fan_in_out(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """He normal initialization."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


_REGISTRY: Dict[str, Initializer] = {
    "zeros": zeros,
    "ones": ones,
    "glorot_uniform": glorot_uniform,
    "glorot_normal": glorot_normal,
    "he_uniform": he_uniform,
    "he_normal": he_normal,
}


def get_initializer(name_or_fn: str | Initializer) -> Initializer:
    """Resolve an initializer by name or pass a callable through unchanged.

    Raises
    ------
    KeyError
        If ``name_or_fn`` is a string not present in the registry.
    """
    if callable(name_or_fn):
        return name_or_fn
    key = str(name_or_fn).lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown initializer {name_or_fn!r}; known: {sorted(_REGISTRY)}")
    return _REGISTRY[key]
