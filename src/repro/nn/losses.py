"""Loss functions with value and gradient in one call.

Every loss returns ``(value, grad)`` where ``grad`` has the shape of the
predictions and is already averaged over the batch, so it can be fed
directly into ``Sequential.backward``.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from .activations import log_softmax, softmax

__all__ = [
    "softmax_cross_entropy",
    "mse",
    "mae",
    "binary_cross_entropy",
    "distillation_loss",
    "get_loss",
]

LossFn = Callable[[np.ndarray, np.ndarray], Tuple[float, np.ndarray]]


def _one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels.astype(int)] = 1.0
    return out


def softmax_cross_entropy(logits: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
    """Softmax cross-entropy.

    ``targets`` may be integer class labels of shape ``(batch,)`` or a
    probability matrix of shape ``(batch, classes)`` (e.g. soft labels from a
    teacher model).  The gradient is with respect to the logits.
    """
    n, k = logits.shape
    if targets.ndim == 1:
        targets = _one_hot(targets, k)
    log_p = log_softmax(logits, axis=-1)
    loss = float(-(targets * log_p).sum() / n)
    grad = (softmax(logits, axis=-1) - targets) / n
    return loss, grad


def mse(pred: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean squared error over all elements."""
    diff = pred - targets
    loss = float(np.mean(diff * diff))
    grad = 2.0 * diff / diff.size
    return loss, grad


def mae(pred: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean absolute error over all elements (sub-gradient at zero is 0)."""
    diff = pred - targets
    loss = float(np.mean(np.abs(diff)))
    grad = np.sign(diff) / diff.size
    return loss, grad


def binary_cross_entropy(pred: np.ndarray, targets: np.ndarray, eps: float = 1e-12) -> Tuple[float, np.ndarray]:
    """Binary cross-entropy on probabilities in ``(0, 1)``."""
    p = np.clip(pred, eps, 1.0 - eps)
    loss = float(-np.mean(targets * np.log(p) + (1.0 - targets) * np.log(1.0 - p)))
    grad = (p - targets) / (p * (1.0 - p)) / p.size
    return loss, grad


def distillation_loss(
    student_logits: np.ndarray,
    teacher_logits: np.ndarray,
    hard_labels: np.ndarray,
    temperature: float = 2.0,
    alpha: float = 0.5,
) -> Tuple[float, np.ndarray]:
    """Knowledge-distillation loss mixing soft teacher targets and hard labels.

    ``alpha`` weights the soft (teacher) term; ``1 - alpha`` weights the hard
    cross-entropy term.  The classic ``T**2`` factor keeps gradient magnitudes
    comparable across temperatures.
    """
    t = float(temperature)
    soft_targets = softmax(teacher_logits / t, axis=-1)
    n, k = student_logits.shape
    log_p_soft = log_softmax(student_logits / t, axis=-1)
    soft_loss = float(-(soft_targets * log_p_soft).sum() / n) * (t * t)
    soft_grad = (softmax(student_logits / t, axis=-1) - soft_targets) / n * t
    hard_loss, hard_grad = softmax_cross_entropy(student_logits, hard_labels)
    loss = alpha * soft_loss + (1.0 - alpha) * hard_loss
    grad = alpha * soft_grad + (1.0 - alpha) * hard_grad
    return loss, grad


_REGISTRY: Dict[str, LossFn] = {
    "softmax_cross_entropy": softmax_cross_entropy,
    "cross_entropy": softmax_cross_entropy,
    "mse": mse,
    "mae": mae,
    "binary_cross_entropy": binary_cross_entropy,
}


def get_loss(name: str | LossFn) -> LossFn:
    """Resolve a loss by name, or pass a callable through unchanged."""
    if callable(name):
        return name
    key = str(name).lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown loss {name!r}; known: {sorted(_REGISTRY)}")
    return _REGISTRY[key]
