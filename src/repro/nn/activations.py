"""Activation functions and their derivatives (vectorized NumPy).

Each activation is exposed as a pair ``f(x)`` / ``f_grad(x, y)`` where ``y``
is the cached forward output.  Passing the forward output to the gradient
avoids recomputation for activations whose derivative is cheaper to express
in terms of the output (sigmoid, tanh, softmax).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

__all__ = [
    "relu",
    "relu_grad",
    "leaky_relu",
    "leaky_relu_grad",
    "relu6",
    "relu6_grad",
    "sigmoid",
    "sigmoid_grad",
    "tanh",
    "tanh_grad",
    "linear",
    "linear_grad",
    "softmax",
    "log_softmax",
    "hard_sigmoid",
    "hard_sigmoid_grad",
    "get_activation",
]


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit: ``max(x, 0)``."""
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Derivative of ReLU with respect to its input."""
    return (x > 0.0).astype(x.dtype)


def leaky_relu(x: np.ndarray, alpha: float = 0.01) -> np.ndarray:
    """Leaky ReLU with negative slope ``alpha``."""
    return np.where(x > 0.0, x, alpha * x)


def leaky_relu_grad(x: np.ndarray, y: np.ndarray, alpha: float = 0.01) -> np.ndarray:
    """Derivative of leaky ReLU."""
    return np.where(x > 0.0, 1.0, alpha)


def relu6(x: np.ndarray) -> np.ndarray:
    """ReLU clipped at 6 — the activation used by MobileNet-style edge models."""
    return np.clip(x, 0.0, 6.0)


def relu6_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Derivative of ReLU6."""
    return ((x > 0.0) & (x < 6.0)).astype(x.dtype)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def sigmoid_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Derivative of sigmoid expressed via the cached output ``y``."""
    return y * (1.0 - y)


def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent."""
    return np.tanh(x)


def tanh_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Derivative of tanh expressed via the cached output ``y``."""
    return 1.0 - y * y


def linear(x: np.ndarray) -> np.ndarray:
    """Identity activation."""
    return x


def linear_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Derivative of the identity."""
    return np.ones_like(x)


def hard_sigmoid(x: np.ndarray) -> np.ndarray:
    """Piecewise-linear sigmoid approximation used on integer-only hardware."""
    return np.clip(0.2 * x + 0.5, 0.0, 1.0)


def hard_sigmoid_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Derivative of the hard sigmoid."""
    return np.where((x > -2.5) & (x < 2.5), 0.2, 0.0)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Row-wise softmax with max-subtraction for numerical stability."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def log_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Log-softmax computed without forming intermediate large exponentials."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))


ActivationPair = Tuple[Callable[[np.ndarray], np.ndarray], Callable[[np.ndarray, np.ndarray], np.ndarray]]

_REGISTRY: Dict[str, ActivationPair] = {
    "relu": (relu, relu_grad),
    "leaky_relu": (leaky_relu, leaky_relu_grad),
    "relu6": (relu6, relu6_grad),
    "sigmoid": (sigmoid, sigmoid_grad),
    "tanh": (tanh, tanh_grad),
    "linear": (linear, linear_grad),
    "hard_sigmoid": (hard_sigmoid, hard_sigmoid_grad),
}


def get_activation(name: str) -> ActivationPair:
    """Return the ``(forward, grad)`` pair registered under ``name``.

    Raises
    ------
    KeyError
        If the name is unknown.
    """
    key = str(name).lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown activation {name!r}; known: {sorted(_REGISTRY)}")
    return _REGISTRY[key]
