"""Gradient-descent optimizers operating on layer parameter dictionaries.

Optimizers are deliberately independent of the model class: they receive a
list of ``(params, grads, skip)`` triples from :class:`repro.nn.model.Sequential`
and update the arrays in place.  This keeps them reusable for federated
server-side optimization (FedAdam etc.) in :mod:`repro.federated`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["Optimizer", "SGD", "Momentum", "Adam", "get_optimizer"]

ParamGroup = Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray], Sequence[str]]


class Optimizer:
    """Base optimizer.  Subclasses implement :meth:`update_param`."""

    #: Names of the per-parameter state slots a fresh optimizer allocates
    #: lazily on the first step.  The vectorized federated engine uses this
    #: layout to stack the matching state tensors across a client cohort.
    state_slots: Tuple[str, ...] = ()

    def __init__(self, lr: float = 0.01, weight_decay: float = 0.0) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = float(lr)
        self.weight_decay = float(weight_decay)
        self.iterations = 0

    def step(self, groups: Iterable[ParamGroup]) -> None:
        """Apply one update to every trainable parameter in ``groups``."""
        self.iterations += 1
        for layer_idx, (params, grads, skip) in enumerate(groups):
            for key, value in params.items():
                if key in skip:
                    continue
                grad = grads.get(key)
                if grad is None:
                    continue
                if self.weight_decay:
                    grad = grad + self.weight_decay * value
                self.update_param(f"{layer_idx}.{key}", value, grad)

    def update_param(self, slot: str, param: np.ndarray, grad: np.ndarray) -> None:
        raise NotImplementedError

    def state_dict(self) -> Dict[str, object]:
        """Snapshot of hyper-parameters (optimizer slots are rebuilt lazily)."""
        return {"lr": self.lr, "weight_decay": self.weight_decay, "iterations": self.iterations}

    def hyperparams(self) -> Dict[str, float]:
        """Fully-resolved hyper-parameters (defaults included).

        The vectorized federated engine broadcasts these per client, so every
        value an :meth:`update_param` implementation reads must appear here.
        """
        return {"lr": self.lr, "weight_decay": self.weight_decay}


class SGD(Optimizer):
    """Vanilla stochastic gradient descent."""

    def update_param(self, slot: str, param: np.ndarray, grad: np.ndarray) -> None:
        param -= self.lr * grad


class Momentum(Optimizer):
    """SGD with classical momentum (Polyak heavy-ball)."""

    state_slots = ("velocity",)

    def __init__(self, lr: float = 0.01, momentum: float = 0.9, weight_decay: float = 0.0) -> None:
        super().__init__(lr, weight_decay)
        self.momentum = float(momentum)
        self._velocity: Dict[str, np.ndarray] = {}

    def hyperparams(self) -> Dict[str, float]:
        out = super().hyperparams()
        out["momentum"] = self.momentum
        return out

    def update_param(self, slot: str, param: np.ndarray, grad: np.ndarray) -> None:
        v = self._velocity.get(slot)
        if v is None:
            v = np.zeros_like(param)
            self._velocity[slot] = v
        v *= self.momentum
        v -= self.lr * grad
        param += v


class Adam(Optimizer):
    """Adam optimizer with bias correction."""

    state_slots = ("m", "v", "t")

    def __init__(
        self,
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(lr, weight_decay)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}
        self._t: Dict[str, int] = {}

    def hyperparams(self) -> Dict[str, float]:
        out = super().hyperparams()
        out.update({"beta1": self.beta1, "beta2": self.beta2, "eps": self.eps})
        return out

    def update_param(self, slot: str, param: np.ndarray, grad: np.ndarray) -> None:
        m = self._m.get(slot)
        if m is None:
            m = np.zeros_like(param)
            v = np.zeros_like(param)
            self._m[slot] = m
            self._v[slot] = v
            self._t[slot] = 0
        v = self._v[slot]
        self._t[slot] += 1
        t = self._t[slot]
        m *= self.beta1
        m += (1 - self.beta1) * grad
        v *= self.beta2
        v += (1 - self.beta2) * (grad * grad)
        m_hat = m / (1 - self.beta1**t)
        v_hat = v / (1 - self.beta2**t)
        param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def get_optimizer(name: str | Optimizer, **kwargs: float) -> Optimizer:
    """Build an optimizer by name (``sgd``, ``momentum``, ``adam``)."""
    if isinstance(name, Optimizer):
        return name
    key = str(name).lower()
    if key == "sgd":
        return SGD(**kwargs)
    if key == "momentum":
        return Momentum(**kwargs)
    if key == "adam":
        return Adam(**kwargs)
    raise KeyError(f"unknown optimizer {name!r}")
