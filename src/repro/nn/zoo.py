"""Model factories ("model zoo") used across examples, tests and benchmarks.

The zoo provides small architectures representative of TinyML workloads:

* ``make_mlp`` — tabular / sensor classification.
* ``make_tiny_cnn`` — image-like classification (synthetic digits).
* ``make_depthwise_cnn`` — MobileNet-style depthwise-separable CNN, the
  canonical edge vision architecture.
* ``make_autoencoder`` — anomaly detection for predictive maintenance.
* ``make_multi_fidelity_family`` — a family of models trading accuracy for
  size/latency, used by context-aware model selection (paper Section III-A).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .layers import (
    Activation,
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    MaxPool2D,
)
from .model import Sequential

__all__ = [
    "make_mlp",
    "make_tiny_cnn",
    "make_depthwise_cnn",
    "make_autoencoder",
    "make_multi_fidelity_family",
]


def make_mlp(
    input_dim: int,
    num_classes: int,
    hidden: Sequence[int] = (64, 32),
    dropout: float = 0.0,
    seed: int = 0,
    name: str = "mlp",
) -> Sequential:
    """Multi-layer perceptron for tabular / sensor-feature classification."""
    layers = []
    for i, width in enumerate(hidden):
        layers.append(Dense(width, activation="relu", name=f"dense_{i}"))
        if dropout > 0:
            layers.append(Dropout(dropout, seed=seed + i, name=f"dropout_{i}"))
    layers.append(Dense(num_classes, activation=None, name="logits"))
    return Sequential(layers, input_shape=(input_dim,), seed=seed, name=name)


def make_tiny_cnn(
    input_shape: Tuple[int, int, int],
    num_classes: int,
    filters: Sequence[int] = (8, 16),
    dense_width: int = 32,
    use_batchnorm: bool = True,
    seed: int = 0,
    name: str = "tiny_cnn",
) -> Sequential:
    """Small convolutional classifier for image-like inputs."""
    layers: List = []
    for i, f in enumerate(filters):
        layers.append(Conv2D(f, kernel_size=3, padding="same", activation=None, name=f"conv_{i}"))
        if use_batchnorm:
            layers.append(BatchNorm(name=f"bn_{i}"))
        layers.append(Activation("relu", name=f"relu_{i}"))
        layers.append(MaxPool2D(2, name=f"pool_{i}"))
    layers.append(Flatten(name="flatten"))
    layers.append(Dense(dense_width, activation="relu", name="dense"))
    layers.append(Dense(num_classes, activation=None, name="logits"))
    return Sequential(layers, input_shape=input_shape, seed=seed, name=name)


def make_depthwise_cnn(
    input_shape: Tuple[int, int, int],
    num_classes: int,
    width_multiplier: float = 1.0,
    blocks: int = 2,
    seed: int = 0,
    name: str = "depthwise_cnn",
) -> Sequential:
    """MobileNet-style depthwise-separable CNN.

    ``width_multiplier`` scales every channel count, giving a simple knob for
    generating models of different computational cost (paper Section III-A:
    multiple model variants for heterogeneous devices).
    """
    def ch(base: int) -> int:
        return max(4, int(round(base * width_multiplier)))

    layers: List = [
        Conv2D(ch(8), kernel_size=3, stride=1, padding="same", activation=None, name="stem"),
        BatchNorm(name="stem_bn"),
        Activation("relu6", name="stem_act"),
    ]
    channels = ch(8)
    for b in range(blocks):
        out_ch = ch(8 * (2 ** (b + 1)))
        layers.extend(
            [
                DepthwiseConv2D(kernel_size=3, padding="same", activation=None, name=f"dw_{b}"),
                BatchNorm(name=f"dw_bn_{b}"),
                Activation("relu6", name=f"dw_act_{b}"),
                Conv2D(out_ch, kernel_size=1, padding="same", activation=None, name=f"pw_{b}"),
                BatchNorm(name=f"pw_bn_{b}"),
                Activation("relu6", name=f"pw_act_{b}"),
                MaxPool2D(2, name=f"pool_{b}"),
            ]
        )
        channels = out_ch
    layers.append(GlobalAvgPool2D(name="gap"))
    layers.append(Dense(num_classes, activation=None, name="logits"))
    return Sequential(layers, input_shape=input_shape, seed=seed, name=name)


def make_autoencoder(
    input_dim: int,
    bottleneck: int = 4,
    hidden: int = 32,
    seed: int = 0,
    name: str = "autoencoder",
) -> Sequential:
    """Dense autoencoder used for on-device anomaly detection.

    Reconstruction error on a sample serves as its anomaly score — the
    predictive-maintenance personalization scenario of paper Section III-D.
    """
    layers = [
        Dense(hidden, activation="relu", name="enc_1"),
        Dense(bottleneck, activation="relu", name="bottleneck"),
        Dense(hidden, activation="relu", name="dec_1"),
        Dense(input_dim, activation=None, name="recon"),
    ]
    return Sequential(layers, input_shape=(input_dim,), seed=seed, name=name)


def make_multi_fidelity_family(
    input_dim: int,
    num_classes: int,
    widths: Sequence[Tuple[int, ...]] = ((16,), (32, 16), (64, 32), (128, 64, 32)),
    seed: int = 0,
    base_name: str = "family",
) -> Dict[str, Sequential]:
    """Create a family of MLPs of increasing capacity.

    Returns a dict ``{variant_name: model}`` ordered from smallest to
    largest.  Used by E10 (context-aware model selection) and by the model
    registry experiments (E3): each fidelity is a separately tracked variant
    of the same logical model.
    """
    family: Dict[str, Sequential] = {}
    for i, hidden in enumerate(widths):
        name = f"{base_name}-f{i}"
        family[name] = make_mlp(
            input_dim,
            num_classes,
            hidden=hidden,
            seed=seed + i,
            name=name,
        )
    return family
