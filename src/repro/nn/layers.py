"""Neural-network layers with explicit forward/backward passes.

The engine is intentionally framework-free: every layer is a small object
holding its parameters in a ``params`` dict and the corresponding gradients
in a ``grads`` dict.  Backpropagation is driven by
:class:`repro.nn.model.Sequential`, which calls ``forward`` on every layer in
order and ``backward`` in reverse order.

Convolutions use an im2col formulation so the hot path is a single large
matrix multiplication (vectorized, cache friendly) rather than nested Python
loops.  Activations cache their forward outputs so gradients can reuse them.

All layers accept inputs in ``NHWC`` layout (batch, height, width, channels)
for image-like data and ``(batch, features)`` for dense data.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Tuple

import numpy as np

from . import activations as A
from . import initializers as init

__all__ = [
    "Layer",
    "Dense",
    "Activation",
    "Dropout",
    "Flatten",
    "Conv2D",
    "DepthwiseConv2D",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "BatchNorm",
    "im2col",
    "col2im",
]


class Layer:
    """Base class for all layers.

    Subclasses implement :meth:`forward` and :meth:`backward`.  Parameters
    are stored in :attr:`params`; after a backward pass the matching
    gradients (same keys, same shapes) are available in :attr:`grads`.
    """

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name or self.__class__.__name__
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}
        self.trainable = True
        self.built = False

    # -- lifecycle -----------------------------------------------------
    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        """Allocate parameters given the per-example input shape."""
        self.built = True

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        """Per-example output shape for a given per-example input shape."""
        return input_shape

    # -- compute -------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for a batch ``x``."""
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Given dL/d(output), fill ``self.grads`` and return dL/d(input)."""
        raise NotImplementedError

    # -- utilities -----------------------------------------------------
    def num_params(self) -> int:
        """Total number of scalar parameters in this layer."""
        return int(sum(p.size for p in self.params.values()))

    def get_config(self) -> Dict[str, object]:
        """Serializable configuration used by the exchange layer."""
        return {"name": self.name, "type": self.__class__.__name__}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.__class__.__name__}(name={self.name!r}, params={self.num_params()})"


# ---------------------------------------------------------------------------
# im2col / col2im helpers
# ---------------------------------------------------------------------------

def _pad_nhwc(x: np.ndarray, pad: int) -> np.ndarray:
    if pad == 0:
        return x
    return np.pad(x, ((0, 0), (pad, pad), (pad, pad), (0, 0)), mode="constant")


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, pad: int) -> Tuple[np.ndarray, int, int]:
    """Unfold NHWC input patches into a 2-D matrix.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(batch * out_h * out_w, kh * kw * channels)``.  Built on
    ``sliding_window_view`` so no Python-level loops are involved.
    """
    x = _pad_nhwc(x, pad)
    n, h, w, c = x.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(1, 2))
    # windows shape: (n, h-kh+1, w-kw+1, c, kh, kw)
    windows = windows[:, ::stride, ::stride, :, :, :]
    # reorder to (n, out_h, out_w, kh, kw, c) then flatten patch dims
    windows = windows.transpose(0, 1, 2, 4, 5, 3)
    cols = windows.reshape(n * out_h * out_w, kh * kw * c)
    return cols, out_h, out_w


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Fold a column matrix back into an NHWC tensor, accumulating overlaps.

    This is the adjoint of :func:`im2col` and is used in the convolution
    backward pass to produce the gradient with respect to the input.
    """
    n, h, w, c = x_shape
    h_p, w_p = h + 2 * pad, w + 2 * pad
    out_h = (h_p - kh) // stride + 1
    out_w = (w_p - kw) // stride + 1
    patches = cols.reshape(n, out_h, out_w, kh, kw, c)
    x_padded = np.zeros((n, h_p, w_p, c), dtype=cols.dtype)
    # Accumulate each kernel offset with a strided slice; kh*kw iterations of
    # vectorized adds (small constant, e.g. 9 for a 3x3 kernel).
    for i in range(kh):
        for j in range(kw):
            x_padded[:, i : i + stride * out_h : stride, j : j + stride * out_w : stride, :] += patches[:, :, :, i, j, :]
    if pad == 0:
        return x_padded
    return x_padded[:, pad : pad + h, pad : pad + w, :]


# ---------------------------------------------------------------------------
# Dense / Activation / Dropout / Flatten
# ---------------------------------------------------------------------------

class Dense(Layer):
    """Fully connected layer ``y = x @ W + b`` with optional fused activation."""

    def __init__(
        self,
        units: int,
        activation: Optional[str] = None,
        use_bias: bool = True,
        kernel_init: str = "he_normal",
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        if units <= 0:
            raise ValueError("units must be positive")
        self.units = int(units)
        self.use_bias = bool(use_bias)
        self.activation_name = activation
        self._act = A.get_activation(activation) if activation else None
        self._kernel_init = init.get_initializer(kernel_init)
        self._cache: Dict[str, np.ndarray] = {}

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 1:
            raise ValueError(f"Dense expects flat per-example input, got {input_shape}")
        in_dim = int(input_shape[0])
        self.params["W"] = self._kernel_init((in_dim, self.units), rng)
        if self.use_bias:
            self.params["b"] = init.zeros((self.units,))
        self.built = True

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (self.units,)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        z = x @ self.params["W"]
        if self.use_bias:
            z = z + self.params["b"]
        self._cache["x"] = x
        if self._act is not None:
            self._cache["z"] = z
            y = self._act[0](z)
            self._cache["y"] = y
            return y
        return z

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._act is not None:
            grad_out = grad_out * self._act[1](self._cache["z"], self._cache["y"])
        x = self._cache["x"]
        self.grads["W"] = x.T @ grad_out
        if self.use_bias:
            self.grads["b"] = grad_out.sum(axis=0)
        return grad_out @ self.params["W"].T

    def get_config(self) -> Dict[str, object]:
        cfg = super().get_config()
        cfg.update({"units": self.units, "activation": self.activation_name, "use_bias": self.use_bias})
        return cfg


class Activation(Layer):
    """Standalone activation layer (useful after BatchNorm or Conv2D)."""

    def __init__(self, activation: str, name: Optional[str] = None) -> None:
        super().__init__(name)
        self.activation_name = activation
        self._fn, self._grad = A.get_activation(activation)
        self.trainable = False
        self._cache: Dict[str, np.ndarray] = {}

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        y = self._fn(x)
        self._cache["x"] = x
        self._cache["y"] = y
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out * self._grad(self._cache["x"], self._cache["y"])

    def get_config(self) -> Dict[str, object]:
        cfg = super().get_config()
        cfg["activation"] = self.activation_name
        return cfg


class Dropout(Layer):
    """Inverted dropout; a no-op at inference time."""

    def __init__(self, rate: float, seed: int = 0, name: Optional[str] = None) -> None:
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = float(rate)
        self.trainable = False
        self._rng = np.random.default_rng(seed)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def spawn_stream(self) -> np.random.Generator:
        """Independent generator cloned at the current mask-stream position.

        ``Sequential.clone`` pickles this layer (generator state included), so
        every per-client model copy draws its masks from exactly this stream
        position.  The vectorized federated trainer clones one stream per
        client the same way, which keeps the batched replay mask-for-mask
        identical to the per-client loop without advancing this layer's own
        generator.
        """
        return copy.deepcopy(self._rng)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask

    def get_config(self) -> Dict[str, object]:
        cfg = super().get_config()
        cfg["rate"] = self.rate
        return cfg


class Flatten(Layer):
    """Flatten all per-example dimensions into a single feature axis."""

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name)
        self.trainable = False
        self._in_shape: Optional[Tuple[int, ...]] = None

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (int(np.prod(input_shape)),)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._in_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._in_shape is not None
        return grad_out.reshape(self._in_shape)


# ---------------------------------------------------------------------------
# Convolutions
# ---------------------------------------------------------------------------

class Conv2D(Layer):
    """2-D convolution (NHWC) implemented via im2col + GEMM."""

    def __init__(
        self,
        filters: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: str = "same",
        activation: Optional[str] = None,
        use_bias: bool = True,
        kernel_init: str = "he_normal",
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        if padding not in ("same", "valid"):
            raise ValueError("padding must be 'same' or 'valid'")
        self.filters = int(filters)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = padding
        self.activation_name = activation
        self._act = A.get_activation(activation) if activation else None
        self.use_bias = bool(use_bias)
        self._kernel_init = init.get_initializer(kernel_init)
        self._cache: Dict[str, object] = {}

    # -- shapes ---------------------------------------------------------
    def _pad_amount(self) -> int:
        return (self.kernel_size - 1) // 2 if self.padding == "same" else 0

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        h, w, _ = input_shape
        p = self._pad_amount()
        out_h = (h + 2 * p - self.kernel_size) // self.stride + 1
        out_w = (w + 2 * p - self.kernel_size) // self.stride + 1
        return (out_h, out_w, self.filters)

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 3:
            raise ValueError(f"Conv2D expects (H, W, C) per-example input, got {input_shape}")
        c_in = int(input_shape[-1])
        k = self.kernel_size
        self.params["W"] = self._kernel_init((k, k, c_in, self.filters), rng)
        if self.use_bias:
            self.params["b"] = init.zeros((self.filters,))
        self.built = True

    # -- compute ---------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        k, s, p = self.kernel_size, self.stride, self._pad_amount()
        n = x.shape[0]
        cols, out_h, out_w = im2col(x, k, k, s, p)
        w_mat = self.params["W"].reshape(-1, self.filters)
        z = cols @ w_mat
        if self.use_bias:
            z = z + self.params["b"]
        z = z.reshape(n, out_h, out_w, self.filters)
        self._cache.update(x_shape=x.shape, cols=cols)
        if self._act is not None:
            self._cache["z"] = z
            y = self._act[0](z)
            self._cache["y"] = y
            return y
        return z

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._act is not None:
            grad_out = grad_out * self._act[1](self._cache["z"], self._cache["y"])
        k, s, p = self.kernel_size, self.stride, self._pad_amount()
        x_shape: Tuple[int, int, int, int] = self._cache["x_shape"]  # type: ignore[assignment]
        cols: np.ndarray = self._cache["cols"]  # type: ignore[assignment]
        n = grad_out.shape[0]
        grad_mat = grad_out.reshape(n * grad_out.shape[1] * grad_out.shape[2], self.filters)
        self.grads["W"] = (cols.T @ grad_mat).reshape(self.params["W"].shape)
        if self.use_bias:
            self.grads["b"] = grad_mat.sum(axis=0)
        grad_cols = grad_mat @ self.params["W"].reshape(-1, self.filters).T
        return col2im(grad_cols, x_shape, k, k, s, p)

    def get_config(self) -> Dict[str, object]:
        cfg = super().get_config()
        cfg.update(
            {
                "filters": self.filters,
                "kernel_size": self.kernel_size,
                "stride": self.stride,
                "padding": self.padding,
                "activation": self.activation_name,
                "use_bias": self.use_bias,
            }
        )
        return cfg


class DepthwiseConv2D(Layer):
    """Depthwise 2-D convolution — the workhorse of MobileNet-style edge nets.

    Each input channel is convolved with its own ``k x k`` kernel; no
    cross-channel mixing happens here (that is done by a following 1x1
    :class:`Conv2D`, forming a depthwise-separable block).
    """

    def __init__(
        self,
        kernel_size: int = 3,
        stride: int = 1,
        padding: str = "same",
        activation: Optional[str] = None,
        use_bias: bool = True,
        kernel_init: str = "he_normal",
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        if padding not in ("same", "valid"):
            raise ValueError("padding must be 'same' or 'valid'")
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = padding
        self.activation_name = activation
        self._act = A.get_activation(activation) if activation else None
        self.use_bias = bool(use_bias)
        self._kernel_init = init.get_initializer(kernel_init)
        self._cache: Dict[str, object] = {}
        self._channels: Optional[int] = None

    def _pad_amount(self) -> int:
        return (self.kernel_size - 1) // 2 if self.padding == "same" else 0

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        h, w, c = input_shape
        p = self._pad_amount()
        out_h = (h + 2 * p - self.kernel_size) // self.stride + 1
        out_w = (w + 2 * p - self.kernel_size) // self.stride + 1
        return (out_h, out_w, c)

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 3:
            raise ValueError(f"DepthwiseConv2D expects (H, W, C) input, got {input_shape}")
        c = int(input_shape[-1])
        self._channels = c
        k = self.kernel_size
        self.params["W"] = self._kernel_init((k, k, c), rng)
        if self.use_bias:
            self.params["b"] = init.zeros((c,))
        self.built = True

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        k, s, p = self.kernel_size, self.stride, self._pad_amount()
        n, _, _, c = x.shape
        cols, out_h, out_w = im2col(x, k, k, s, p)
        # cols: (n*oh*ow, k*k*c) -> (n*oh*ow, k*k, c)
        cols3 = cols.reshape(-1, k * k, c)
        w = self.params["W"].reshape(k * k, c)
        z = np.einsum("pkc,kc->pc", cols3, w, optimize=True)
        if self.use_bias:
            z = z + self.params["b"]
        z = z.reshape(n, out_h, out_w, c)
        self._cache.update(x_shape=x.shape, cols3=cols3)
        if self._act is not None:
            self._cache["z"] = z
            y = self._act[0](z)
            self._cache["y"] = y
            return y
        return z

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._act is not None:
            grad_out = grad_out * self._act[1](self._cache["z"], self._cache["y"])
        k, s, p = self.kernel_size, self.stride, self._pad_amount()
        x_shape: Tuple[int, int, int, int] = self._cache["x_shape"]  # type: ignore[assignment]
        cols3: np.ndarray = self._cache["cols3"]  # type: ignore[assignment]
        n, oh, ow, c = grad_out.shape
        g = grad_out.reshape(n * oh * ow, c)
        grad_w = np.einsum("pkc,pc->kc", cols3, g, optimize=True)
        self.grads["W"] = grad_w.reshape(self.params["W"].shape)
        if self.use_bias:
            self.grads["b"] = g.sum(axis=0)
        w = self.params["W"].reshape(k * k, c)
        grad_cols3 = np.einsum("pc,kc->pkc", g, w, optimize=True)
        grad_cols = grad_cols3.reshape(n * oh * ow, k * k * c)
        return col2im(grad_cols, x_shape, k, k, s, p)

    def get_config(self) -> Dict[str, object]:
        cfg = super().get_config()
        cfg.update(
            {
                "kernel_size": self.kernel_size,
                "stride": self.stride,
                "padding": self.padding,
                "activation": self.activation_name,
                "use_bias": self.use_bias,
            }
        )
        return cfg


# ---------------------------------------------------------------------------
# Pooling
# ---------------------------------------------------------------------------

class _Pool2D(Layer):
    """Shared plumbing for max/avg pooling (non-overlapping windows)."""

    def __init__(self, pool_size: int = 2, name: Optional[str] = None) -> None:
        super().__init__(name)
        self.pool_size = int(pool_size)
        self.trainable = False
        self._cache: Dict[str, object] = {}

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        h, w, c = input_shape
        return (h // self.pool_size, w // self.pool_size, c)

    def _window(self, x: np.ndarray) -> Tuple[np.ndarray, Tuple[int, int]]:
        n, h, w, c = x.shape
        p = self.pool_size
        oh, ow = h // p, w // p
        x = x[:, : oh * p, : ow * p, :]
        windows = x.reshape(n, oh, p, ow, p, c)
        return windows, (oh, ow)


class MaxPool2D(_Pool2D):
    """Non-overlapping max pooling."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        windows, (oh, ow) = self._window(x)
        out = windows.max(axis=(2, 4))
        # Cache the argmax mask for backward: broadcast compare.
        mask = windows == out[:, :, None, :, None, :]
        # Break ties so gradient is routed to exactly one element per window.
        flat = mask.reshape(*mask.shape[:2], self.pool_size, mask.shape[3], self.pool_size, mask.shape[5])
        self._cache.update(mask=mask, x_shape=x.shape, out_hw=(oh, ow))
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        mask: np.ndarray = self._cache["mask"]  # type: ignore[assignment]
        x_shape: Tuple[int, int, int, int] = self._cache["x_shape"]  # type: ignore[assignment]
        n, h, w, c = x_shape
        p = self.pool_size
        oh, ow = self._cache["out_hw"]  # type: ignore[misc]
        # Normalize mask so ties split the gradient (keeps it an exact adjoint).
        counts = mask.sum(axis=(2, 4), keepdims=True)
        g = (mask / counts) * grad_out[:, :, None, :, None, :]
        grad_in = np.zeros(x_shape, dtype=grad_out.dtype)
        grad_in[:, : oh * p, : ow * p, :] = g.reshape(n, oh * p, ow * p, c)
        return grad_in


class AvgPool2D(_Pool2D):
    """Non-overlapping average pooling."""

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        windows, (oh, ow) = self._window(x)
        self._cache.update(x_shape=x.shape, out_hw=(oh, ow))
        return windows.mean(axis=(2, 4))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x_shape: Tuple[int, int, int, int] = self._cache["x_shape"]  # type: ignore[assignment]
        n, h, w, c = x_shape
        p = self.pool_size
        oh, ow = self._cache["out_hw"]  # type: ignore[misc]
        g = np.repeat(np.repeat(grad_out, p, axis=1), p, axis=2) / (p * p)
        grad_in = np.zeros(x_shape, dtype=grad_out.dtype)
        grad_in[:, : oh * p, : ow * p, :] = g
        return grad_in


class GlobalAvgPool2D(Layer):
    """Average over the spatial dimensions, producing a flat feature vector."""

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name)
        self.trainable = False
        self._in_shape: Optional[Tuple[int, ...]] = None

    def output_shape(self, input_shape: Tuple[int, ...]) -> Tuple[int, ...]:
        return (input_shape[-1],)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._in_shape = x.shape
        return x.mean(axis=(1, 2))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        assert self._in_shape is not None
        n, h, w, c = self._in_shape
        g = grad_out[:, None, None, :] / (h * w)
        return np.broadcast_to(g, self._in_shape).copy()


# ---------------------------------------------------------------------------
# Batch normalization
# ---------------------------------------------------------------------------

class BatchNorm(Layer):
    """Batch normalization over the last axis (channels or features).

    Maintains running mean/variance for inference.  The running statistics
    are stored in ``params`` with ``trainable`` markers so optimizers skip
    them, and so quantization / fusion passes in :mod:`repro.exchange` can
    fold them into preceding convolutions.
    """

    NON_TRAINABLE = ("running_mean", "running_var")

    def __init__(self, momentum: float = 0.9, eps: float = 1e-5, name: Optional[str] = None) -> None:
        super().__init__(name)
        self.momentum = float(momentum)
        self.eps = float(eps)
        self._cache: Dict[str, np.ndarray] = {}

    def build(self, input_shape: Tuple[int, ...], rng: np.random.Generator) -> None:
        c = int(input_shape[-1])
        self.params["gamma"] = init.ones((c,))
        self.params["beta"] = init.zeros((c,))
        self.params["running_mean"] = init.zeros((c,))
        self.params["running_var"] = init.ones((c,))
        self.built = True

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        axes = tuple(range(x.ndim - 1))
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            m = self.momentum
            self.params["running_mean"] *= m
            self.params["running_mean"] += (1 - m) * mean
            self.params["running_var"] *= m
            self.params["running_var"] += (1 - m) * var
        else:
            mean = self.params["running_mean"]
            var = self.params["running_var"]
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean) * inv_std
        self._cache.update(x_hat=x_hat, inv_std=inv_std)
        return self.params["gamma"] * x_hat + self.params["beta"]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        x_hat = self._cache["x_hat"]
        inv_std = self._cache["inv_std"]
        axes = tuple(range(grad_out.ndim - 1))
        m = float(np.prod([grad_out.shape[a] for a in axes]))
        self.grads["gamma"] = (grad_out * x_hat).sum(axis=axes)
        self.grads["beta"] = grad_out.sum(axis=axes)
        # Zero grads for running stats so optimizers can iterate params uniformly.
        self.grads["running_mean"] = np.zeros_like(self.params["running_mean"])
        self.grads["running_var"] = np.zeros_like(self.params["running_var"])
        gamma = self.params["gamma"]
        dxhat = grad_out * gamma
        grad_in = (
            dxhat - dxhat.mean(axis=axes) - x_hat * (dxhat * x_hat).mean(axis=axes)
        ) * inv_std
        return grad_in

    def get_config(self) -> Dict[str, object]:
        cfg = super().get_config()
        cfg.update({"momentum": self.momentum, "eps": self.eps})
        return cfg
