"""Pure-NumPy neural-network engine: the model substrate for TinyMLOps.

Public surface::

    from repro.nn import Sequential, Dense, Conv2D, make_mlp, ...
"""

from .activations import get_activation, log_softmax, softmax
from .initializers import get_initializer
from .layers import (
    Activation,
    AvgPool2D,
    BatchNorm,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    Layer,
    MaxPool2D,
)
from .losses import (
    binary_cross_entropy,
    distillation_loss,
    get_loss,
    mae,
    mse,
    softmax_cross_entropy,
)
from .metrics import (
    accuracy,
    agreement,
    confusion_matrix,
    precision_recall_f1,
    r2_score,
    top_k_accuracy,
)
from .model import Sequential, batch_iterator
from .optimizers import SGD, Adam, Momentum, Optimizer, get_optimizer
from .zoo import (
    make_autoencoder,
    make_depthwise_cnn,
    make_mlp,
    make_multi_fidelity_family,
    make_tiny_cnn,
)

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "DepthwiseConv2D",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "BatchNorm",
    "Dropout",
    "Flatten",
    "Activation",
    "Sequential",
    "batch_iterator",
    "SGD",
    "Momentum",
    "Adam",
    "Optimizer",
    "get_optimizer",
    "get_activation",
    "get_initializer",
    "get_loss",
    "softmax",
    "log_softmax",
    "softmax_cross_entropy",
    "mse",
    "mae",
    "binary_cross_entropy",
    "distillation_loss",
    "accuracy",
    "top_k_accuracy",
    "confusion_matrix",
    "precision_recall_f1",
    "r2_score",
    "agreement",
    "make_mlp",
    "make_tiny_cnn",
    "make_depthwise_cnn",
    "make_autoencoder",
    "make_multi_fidelity_family",
]
