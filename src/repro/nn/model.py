"""Sequential model container: training loop, evaluation, weight I/O.

The :class:`Sequential` model is the unit that flows through the whole
TinyMLOps platform: it is trained here, exported to the graph IR by
:mod:`repro.exchange`, optimized by :mod:`repro.optimize`, registered by
:mod:`repro.registry`, deployed to simulated devices by :mod:`repro.runtime`
and updated by :mod:`repro.federated`.  Its weights can be flattened to a
single vector (``get_flat_weights``) which is the representation used by
federated aggregation, watermarking and model-diff utilities.
"""

from __future__ import annotations

import io
import pickle
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .layers import BatchNorm, Layer
from .losses import LossFn, get_loss
from .metrics import accuracy
from .optimizers import Optimizer, get_optimizer

__all__ = ["Sequential", "batch_iterator"]


def batch_iterator(
    x: np.ndarray,
    y: Optional[np.ndarray],
    batch_size: int,
    rng: Optional[np.random.Generator] = None,
) -> Iterator[Tuple[np.ndarray, Optional[np.ndarray]]]:
    """Yield mini-batches, optionally shuffled with ``rng``."""
    n = x.shape[0]
    idx = np.arange(n)
    if rng is not None:
        rng.shuffle(idx)
    for start in range(0, n, batch_size):
        sel = idx[start : start + batch_size]
        yield x[sel], (y[sel] if y is not None else None)


class Sequential:
    """A plain feed-forward stack of layers.

    Parameters
    ----------
    layers:
        Layers applied in order.
    input_shape:
        Per-example input shape, e.g. ``(16,)`` for tabular data or
        ``(16, 16, 1)`` for single-channel images.
    seed:
        Seed for parameter initialization, making model construction
        reproducible (a requirement for registry content-addressing).
    name:
        Human-readable model name used throughout the platform.
    """

    def __init__(
        self,
        layers: Sequence[Layer],
        input_shape: Tuple[int, ...],
        seed: int = 0,
        name: str = "model",
    ) -> None:
        self.layers: List[Layer] = list(layers)
        self.input_shape = tuple(int(s) for s in input_shape)
        self.seed = int(seed)
        self.name = name
        rng = np.random.default_rng(seed)
        shape = self.input_shape
        for layer in self.layers:
            if not layer.built:
                layer.build(shape, rng)
            shape = layer.output_shape(shape)
        self.output_shape = shape

    # ------------------------------------------------------------------
    # forward / backward
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run the full forward pass on a batch."""
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    # Alias used by pipelines and benchmarks.
    predict = forward

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Softmax probabilities of the final layer output."""
        from .activations import softmax

        return softmax(self.forward(x, training=False), axis=-1)

    def predict_classes(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Arg-maxed class predictions computed in batches."""
        outputs = []
        for xb, _ in batch_iterator(x, None, batch_size):
            outputs.append(self.forward(xb, training=False).argmax(axis=-1))
        return np.concatenate(outputs) if outputs else np.empty((0,), dtype=np.int64)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Back-propagate ``dL/d(output)`` through every layer."""
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def _param_groups(self):
        groups = []
        for layer in self.layers:
            if not layer.params:
                continue
            skip: Tuple[str, ...] = ()
            if isinstance(layer, BatchNorm):
                skip = BatchNorm.NON_TRAINABLE
            if not layer.trainable:
                skip = tuple(layer.params.keys())
            groups.append((layer.params, layer.grads, skip))
        return groups

    def train_step(
        self,
        xb: np.ndarray,
        yb: np.ndarray,
        loss_fn: LossFn,
        optimizer: Optimizer,
    ) -> float:
        """One forward/backward/update step; returns the batch loss."""
        out = self.forward(xb, training=True)
        loss, grad = loss_fn(out, yb)
        self.backward(grad)
        optimizer.step(self._param_groups())
        return loss

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        epochs: int = 5,
        batch_size: int = 32,
        lr: float = 0.01,
        loss: str | LossFn = "cross_entropy",
        optimizer: str | Optimizer = "adam",
        validation_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        seed: int = 0,
        verbose: bool = False,
        callbacks: Optional[Sequence[Callable[[int, Dict[str, float]], None]]] = None,
    ) -> Dict[str, List[float]]:
        """Train the model and return a history dict.

        History keys: ``loss`` and (for classification data) ``accuracy``,
        plus ``val_loss`` / ``val_accuracy`` when validation data is given.
        """
        loss_fn = get_loss(loss)
        opt = get_optimizer(optimizer, lr=lr) if isinstance(optimizer, str) else optimizer
        rng = np.random.default_rng(seed)
        history: Dict[str, List[float]] = {"loss": [], "accuracy": []}
        if validation_data is not None:
            history["val_loss"] = []
            history["val_accuracy"] = []
        for epoch in range(epochs):
            losses = []
            for xb, yb in batch_iterator(x, y, batch_size, rng):
                losses.append(self.train_step(xb, yb, loss_fn, opt))
            epoch_loss = float(np.mean(losses)) if losses else 0.0
            history["loss"].append(epoch_loss)
            train_acc = self.evaluate(x, y, loss=loss_fn)["accuracy"]
            history["accuracy"].append(train_acc)
            metrics = {"loss": epoch_loss, "accuracy": train_acc}
            if validation_data is not None:
                val = self.evaluate(validation_data[0], validation_data[1], loss=loss_fn)
                history["val_loss"].append(val["loss"])
                history["val_accuracy"].append(val["accuracy"])
                metrics.update({"val_loss": val["loss"], "val_accuracy": val["accuracy"]})
            if callbacks:
                for cb in callbacks:
                    cb(epoch, metrics)
            if verbose:  # pragma: no cover - convenience output
                print(f"epoch {epoch + 1}/{epochs}: " + ", ".join(f"{k}={v:.4f}" for k, v in metrics.items()))
        return history

    def evaluate(
        self,
        x: np.ndarray,
        y: np.ndarray,
        loss: str | LossFn = "cross_entropy",
        batch_size: int = 256,
    ) -> Dict[str, float]:
        """Compute average loss and accuracy over a dataset."""
        loss_fn = get_loss(loss)
        total_loss = 0.0
        n = 0
        correct = 0.0
        for xb, yb in batch_iterator(x, y, batch_size):
            out = self.forward(xb, training=False)
            batch_loss, _ = loss_fn(out, yb)
            total_loss += batch_loss * xb.shape[0]
            n += xb.shape[0]
            if out.ndim == 2 and yb is not None and yb.ndim == 1:
                correct += float(np.sum(out.argmax(axis=-1) == yb))
        return {
            "loss": total_loss / max(n, 1),
            "accuracy": correct / max(n, 1),
        }

    # ------------------------------------------------------------------
    # weights I/O
    # ------------------------------------------------------------------
    def get_weights(self) -> List[Dict[str, np.ndarray]]:
        """Copy of every layer's parameter dict (list aligned with layers)."""
        return [{k: v.copy() for k, v in layer.params.items()} for layer in self.layers]

    def set_weights(self, weights: Sequence[Dict[str, np.ndarray]]) -> None:
        """Load weights produced by :meth:`get_weights` (shapes must match)."""
        if len(weights) != len(self.layers):
            raise ValueError("weight list length does not match number of layers")
        for layer, w in zip(self.layers, weights):
            for key, value in w.items():
                if key not in layer.params:
                    raise KeyError(f"layer {layer.name} has no parameter {key!r}")
                if layer.params[key].shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {layer.name}.{key}: "
                        f"{layer.params[key].shape} vs {value.shape}"
                    )
                layer.params[key] = value.astype(np.float64).copy()

    def get_flat_weights(self) -> np.ndarray:
        """All parameters concatenated into a single 1-D vector."""
        parts = []
        for layer in self.layers:
            for key in sorted(layer.params):
                parts.append(layer.params[key].ravel())
        if not parts:
            return np.empty(0, dtype=np.float64)
        return np.concatenate(parts)

    def set_flat_weights(self, flat: np.ndarray) -> None:
        """Inverse of :meth:`get_flat_weights`."""
        flat = np.asarray(flat, dtype=np.float64)
        offset = 0
        for layer in self.layers:
            for key in sorted(layer.params):
                size = layer.params[key].size
                chunk = flat[offset : offset + size]
                if chunk.size != size:
                    raise ValueError("flat weight vector is too short")
                layer.params[key] = chunk.reshape(layer.params[key].shape).copy()
                offset += size
        if offset != flat.size:
            raise ValueError(f"flat weight vector has {flat.size - offset} unused values")

    def num_params(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(layer.num_params() for layer in self.layers))

    # ------------------------------------------------------------------
    # cloning and serialization
    # ------------------------------------------------------------------
    def clone(self, copy_weights: bool = True, name: Optional[str] = None) -> "Sequential":
        """Structural copy of the model; optionally copies the weights too."""
        blob = pickle.dumps(
            {
                "layers": self.layers,
                "input_shape": self.input_shape,
                "seed": self.seed,
                "name": name or self.name,
            }
        )
        data = pickle.loads(blob)
        clone = Sequential.__new__(Sequential)
        clone.layers = data["layers"]
        clone.input_shape = data["input_shape"]
        clone.seed = data["seed"]
        clone.name = data["name"]
        clone.output_shape = self.output_shape
        if not copy_weights:
            rng = np.random.default_rng(self.seed)
            shape = clone.input_shape
            for layer in clone.layers:
                layer.params = {}
                layer.grads = {}
                layer.built = False
                layer.build(shape, rng)
                shape = layer.output_shape(shape)
        return clone

    def to_bytes(self) -> bytes:
        """Serialize architecture + weights to a byte string."""
        buf = io.BytesIO()
        pickle.dump(
            {
                "name": self.name,
                "input_shape": self.input_shape,
                "seed": self.seed,
                "layers": self.layers,
            },
            buf,
        )
        return buf.getvalue()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Sequential":
        """Inverse of :meth:`to_bytes`."""
        data = pickle.loads(blob)
        model = cls.__new__(cls)
        model.name = data["name"]
        model.input_shape = data["input_shape"]
        model.seed = data["seed"]
        model.layers = data["layers"]
        shape = model.input_shape
        for layer in model.layers:
            shape = layer.output_shape(shape)
        model.output_shape = shape
        return model

    def summary(self) -> str:
        """Human-readable architecture summary."""
        lines = [f"Model {self.name!r}  input={self.input_shape}"]
        shape = self.input_shape
        for layer in self.layers:
            shape = layer.output_shape(shape)
            lines.append(f"  {layer.name:<24} out={shape!s:<18} params={layer.num_params()}")
        lines.append(f"  total params: {self.num_params()}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Sequential(name={self.name!r}, layers={len(self.layers)}, params={self.num_params()})"
