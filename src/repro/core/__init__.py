"""Core TinyMLOps platform: selection policy, batched serving engine,
traffic scenarios and the end-to-end facade."""

from .platform import PlatformConfig, TinyMLOpsPlatform
from .selection import ModelSelector, SelectionPolicy, SelectionResult
from .serving import FleetServeReport, ServeResult, ServingEngine
from .traffic import SCENARIOS, TrafficGenerator, make_scenario

__all__ = [
    "TinyMLOpsPlatform",
    "PlatformConfig",
    "ModelSelector",
    "SelectionPolicy",
    "SelectionResult",
    "ServingEngine",
    "ServeResult",
    "FleetServeReport",
    "TrafficGenerator",
    "SCENARIOS",
    "make_scenario",
]
