"""Core TinyMLOps platform: model selection policy and the end-to-end facade."""

from .platform import PlatformConfig, TinyMLOpsPlatform
from .selection import ModelSelector, SelectionPolicy, SelectionResult

__all__ = [
    "TinyMLOpsPlatform",
    "PlatformConfig",
    "ModelSelector",
    "SelectionPolicy",
    "SelectionResult",
]
