"""Vectorized, fleet-scale serving engine (paper Sections III-B / III-C).

The paper's serving path meters, battery-accounts and monitors **one query
at a time**; fine for a 40-device demo, hopeless for "heavy traffic from
millions of users" (ROADMAP north star).  :class:`ServingEngine` replaces
the per-query Python loop with three O(1)-per-window batch operations while
preserving the exact admission semantics of the loop:

1. **Quota** — :meth:`~repro.billing.UsageLedger.record_batch` consumes
   prepaid quota for the whole window in O(#grants), appending aggregated
   MAC-chained ledger entries.  Queries past exhaustion are denied, so the
   *first* ``granted`` queries of the window are admitted — a prefix,
   exactly like the loop.
2. **Battery** — :meth:`~repro.devices.EdgeDevice.execute_batch` computes
   in one division how many of the admitted queries the remaining charge
   covers; the rest fail, and the battery drains to zero just as the first
   failing per-query draw would have left it.
3. **Observability** — the monitor observes only the *served* slice of the
   window (inputs, predictions and correctly-sized latency/energy/memory
   arrays), fixing the historical bug where the full window was paired with
   ``served``-length telemetry arrays.

:meth:`ServingEngine.serve_batch_legacy` keeps the original per-query loop
as a reference oracle: the equivalence tests assert that batched and legacy
serving produce identical admission counts, ledger state and billing.
(Battery admission counts are bit-identical for binary-exact energies; see
the floating-point caveat on :meth:`~repro.devices.Battery.draw_batch`.)

:meth:`ServingEngine.serve_fleet` drives an entire fleet through one or
more traffic windows (see :mod:`repro.core.traffic` for scenario
generators) and returns a fleet-level report.  By default it runs the
**fleet sweep**: battery admission for the whole window is *one*
:meth:`~repro.devices.FleetState.draw_batch_rows` sweep over the fleet's
columnar store (quota metering stays per-device — the MAC chain is
inherently sequential), all admitted slices of a (model, window) pair
execute through *one* compiled-plan
:meth:`~repro.exchange.CompiledExecutor.run_many` call, and all served
slices feed *one* :meth:`~repro.observability.FleetMonitor.observe_fleet`
drift sweep — instead of one ``plan.run`` + ``observe_window`` pair per
device.

Engine convention (see :mod:`repro.dispatch`): ``serve_fleet`` takes
``engine="batched"`` (default, the fleet sweep), ``engine="oracle"``
(the per-device :meth:`serve_batch` loop kept as the reference) or
``engine="sharded"`` (the fleet sweep partitioned across a
:class:`~repro.runtime.sharded.ShardedFleetRunner` process pool and merged
at a barrier, byte-identical to ``"batched"``); the old ``batched=``
boolean keyword still works as a deprecated alias.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, MutableMapping, Optional, Tuple, Union

import numpy as np

from repro.billing import QuotaExceededError, UsageLedger
from repro.devices import CostModel, Fleet
from repro.dispatch import ENGINE_BATCHED, ENGINE_SHARDED, resolve_engine
from repro.observability import EdgeMonitor, FleetMonitor

__all__ = ["ServeResult", "FleetServeReport", "ServingEngine"]


@dataclass(frozen=True)
class ServeResult:
    """Outcome of serving one traffic window on one device."""

    device_id: str
    model_name: str
    requested: int
    served: int
    denied_quota: int
    battery_failures: int
    drift_detected: bool

    def as_dict(self) -> Dict[str, object]:
        """The legacy ``TinyMLOpsPlatform.serve`` return payload."""
        return {
            "served": self.served,
            "denied_quota": self.denied_quota,
            "battery_failures": self.battery_failures,
            "drift_detected": self.drift_detected,
        }


@dataclass
class FleetServeReport:
    """Aggregate outcome of driving a whole fleet through traffic windows.

    ``shard_recoveries`` counts shards the sharded backend had to re-execute
    in-process after a worker fault (:mod:`repro.runtime.sharded`); it stays
    0 on fault-free runs and on the single-process engines, so report
    equality across engines is unaffected while a recovered run is
    explicitly flagged.  ``network_failures`` counts queries that never
    reached their device because a fault plan partitioned it for the window
    (:mod:`repro.faults`): they are requested-but-unserved and *never
    billed* — the ledger meters admissions, and a partitioned device admits
    nothing.
    """

    model_name: str
    n_windows: int = 0
    requested: int = 0
    served: int = 0
    denied_quota: int = 0
    battery_failures: int = 0
    devices_with_drift: int = 0
    shard_recoveries: int = 0
    network_failures: int = 0
    per_device: Dict[str, Dict[str, int]] = field(default_factory=dict)

    _DEVICE_KEYS = ("requested", "served", "denied_quota", "battery_failures", "network_failures")

    def _device_stats(self, device_id: str) -> Dict[str, int]:
        return self.per_device.setdefault(device_id, {k: 0 for k in self._DEVICE_KEYS})

    def add(self, result: ServeResult) -> None:
        self.requested += result.requested
        self.served += result.served
        self.denied_quota += result.denied_quota
        self.battery_failures += result.battery_failures
        stats = self._device_stats(result.device_id)
        stats["requested"] += result.requested
        stats["served"] += result.served
        stats["denied_quota"] += result.denied_quota
        stats["battery_failures"] += result.battery_failures

    def add_network_failure(self, device_id: str, n_queries: int) -> None:
        """Account queries lost to a window-long device partition."""
        self.requested += n_queries
        self.network_failures += n_queries
        stats = self._device_stats(device_id)
        stats["requested"] += n_queries
        stats["network_failures"] += n_queries

    def as_dict(self) -> Dict[str, object]:
        return {
            "model_name": self.model_name,
            "n_windows": self.n_windows,
            "requested": self.requested,
            "served": self.served,
            "denied_quota": self.denied_quota,
            "battery_failures": self.battery_failures,
            "devices_with_drift": self.devices_with_drift,
            "shard_recoveries": self.shard_recoveries,
            "network_failures": self.network_failures,
            "served_fraction": self.served / max(self.requested, 1),
        }


class ServingEngine:
    """Batched serving over a fleet: metering, battery accounting, monitoring.

    The engine shares the platform's per-device state *by reference*
    (``models``, ``ledgers`` and ``monitors`` are the facade's own dicts),
    so serving through the engine and through ``TinyMLOpsPlatform.serve``
    observe and mutate the same world.
    """

    def __init__(
        self,
        fleet: Fleet,
        cost_model: Optional[CostModel] = None,
        models: Optional[MutableMapping[str, object]] = None,
        ledgers: Optional[MutableMapping[str, UsageLedger]] = None,
        monitors: Optional[MutableMapping[str, EdgeMonitor]] = None,
        plans: Optional[MutableMapping[str, object]] = None,
        fault_injector=None,
    ) -> None:
        self.fleet = fleet
        self.cost_model = cost_model or CostModel()
        # Optional repro.faults.FaultInjector: serve_fleet consults it once
        # per window (parent-side, before engine dispatch) to drop queries
        # of partitioned devices, so batched/oracle/sharded all serve the
        # identical filtered window.
        self.fault_injector = fault_injector
        self.models: MutableMapping[str, object] = models if models is not None else {}
        self.ledgers: MutableMapping[str, UsageLedger] = ledgers if ledgers is not None else {}
        self.monitors: MutableMapping[str, EdgeMonitor] = monitors if monitors is not None else {}
        # Compiled plans (repro.exchange.CompiledExecutor) keyed by model
        # name; when present they replace the per-query nn.Model forward in
        # serve_batch.  Opt-in via compile_model so existing worlds keep the
        # model path untouched.
        self.plans: MutableMapping[str, object] = plans if plans is not None else {}
        self._plan_options: Dict[str, tuple] = {}
        # Per-model inference-cost cache for the fleet sweep, keyed by
        # (profile, bits); invalidated when the model object for a name is
        # replaced (cost depends on architecture, not weights).
        self._cost_cache: Dict[str, Tuple[object, Dict[tuple, object]]] = {}
        # Fleet-monitor cache for serve_fleet: rebuilt whenever the set of
        # monitor objects changes (e.g. a re-deploy replaced a monitor).
        self._fleet_monitor_cache: Optional[Tuple[tuple, FleetMonitor]] = None
        # Optional pre-configured ShardedFleetRunner used by
        # serve_fleet(engine="sharded"); None builds a default per call.
        self.shard_runner = None

    # ------------------------------------------------------------------
    def compile_model(self, model_name: str, pipeline=None, apply_quantization: Optional[bool] = None):
        """Lower a deployed model into a compiled plan for the serving path.

        The model is exported to the graph IR, run through the standard
        inference passes (or a caller-supplied
        :class:`~repro.exchange.PassPipeline`) and compiled into a
        :class:`~repro.exchange.CompiledExecutor`; subsequent
        :meth:`serve_batch` calls for this model execute the plan instead of
        the layer-by-layer ``nn`` forward.

        Omitted arguments reuse the options of the previous
        :meth:`compile_model` call for this model, so rebuilds after weight
        updates (e.g. a federated round) keep any custom lowering.
        """
        from repro.exchange import CompiledExecutor, PassPipeline, from_sequential

        stored_pipeline, stored_quant = self._plan_options.get(model_name, (None, True))
        if pipeline is None:
            pipeline = stored_pipeline
        if apply_quantization is None:
            apply_quantization = stored_quant
        model = self.models[model_name]
        lowering = pipeline or PassPipeline.standard_inference()
        plan = CompiledExecutor(lowering.run(from_sequential(model)), apply_quantization=apply_quantization)
        self.plans[model_name] = plan
        self._plan_options[model_name] = (pipeline, apply_quantization)
        return plan

    def _predict_classes(self, model_name: str, x: np.ndarray) -> np.ndarray:
        """Class predictions via the compiled plan when one is registered."""
        plan = self.plans.get(model_name)
        if plan is not None:
            return plan.run(x).argmax(axis=-1)
        return self.models[model_name].predict_classes(x)

    # ------------------------------------------------------------------
    def serve_batch(self, device_id: str, model_name: str, x: np.ndarray, bits: int = 32) -> ServeResult:
        """Serve one window of ``x.shape[0]`` queries on a device, batched.

        Admission is a two-stage prefix filter identical to the per-query
        loop: quota grants the first ``granted`` queries (consuming quota
        even for queries that later fail on battery, since metering happens
        before execution), then the battery covers the first ``served`` of
        those.  Only the served slice reaches the drift monitor.
        """
        device = self.fleet.get(device_id)
        model = self.models[model_name]
        ledger = self.ledgers.get(device_id)
        monitor = self.monitors.get(device_id)
        n = int(x.shape[0])
        cost = self.cost_model.model_inference_cost(device.profile, model, bits=bits)

        granted = ledger.record_batch(model_name, n) if ledger is not None else n
        served = device.execute_batch(cost, granted, record=False)
        denied = n - granted
        battery_failures = granted - served

        if monitor is not None and served:
            preds = self._predict_classes(model_name, x[:served])
            monitor.observe_window(
                x[:served],
                predictions=preds,
                latencies=np.full(served, cost.latency_s),
                energies=np.full(served, cost.energy_j),
                memories=np.full(served, cost.peak_memory_bytes),
            )
        return ServeResult(
            device_id=device_id,
            model_name=model_name,
            requested=n,
            served=served,
            denied_quota=denied,
            battery_failures=battery_failures,
            drift_detected=bool(monitor.any_drift()) if monitor is not None else False,
        )

    # ------------------------------------------------------------------
    def serve_batch_legacy(self, device_id: str, model_name: str, x: np.ndarray, bits: int = 32) -> ServeResult:
        """Reference per-query loop (the paper's original serving path).

        Kept as the oracle for equivalence tests and as the baseline the
        batched-serving benchmark measures its speedup against.  Applies the
        same served-slice monitoring fix as :meth:`serve_batch` so both
        paths feed identical windows to the drift detectors.  Quota is
        metered per query; the battery stage goes through
        :meth:`~repro.devices.EdgeDevice.execute_batch` with ``exact=True``
        — the iterated-subtraction semantics, bit-identical to the paper's
        per-query draws (quota exhaustion is a prefix, so hoisting the
        battery stage out of the loop changes nothing).
        """
        device = self.fleet.get(device_id)
        model = self.models[model_name]
        ledger = self.ledgers.get(device_id)
        monitor = self.monitors.get(device_id)
        granted = 0
        denied = 0
        cost = self.cost_model.model_inference_cost(device.profile, model, bits=bits)
        for _ in range(x.shape[0]):
            if ledger is not None:
                try:
                    ledger.record_query(model_name)
                except QuotaExceededError:
                    denied += 1
                    continue
            granted += 1
        served = device.execute_batch(cost, granted, record=False, exact=True)
        battery_failures = granted - served
        if monitor is not None and served:
            preds = model.predict_classes(x[:served])
            monitor.observe_window(
                x[:served],
                predictions=preds,
                latencies=np.full(served, cost.latency_s),
                energies=np.full(served, cost.energy_j),
                memories=np.full(served, cost.peak_memory_bytes),
            )
        return ServeResult(
            device_id=device_id,
            model_name=model_name,
            requested=int(x.shape[0]),
            served=served,
            denied_quota=denied,
            battery_failures=battery_failures,
            drift_detected=bool(monitor.any_drift()) if monitor is not None else False,
        )

    # ------------------------------------------------------------------
    def _fleet_monitor(self) -> FleetMonitor:
        """The cached fleet-level monitor over the current per-device monitors."""
        key = tuple(sorted((device_id, id(monitor)) for device_id, monitor in self.monitors.items()))
        if self._fleet_monitor_cache is None or self._fleet_monitor_cache[0] != key:
            self._fleet_monitor_cache = (key, FleetMonitor(self.monitors))
        return self._fleet_monitor_cache[1]

    def _window_costs(self, model_name: str, model) -> Dict[tuple, object]:
        """Per-(profile, bits) inference-cost cache for one deployed model."""
        cached = self._cost_cache.get(model_name)
        if cached is None or cached[0] is not model:
            cached = (model, {})
            self._cost_cache[model_name] = cached
        return cached[1]

    def _serve_fleet_window(
        self, model_name: str, window: Mapping[str, np.ndarray], report: FleetServeReport, bits: int
    ) -> List[ServeResult]:
        """Serve one fleet-wide window with one battery + prediction + drift sweep.

        Admission (quota then battery) is the same two-stage prefix filter
        :meth:`serve_batch` applies.  Quota metering stays a per-device loop
        in window order (each ledger's MAC chain is sequential), but battery
        admission for every device in the window is one
        :meth:`~repro.devices.FleetState.draw_batch_rows` sweep over the
        fleet's columnar store — the per-row arithmetic is exactly
        :meth:`~repro.devices.Battery.draw_batch`, so admission decisions
        and resulting battery levels match the object loop bit for bit.
        Inference costs are cached per (model, profile, bits): a window over
        10k devices of 6 profiles computes 6 costs, not 10k.  The served
        slices of every monitored device then flow through one compiled-plan
        ``run_many`` sweep (the plan falls back to per-window execution
        internally when its kernels are not stacking-exact) and one
        :meth:`FleetMonitor.observe_fleet` drift sweep.  Without a compiled
        plan predictions stay per-device, preserving the oracle's per-window
        ``nn`` forwards.
        """
        model = self.models[model_name]
        plan = self.plans.get(model_name)
        costs_by_profile = self._window_costs(model_name, model)
        state = self.fleet.state
        # Parallel lists: device_id, row, window, requested, cost, granted.
        ids: List[str] = []
        rows: List[int] = []
        xs: List[np.ndarray] = []
        ns: List[int] = []
        costs: List[object] = []
        granteds: List[int] = []
        for device_id, x in window.items():
            x = np.asarray(x)
            if x.shape[0] == 0:
                continue
            row = self.fleet.row_of(device_id)
            profile = state.profile_at(row)
            cost = costs_by_profile.get((profile, bits))
            if cost is None:
                cost = self.cost_model.model_inference_cost(profile, model, bits=bits)
                costs_by_profile[(profile, bits)] = cost
            ledger = self.ledgers.get(device_id)
            n = int(x.shape[0])
            granted = ledger.record_batch(model_name, n) if ledger is not None else n
            ids.append(device_id)
            rows.append(row)
            xs.append(x)
            ns.append(n)
            costs.append(cost)
            granteds.append(granted)
        if not ids:
            return []
        row_arr = np.asarray(rows, dtype=np.intp)
        served_arr = state.draw_batch_rows(
            row_arr,
            np.array([c.energy_j for c in costs], dtype=np.float64),
            np.asarray(granteds, dtype=np.int64),
        )
        state.query_count[row_arr] += served_arr
        admitted = [
            (device_id, x, n, cost, granted, int(served))
            for device_id, x, n, cost, granted, served in zip(ids, xs, ns, costs, granteds, served_arr)
        ]
        # One prediction sweep over every monitored device's served slice.
        monitored = [
            (device_id, x[:served], cost, served)
            for device_id, x, n, cost, granted, served in admitted
            if served and self.monitors.get(device_id) is not None
        ]
        if monitored:
            slices = [s for _, s, _, _ in monitored]
            if plan is not None:
                outputs = plan.run_many(slices)
                preds = [out.argmax(axis=-1) for out in outputs]
            else:
                preds = [self.models[model_name].predict_classes(s) for s in slices]
            self._fleet_monitor().observe_fleet(
                {device_id: s for device_id, s, _, _ in monitored},
                predictions={device_id: p for (device_id, _, _, _), p in zip(monitored, preds)},
                latencies={device_id: np.full(served, cost.latency_s) for device_id, _, cost, served in monitored},
                energies={device_id: np.full(served, cost.energy_j) for device_id, _, cost, served in monitored},
                memories={device_id: np.full(served, cost.peak_memory_bytes) for device_id, _, cost, served in monitored},
            )
        results: List[ServeResult] = []
        for device_id, x, n, cost, granted, served in admitted:
            monitor = self.monitors.get(device_id)
            result = ServeResult(
                device_id=device_id,
                model_name=model_name,
                requested=n,
                served=served,
                denied_quota=n - granted,
                battery_failures=granted - served,
                drift_detected=bool(monitor.any_drift()) if monitor is not None else False,
            )
            report.add(result)
            results.append(result)
        return results

    def serve_fleet(
        self,
        model_name: str,
        traffic: Union[Mapping[str, np.ndarray], Iterable[Mapping[str, np.ndarray]]],
        engine: Optional[str] = None,
        batched: Optional[bool] = None,
        workers: Optional[int] = None,
    ) -> FleetServeReport:
        """Drive the whole fleet through one window — or a scenario of windows.

        ``traffic`` is either a single window (mapping ``device_id`` to that
        device's query inputs) or an iterable of such windows, e.g. the
        output of a :mod:`repro.core.traffic` generator.  Devices mapped to
        empty arrays are skipped.

        With ``engine="batched"`` (the default) each window is served by
        :meth:`_serve_fleet_window` — one columnar battery-admission sweep,
        one compiled-plan sweep and one fleet drift sweep per
        (model, window).  ``engine="oracle"`` keeps the per-device
        :meth:`serve_batch` loop as the reference; both paths produce
        identical reports, ledger/battery state and monitor histories.
        ``engine="sharded"`` partitions each window across ``workers``
        processes (a :class:`~repro.runtime.sharded.ShardedFleetRunner`;
        assign :attr:`shard_runner` to customize backend/timeouts) and
        merges at a barrier, byte-identical to the batched path — falling
        back to it single-process when the pool is unavailable or the
        shards would be degenerate.  The boolean ``batched=`` keyword is a
        deprecated alias (:mod:`repro.dispatch`).
        """
        engine = resolve_engine(
            engine, batched, owner="ServingEngine.serve_fleet", extra=(ENGINE_SHARDED,)
        )
        windows: Iterable[Mapping[str, np.ndarray]]
        if isinstance(traffic, Mapping):
            windows = [traffic]
        else:
            windows = traffic
        runner = None
        if engine == ENGINE_SHARDED:
            from repro.runtime.sharded import ShardedFleetRunner

            runner = self.shard_runner or ShardedFleetRunner(workers=workers)
        report = FleetServeReport(model_name=model_name)
        for window in windows:
            report.n_windows += 1
            if self.fault_injector is not None:
                # Partitioned devices' queries never arrive: drop them
                # before engine dispatch (every engine sees the identical
                # filtered window) and surface them as network_failures —
                # requested, unserved, unbilled.
                window, dropped = self.fault_injector.filter_window(dict(window))
                for device_id, x in dropped.items():
                    n = int(np.asarray(x).shape[0])
                    if n:
                        report.add_network_failure(device_id, n)
            if runner is not None:
                runner.serve_window(self, model_name, window, report, bits=32)
            elif engine == ENGINE_BATCHED:
                self._serve_fleet_window(model_name, window, report, bits=32)
            else:
                for device_id, x in window.items():
                    if x.shape[0] == 0:
                        continue
                    report.add(self.serve_batch(device_id, model_name, x))
        report.devices_with_drift = sum(1 for m in self.monitors.values() if m.any_drift())
        return report
