"""The TinyMLOps platform facade: Figure 1 of the paper as one object.

:class:`TinyMLOpsPlatform` wires together every subsystem (registry,
optimization, compilation, fleet management, observability, billing,
federated learning, IP protection, verifiable execution) and exposes the
end-to-end workflows a platform user would call:

* :meth:`release`   — register a trained model and stamp out optimized
  variants (Section III-A: version management + optimization pipeline).
* :meth:`deploy`    — select a variant per device context, compile for the
  device profile, install it, record the deployment (Sections III-A, IV).
* :meth:`serve`     — simulate production traffic on a device: metering
  (III-C), telemetry + drift monitoring (III-B), battery accounting.
* :meth:`sync_device` — upload telemetry and the usage ledger when the
  device has connectivity; reconcile billing.
* :meth:`federated_update` — run federated rounds over eligible devices
  (III-D).
* :meth:`protect`   — watermark + encrypt artifacts for a device (V).
* :meth:`verify_inference` — produce and check an execution transcript (VI).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.billing import BillingBackend, PricingPlan, UsageLedger
from repro.devices import CostModel, EdgeDevice, Fleet, NetworkCondition, get_profile
from repro.exchange import Compiler, from_sequential
from repro.federated import (
    EligibilityScheduler,
    FederatedClient,
    FederatedEngine,
    RoundScenario,
    get_compressor,
)
from repro.nn.model import Sequential
from repro.observability import AlertEngine, EdgeMonitor, TelemetryAggregator
from repro.optimize import ModelVariant, VariantGenerator, pareto_front
from repro.protection import ModelKeyManager, ProtectedModel, StaticWatermarker
from repro.registry import ModelRegistry, OptimizationPipeline, TriggerManager
from repro.runtime import Orchestrator, Pipeline, model_module, softmax_module
from repro.verification import TranscriptVerifier, VerifiableExecutor

from .selection import ModelSelector, SelectionPolicy
from .serving import FleetServeReport, ServingEngine

__all__ = ["PlatformConfig", "TinyMLOpsPlatform"]


@dataclass
class PlatformConfig:
    """Tunable knobs of the platform facade."""

    bit_widths: Tuple[int, ...] = (8, 4)
    sparsities: Tuple[float, ...] = (0.5,)
    price_per_query: float = 0.0015
    watermark_bits: int = 32
    telemetry_detectors: Tuple[str, ...] = ("ks",)
    federated_compressor: str = "topk"
    federated_fraction: float = 0.3
    seed: int = 0


class TinyMLOpsPlatform:
    """End-to-end TinyMLOps control plane over a simulated fleet."""

    def __init__(self, fleet: Fleet, config: Optional[PlatformConfig] = None) -> None:
        self.fleet = fleet
        self.config = config or PlatformConfig()
        # Subsystems (the blocks of Figure 1).
        self.registry = ModelRegistry()
        self.triggers = TriggerManager(self.registry)
        self.compiler = Compiler()
        self.cost_model = CostModel()
        self.selector = ModelSelector(self.cost_model)
        self.orchestrator = Orchestrator(fleet)
        self.telemetry = TelemetryAggregator()
        self.alerts = AlertEngine.default_rules()
        self.billing = BillingBackend()
        self.keys = ModelKeyManager()
        self.watermarker = StaticWatermarker(message_bits=self.config.watermark_bits, seed=self.config.seed)
        # Per-device state the platform tracks.
        self.monitors: Dict[str, EdgeMonitor] = {}
        self.ledgers: Dict[str, UsageLedger] = {}
        self.deployed_models: Dict[str, Sequential] = {}
        self.variants: Dict[str, List[ModelVariant]] = {}
        self.events: List[Dict[str, object]] = []
        # Batched serving engine sharing the per-device state by reference.
        self.serving = ServingEngine(
            fleet,
            cost_model=self.cost_model,
            models=self.deployed_models,
            ledgers=self.ledgers,
            monitors=self.monitors,
        )

    # ------------------------------------------------------------------
    def _log(self, kind: str, **details: object) -> None:
        self.events.append({"event": kind, **details})

    # ------------------------------------------------------------------
    # release: registry + optimization pipeline (Sec. III-A)
    # ------------------------------------------------------------------
    def release(
        self,
        model: Sequential,
        x_eval: np.ndarray,
        y_eval: np.ndarray,
        watermark_owner: Optional[str] = None,
    ) -> Dict[str, object]:
        """Register a trained model, generate and evaluate optimized variants."""
        if watermark_owner:
            model, wm_key = self.watermarker.embed(model, owner=watermark_owner)
            model.name = model.name.replace("-wm", "")
            self._log("watermarked", model=model.name, owner=watermark_owner)
        pipeline = OptimizationPipeline.standard(
            bit_widths=self.config.bit_widths, sparsities=self.config.sparsities
        )
        self.triggers.subscribe(model.name, pipeline)
        base_version, derived = self.triggers.register_and_trigger(model)
        profiles = sorted({d.profile for d in self.fleet}, key=lambda p: p.name)
        generator = VariantGenerator(self.cost_model)
        variants = generator.generate(
            model,
            x_eval,
            y_eval,
            profiles,
            bit_widths=self.config.bit_widths,
            sparsities=self.config.sparsities,
        )
        self.variants[model.name] = variants
        self.deployed_models[model.name] = model
        self.billing.register_plan(PricingPlan(model.name, price_per_query=self.config.price_per_query))
        self._log("released", model=model.name, base_version=base_version.version_id, n_variants=len(variants))
        return {
            "base_version": base_version.version_id,
            "derived_versions": [v.version_id for v in derived],
            "variants": [v.record() for v in variants],
            "pareto_front": [v.name for v in pareto_front(variants)],
        }

    # ------------------------------------------------------------------
    # deploy: per-device selection + compilation + installation (Sec. III-A, IV)
    # ------------------------------------------------------------------
    def deploy(
        self,
        model_name: str,
        reference_x: Optional[np.ndarray] = None,
        reference_predictions: Optional[np.ndarray] = None,
        num_classes: int = 0,
        prepaid_queries: int = 1000,
        device_ids: Optional[Sequence[str]] = None,
    ) -> Dict[str, object]:
        """Roll the released model out to the fleet, device by device."""
        if model_name not in self.variants:
            raise KeyError(f"model {model_name!r} has not been released")
        variants = self.variants[model_name]
        # Deploy the production-staged version when the lifecycle has promoted
        # one; otherwise (no lifecycle in play) the newest base.
        version = self.registry.production(model_name) or self.registry.latest(model_name, kind="base")
        targets = [self.fleet.get(d) for d in device_ids] if device_ids else list(self.fleet)
        per_variant: Dict[str, int] = {}
        failures: List[str] = []
        for device in targets:
            result = self.selector.select(
                variants, device.profile, network=device.network, context=device.context()
            )
            if result.chosen is None:
                failures.append(device.device_id)
                continue
            chosen = result.chosen
            graph = from_sequential(chosen.model)
            try:
                artifact = self.compiler.compile(graph, device.profile, bits=chosen.bits)
            except Exception:
                failures.append(device.device_id)
                continue
            pipeline = Pipeline([model_module(chosen.model, bits=chosen.bits), softmax_module()], name=model_name, version=chosen.name)
            decisions = self.orchestrator.place(pipeline, [device.device_id])
            if not decisions[0].placed:
                failures.append(device.device_id)
                continue
            per_variant[chosen.name] = per_variant.get(chosen.name, 0) + 1
            self.registry.record_deployment(device.device_id, version.version_id)
            # Observability: per-device monitor seeded with reference data.
            if reference_x is not None:
                self.monitors[device.device_id] = EdgeMonitor(
                    device.device_id,
                    reference_x,
                    reference_predictions=reference_predictions,
                    num_classes=num_classes,
                    detectors=self.config.telemetry_detectors,
                    model_version=chosen.name,
                )
            # Billing: enroll and sell the initial prepaid package.
            key = self.billing.enroll_device(device.device_id)
            ledger = UsageLedger(device.device_id, key)
            ledger.add_grant(
                self.billing.sell_package(device.device_id, model_name, prepaid_queries),
                backend_key=self.billing.signing_key(),
            )
            self.ledgers[device.device_id] = ledger
        if per_variant:
            # Server-side compiled plan for the fleet-scale serving path:
            # platform.serve / serve_fleet execute this plan instead of the
            # layer-by-layer nn forward.
            self.serving.compile_model(model_name)
        summary = {
            "deployed": sum(per_variant.values()),
            "failed": len(failures),
            "per_variant": per_variant,
            "failures": failures,
        }
        self._log("deployed", model=model_name, **{k: v for k, v in summary.items() if k != "failures"})
        return summary

    # ------------------------------------------------------------------
    # serve: metered, monitored inference on one device (Sec. III-B, III-C)
    # ------------------------------------------------------------------
    def serve(self, device_id: str, model_name: str, x: np.ndarray) -> Dict[str, object]:
        """Simulate a window of production queries on a device.

        Delegates to the batched :class:`~repro.core.serving.ServingEngine`:
        quota and battery are accounted for the whole window in O(#grants)
        and O(1) respectively, and the drift monitor observes exactly the
        served slice of the window (queries denied by quota or battery never
        ran, so they produce no telemetry).
        """
        return self.serving.serve_batch(device_id, model_name, x).as_dict()

    def serve_fleet(
        self,
        model_name: str,
        traffic,
        engine: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> FleetServeReport:
        """Drive the whole fleet through one or more traffic windows.

        ``traffic`` is a ``{device_id: inputs}`` mapping or an iterable of
        such windows (see :mod:`repro.core.traffic` for scenario
        generators).  Each window is served as one fleet sweep: per-device
        quota/battery admission, then a single compiled-plan prediction
        sweep and a single :class:`~repro.observability.FleetMonitor` drift
        sweep over every monitored device's served slice.  ``engine`` /
        ``workers`` pass through to
        :meth:`~repro.core.serving.ServingEngine.serve_fleet` — notably
        ``engine="sharded"`` partitions each window across a process pool
        (:mod:`repro.runtime.sharded`) with a byte-identical merged result.
        """
        return self.serving.serve_fleet(model_name, traffic, engine=engine, workers=workers)

    # ------------------------------------------------------------------
    # sync: telemetry upload + billing reconciliation (Sec. III-B, III-C)
    # ------------------------------------------------------------------
    def sync_device(self, device_id: str) -> Dict[str, object]:
        """Upload telemetry and the usage ledger when the device is online."""
        device = self.fleet.get(device_id)
        if not device.network.online:
            return {"synced": False, "reason": "offline"}
        result: Dict[str, object] = {"synced": True}
        monitor = self.monitors.get(device_id)
        if monitor is not None:
            self.telemetry.ingest(monitor.build_report())
            result["telemetry_bytes"] = monitor.telemetry.estimated_payload_bytes()
        ledger = self.ledgers.get(device_id)
        if ledger is not None:
            reconciliation = self.billing.reconcile(ledger.export())
            result["billing_accepted"] = reconciliation.accepted
            result["billed_amount"] = reconciliation.billed_amount
        return result

    def fleet_health(self) -> Dict[str, object]:
        """Aggregate health metrics + alerts across synced telemetry."""
        summary = self.telemetry.fleet_summary()
        drifted = sum(1 for m in self.monitors.values() if m.any_drift())
        metrics = dict(summary)
        metrics["drift_fraction"] = drifted / max(len(self.monitors), 1)
        alerts = self.alerts.evaluate(metrics)
        return {"metrics": metrics, "alerts": [a.rule for a in alerts]}

    # ------------------------------------------------------------------
    # federated retraining (Sec. III-D)
    # ------------------------------------------------------------------
    def build_federated_engine(
        self,
        model: Sequential,
        client_data: Sequence,
        local_epochs: int = 1,
        lr: float = 0.05,
        eval_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        scenario: Optional[RoundScenario] = None,
        train_in_place: bool = True,
        fault_injector=None,
        quorum: Optional[float] = None,
        quorum_mode: str = "delivered",
        retry_policy=None,
        checkpoints=None,
    ) -> FederatedEngine:
        """A federated engine configured with the platform's policies.

        Shared by :meth:`federated_update` (which trains the deployed model
        in place) and the lifecycle loop, which passes
        ``train_in_place=False`` to train a weight-copy *clone*
        (:meth:`FederatedEngine.for_candidate`) so a candidate that fails
        its canary gate never touched the serving incumbent.

        ``fault_injector`` / ``quorum`` / ``quorum_mode`` /
        ``retry_policy`` / ``checkpoints`` pass straight through to
        :class:`~repro.federated.engine.FederatedEngine` — the
        :mod:`repro.faults` plane — so platform-driven retraining (and the
        lifecycle loop) can run under a seeded fault plan with
        transactional round commits.
        """
        clients = [
            FederatedClient(cd, local_epochs=local_epochs, lr=lr, seed=self.config.seed + i)
            for i, cd in enumerate(client_data)
        ]
        on_fleet = any(c.client_id in self.fleet.devices for c in clients)
        scheduler = EligibilityScheduler(max_clients=max(2, int(self.config.federated_fraction * len(clients))))
        kwargs = dict(
            compressor=get_compressor(self.config.federated_compressor, fraction=0.1)
            if self.config.federated_compressor == "topk"
            else get_compressor(self.config.federated_compressor),
            scheduler=scheduler if on_fleet else None,
            eval_data=eval_data,
            fleet=self.fleet if on_fleet else None,
            scenario=scenario,
            fault_injector=fault_injector,
            quorum=quorum,
            quorum_mode=quorum_mode,
            retry_policy=retry_policy,
            checkpoints=checkpoints,
        )
        if train_in_place:
            return FederatedEngine(model, clients, **kwargs)
        return FederatedEngine.for_candidate(model, clients, **kwargs)

    def federated_update(
        self,
        model_name: str,
        client_data: Sequence,
        rounds: int = 3,
        eval_data: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        local_epochs: int = 1,
        lr: float = 0.05,
        scenario: Optional[RoundScenario] = None,
    ) -> Dict[str, object]:
        """Run federated rounds over eligible devices and re-register the model.

        Rounds execute on the vectorized :class:`FederatedEngine`: client
        selection reads the fleet's *live* device state each round (so a
        device that drained its battery serving traffic drops out of later
        rounds), every selected client trains in one stacked pass, and an
        optional ``scenario`` injects dropouts / stragglers / byzantine
        updates.
        """
        model = self.deployed_models[model_name]
        engine = self.build_federated_engine(
            model,
            client_data,
            local_epochs=local_epochs,
            lr=lr,
            eval_data=eval_data,
            scenario=scenario,
        )
        history = engine.run(rounds)
        if model_name in self.serving.plans:
            # The rounds mutated the model's weights in place; the compiled
            # serving plan folded the old weights at compile time and must
            # be rebuilt or serving would keep predicting with stale ones.
            self.serving.compile_model(model_name)
        new_version = self.registry.register_model(model, kind="federated", parents=(self.registry.latest(model_name, kind="base").version_id,), tags={"rounds": rounds})
        self._log("federated_update", model=model_name, rounds=rounds, final_accuracy=history[-1].global_accuracy if history else 0.0)
        return {
            "rounds": [r.as_dict() for r in history],
            "communication": engine.total_communication(),
            "new_version": new_version.version_id,
        }

    # ------------------------------------------------------------------
    # lifecycle: promotion + the closed loop (Sec. III-A/III-B/III-D)
    # ------------------------------------------------------------------
    def promote_model(
        self,
        model_name: str,
        model: Sequential,
        version_id: str,
        x_eval: Optional[np.ndarray] = None,
        y_eval: Optional[np.ndarray] = None,
    ) -> Dict[str, object]:
        """Adopt a gate-approved candidate as the serving model for a family.

        Called by :class:`repro.lifecycle.LifecyclePipeline` after a canary
        passes its gates.  In one step: the serving model is swapped and its
        compiled plan rebuilt, the evaluated variant set is regenerated from
        the new weights, every deployed device re-selects its variant
        against the fresh set, the registry deployment map flips to the new
        version (:meth:`ModelRegistry.flip_deployments` returns the audit
        trail), and the version is staged ``production`` (retiring its
        predecessor).
        """
        self.deployed_models[model_name] = model
        if model_name in self.serving.plans:
            self.serving.compile_model(model_name)
        per_variant: Dict[str, int] = {}
        if x_eval is not None and y_eval is not None:
            profiles = sorted({d.profile for d in self.fleet}, key=lambda p: p.name)
            generator = VariantGenerator(self.cost_model)
            self.variants[model_name] = generator.generate(
                model,
                x_eval,
                y_eval,
                profiles,
                bit_widths=self.config.bit_widths,
                sparsities=self.config.sparsities,
            )
        deployed_ids = sorted(
            device_id
            for device_id in self.registry.deployments
            if device_id in self.fleet.devices
            and self.registry.deployed_version(device_id, model_name) is not None
        )
        for device_id in deployed_ids:
            device = self.fleet.get(device_id)
            result = self.selector.select(
                self.variants.get(model_name, []),
                device.profile,
                network=device.network,
                context=device.context(),
            )
            if result.chosen is not None:
                per_variant[result.chosen.name] = per_variant.get(result.chosen.name, 0) + 1
        previous = self.registry.flip_deployments(deployed_ids, version_id)
        self.registry.promote(version_id)
        self._log(
            "promoted",
            model=model_name,
            version=version_id,
            n_devices=len(deployed_ids),
            per_variant=per_variant,
        )
        return {
            "version": version_id,
            "flipped_devices": deployed_ids,
            "previous_versions": previous,
            "per_variant": per_variant,
        }

    def lifecycle(
        self,
        model_name: str,
        client_data: Sequence,
        eval_data: Tuple[np.ndarray, np.ndarray],
        config=None,
        gates=None,
        metric_probes=None,
        fault_injector=None,
        quorum: Optional[float] = None,
        quorum_mode: str = "delivered",
        retry_policy=None,
        checkpoints=None,
        state_dir: Optional[str] = None,
    ):
        """A :class:`repro.lifecycle.LifecyclePipeline` bound to this platform.

        The closed loop of Section III-A: drift events (or a schedule)
        trigger federated retraining, the candidate canaries on a cloned
        fleet slice, and the gate promotes or rolls back.  Imported lazily
        to keep :mod:`repro.core` free of a hard lifecycle dependency.
        ``fault_injector`` / ``quorum`` / ``quorum_mode`` /
        ``retry_policy`` / ``checkpoints`` flow into the retraining engine
        (:mod:`repro.faults`); ``state_dir`` makes the pipeline *durable*
        — decisions and promotion audits persist to disk and a pipeline
        rebuilt over the same directory resumes its cycle counter and
        history (:class:`repro.faults.durable.DurableDecisionLog`).
        """
        from repro.lifecycle import LifecyclePipeline

        return LifecyclePipeline(
            self,
            model_name,
            client_data,
            eval_data,
            config=config,
            gates=gates,
            metric_probes=metric_probes,
            fault_injector=fault_injector,
            quorum=quorum,
            quorum_mode=quorum_mode,
            retry_policy=retry_policy,
            checkpoints=checkpoints,
            state_dir=state_dir,
        )

    # ------------------------------------------------------------------
    # protection / verification (Sec. V, VI)
    # ------------------------------------------------------------------
    def protect(self, model_name: str, device_id: str, poisoning: str = "round") -> Dict[str, object]:
        """Encrypt the artifact for one device and wrap serving with poisoning."""
        model = self.deployed_models[model_name]
        blob = self.keys.wrap_model(model.to_bytes(), model_name, device_id)
        protected = ProtectedModel(model, poisoning=poisoning)
        self._log("protected", model=model_name, device=device_id, poisoning=poisoning)
        return {"encrypted_bytes": blob.size_bytes, "protected_model": protected}

    def verify_inference(self, model_name: str, x: np.ndarray) -> Dict[str, object]:
        """Produce and verify an execution transcript for a batch."""
        model = self.deployed_models[model_name]
        executor = VerifiableExecutor(model, seed=self.config.seed)
        transcript = executor.execute(x)
        verifier = TranscriptVerifier(model, expected_root=executor.weight_root, seed=self.config.seed)
        report = verifier.verify(transcript)
        self._log("verified_inference", model=model_name, valid=report["valid"])
        return report

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Snapshot of the whole platform state (dashboards / E1)."""
        return {
            "fleet": self.fleet.summary(),
            "registry": self.registry.stats(),
            "billing": self.billing.usage_report(),
            "telemetry": self.telemetry.fleet_summary(),
            "events": len(self.events),
        }
