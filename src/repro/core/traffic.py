"""Traffic scenario generators for fleet-scale serving benchmarks.

Serving a fleet is only interesting under realistic load shapes.  This
module produces per-window, per-device query-count schedules for four
canonical scenarios:

* **steady** — Poisson arrivals at a constant per-device rate (the
  baseline "always-on wake-word" workload);
* **bursty** — a low base rate with random high-rate bursts (camera traps,
  push-triggered inference);
* **diurnal** — a sinusoidal day/night cycle between a trough and a peak
  rate (consumer apps);
* **overload** — steady traffic with a multiplicative spike window (flash
  crowds; exercises quota exhaustion and battery depletion paths).

A schedule is an integer array of shape ``(n_windows, n_devices)``.
:meth:`TrafficGenerator.windows` materializes each schedule row into the
mapping ``{device_id: inputs}`` consumed by
:meth:`repro.core.serving.ServingEngine.serve_fleet`, sampling query inputs
from a reference pool.  All randomness is seeded, so scenarios are
reproducible across benchmark runs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

__all__ = ["TrafficGenerator", "SCENARIOS", "make_scenario"]

SCENARIOS = ("steady", "bursty", "diurnal", "overload")


class TrafficGenerator:
    """Seeded per-device query-count schedules for a fixed set of devices."""

    def __init__(self, device_ids: Sequence[str], seed: int = 0) -> None:
        if not device_ids:
            raise ValueError("need at least one device id")
        self.device_ids: List[str] = list(device_ids)
        self.rng = np.random.default_rng(seed)

    @property
    def n_devices(self) -> int:
        return len(self.device_ids)

    # -- scenario schedules ------------------------------------------------
    def steady(self, n_windows: int, rate: float = 20.0) -> np.ndarray:
        """Constant-rate Poisson arrivals per device per window."""
        return self.rng.poisson(rate, size=(n_windows, self.n_devices)).astype(np.int64)

    def bursty(
        self,
        n_windows: int,
        base_rate: float = 5.0,
        burst_rate: float = 80.0,
        burst_prob: float = 0.1,
    ) -> np.ndarray:
        """Low base load with per-device, per-window high-rate bursts."""
        bursts = self.rng.random((n_windows, self.n_devices)) < burst_prob
        rates = np.where(bursts, burst_rate, base_rate)
        return self.rng.poisson(rates).astype(np.int64)

    def diurnal(
        self,
        n_windows: int,
        peak_rate: float = 40.0,
        trough_rate: float = 2.0,
        period: int = 24,
    ) -> np.ndarray:
        """Sinusoidal day/night cycle between trough and peak rates."""
        t = np.arange(n_windows, dtype=np.float64)
        mid = (peak_rate + trough_rate) / 2.0
        amp = (peak_rate - trough_rate) / 2.0
        rates = mid + amp * np.sin(2.0 * np.pi * t / max(period, 1))
        return self.rng.poisson(np.maximum(rates, 0.0)[:, None] * np.ones(self.n_devices)).astype(np.int64)

    def overload(
        self,
        n_windows: int,
        rate: float = 20.0,
        overload_factor: float = 20.0,
        spike_window: Optional[int] = None,
    ) -> np.ndarray:
        """Steady traffic with one flash-crowd spike window.

        The spike multiplies every device's rate by ``overload_factor``,
        which is what drives quota-exhaustion and battery-depletion paths.
        """
        counts = self.steady(n_windows, rate)
        spike = n_windows // 2 if spike_window is None else spike_window
        if 0 <= spike < n_windows:
            counts[spike] = self.rng.poisson(rate * overload_factor, size=self.n_devices)
        return counts

    # -- materialization ---------------------------------------------------
    def windows(self, counts: np.ndarray, x_pool: np.ndarray) -> Iterator[Dict[str, np.ndarray]]:
        """Materialize a schedule into serve_fleet windows.

        Each row of ``counts`` becomes a ``{device_id: inputs}`` mapping
        with inputs sampled (with replacement) from ``x_pool``.
        """
        counts = np.asarray(counts)
        if counts.ndim != 2 or counts.shape[1] != self.n_devices:
            raise ValueError(f"schedule must have shape (n_windows, {self.n_devices})")
        for row in counts:
            window: Dict[str, np.ndarray] = {}
            for device_id, n in zip(self.device_ids, row):
                n = int(n)
                idx = self.rng.integers(0, x_pool.shape[0], size=n)
                window[device_id] = x_pool[idx]
            yield window


def make_scenario(
    name: str,
    device_ids: Sequence[str],
    n_windows: int,
    x_pool: np.ndarray,
    seed: int = 0,
    **kwargs: float,
) -> Iterator[Dict[str, np.ndarray]]:
    """Build a named scenario's window stream in one call.

    ``name`` is one of :data:`SCENARIOS`; extra keyword arguments are passed
    to the schedule method (e.g. ``rate=``, ``burst_prob=``).
    """
    generator = TrafficGenerator(device_ids, seed=seed)
    if name not in SCENARIOS:
        raise KeyError(f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}")
    schedule = getattr(generator, name)(n_windows, **kwargs)
    return generator.windows(schedule, x_pool)
