"""Context-aware model selection.

Paper Section III-A: the best model variant for a device depends not only on
its hardware but on context — "if the device is connected to an external
power supply, energy consumption might be less of an issue … the user might
prefer a slower, more accurate model or a faster, less accurate model or
even a model that is fast to download on a slow network connection".

The :class:`ModelSelector` scores every candidate variant for a device
context under a :class:`SelectionPolicy` (accuracy/latency/energy/download
weights plus hard constraints) and picks the best feasible one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.devices.cost import CostModel
from repro.devices.network import NetworkCondition
from repro.devices.profiles import DeviceProfile
from repro.optimize.pareto import ModelVariant

__all__ = ["SelectionPolicy", "SelectionResult", "ModelSelector"]


@dataclass(frozen=True)
class SelectionPolicy:
    """Weights and constraints for scoring model variants.

    Scores are "higher is better": accuracy contributes positively; latency,
    energy and download time contribute negatively with the given weights.
    Hard constraints (``max_latency_s``, ``max_size_bytes``,
    ``min_accuracy``) filter candidates before scoring.
    """

    accuracy_weight: float = 1.0
    latency_weight: float = 0.2
    energy_weight: float = 0.1
    download_weight: float = 0.05
    max_latency_s: Optional[float] = None
    max_size_bytes: Optional[int] = None
    min_accuracy: Optional[float] = None

    @classmethod
    def low_battery(cls) -> "SelectionPolicy":
        """Prefer cheap models when running on a draining battery."""
        return cls(accuracy_weight=0.5, latency_weight=0.3, energy_weight=1.0, download_weight=0.1)

    @classmethod
    def plugged_in(cls) -> "SelectionPolicy":
        """Energy is nearly free; chase accuracy."""
        return cls(accuracy_weight=1.0, latency_weight=0.2, energy_weight=0.01, download_weight=0.05)

    @classmethod
    def slow_network(cls) -> "SelectionPolicy":
        """Heavily penalize large downloads (paper's slow-connection case)."""
        return cls(accuracy_weight=0.8, latency_weight=0.2, energy_weight=0.1, download_weight=1.0)


@dataclass
class SelectionResult:
    """Chosen variant plus the per-candidate scores for explainability."""

    chosen: Optional[ModelVariant]
    scores: Dict[str, float]
    feasible: List[str]
    policy: SelectionPolicy

    def explain(self) -> str:
        lines = [f"policy: {self.policy}"]
        for name, score in sorted(self.scores.items(), key=lambda kv: -kv[1]):
            marker = "*" if self.chosen is not None and name == self.chosen.name else " "
            lines.append(f" {marker} {name:<28} score={score:.4f}")
        return "\n".join(lines)


class ModelSelector:
    """Selects the best model variant for a device context."""

    def __init__(self, cost_model: Optional[CostModel] = None) -> None:
        self.cost_model = cost_model or CostModel()

    def policy_for_context(self, context: Dict[str, object]) -> SelectionPolicy:
        """Derive a sensible default policy from a device context snapshot."""
        if context.get("power_state") == "plugged_in":
            policy = SelectionPolicy.plugged_in()
        elif float(context.get("state_of_charge", 1.0)) < 0.3:
            policy = SelectionPolicy.low_battery()
        else:
            policy = SelectionPolicy()
        if context.get("network") in ("cellular", "lpwan", "offline") or context.get("metered"):
            policy = SelectionPolicy(
                accuracy_weight=policy.accuracy_weight,
                latency_weight=policy.latency_weight,
                energy_weight=policy.energy_weight,
                download_weight=1.0,
                max_latency_s=policy.max_latency_s,
                max_size_bytes=policy.max_size_bytes,
                min_accuracy=policy.min_accuracy,
            )
        return policy

    def select(
        self,
        variants: Sequence[ModelVariant],
        profile: DeviceProfile,
        network: Optional[NetworkCondition] = None,
        policy: Optional[SelectionPolicy] = None,
        context: Optional[Dict[str, object]] = None,
    ) -> SelectionResult:
        """Score every variant on a device and return the best feasible one."""
        if policy is None:
            policy = self.policy_for_context(context or {})
        scores: Dict[str, float] = {}
        feasible: List[str] = []
        best: Optional[ModelVariant] = None
        best_score = -np.inf
        # Normalizers so weights are comparable across metrics.
        max_size = max((v.size_bytes for v in variants), default=1) or 1
        for variant in variants:
            # One cost-model walk per variant covers both the latency
            # fallback and the energy term (it used to run twice, with the
            # first result discarded whenever the latency table had a hit).
            cost = self.cost_model.model_inference_cost(profile, variant.model, bits=variant.bits)
            latency = variant.latency_s.get(profile.name)
            if latency is None:
                latency = cost.latency_s
            energy = cost.energy_j
            download_s = network.transfer_time(variant.size_bytes) if network is not None else 0.0
            # Offline devices will fetch the artifact at the next connectivity
            # window; penalize with a large finite value instead of ruling the
            # variant out entirely.
            if not np.isfinite(download_s):
                download_s = 3600.0
            if policy.max_latency_s is not None and latency > policy.max_latency_s:
                scores[variant.name] = -np.inf
                continue
            if policy.max_size_bytes is not None and variant.size_bytes > policy.max_size_bytes:
                scores[variant.name] = -np.inf
                continue
            if policy.min_accuracy is not None and variant.accuracy < policy.min_accuracy:
                scores[variant.name] = -np.inf
                continue
            if variant.size_bytes > profile.flash_bytes:
                scores[variant.name] = -np.inf
                continue
            feasible.append(variant.name)
            score = (
                policy.accuracy_weight * variant.accuracy
                - policy.latency_weight * np.log10(max(latency, 1e-9) / 1e-3 + 1.0)
                - policy.energy_weight * np.log10(max(energy, 1e-12) / 1e-6 + 1.0)
                - policy.download_weight * np.log10(max(download_s, 0.0) + 1.0)
                - 0.01 * variant.size_bytes / max_size
            )
            scores[variant.name] = float(score)
            if score > best_score:
                best_score = score
                best = variant
        return SelectionResult(chosen=best, scores=scores, feasible=feasible, policy=policy)
