"""Pay-per-query billing: prepaid quotas, tamper-evident offline metering, reconciliation."""

from .backend import BillingBackend, ReconciliationResult
from .metering import LedgerEntry, PricingPlan, QuotaExceededError, QuotaGrant, UsageLedger

__all__ = [
    "PricingPlan",
    "QuotaGrant",
    "LedgerEntry",
    "UsageLedger",
    "QuotaExceededError",
    "BillingBackend",
    "ReconciliationResult",
]
